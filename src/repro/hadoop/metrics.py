"""Per-task phase timings — the simulated equivalent of Hadoop's logs.

The paper: "Through Hadoop's logs, we gather all reducers' running time
and the consuming time of shuffle."  These dataclasses are that log.
Figure 1 plots ``copy_time`` / ``sort_time`` / ``reduce_time`` per
reducer; Table I computes ``sum(copy) / (sum(map task time) + sum(reduce
task time))``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np


@dataclass
class MapTaskMetrics:
    """One map attempt's timeline."""

    task_id: int
    node: int
    scheduled_at: float = 0.0
    started_at: float = 0.0
    finished_at: float = 0.0
    input_bytes: int = 0
    output_bytes: int = 0
    data_local: bool = True

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at


@dataclass
class ReduceTaskMetrics:
    """One reduce attempt's timeline, split into the three phases."""

    task_id: int
    node: int
    scheduled_at: float = 0.0
    started_at: float = 0.0
    copy_done_at: float = 0.0
    sort_done_at: float = 0.0
    finished_at: float = 0.0
    shuffled_bytes: int = 0
    fetches: int = 0
    #: Re-fetch attempts after transient failures (lossy network only).
    fetch_retries: int = 0

    @property
    def copy_time(self) -> float:
        """Copy stage of shuffle — includes waiting for unfinished maps,
        exactly as the Hadoop counters the paper mined do."""
        return self.copy_done_at - self.started_at

    @property
    def sort_time(self) -> float:
        return self.sort_done_at - self.copy_done_at

    @property
    def reduce_time(self) -> float:
        return self.finished_at - self.sort_done_at

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at


@dataclass
class JobMetrics:
    """Everything one simulated job produced."""

    job_name: str
    submitted_at: float = 0.0
    finished_at: float = 0.0
    map_tasks: list[MapTaskMetrics] = field(default_factory=list)
    reduce_tasks: list[ReduceTaskMetrics] = field(default_factory=list)
    speculative_attempts: int = 0
    speculative_wins: int = 0
    speculative_reduce_attempts: int = 0
    speculative_reduce_wins: int = 0
    #: Attempts killed by the cluster scheduler to rebalance tenants
    #: (multi-tenant runs only; the work requeues without burning a retry).
    maps_preempted: int = 0
    reduces_preempted: int = 0
    # -- fault-tolerance accounting (all zero on a fault-free run) ------------
    lost_trackers: int = 0
    failed_map_attempts: int = 0
    failed_reduce_attempts: int = 0
    maps_reexecuted: int = 0
    fetch_failures: int = 0
    #: Shuffle retry pipeline (lossy networks): re-fetch attempts, and
    #: maps re-executed because the fetch-failure threshold tripped.
    fetch_retries: int = 0
    maps_reexecuted_for_fetch: int = 0
    #: Simulated seconds of task work thrown away by failures (killed
    #: attempts plus re-executed completed maps) — the "wasted work" axis.
    wasted_task_seconds: float = 0.0
    #: Storage-fault accounting (all zero without storage specs): disk
    #: deaths, NameNode re-replication work, reader failovers, and blocks
    #: that ran out of replicas entirely.
    disk_failures: int = 0
    blocks_repaired: int = 0
    repair_bytes: float = 0.0
    blocks_lost: int = 0
    read_failovers: int = 0
    corrupt_replicas_dropped: int = 0
    #: Write pipelines that wanted more replication targets than live
    #: datanodes could supply (clamped, not mis-placed).
    replication_clamped: int = 0
    job_failed: bool = False
    failure_reason: Optional[str] = None
    # Structured failure record: the node/task/time behind failure_reason.
    failure_node: Optional[int] = None
    failure_task: Optional[int] = None
    failure_time: Optional[float] = None

    @property
    def elapsed(self) -> float:
        return self.finished_at - self.submitted_at

    # -- the Table-I statistic -------------------------------------------------
    @property
    def total_copy_time(self) -> float:
        return sum(r.copy_time for r in self.reduce_tasks)

    @property
    def total_task_time(self) -> float:
        """Sum of all mappers' and reducers' execution time (Table I's
        denominator)."""
        return sum(m.duration for m in self.map_tasks) + sum(
            r.duration for r in self.reduce_tasks
        )

    @property
    def copy_fraction(self) -> float:
        """Table I's cell value: copy stage share of total task time."""
        denom = self.total_task_time
        return self.total_copy_time / denom if denom > 0 else 0.0

    # -- Figure-1 style summaries -----------------------------------------------
    def copy_times(self) -> np.ndarray:
        return np.array([r.copy_time for r in self.reduce_tasks])

    def sort_times(self) -> np.ndarray:
        return np.array([r.sort_time for r in self.reduce_tasks])

    def reduce_times(self) -> np.ndarray:
        return np.array([r.reduce_time for r in self.reduce_tasks])

    def summary(self) -> dict:
        """Headline numbers for reports."""
        copy = self.copy_times()
        out = {
            "job": self.job_name,
            "elapsed": self.elapsed,
            "maps": len(self.map_tasks),
            "reduces": len(self.reduce_tasks),
            "copy_fraction": self.copy_fraction,
        }
        if len(copy):
            out.update(
                avg_copy=float(copy.mean()),
                avg_sort=float(self.sort_times().mean()),
                avg_reduce=float(self.reduce_times().mean()),
            )
        if self.lost_trackers or self.failed_map_attempts or self.fetch_failures:
            out.update(
                lost_trackers=self.lost_trackers,
                failed_map_attempts=self.failed_map_attempts,
                maps_reexecuted=self.maps_reexecuted,
                wasted_task_seconds=self.wasted_task_seconds,
            )
        return out

    def fault_summary(self) -> dict:
        """The recovery-cost counters as one record."""
        return {
            "lost_trackers": self.lost_trackers,
            "failed_map_attempts": self.failed_map_attempts,
            "failed_reduce_attempts": self.failed_reduce_attempts,
            "maps_reexecuted": self.maps_reexecuted,
            "fetch_failures": self.fetch_failures,
            "fetch_retries": self.fetch_retries,
            "maps_reexecuted_for_fetch": self.maps_reexecuted_for_fetch,
            "wasted_task_seconds": self.wasted_task_seconds,
            "disk_failures": self.disk_failures,
            "blocks_repaired": self.blocks_repaired,
            "repair_bytes": self.repair_bytes,
            "blocks_lost": self.blocks_lost,
            "read_failovers": self.read_failovers,
            "corrupt_replicas_dropped": self.corrupt_replicas_dropped,
            "replication_clamped": self.replication_clamped,
            "job_failed": self.job_failed,
            "failure_reason": self.failure_reason,
            "failure_node": self.failure_node,
            "failure_task": self.failure_task,
            "failure_time": self.failure_time,
        }

    def data_locality(self) -> float:
        """Fraction of map tasks that read a local replica."""
        if not self.map_tasks:
            return 1.0
        return sum(1 for m in self.map_tasks if m.data_local) / len(self.map_tasks)

    def to_dict(self) -> dict:
        """JSON-serializable dump: summary plus per-task phase records —
        the machine-readable twin of the Hadoop job history file."""
        return {
            "summary": self.summary(),
            "speculative_attempts": self.speculative_attempts,
            "speculative_wins": self.speculative_wins,
            "speculative_reduce_attempts": self.speculative_reduce_attempts,
            "speculative_reduce_wins": self.speculative_reduce_wins,
            "maps_preempted": self.maps_preempted,
            "reduces_preempted": self.reduces_preempted,
            "faults": self.fault_summary(),
            "map_tasks": [
                {
                    "task_id": m.task_id,
                    "node": m.node,
                    "scheduled_at": m.scheduled_at,
                    "started_at": m.started_at,
                    "finished_at": m.finished_at,
                    "input_bytes": m.input_bytes,
                    "output_bytes": m.output_bytes,
                    "data_local": m.data_local,
                }
                for m in self.map_tasks
            ],
            "reduce_tasks": [
                {
                    "task_id": r.task_id,
                    "node": r.node,
                    "started_at": r.started_at,
                    "copy_time": r.copy_time,
                    "sort_time": r.sort_time,
                    "reduce_time": r.reduce_time,
                    "shuffled_bytes": r.shuffled_bytes,
                    "fetches": r.fetches,
                    "fetch_retries": r.fetch_retries,
                }
                for r in self.reduce_tasks
            ],
        }
