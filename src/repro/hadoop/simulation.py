"""Top-level driver: one simulated Hadoop job on the paper's testbed.

Wiring: node 0 is the master (JobTracker + NameNode), the remaining
nodes are workers (TaskTracker + DataNode), matching the paper's
"1 master, 7 slaves" deployment.  Input data is pre-loaded into HDFS
spread across all workers; the job then runs to completion under the
DES, and :class:`~repro.hadoop.metrics.JobMetrics` comes back with the
phase timings Figures 1/6 and Table I are built from.

Fault injection: pass a :class:`~repro.simnet.faults.FaultPlan` and the
driver becomes the plan's host — a crashed worker has every process it
was running interrupted (tracker loop, task processes, in-flight
fetches), the JobTracker notices via heartbeat expiry and recovers, and
a restarted node rejoins with a fresh TaskTracker.  With no plan (or an
empty one) none of the fault machinery is instantiated and the event
sequence is bit-for-bit the fault-free one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.hadoop.config import HadoopConfig
from repro.hadoop.hdfs import HdfsNamespace
from repro.hadoop.job import JobSpec
from repro.hadoop.jobtracker import (
    _RUNNING,
    JobTracker,
    MapAttempt,
    ReduceAttempt,
)
from repro.hadoop.maptask import map_task_process
from repro.hadoop.metrics import JobMetrics
from repro.hadoop.reducetask import reduce_task_process
from repro.hadoop.storage import StorageManager
from repro.hadoop.tasktracker import TaskTracker
from repro.obs import Observer
from repro.simnet.cluster import Cluster, ClusterSpec
from repro.simnet.faults import FaultInjector, FaultPlan
from repro.simnet.kernel import Interrupt, Process, Simulator
from repro.simnet.network import FlowFailed
from repro.transports.hadoop_rpc import HadoopRpcTransport
from repro.transports.jetty import JettyHttpTransport
from repro.transports.nio import NioSocketTransport
from repro.transports.retry import RetryPolicy


class JobFailedError(RuntimeError):
    """The simulated job died (task out of attempts, master lost, ...).

    Carries the partial :class:`JobMetrics` so experiments can still
    account the wasted work of a run that never finished.
    """

    def __init__(self, reason: str, metrics: JobMetrics):
        super().__init__(f"hadoop job failed: {reason}")
        self.reason = reason
        self.metrics = metrics


@dataclass
class HadoopSimulation:
    """One job on one freshly built simulated cluster."""

    spec: JobSpec
    config: HadoopConfig = field(default_factory=HadoopConfig)
    cluster_spec: ClusterSpec = field(default_factory=ClusterSpec)
    seed: int = 2011
    #: Straggler injection: node id -> disk slowdown factor (>1 = slower).
    disk_slowdown: Optional[dict[int, float]] = None
    #: Fault injection; None or an empty plan leaves the run untouched.
    fault_plan: Optional[FaultPlan] = None
    #: Observability: True attaches an :class:`~repro.obs.Observer` to the
    #: simulator before any model is built.  Off by default — an untraced
    #: run is bit-for-bit identical to the uninstrumented code.
    observe: bool = False
    #: Multi-tenant mode: run against an existing kernel + cluster instead
    #: of building a private pair.  Both must be given together; faults
    #: are then owned by the engine (``fault_plan`` must stay None).
    sim: Optional[Simulator] = None
    cluster: Optional[Cluster] = None
    #: Cluster-scheduler slot facade (a ``JobSlots``), set by the engine:
    #: TaskTrackers consult it for slot grants and report usage to it.
    sched: Optional[object] = None

    def __post_init__(self) -> None:
        self.shared = self.sim is not None
        if self.shared != (self.cluster is not None):
            raise ValueError("pass sim and cluster together (or neither)")
        if self.shared:
            if self.fault_plan is not None:
                raise ValueError(
                    "per-job fault plans are not supported on a shared "
                    "cluster; give the plan to the engine instead"
                )
            if self.disk_slowdown:
                raise ValueError(
                    "per-job disk_slowdown is not supported on a shared "
                    "cluster; slow the shared cluster's nodes instead"
                )
            self.cluster_spec = self.cluster.spec
            self.obs = self.sim.obs
        else:
            self.sim = Simulator()
            # Attach before Cluster: SlotPool/RateDevice bind metrics at init.
            self.obs = Observer.attach(self.sim) if self.observe else self.sim.obs
            self.cluster = Cluster(self.sim, self.cluster_spec)
            for node_id, factor in (self.disk_slowdown or {}).items():
                if factor <= 0:
                    raise ValueError(f"slowdown factor must be positive: {factor}")
                self.cluster.node(node_id).disk.rate /= factor
        if self.cluster_spec.num_nodes < 2:
            raise ValueError("need a master plus at least one worker node")
        self.num_workers = self.cluster_spec.num_nodes - 1
        self.hdfs = HdfsNamespace(
            datanodes=[self.worker_node_id(w) for w in range(self.num_workers)],
            block_size=self.config.block_size,
            replication=self.config.replication,
            seed=self.seed,
        )
        self.rpc = HadoopRpcTransport()
        self.jetty = JettyHttpTransport()
        self.nio = NioSocketTransport()
        self._file = self.hdfs.create_file(self.spec.input_file, self.spec.input_bytes)
        self.jobtracker = JobTracker(
            self.spec, self.config, self._file, num_workers=self.num_workers
        )
        self.metrics = JobMetrics(job_name=self.spec.name)
        # -- fault-injection state (inert without a plan) --------------------
        self.dead_nodes: set[int] = set()
        self._epoch: dict[int, int] = {}
        self._node_procs: dict[int, list[Process]] = {}
        self._tracker_procs: list[Process] = []
        self._topology_event = None
        self.injector: Optional[FaultInjector] = None
        #: True when crashes can reach this job — either a private fault
        #: plan (standalone) or the engine's cluster-wide plan (shared
        #: mode; the engine flips it after construction).  Gates the
        #: crash-bookkeeping paths in the task models.
        self.fault_aware = False
        #: Running attempts (with their processes) on the shared cluster,
        #: so the scheduler can pick preemption victims.  Standalone runs
        #: never populate it.
        self._live_attempts: list = []
        #: True when the plan can fail flows: switches the shuffle into
        #: its retry/backoff pipeline and wraps DFS streams in resends.
        #: False keeps every transfer on the original (infallible) path,
        #: so crash-only and clean runs stay bit-for-bit unchanged.
        self.net_faults = False
        #: Replica liveness + repair; built only when the plan carries
        #: storage specs, so crash/network-only runs never touch it.
        self.storage: Optional[StorageManager] = None
        if self.fault_plan:  # an empty plan is falsy: nothing to inject
            if self.fault_plan.has_storage_faults():
                self.storage = StorageManager(
                    self.sim,
                    self.cluster,
                    self.hdfs,
                    seed=self.seed,
                    repair_bandwidth_cap=self.config.repair_bandwidth_cap,
                    repair_max_streams=self.config.repair_max_streams,
                    is_node_dead=self.is_node_dead,
                )
            self.injector = FaultInjector(
                self.sim,
                self.cluster,
                self.fault_plan,
                host=self,
                default_nodes=tuple(
                    self.worker_node_id(w) for w in range(self.num_workers)
                ),
                storage=self.storage,
            )
            self.net_faults = self.fault_plan.has_network_faults()
            self.fault_aware = True
        #: Backoff schedule shared by the shuffle's fetch retries; DFS
        #: streams (map-side remote reads, reduce output replication) use
        #: a more patient variant of the same progression, since a task
        #: that gives up on DFS burns a whole attempt.
        self.fetch_retry_policy = RetryPolicy(
            base=self.config.fetch_backoff_base,
            max_delay=self.config.fetch_backoff_max,
            retries=self.config.fetch_retries,
        )
        self.dfs_retry_policy = RetryPolicy(
            base=self.config.fetch_backoff_base,
            max_delay=self.config.fetch_backoff_max,
            retries=2 * self.config.fetch_retries,
        )
        #: The job span's tracer id (set by :meth:`run`; 0 = untraced).
        self.job_sid = 0
        #: Attempt-seconds thrown away by :meth:`preempt_slots` — work
        #: that was running when the scheduler killed it.  The tenant
        #: engine diffs this around each preemption to put a ``lost_s``
        #: figure on the trace instant.
        self.preempted_lost_seconds = 0.0

    # -- id mapping -----------------------------------------------------------
    def worker_node_id(self, worker_index: int) -> int:
        """Worker index (0-based, HDFS space) -> cluster node id."""
        return worker_index + 1

    def node_worker_index(self, node_id: int) -> int:
        return node_id - 1

    # -- task process factories (called by TaskTracker) --------------------------
    def run_map_task(self, attempt: MapAttempt, tracker: TaskTracker):
        return map_task_process(self, attempt, tracker)

    def run_reduce_task(self, attempt: ReduceAttempt, tracker: TaskTracker):
        return reduce_task_process(self, attempt, tracker)

    def note_attempt(
        self, kind: str, attempt, proc: Process, tracker: TaskTracker
    ) -> None:
        """Scheduler bookkeeping for one spawned attempt (shared mode)."""
        if self.sched is None:
            return
        self.sched.task_started(tracker.node_id, kind)
        self._live_attempts.append((kind, attempt, proc, tracker))

    def preempt_slots(
        self, kind: str, count: int, nodes: Optional[set[int]] = None
    ) -> int:
        """Kill up to ``count`` running ``kind`` attempts for the scheduler.

        Victims are the youngest attempts first (the fair scheduler's
        kill order — least work lost), deterministically tie-broken by
        task id.  The killed work requeues via
        :meth:`JobTracker.map_attempt_preempted` /
        :meth:`~JobTracker.reduce_attempt_preempted` without burning a
        retry, and the tracker's slot frees immediately.
        """
        self._live_attempts = [e for e in self._live_attempts if e[2].is_alive]
        victims = [
            e
            for e in self._live_attempts
            if e[0] == kind
            and e[1].task.state == _RUNNING
            and (nodes is None or e[3].node_id in nodes)
        ]
        victims.sort(
            key=lambda e: (e[1].metrics.scheduled_at, e[1].task_id), reverse=True
        )
        killed = 0
        now = self.sim.now
        for _, attempt, proc, tracker in victims[:count]:
            proc.interrupt("preempted by cluster scheduler")
            self.preempted_lost_seconds += max(
                0.0, now - attempt.metrics.scheduled_at
            )
            if kind == "map":
                self.jobtracker.map_attempt_preempted(attempt, now)
                tracker.map_failed(attempt)
            else:
                self.jobtracker.reduce_attempt_preempted(attempt, now)
                tracker.reduce_failed(attempt)
            killed += 1
        return killed

    # -- fault-injection plumbing -------------------------------------------------
    def is_node_dead(self, node_id: int) -> bool:
        return node_id in self.dead_nodes

    def live_datanodes(self) -> list[int]:
        """Datanodes currently usable as write-pipeline targets: alive
        and not draining toward decommission."""
        out = [n for n in self.hdfs.datanodes if n not in self.dead_nodes]
        if self.storage is not None:
            out = [n for n in out if not self.storage.is_decommissioning(n)]
        return out

    def node_epoch(self, node_id: int) -> int:
        """Incarnation counter: bumped on every crash, so a transfer can
        detect that its peer died *and came back* while the bytes flowed."""
        return self._epoch.get(node_id, 0)

    def spawn_on_node(self, node_id: int, gen, name: str = "") -> Process:
        """``sim.process`` plus crash bookkeeping: under fault injection
        the process is registered as running on ``node_id`` so a crash
        can interrupt it (and deregistered once it finishes)."""
        proc = self.sim.process(gen, name=name)
        if self.fault_aware:
            self._node_procs.setdefault(node_id, []).append(proc)
            proc.callbacks.append(lambda ev: self._forget_proc(node_id, proc))
        return proc

    def _forget_proc(self, node_id: int, proc: Process) -> None:
        bucket = self._node_procs.get(node_id)
        if bucket is not None:
            try:
                bucket.remove(proc)
            except ValueError:
                pass

    def reliable_send(
        self,
        src: int,
        dst: int,
        nbytes: float,
        extra_latency: float = 0.0,
        rate_cap: float = float("inf"),
        rng=None,
        label: str = "dfs",
        waiter_sid: int = 0,
    ):
        """Generator: a :meth:`Cluster.send` that survives killed flows.

        TCP-like recovery for DFS streams — on :class:`FlowFailed` the
        transfer restarts from scratch after an exponential backoff
        (jittered from ``rng``), up to ``dfs_retry_policy.retries``
        times; exhaustion re-raises for the caller's task-level
        recovery.  Spawn via :meth:`spawn_on_node` (or ``yield from``)
        so crash interrupts still reach the waiter.
        """
        sim = self.sim
        policy = self.dfs_retry_policy
        attempt = 0
        try:
            while True:
                flow = self.cluster.send_flow(
                    src, dst, nbytes, extra_latency, rate_cap, waiter_sid=waiter_sid
                )
                try:
                    yield flow.done
                    return
                except FlowFailed:
                    attempt += 1
                    if attempt > policy.retries:
                        raise
                    tr = sim.obs.tracer
                    sid = tr.begin(
                        "hadoop.shuffle.backoff",
                        f"{label}-retry n{src}->n{dst}",
                        attempt=attempt,
                    )
                    yield sim.timeout(policy.delay(attempt, rng))
                    tr.end(sid)
        except Interrupt:
            return  # our node crashed; the task-level recovery owns cleanup

    # -- FaultHost hooks ---------------------------------------------------------
    def crash_node(self, node_id: int, now: float) -> None:
        """A node dies: every process it hosts is interrupted.  Detection
        is *not* instantaneous — the JobTracker learns via heartbeat
        expiry, exactly like the real one."""
        if node_id == 0:
            # The JobTracker/NameNode is a single point of failure in
            # Hadoop 0.20.2: losing the master kills the job outright.
            self.jobtracker.fail_job(
                "master node 0 lost (JobTracker is a SPOF)", node=0, at=now
            )
            return
        if node_id in self.dead_nodes:
            return
        self.dead_nodes.add(node_id)
        self._epoch[node_id] = self._epoch.get(node_id, 0) + 1
        for proc in self._node_procs.pop(node_id, []):
            if proc.is_alive:
                proc.interrupt(f"node {node_id} crashed")

    def restart_node(self, node_id: int, now: float) -> None:
        """The node rejoins with empty local state: a fresh TaskTracker
        registers with the JobTracker (which unwinds anything it still
        attributes to the previous incarnation)."""
        self.dead_nodes.discard(node_id)
        jt = self.jobtracker
        if self.storage is not None and node_id != 0:
            self.storage.datanode_rejoined(node_id, now)
        if node_id == 0 or jt.job_done or jt.job_failed:
            return
        tracker = TaskTracker(self, self.node_worker_index(node_id))
        proc = self.spawn_on_node(
            node_id,
            tracker.run(),
            name=f"tracker{node_id}.{self.node_epoch(node_id)}",
        )
        self._tracker_procs.append(proc)
        self._wake_topology()

    def _wake_topology(self) -> None:
        ev = self._topology_event
        if ev is not None and not ev.triggered:
            self._topology_event = None
            ev.succeed(None)

    def _expiry_loop(self):
        """DES process: the JobTracker's lost-tracker sweep."""
        sim = self.sim
        jt = self.jobtracker
        interval = self.config.tasktracker_expiry_interval
        try:
            while not (jt.job_done or jt.job_failed):
                # Pooled shared tick: the sweep timer recycles through the
                # kernel arena instead of allocating a Timeout per lap.
                yield sim.tick(interval / 3.0, shared=True)
                for node in jt.find_expired(sim.now, interval):
                    jt.lost_tasktracker(node, sim.now)
                    if self.storage is not None:
                        # The DataNode stopped heartbeating with the
                        # TaskTracker: its replicas go stale and the
                        # NameNode starts re-replicating them.
                        self.storage.datanode_lost(node, sim.now)
        except Interrupt:
            return

    # -- driver ----------------------------------------------------------------------
    def start(self) -> Process:
        """Spawn the job's driver process on the (possibly shared) kernel.

        Standalone callers use :meth:`run`; the multi-tenant engine calls
        ``start()`` at dispatch time and :meth:`complete` once the
        returned process has finished.
        """
        sim = self.sim
        jt = self.jobtracker
        self.job_sid = sim.obs.tracer.begin(
            "hadoop.job",
            self.spec.name,
            track="hadoop:job",
            input_bytes=self.spec.input_bytes,
            maps=jt.total_maps,
            reduces=jt.num_reduces,
        )

        def job(sim_):
            submit_t = sim.now
            expiry_proc = None
            if self.injector is not None:
                self.injector.start()
                if self.storage is not None:
                    self.storage.start_repair()
            if self.fault_aware:
                expiry_proc = sim.process(self._expiry_loop(), name="expiry-sweep")
            yield sim.timeout(self.config.job_setup_time)
            self.metrics.submitted_at = submit_t
            trackers = [TaskTracker(self, w) for w in range(self.num_workers)]
            self._tracker_procs = [
                self.spawn_on_node(t.node_id, t.run(), name=f"tracker{t.node_id}")
                for t in trackers
                if not self.fault_aware or t.node_id not in self.dead_nodes
            ]
            if not self.fault_aware:
                yield sim.all_of(self._tracker_procs)
                self.metrics.finished_at = sim.now
                return
            # Fault-aware wait: the set of live trackers changes as nodes
            # crash and restart, so re-evaluate it whenever the topology
            # event fires.  All trackers dead with none restarting within
            # an expiry interval means nobody will ever beat again.
            while not (jt.job_done or jt.job_failed):
                ev = self._topology_event = sim.event()
                live = [p for p in self._tracker_procs if p.is_alive]
                if live:
                    yield sim.any_of([sim.all_of(live), ev])
                else:
                    yield sim.any_of(
                        [ev, sim.timeout(self.config.tasktracker_expiry_interval)]
                    )
                    if not ev.triggered and not (jt.job_done or jt.job_failed):
                        jt.fail_job(
                            "all tasktrackers lost and none restarted", at=sim.now
                        )
            self.metrics.finished_at = sim.now
            if self.injector is not None:
                self.injector.stop()
            if self.storage is not None:
                self.storage.stop_repair()
            if expiry_proc is not None and expiry_proc.is_alive:
                expiry_proc.interrupt("job over")

        return sim.process(job(sim), name=f"job:{self.spec.name}")

    def complete(self) -> JobMetrics:
        """Finalize after the driver process ended; raises on failure."""
        sim = self.sim
        jt = self.jobtracker
        sim.obs.tracer.end(self.job_sid, done=jt.job_done, failed=jt.job_failed)
        self._finalize_metrics()
        if jt.job_failed:
            raise JobFailedError(jt.failure_reason or "unknown failure", self.metrics)
        if not jt.job_done:
            raise RuntimeError(
                f"job did not finish (simulated until {sim.now:.1f}s): "
                f"{jt.maps_completed}/{jt.total_maps} maps, "
                f"{jt.reduces_completed}/{jt.num_reduces} reduces"
            )
        return self.metrics

    def run(self, until: Optional[float] = None) -> JobMetrics:
        """Execute the job; returns the collected metrics.

        Raises :class:`JobFailedError` when fault injection killed the
        job (the exception carries the partial metrics)."""
        if self.shared:
            raise RuntimeError(
                "shared-cluster jobs are driven by the engine; use start()"
            )
        self.start()
        self.sim.run(until=until)
        return self.complete()

    def _finalize_metrics(self) -> None:
        jt = self.jobtracker
        m = self.metrics
        m.map_tasks = [t.metrics for t in jt.maps if t.metrics is not None]
        m.reduce_tasks = [t.metrics for t in jt.reduces if t.metrics is not None]
        m.speculative_attempts = jt.speculative_attempts
        m.speculative_wins = jt.speculative_wins
        m.speculative_reduce_attempts = jt.speculative_reduce_attempts
        m.speculative_reduce_wins = jt.speculative_reduce_wins
        m.maps_preempted = jt.maps_preempted
        m.reduces_preempted = jt.reduces_preempted
        m.lost_trackers = jt.lost_trackers
        m.failed_map_attempts = jt.failed_map_attempts
        m.failed_reduce_attempts = jt.failed_reduce_attempts
        m.maps_reexecuted = jt.maps_reexecuted
        m.fetch_failures = jt.fetch_failures
        m.fetch_retries = jt.fetch_retries
        m.maps_reexecuted_for_fetch = jt.maps_reexecuted_for_fetch
        m.wasted_task_seconds = jt.wasted_task_seconds
        m.job_failed = jt.job_failed
        m.failure_reason = jt.failure_reason
        m.failure_node = jt.failure_node
        m.failure_task = jt.failure_task
        m.failure_time = jt.failure_time
        m.replication_clamped = self.hdfs.clamped_placements
        if self.storage is not None:
            m.disk_failures = self.storage.disk_failures
            m.blocks_repaired = self.storage.blocks_repaired
            m.repair_bytes = self.storage.repair_bytes
            m.blocks_lost = self.storage.blocks_lost
            m.read_failovers = self.storage.read_failovers
            m.corrupt_replicas_dropped = self.storage.corrupt_replicas_dropped


def run_hadoop_job(
    spec: JobSpec,
    config: Optional[HadoopConfig] = None,
    cluster_spec: Optional[ClusterSpec] = None,
    seed: int = 2011,
    disk_slowdown: Optional[dict[int, float]] = None,
    fault_plan: Optional[FaultPlan] = None,
) -> JobMetrics:
    """Convenience: build the default (paper) cluster and run one job."""
    sim = HadoopSimulation(
        spec=spec,
        config=config or HadoopConfig(),
        cluster_spec=cluster_spec or ClusterSpec(),
        seed=seed,
        disk_slowdown=disk_slowdown,
        fault_plan=fault_plan,
    )
    return sim.run()
