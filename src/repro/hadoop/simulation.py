"""Top-level driver: one simulated Hadoop job on the paper's testbed.

Wiring: node 0 is the master (JobTracker + NameNode), the remaining
nodes are workers (TaskTracker + DataNode), matching the paper's
"1 master, 7 slaves" deployment.  Input data is pre-loaded into HDFS
spread across all workers; the job then runs to completion under the
DES, and :class:`~repro.hadoop.metrics.JobMetrics` comes back with the
phase timings Figures 1/6 and Table I are built from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.hadoop.config import HadoopConfig
from repro.hadoop.hdfs import HdfsNamespace
from repro.hadoop.job import JobSpec
from repro.hadoop.jobtracker import JobTracker, MapAttempt, ReduceTaskInfo
from repro.hadoop.maptask import map_task_process
from repro.hadoop.metrics import JobMetrics
from repro.hadoop.reducetask import reduce_task_process
from repro.hadoop.tasktracker import TaskTracker
from repro.simnet.cluster import Cluster, ClusterSpec
from repro.simnet.kernel import Simulator
from repro.transports.hadoop_rpc import HadoopRpcTransport
from repro.transports.jetty import JettyHttpTransport
from repro.transports.nio import NioSocketTransport


@dataclass
class HadoopSimulation:
    """One job on one freshly built simulated cluster."""

    spec: JobSpec
    config: HadoopConfig = field(default_factory=HadoopConfig)
    cluster_spec: ClusterSpec = field(default_factory=ClusterSpec)
    seed: int = 2011
    #: Straggler injection: node id -> disk slowdown factor (>1 = slower).
    disk_slowdown: Optional[dict[int, float]] = None

    def __post_init__(self) -> None:
        if self.cluster_spec.num_nodes < 2:
            raise ValueError("need a master plus at least one worker node")
        self.sim = Simulator()
        self.cluster = Cluster(self.sim, self.cluster_spec)
        for node_id, factor in (self.disk_slowdown or {}).items():
            if factor <= 0:
                raise ValueError(f"slowdown factor must be positive: {factor}")
            self.cluster.node(node_id).disk.rate /= factor
        self.num_workers = self.cluster_spec.num_nodes - 1
        self.hdfs = HdfsNamespace(
            datanodes=[self.worker_node_id(w) for w in range(self.num_workers)],
            block_size=self.config.block_size,
            replication=self.config.replication,
            seed=self.seed,
        )
        self.rpc = HadoopRpcTransport()
        self.jetty = JettyHttpTransport()
        self.nio = NioSocketTransport()
        self._file = self.hdfs.create_file(self.spec.input_file, self.spec.input_bytes)
        self.jobtracker = JobTracker(
            self.spec, self.config, self._file, num_workers=self.num_workers
        )
        self.metrics = JobMetrics(job_name=self.spec.name)

    # -- id mapping -----------------------------------------------------------
    def worker_node_id(self, worker_index: int) -> int:
        """Worker index (0-based, HDFS space) -> cluster node id."""
        return worker_index + 1

    def node_worker_index(self, node_id: int) -> int:
        return node_id - 1

    # -- task process factories (called by TaskTracker) --------------------------
    def run_map_task(self, attempt: MapAttempt, tracker: TaskTracker):
        return map_task_process(self, attempt, tracker)

    def run_reduce_task(self, task: ReduceTaskInfo, tracker: TaskTracker):
        return reduce_task_process(self, task, tracker)

    # -- driver ----------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> JobMetrics:
        """Execute the job; returns the collected metrics."""
        sim = self.sim

        def job(sim_):
            yield sim.timeout(self.config.job_setup_time)
            self.metrics.submitted_at = 0.0
            trackers = [TaskTracker(self, w) for w in range(self.num_workers)]
            procs = [
                sim.process(t.run(), name=f"tracker{t.node_id}") for t in trackers
            ]
            yield sim.all_of(procs)
            self.metrics.finished_at = sim.now

        sim.process(job(sim), name="job")
        sim.run(until=until)
        if not self.jobtracker.job_done:
            raise RuntimeError(
                f"job did not finish (simulated until {sim.now:.1f}s): "
                f"{self.jobtracker.maps_completed}/{self.jobtracker.total_maps} maps, "
                f"{self.jobtracker.reduces_completed}/{self.jobtracker.num_reduces} reduces"
            )
        self.metrics.map_tasks = [
            t.metrics for t in self.jobtracker.maps if t.metrics is not None
        ]
        self.metrics.reduce_tasks = [
            t.metrics for t in self.jobtracker.reduces if t.metrics is not None
        ]
        self.metrics.speculative_attempts = self.jobtracker.speculative_attempts
        self.metrics.speculative_wins = self.jobtracker.speculative_wins
        return self.metrics


def run_hadoop_job(
    spec: JobSpec,
    config: Optional[HadoopConfig] = None,
    cluster_spec: Optional[ClusterSpec] = None,
    seed: int = 2011,
    disk_slowdown: Optional[dict[int, float]] = None,
) -> JobMetrics:
    """Convenience: build the default (paper) cluster and run one job."""
    sim = HadoopSimulation(
        spec=spec,
        config=config or HadoopConfig(),
        cluster_spec=cluster_spec or ClusterSpec(),
        seed=seed,
        disk_slowdown=disk_slowdown,
    )
    return sim.run()
