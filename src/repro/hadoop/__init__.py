"""Simulated Hadoop 0.20.2 (the paper's baseline platform).

A discrete-event model of the MapReduce runtime the paper measures:

* :mod:`repro.hadoop.config` — the configuration knobs the paper varies
  (block size, per-node map/reduce slots) plus the 0.20.2 defaults that
  shape its behaviour (heartbeat interval, parallel copies, slowstart);
* :mod:`repro.hadoop.hdfs` — namenode metadata: files, 64 MB blocks,
  replica placement, locality lookups;
* :mod:`repro.hadoop.job` — workload profiles (JavaSort, WordCount) and
  job specifications;
* :mod:`repro.hadoop.jobtracker` / :mod:`repro.hadoop.tasktracker` —
  heartbeat-driven slot scheduling over the Hadoop-RPC cost model;
* :mod:`repro.hadoop.maptask`, :mod:`repro.hadoop.shuffle`,
  :mod:`repro.hadoop.reducetask` — the task execution models, including
  the copy stage over the Jetty transport with real network/disk
  contention;
* :mod:`repro.hadoop.metrics` — per-task phase timings, the analogue of
  the Hadoop logs the paper mined for Figure 1 and Table I;
* :mod:`repro.hadoop.simulation` — the top-level driver.
"""

from repro.hadoop.config import HadoopConfig
from repro.hadoop.hdfs import HdfsNamespace, HdfsFile, Block
from repro.hadoop.job import JobSpec, WorkloadProfile, JAVASORT_PROFILE, WORDCOUNT_PROFILE
from repro.hadoop.metrics import JobMetrics, MapTaskMetrics, ReduceTaskMetrics
from repro.hadoop.simulation import HadoopSimulation, JobFailedError, run_hadoop_job
from repro.hadoop.storage import BlockLostError, StorageManager

__all__ = [
    "HadoopConfig",
    "HdfsNamespace",
    "HdfsFile",
    "Block",
    "JobSpec",
    "WorkloadProfile",
    "JAVASORT_PROFILE",
    "WORDCOUNT_PROFILE",
    "JobMetrics",
    "MapTaskMetrics",
    "ReduceTaskMetrics",
    "HadoopSimulation",
    "JobFailedError",
    "BlockLostError",
    "StorageManager",
    "run_hadoop_job",
]
