"""TaskTracker: the per-node heartbeat loop and slot accounting.

Each worker node runs one TaskTracker process: every
``heartbeat_interval`` seconds it pays the Hadoop-RPC cost of a status
call to the JobTracker (on the master node), reports task completions,
and receives assignments — at most one map and one reduce per beat, the
0.20.2 behaviour whose slot-fill ramp is visibly part of Hadoop's
overhead at small input sizes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.hadoop.jobtracker import JobTracker, MapAttempt, ReduceAttempt
from repro.simnet.kernel import Interrupt

if TYPE_CHECKING:  # pragma: no cover
    from repro.hadoop.simulation import HadoopSimulation


class TaskTracker:
    """One worker node's tracker state + heartbeat process."""

    def __init__(self, env: "HadoopSimulation", worker_index: int):
        self.env = env
        self.worker_index = worker_index
        self.node_id = env.worker_node_id(worker_index)
        self.config = env.config
        self.running_maps = 0
        self.running_reduces = 0
        self._completed_unreported: list[int] = []
        self.heartbeats_sent = 0

    @property
    def free_map_slots(self) -> int:
        free = self.config.map_slots - self.running_maps
        sched = self.env.sched
        if sched is not None:
            # Shared cluster: the grant also respects other tenants' usage
            # of this node and this job's fair/capacity share.
            free = sched.map_budget(self.node_id, free)
        return free

    @property
    def free_reduce_slots(self) -> int:
        free = self.config.reduce_slots - self.running_reduces
        sched = self.env.sched
        if sched is not None:
            free = sched.reduce_budget(self.node_id, free)
        return free

    # -- callbacks from task processes ----------------------------------------
    def map_completed(self, attempt: MapAttempt) -> None:
        self.running_maps -= 1
        self._slot_freed("map")
        self._completed_unreported.append(attempt.task_id)

    def map_failed(self, attempt: MapAttempt) -> None:
        """An attempt died on this (live) node; the slot frees, nothing
        is reported — the JobTracker was told directly."""
        self.running_maps -= 1
        self._slot_freed("map")

    def reduce_completed(self, attempt: ReduceAttempt) -> None:
        self.running_reduces -= 1
        self._slot_freed("reduce")

    def reduce_failed(self, attempt: ReduceAttempt) -> None:
        """A reduce attempt gave up on this (live) node; the slot frees —
        the JobTracker was told directly (``reduce_attempt_failed``)."""
        self.running_reduces -= 1
        self._slot_freed("reduce")

    def _slot_freed(self, kind: str) -> None:
        sched = self.env.sched
        if sched is not None:
            sched.task_finished(self.node_id, kind)

    # -- the heartbeat loop -------------------------------------------------------
    def run(self):
        """DES process: beat until the job is done (or this node dies)."""
        env = self.env
        sim = env.sim
        jt: JobTracker = env.jobtracker
        jt.tracker_registered(self.node_id, sim.now)
        # Stagger first beats so 7 trackers don't align artificially.
        stagger = (self.worker_index / max(1, env.num_workers)) * (
            self.config.heartbeat_interval
        )
        try:
            # Heartbeat sleeps come from the kernel's pooled tick arena and
            # are marked shared: beats from different trackers landing on
            # the same instant coalesce into one heap entry (append-order
            # dispatch == seq order, so the timeline is unchanged).
            yield sim.tick(stagger, shared=True)
            while not (jt.job_done or jt.job_failed):
                # The status RPC: request to the master and response back.
                yield sim.tick(
                    env.rpc.latency(self.config.rpc_status_bytes), shared=True
                )
                completions = self._completed_unreported
                self._completed_unreported = []
                maps, reduces = jt.heartbeat(
                    node=self.node_id,
                    free_map_slots=self.free_map_slots,
                    free_reduce_slots=self.free_reduce_slots,
                    completed_map_ids=completions,
                    now=sim.now,
                )
                yield sim.tick(
                    env.rpc.latency(self.config.rpc_status_bytes), shared=True
                )
                for attempt in maps:
                    self.running_maps += 1
                    proc = env.spawn_on_node(
                        self.node_id,
                        env.run_map_task(attempt, self),
                        name=f"map{attempt.task_id}",
                    )
                    env.note_attempt("map", attempt, proc, self)
                for rattempt in reduces:
                    self.running_reduces += 1
                    proc = env.spawn_on_node(
                        self.node_id,
                        env.run_reduce_task(rattempt, self),
                        name=f"red{rattempt.task_id}",
                    )
                    env.note_attempt("reduce", rattempt, proc, self)
                self.heartbeats_sent += 1
                obs = sim.obs
                if obs.enabled:
                    obs.metrics.counter("transport.rpc.heartbeats").add()
                    obs.metrics.counter("transport.rpc.bytes").add(
                        2 * self.config.rpc_status_bytes
                    )
                    if maps or reduces:
                        obs.tracer.instant(
                            "transport.rpc",
                            f"assign n{self.node_id}",
                            track=f"rpc:n{self.node_id}",
                            maps=len(maps),
                            reduces=len(reduces),
                        )
                yield sim.tick(self.config.heartbeat_interval, shared=True)
        except Interrupt:
            return  # node crashed; the JobTracker learns via heartbeat expiry
