"""The map task execution model.

One map task = JVM startup, block read (local disk, or remote datanode
when the scheduler couldn't place it locally), the user map function +
collect path on one core, and the sort/spill machinery: output runs
through the ``io.sort.mb`` buffer; if it overflows, spills are later
merged with one extra read+write pass.

All I/O goes through the node's processor-shared disk and the max-min
shared network, so concurrent tasks and shuffle fetches contend exactly
where they do on real hardware.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.hadoop.jobtracker import MapAttempt

if TYPE_CHECKING:  # pragma: no cover
    from repro.hadoop.simulation import HadoopSimulation
    from repro.hadoop.tasktracker import TaskTracker


def map_task_process(
    env: "HadoopSimulation", attempt: MapAttempt, tracker: "TaskTracker"
):
    """DES process for one map attempt (original or speculative)."""
    sim = env.sim
    cfg = env.config
    profile = env.spec.profile
    task = attempt.task
    metrics = attempt.metrics
    metrics.started_at = sim.now
    metrics.input_bytes = task.block.size
    node = env.cluster.node(attempt.node)

    yield sim.timeout(cfg.task_jvm_startup)

    # --- input ----------------------------------------------------------
    if task.block.is_local_to(attempt.node):
        yield node.disk_read(task.block.size)
    else:
        # Remote read streams: source disk and the network pipeline in
        # parallel; both must finish.
        src = env.cluster.node(task.block.replicas[0])
        nio = env.nio.wire_costs(task.block.size)
        yield sim.all_of(
            [
                src.disk_read(task.block.size),
                env.cluster.send(
                    src.node_id,
                    attempt.node,
                    nio.wire_bytes,
                    extra_latency=nio.setup_time,
                    rate_cap=nio.rate_cap,
                ),
            ]
        )

    # --- user map + collect on one core -----------------------------------
    cpu_time = task.block.size * profile.map_cpu_per_byte
    yield node.cpus.acquire()
    try:
        yield sim.timeout(cpu_time)
    finally:
        node.cpus.release()

    # --- sort & spill --------------------------------------------------------
    output = profile.map_output_bytes(task.block.size)
    metrics.output_bytes = int(output)
    yield node.disk_write(output)
    if output > cfg.io_sort_mb:
        # Multiple spills: merge pass re-reads and re-writes everything.
        yield node.disk_read(output, sequential=False)
        yield node.disk_write(output)

    metrics.finished_at = sim.now
    env.jobtracker.map_finished(attempt, output_bytes=output, now=sim.now)
    tracker.map_completed(attempt)
