"""The map task execution model.

One map task = JVM startup, block read (local disk, or remote datanode
when the scheduler couldn't place it locally), the user map function +
collect path on one core, and the sort/spill machinery: output runs
through the ``io.sort.mb`` buffer; if it overflows, spills are later
merged with one extra read+write pass.

All I/O goes through the node's processor-shared disk and the max-min
shared network, so concurrent tasks and shuffle fetches contend exactly
where they do on real hardware.

Under fault injection two extra things can happen: the attempt's own
node dies (the kernel throws :class:`Interrupt` into this process — it
simply stops; the JobTracker recovers via heartbeat expiry), or the
remote datanode holding the input block dies (the attempt waits for a
live replica and gives up after the expiry interval, reporting a failed
attempt).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.hadoop.jobtracker import MapAttempt
from repro.hadoop.storage import BlockLostError
from repro.simnet.kernel import Interrupt
from repro.simnet.network import FlowFailed
from repro.util.rng import make_rng

if TYPE_CHECKING:  # pragma: no cover
    from repro.hadoop.simulation import HadoopSimulation
    from repro.hadoop.tasktracker import TaskTracker


def _await_live_replica(env: "HadoopSimulation", block) -> Optional[int]:
    """Poll until some replica of ``block`` is on a live node.

    Returns the replica's node id, or None when none came back within a
    tasktracker-expiry interval (the attempt then fails).
    """
    sim = env.sim
    deadline = sim.now + env.config.tasktracker_expiry_interval
    while True:
        for replica in block.replicas:
            if not env.is_node_dead(replica):
                return replica
        if sim.now >= deadline:
            return None
        yield sim.timeout(env.config.completion_poll_interval)


def _read_block_with_failover(
    env: "HadoopSimulation", attempt: MapAttempt, tracker: "TaskTracker",
    sid: int, read_sid: int
):
    """Storage-aware input read: verify checksums, fail over across
    replicas (locality-ordered), raise :class:`BlockLostError` only when
    every replica is gone.

    Returns True once good bytes landed; False when the attempt failed
    (already reported to the JobTracker).  Only runs when the fault plan
    has storage specs — the static path below stays byte-identical
    otherwise.
    """
    sim = env.sim
    storage = env.storage
    assert storage is not None
    task = attempt.task
    block = task.block
    bid = block.block_id
    tr = sim.obs.tracer
    node = env.cluster.node(attempt.node)
    deadline = None
    while True:
        candidates = [
            n
            for n in storage.read_candidates(block, attempt.node)
            if not env.is_node_dead(n)
        ]
        if not candidates:
            if storage.block_lost(bid):
                raise BlockLostError(*storage.block_name(bid))
            # Replicas exist but their holders are down: wait for one to
            # come back (or a repair to land elsewhere); give up after
            # an expiry interval, like _await_live_replica.
            if deadline is None:
                deadline = sim.now + env.config.tasktracker_expiry_interval
            if sim.now >= deadline:
                env.jobtracker.map_attempt_failed(attempt, sim.now)
                tracker.map_failed(attempt)
                tr.abort(sid, outcome="failed:no-replica")
                return False
            yield sim.timeout(env.config.completion_poll_interval)
            continue
        deadline = None
        for src_id in candidates:
            epoch = storage.read_epoch(src_id)
            node_ep = env.node_epoch(src_id)
            if src_id == attempt.node:
                yield node.disk_read(block.size)
            else:
                src = env.cluster.node(src_id)
                nio = env.nio.wire_costs(block.size)
                if env.net_faults:
                    rng = make_rng(
                        env.seed, "map-read-retry", task.task_id,
                        task.failed_attempts,
                    )
                    wire = env.spawn_on_node(
                        attempt.node,
                        env.reliable_send(
                            src.node_id,
                            attempt.node,
                            nio.wire_bytes,
                            extra_latency=nio.setup_time,
                            rate_cap=nio.rate_cap,
                            rng=rng,
                            label=f"hdfs-m{task.task_id}",
                            waiter_sid=read_sid,
                        ),
                        name=f"read-m{task.task_id}",
                    )
                else:
                    wire = env.cluster.send(
                        src.node_id,
                        attempt.node,
                        nio.wire_bytes,
                        extra_latency=nio.setup_time,
                        rate_cap=nio.rate_cap,
                        waiter_sid=read_sid,
                    )
                try:
                    yield sim.all_of([src.disk_read(block.size), wire])
                except FlowFailed:
                    env.jobtracker.map_attempt_failed(attempt, sim.now)
                    tracker.map_failed(attempt)
                    tr.abort(sid, outcome="failed:read-lost")
                    return False
            # Checksum verification: did the replica survive the read?
            if storage.is_corrupt(bid, src_id):
                storage.note_failover("corrupt", bid, src_id)
                storage.report_corruption(bid, src_id, sim.now)
                continue
            if (
                storage.read_ok(bid, src_id, epoch)
                and env.node_epoch(src_id) == node_ep
                and not env.is_node_dead(src_id)
            ):
                return True
            storage.note_failover("replica-gone", bid, src_id)
        # Every candidate of this round went bad mid-read: recompute —
        # repair may have landed a fresh copy meanwhile.


def map_task_process(
    env: "HadoopSimulation", attempt: MapAttempt, tracker: "TaskTracker"
):
    """DES process for one map attempt (original or speculative)."""
    sim = env.sim
    cfg = env.config
    profile = env.spec.profile
    task = attempt.task
    metrics = attempt.metrics
    metrics.started_at = sim.now
    metrics.input_bytes = task.block.size
    node = env.cluster.node(attempt.node)
    tr = sim.obs.tracer
    sid = tr.begin(
        "hadoop.map",
        f"map{task.task_id}" + (".spec" if attempt.speculative else ""),
        node=attempt.node,
        input_bytes=task.block.size,
    )

    try:
        yield sim.timeout(cfg.task_jvm_startup)

        # --- input ----------------------------------------------------------
        read_sid = tr.begin("hadoop.map", "read", parent=sid)
        if env.storage is not None:
            ok = yield from _read_block_with_failover(
                env, attempt, tracker, sid, read_sid
            )
            if not ok:
                return
        elif task.block.is_local_to(attempt.node):
            yield node.disk_read(task.block.size)
        else:
            src_id = task.block.replicas[0]
            if env.fault_aware:
                src_id = yield from _await_live_replica(env, task.block)
                if src_id is None:
                    env.jobtracker.map_attempt_failed(attempt, sim.now)
                    tracker.map_failed(attempt)
                    tr.abort(sid, outcome="failed:no-replica")
                    return
            # Remote read streams: source disk and the network pipeline in
            # parallel; both must finish.
            src = env.cluster.node(src_id)
            epoch = env.node_epoch(src_id)
            nio = env.nio.wire_costs(task.block.size)
            if env.net_faults:
                # Lossy network: the stream restarts on a killed flow
                # (TCP-like DFS recovery); exhausting the retry budget
                # burns the whole attempt.
                rng = make_rng(
                    env.seed, "map-read-retry", task.task_id, task.failed_attempts
                )
                wire = env.spawn_on_node(
                    attempt.node,
                    env.reliable_send(
                        src.node_id,
                        attempt.node,
                        nio.wire_bytes,
                        extra_latency=nio.setup_time,
                        rate_cap=nio.rate_cap,
                        rng=rng,
                        label=f"hdfs-m{task.task_id}",
                        waiter_sid=read_sid,
                    ),
                    name=f"read-m{task.task_id}",
                )
            else:
                wire = env.cluster.send(
                    src.node_id,
                    attempt.node,
                    nio.wire_bytes,
                    extra_latency=nio.setup_time,
                    rate_cap=nio.rate_cap,
                    waiter_sid=read_sid,
                )
            try:
                yield sim.all_of([src.disk_read(task.block.size), wire])
            except FlowFailed:
                # Retries exhausted: fail the attempt; the JobTracker
                # re-schedules it (possibly at another replica).
                env.jobtracker.map_attempt_failed(attempt, sim.now)
                tracker.map_failed(attempt)
                tr.abort(sid, outcome="failed:read-lost")
                return
            if env.fault_aware and (
                env.is_node_dead(src_id) or env.node_epoch(src_id) != epoch
            ):
                # The datanode died mid-stream: the read is garbage.
                env.jobtracker.map_attempt_failed(attempt, sim.now)
                tracker.map_failed(attempt)
                tr.abort(sid, outcome="failed:datanode-died")
                return
        tr.end(read_sid)

        # --- user map + collect on one core -----------------------------------
        cpu_time = task.block.size * profile.map_cpu_per_byte
        map_sid = tr.begin("hadoop.map", "map", parent=sid)
        core = node.cpus.acquire()
        try:
            yield core
            yield sim.timeout(cpu_time)
        finally:
            node.cpus.cancel(core)
        tr.end(map_sid)

        # --- sort & spill --------------------------------------------------------
        output = profile.map_output_bytes(task.block.size)
        metrics.output_bytes = int(output)
        spill_sid = tr.begin("hadoop.map", "spill", parent=sid, output_bytes=output)
        yield node.disk_write(output)
        if output > cfg.io_sort_mb:
            # Multiple spills: merge pass re-reads and re-writes everything.
            yield node.disk_read(output, sequential=False)
            yield node.disk_write(output)
        tr.end(spill_sid)

        metrics.finished_at = sim.now
        won = env.jobtracker.map_finished(attempt, output_bytes=output, now=sim.now)
        if won:
            task.span_sid = sid  # winner: reducers draw shuffle edges to us
            tr.edge(sid, env.job_sid, "complete")
        tracker.map_completed(attempt)
        tr.end(sid, outcome="done", won=won)
        if sid:
            sim.obs.metrics.counter("hadoop.maps_finished").add()
    except BlockLostError as lost:
        # Every replica of the input block is gone: no amount of task
        # re-execution brings the data back — the job is dead.
        env.jobtracker.fail_job(
            lost.reason, node=attempt.node, task_id=task.task_id, at=sim.now
        )
        env.jobtracker.map_attempt_failed(attempt, sim.now)
        tracker.map_failed(attempt)
        tr.abort(sid, outcome="failed:block-lost")
        return
    except Interrupt:
        tr.abort(sid, outcome="interrupted")
        return  # this node crashed; recovery is the JobTracker's problem
