"""JobTracker state: task bookkeeping and the heartbeat assignment policy.

The JobTracker here is a passive state machine — TaskTracker processes
drive it by calling :meth:`JobTracker.heartbeat` every interval, exactly
like Hadoop 0.20.2's ``heartbeat()`` RPC: the tracker reports completed
tasks and receives new assignments (at most ``maps_per_heartbeat`` map
tasks, node-local preferred, plus reduce tasks once slowstart is met).

Map completions become *visible* to reducers only when reported on a
heartbeat — the announcement delay that real reducers experience between
a map finishing and its output being fetchable knowledge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.hadoop.config import HadoopConfig
from repro.hadoop.hdfs import Block, HdfsFile
from repro.hadoop.job import JobSpec
from repro.hadoop.metrics import MapTaskMetrics, ReduceTaskMetrics

_PENDING = "pending"
_RUNNING = "running"
_DONE = "done"


# eq=False on the task records: task_ids are unique, so identity comparison
# is equivalent to field equality here, and list.remove() on the pending/
# running queues must not pay a full dataclass field compare per element
# (it shows up as ~10% of wall time on the 100 GB Figure-6 run).
@dataclass(eq=False)
class MapTaskInfo:
    task_id: int
    block: Block
    state: str = _PENDING
    node: Optional[int] = None  # winning attempt's node once DONE
    output_bytes: float = 0.0
    completed_at: Optional[float] = None
    announced: bool = False
    metrics: Optional[MapTaskMetrics] = None  # winning attempt's metrics
    attempts: int = 0
    first_started: Optional[float] = None
    failed_attempts: int = 0
    #: Winning attempt's tracer span id (0 = untraced); lets reducers
    #: record shuffle happens-before edges back to the map that produced
    #: each fetched output.
    span_sid: int = 0

    @property
    def preferred_nodes(self) -> tuple[int, ...]:
        return self.block.replicas


@dataclass(eq=False)
class MapAttempt:
    """One execution attempt of a map task (original or speculative)."""

    task: MapTaskInfo
    node: int
    metrics: MapTaskMetrics
    speculative: bool = False

    # Convenience pass-throughs so schedulers/tests read attempts like tasks.
    @property
    def task_id(self) -> int:
        return self.task.task_id


@dataclass(eq=False)
class ReduceTaskInfo:
    task_id: int
    partition: int
    state: str = _PENDING
    node: Optional[int] = None  # winning attempt's node once DONE
    metrics: Optional[ReduceTaskMetrics] = None  # winning attempt's metrics
    attempts: int = 0
    failed_attempts: int = 0
    first_started: Optional[float] = None


@dataclass(eq=False)
class ReduceAttempt:
    """One execution attempt of a reduce task (original or speculative)."""

    task: ReduceTaskInfo
    node: int
    metrics: ReduceTaskMetrics
    speculative: bool = False

    @property
    def task_id(self) -> int:
        return self.task.task_id

    @property
    def partition(self) -> int:
        return self.task.partition


@dataclass
class MapOutputRef:
    """What a reducer needs to fetch one map's partition slice."""

    map_id: int
    node: int
    partition_bytes: float
    span_sid: int = 0  # producing map attempt's span (0 = untraced)


class JobTracker:
    """Task state + assignment policy for one job."""

    def __init__(
        self,
        spec: JobSpec,
        config: HadoopConfig,
        hdfs_file: HdfsFile,
        num_workers: int,
    ):
        if num_workers < 1:
            raise ValueError(f"need at least one worker, got {num_workers}")
        self.spec = spec
        self.config = config
        self.num_workers = num_workers
        self.maps = [
            MapTaskInfo(task_id=i, block=b) for i, b in enumerate(hdfs_file.blocks)
        ]
        if not self.maps:
            raise ValueError("job input has no blocks")
        self.num_reduces = spec.reduce_tasks(config.block_size)
        self.reduces = [
            ReduceTaskInfo(task_id=i, partition=i) for i in range(self.num_reduces)
        ]
        #: Output fraction per reduce partition (key-skew model).
        self.partition_weights = spec.normalized_weights(self.num_reduces)
        self._pending_maps: list[MapTaskInfo] = list(self.maps)
        # node -> pending local maps, for O(1) locality-aware pops.
        self._local_index: dict[int, list[MapTaskInfo]] = {}
        for task in self.maps:
            for node in task.preferred_nodes:
                self._local_index.setdefault(node, []).append(task)
        self._next_reduce = 0
        self.maps_completed = 0
        self.maps_announced = 0
        self.reduces_completed = 0
        self.speculative_attempts = 0
        self.speculative_wins = 0
        self.speculative_reduce_attempts = 0
        self.speculative_reduce_wins = 0
        self._completed_durations: list[float] = []
        self._completed_reduce_durations: list[float] = []
        #: Announcement log, append-only; reducers poll with a cursor so a
        #: poll costs O(new events), like TaskCompletionEvents paging.  A
        #: re-executed map is appended *again* on its second completion;
        #: reducers dedupe by map id.
        self._announced_order: list[MapTaskInfo] = []
        # -- fault-tolerance state -------------------------------------------
        self.last_heartbeat: dict[int, float] = {}
        self.blacklisted: set[int] = set()
        self.job_failed = False
        self.failure_reason: Optional[str] = None
        self._requeued_reduces: list[ReduceTaskInfo] = []
        # node -> attempts/reduces currently executing there, so a lost
        # tracker can be unwound attempt-by-attempt.
        self._running_attempts: dict[int, list[MapAttempt]] = {}
        self._running_reduce_map: dict[int, list[ReduceAttempt]] = {}
        self.lost_trackers = 0
        self.failed_map_attempts = 0
        self.failed_reduce_attempts = 0
        self.maps_reexecuted = 0
        self.fetch_failures = 0
        self.wasted_task_seconds = 0.0
        # -- scheduler-preemption state (multi-tenant clusters) ----------------
        #: Attempts killed by the cluster scheduler to reclaim slots for
        #: another tenant; the work requeues without burning a retry.
        self.maps_preempted = 0
        self.reduces_preempted = 0
        # -- shuffle-robustness state (lossy networks) ------------------------
        #: Retry attempts reducers performed after transient fetch failures.
        self.fetch_retries = 0
        #: Maps re-executed because reducers hit the fetch-failure threshold
        #: (distinct from maps_reexecuted via dead nodes, which it feeds).
        self.maps_reexecuted_for_fetch = 0
        #: map id -> transient fetch-failure strikes (0.20's three-strikes).
        self._fetch_fail_counts: dict[int, int] = {}
        # Structured failure record (who/when/what), for post-mortems.
        self.failure_node: Optional[int] = None
        self.failure_time: Optional[float] = None
        self.failure_task: Optional[int] = None

    # -- queries --------------------------------------------------------------
    @property
    def total_maps(self) -> int:
        return len(self.maps)

    @property
    def job_done(self) -> bool:
        return self.reduces_completed == self.num_reduces

    @property
    def map_phase_done(self) -> bool:
        return self.maps_completed == self.total_maps

    def reduces_may_start(self) -> bool:
        """Hadoop's slowstart rule, on *announced* completions."""
        if self.config.reduce_slowstart == 0.0:
            return True
        threshold = self.config.reduce_slowstart * self.total_maps
        return self.maps_announced > 0 and self.maps_announced >= threshold

    def visible_map_outputs(self, partition: int) -> list[MapOutputRef]:
        """All completed-and-announced map outputs, as a reducer's event
        poll sees them."""
        refs, _ = self.poll_map_outputs(0, partition)
        return refs

    def poll_map_outputs(
        self, cursor: int, partition: int = 0
    ) -> tuple[list[MapOutputRef], int]:
        """TaskCompletionEvents paging: announcements after ``cursor``.

        Returns the new output references (sized by ``partition``'s
        output share) and the advanced cursor, so one poll costs O(new
        completions) rather than O(total maps).
        """
        weight = self.partition_weights[partition]
        log = self._announced_order
        # An invalidated map (its node died with the output) leaves its
        # stale log entry behind with ``node`` reset to None; skip those —
        # the re-execution appends a fresh entry on re-completion.
        refs = [
            MapOutputRef(
                map_id=task.task_id,
                node=task.node,
                partition_bytes=task.output_bytes * weight,
                span_sid=task.span_sid,
            )
            for task in log[cursor:]
            if task.node is not None
        ]
        return refs, len(log)

    # -- the heartbeat protocol ---------------------------------------------------
    def heartbeat(
        self,
        node: int,
        free_map_slots: int,
        free_reduce_slots: int,
        completed_map_ids: list[int],
        now: float,
    ) -> tuple[list[MapAttempt], list[ReduceAttempt]]:
        """One tracker's heartbeat: report completions, receive work."""
        if node in self.blacklisted:
            return [], []
        self.last_heartbeat[node] = now
        for mid in completed_map_ids:
            task = self.maps[mid]
            if not task.announced:
                task.announced = True
                self.maps_announced += 1
                self._announced_order.append(task)

        assigned_maps: list[MapAttempt] = []
        budget = min(self.config.maps_per_heartbeat, max(0, free_map_slots))
        while budget > 0:
            task = self._pop_map_for(node)
            if task is None:
                break
            task.state = _RUNNING
            task.node = node
            task.attempts += 1
            task.first_started = now
            metrics = MapTaskMetrics(task_id=task.task_id, node=node, scheduled_at=now)
            metrics.data_local = node in task.preferred_nodes
            task.metrics = metrics
            attempt = MapAttempt(task=task, node=node, metrics=metrics)
            self._running_attempts.setdefault(node, []).append(attempt)
            assigned_maps.append(attempt)
            budget -= 1

        if (
            self.config.speculative_execution
            and budget > 0
            and not self._pending_maps
        ):
            attempt = self._speculate(node, now)
            if attempt is not None:
                self._running_attempts.setdefault(node, []).append(attempt)
                assigned_maps.append(attempt)

        assigned_reduces: list[ReduceAttempt] = []
        if self.reduces_may_start():
            budget = min(
                self.config.reduces_per_heartbeat, max(0, free_reduce_slots)
            )
            while budget > 0:
                if self._requeued_reduces:
                    task = self._requeued_reduces.pop(0)
                elif self._next_reduce < self.num_reduces:
                    task = self.reduces[self._next_reduce]
                    self._next_reduce += 1
                else:
                    break
                task.state = _RUNNING
                task.node = node
                task.attempts += 1
                task.first_started = now
                metrics = ReduceTaskMetrics(
                    task_id=task.task_id, node=node, scheduled_at=now
                )
                task.metrics = metrics
                attempt = ReduceAttempt(task=task, node=node, metrics=metrics)
                self._running_reduce_map.setdefault(node, []).append(attempt)
                assigned_reduces.append(attempt)
                budget -= 1

            if (
                self.config.speculative_execution
                and budget > 0
                and not self._requeued_reduces
                and self._next_reduce >= self.num_reduces
            ):
                attempt = self._speculate_reduce(node, now)
                if attempt is not None:
                    self._running_reduce_map.setdefault(node, []).append(attempt)
                    assigned_reduces.append(attempt)

        return assigned_maps, assigned_reduces

    def _pop_map_for(self, node: int) -> Optional[MapTaskInfo]:
        """Node-local map first (HDFS locality), else head of line."""
        local = self._local_index.get(node)
        while local:
            task = local.pop()
            if task.state == _PENDING:
                self._pending_maps.remove(task)
                return task
        while self._pending_maps:
            task = self._pending_maps.pop(0)
            if task.state == _PENDING:
                return task
        return None

    def _speculate(self, node: int, now: float) -> Optional[MapAttempt]:
        """Pick the worst straggler for a duplicate attempt on ``node``."""
        if not self._completed_durations:
            return None
        avg = sum(self._completed_durations) / len(self._completed_durations)
        threshold = self.config.speculative_slowness * avg
        best: Optional[MapTaskInfo] = None
        best_elapsed = threshold
        for task in self.maps:
            if (
                task.state == _RUNNING
                and task.attempts < 2
                and task.node != node
                and task.first_started is not None
            ):
                elapsed = now - task.first_started
                if elapsed > best_elapsed:
                    best = task
                    best_elapsed = elapsed
        if best is None:
            return None
        best.attempts += 1
        self.speculative_attempts += 1
        metrics = MapTaskMetrics(task_id=best.task_id, node=node, scheduled_at=now)
        metrics.data_local = node in best.preferred_nodes
        return MapAttempt(task=best, node=node, metrics=metrics, speculative=True)

    def _speculate_reduce(self, node: int, now: float) -> Optional[ReduceAttempt]:
        """Same slowness heuristic as :meth:`_speculate`, for reduces."""
        if not self._completed_reduce_durations:
            return None
        avg = sum(self._completed_reduce_durations) / len(
            self._completed_reduce_durations
        )
        threshold = self.config.speculative_slowness * avg
        best: Optional[ReduceTaskInfo] = None
        best_elapsed = threshold
        for task in self.reduces:
            if (
                task.state == _RUNNING
                and task.attempts < 2
                and task.node != node
                and task.first_started is not None
            ):
                elapsed = now - task.first_started
                if elapsed > best_elapsed:
                    best = task
                    best_elapsed = elapsed
        if best is None:
            return None
        best.attempts += 1
        self.speculative_reduce_attempts += 1
        metrics = ReduceTaskMetrics(task_id=best.task_id, node=node, scheduled_at=now)
        return ReduceAttempt(task=best, node=node, metrics=metrics, speculative=True)

    # -- completion callbacks (from task processes) ----------------------------------
    def map_finished(
        self, attempt: MapAttempt, output_bytes: float, now: float
    ) -> bool:
        """Record one attempt's completion; returns True if it won.

        With speculative execution two attempts can race; the first to
        finish defines the task's node, output and metrics, the loser is
        ignored (real Hadoop kills it; we let it drain — same schedule,
        slightly pessimistic slot usage).
        """
        task = attempt.task
        self._drop_running_attempt(attempt)
        if task.state == _DONE:
            return False
        if task.state != _RUNNING:
            raise RuntimeError(f"map {task.task_id} finished in state {task.state}")
        task.state = _DONE
        task.node = attempt.node
        task.output_bytes = output_bytes
        task.completed_at = now
        task.metrics = attempt.metrics
        self.maps_completed += 1
        self._completed_durations.append(attempt.metrics.duration)
        if attempt.speculative:
            self.speculative_wins += 1
        return True

    def reduce_finished(self, attempt: ReduceAttempt) -> bool:
        """Record one reduce attempt's completion; returns True if it won.

        Same first-wins rule as :meth:`map_finished`: with speculative
        execution two attempts can race and the loser is ignored.
        """
        task = attempt.task
        self._drop_running_reduce(attempt)
        if task.state == _DONE:
            return False
        if task.state != _RUNNING:
            raise RuntimeError(
                f"reduce {task.task_id} finished in state {task.state}"
            )
        task.state = _DONE
        task.node = attempt.node
        task.metrics = attempt.metrics
        self.reduces_completed += 1
        self._completed_reduce_durations.append(attempt.metrics.duration)
        if attempt.speculative:
            self.speculative_reduce_wins += 1
        return True

    # -- failure handling & recovery ------------------------------------------
    def fail_job(
        self,
        reason: str,
        *,
        node: Optional[int] = None,
        task_id: Optional[int] = None,
        at: Optional[float] = None,
    ) -> None:
        """Mark the whole job failed; trackers drain at their next beat.

        The keyword fields pin *why*: the node involved, the task whose
        attempts ran out, and the failure time — only the first failure
        is recorded (later ones are consequences).
        """
        if not self.job_failed:
            self.job_failed = True
            self.failure_reason = reason
            self.failure_node = node
            self.failure_task = task_id
            self.failure_time = at

    def tracker_registered(self, node: int, now: float) -> None:
        """A TaskTracker (re)connected — the start of its heartbeat stream.

        A tracker that re-registers while the JobTracker still holds
        state for its previous incarnation (crash + restart inside the
        expiry window) is handled like Hadoop's re-initialized tracker:
        the old incarnation's running attempts and map outputs are gone,
        so they are unwound first, then the node is taken off the
        blacklist and may receive work again.
        """
        if node in self.blacklisted:
            self.blacklisted.discard(node)
        elif self._tracker_holds_state(node):
            self.lost_tasktracker(node, now)
            self.blacklisted.discard(node)
        self.last_heartbeat[node] = now

    def _tracker_holds_state(self, node: int) -> bool:
        return bool(
            self._running_attempts.get(node)
            or self._running_reduce_map.get(node)
            or any(t.state == _DONE and t.node == node for t in self.maps)
        )

    def find_expired(self, now: float, interval: float) -> list[int]:
        """Nodes whose last heartbeat is older than ``interval``."""
        return [
            node
            for node, beat in sorted(self.last_heartbeat.items())
            if now - beat > interval and node not in self.blacklisted
        ]

    def lost_tasktracker(self, node: int, now: float) -> None:
        """Heartbeat expiry: unwind everything the dead tracker held.

        Mirrors ``JobTracker.lostTaskTracker``: running attempts on the
        node fail (and reschedule unless a twin attempt survives
        elsewhere), *completed* map outputs stored there are lost and the
        maps re-execute (their output lived in mapred.local.dir, not
        HDFS), and the node is blacklisted until it re-registers.
        """
        if node in self.blacklisted:
            return
        self.blacklisted.add(node)
        self.lost_trackers += 1
        self.last_heartbeat.pop(node, None)
        for attempt in self._running_attempts.pop(node, []):
            self._map_attempt_lost(attempt, now)
        if not self.job_done:
            for task in self.maps:
                if task.state == _DONE and task.node == node:
                    self._invalidate_map_output(task, now)
        for rattempt in self._running_reduce_map.pop(node, []):
            self._reduce_attempt_lost(rattempt, now)

    def map_attempt_failed(self, attempt: MapAttempt, now: float) -> None:
        """One attempt died on a live node (e.g. its input became
        unreadable); the tracker reports it instead of a completion."""
        self._drop_running_attempt(attempt)
        self._map_attempt_lost(attempt, now)

    def fetch_failed(
        self, map_ids: list[int], src_node: int, now: float, definite: bool = True
    ) -> None:
        """A reducer could not pull map output from ``src_node``.

        ``definite=True`` is the node-is-gone report (the source died
        mid-fetch): the output is certainly lost, so the map re-executes
        immediately, as before.  ``definite=False`` is the lossy-network
        report — the host may merely be unreachable right now — so the
        JobTracker counts strikes per map and re-executes only once
        ``fetch_failure_threshold`` reducers have complained (Hadoop
        0.20's three-strikes rule).
        """
        for mid in map_ids:
            self.fetch_failures += 1
            task = self.maps[mid]
            if task.state != _DONE or task.node != src_node or self.job_done:
                continue
            if definite:
                self._invalidate_map_output(task, now)
                continue
            strikes = self._fetch_fail_counts.get(mid, 0) + 1
            self._fetch_fail_counts[mid] = strikes
            if strikes >= self.config.fetch_failure_threshold:
                self.maps_reexecuted_for_fetch += 1
                self._invalidate_map_output(task, now)

    def reduce_attempt_failed(self, attempt: ReduceAttempt, now: float) -> None:
        """One reduce attempt gave up on a live node (e.g. its output
        replication could not get through the network faults); the
        attempt is unwound and the reduce requeued like any lost one."""
        self._drop_running_reduce(attempt)
        self._reduce_attempt_lost(attempt, now)

    # -- scheduler preemption -------------------------------------------------
    def map_attempt_preempted(self, attempt: MapAttempt, now: float) -> None:
        """The cluster scheduler killed this attempt to reclaim its slot.

        Unlike a failure, preemption does not burn a retry: the task goes
        straight back on the pending queue (unless a twin attempt is
        still running elsewhere) and can never fail the job.
        """
        self._drop_running_attempt(attempt)
        self.maps_preempted += 1
        task = attempt.task
        self.wasted_task_seconds += max(0.0, now - attempt.metrics.scheduled_at)
        if task.state != _RUNNING:
            return
        if any(
            a.task is task
            for atts in self._running_attempts.values()
            for a in atts
        ):
            return
        task.state = _PENDING
        task.node = None
        self._requeue_map(task)

    def reduce_attempt_preempted(self, attempt: ReduceAttempt, now: float) -> None:
        """Scheduler preemption of a reduce attempt; requeues retry-free."""
        self._drop_running_reduce(attempt)
        self.reduces_preempted += 1
        task = attempt.task
        self.wasted_task_seconds += max(0.0, now - attempt.metrics.scheduled_at)
        if task.state != _RUNNING:
            return
        if any(
            a.task is task
            for atts in self._running_reduce_map.values()
            for a in atts
        ):
            return
        task.state = _PENDING
        task.node = None
        self._requeued_reduces.append(task)

    # -- recovery internals ---------------------------------------------------
    def _drop_running_attempt(self, attempt: MapAttempt) -> None:
        running = self._running_attempts.get(attempt.node)
        if running and attempt in running:
            running.remove(attempt)

    def _drop_running_reduce(self, attempt: ReduceAttempt) -> None:
        running = self._running_reduce_map.get(attempt.node)
        if running and attempt in running:
            running.remove(attempt)

    def _map_attempt_lost(self, attempt: MapAttempt, now: float) -> None:
        task = attempt.task
        self.failed_map_attempts += 1
        task.failed_attempts += 1
        self.wasted_task_seconds += max(0.0, now - attempt.metrics.scheduled_at)
        if task.state != _RUNNING:
            return  # already completed elsewhere, or already requeued
        if any(
            a.task is task
            for atts in self._running_attempts.values()
            for a in atts
        ):
            return  # a twin (speculative) attempt is still alive
        if task.failed_attempts >= self.config.max_attempts:
            self.fail_job(
                f"map {task.task_id} failed {task.failed_attempts} attempts",
                node=attempt.node,
                task_id=task.task_id,
                at=now,
            )
            return
        task.state = _PENDING
        task.node = None
        self._requeue_map(task)

    def _reduce_attempt_lost(self, attempt: ReduceAttempt, now: float) -> None:
        task = attempt.task
        self.failed_reduce_attempts += 1
        task.failed_attempts += 1
        self.wasted_task_seconds += max(0.0, now - attempt.metrics.scheduled_at)
        if task.state != _RUNNING:
            return  # already completed elsewhere, or already requeued
        if any(
            a.task is task
            for atts in self._running_reduce_map.values()
            for a in atts
        ):
            return  # a twin (speculative) attempt is still alive
        if task.failed_attempts >= self.config.max_attempts:
            self.fail_job(
                f"reduce {task.task_id} failed {task.failed_attempts} attempts",
                node=attempt.node,
                task_id=task.task_id,
                at=now,
            )
            return
        task.state = _PENDING
        task.node = None
        self._requeued_reduces.append(task)

    def _invalidate_map_output(self, task: MapTaskInfo, now: float) -> None:
        """A completed map's output died with its node: run it again."""
        self._fetch_fail_counts.pop(task.task_id, None)
        task.state = _PENDING
        task.node = None
        task.span_sid = 0  # the output (and its producing span) is gone
        task.output_bytes = 0.0
        task.completed_at = None
        self.maps_completed -= 1
        if task.announced:
            task.announced = False
            self.maps_announced -= 1
        self.maps_reexecuted += 1
        if task.metrics is not None:
            self.wasted_task_seconds += task.metrics.duration
        self._requeue_map(task)

    def _requeue_map(self, task: MapTaskInfo) -> None:
        self._pending_maps.append(task)
        for node in task.preferred_nodes:
            self._local_index.setdefault(node, []).append(task)
