"""Job specifications and workload profiles.

A :class:`WorkloadProfile` characterizes *what the user code costs* —
CPU seconds per input byte, output/input ratios — independent of the
framework that runs it.  The two profiles the paper uses:

* :data:`JAVASORT_PROFILE` — GridMix JavaSort: identity map/reduce, all
  the cost is data movement (selectivity 1.0 end to end);
* :data:`WORDCOUNT_PROFILE` — text parsing is CPU-heavy in the JVM, the
  combiner collapses output to word-frequency tables (tiny selectivity).

Rates are calibrated for the paper's hardware generation (2.4 GHz
Xeon E5620, JDK 1.6); DESIGN.md documents each choice.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.util.units import MiB


@dataclass(frozen=True)
class WorkloadProfile:
    """Per-byte cost model of one MapReduce application's user code."""

    name: str
    #: CPU seconds per input byte in the map function + collect path.
    map_cpu_per_byte: float
    #: map output bytes / map input bytes (before any combiner).
    map_selectivity: float
    #: CPU seconds per shuffled byte in the reduce function.
    reduce_cpu_per_byte: float
    #: reduce output bytes / reduce input bytes.
    reduce_selectivity: float
    #: Fraction of map output surviving the combiner (1.0 = no combiner).
    combiner_reduction: float = 1.0

    def __post_init__(self) -> None:
        if self.map_cpu_per_byte < 0 or self.reduce_cpu_per_byte < 0:
            raise ValueError("CPU rates may not be negative")
        if self.map_selectivity < 0 or self.reduce_selectivity < 0:
            raise ValueError("selectivities may not be negative")
        if not 0 < self.combiner_reduction <= 1.0:
            raise ValueError(
                f"combiner reduction must be in (0, 1], got {self.combiner_reduction}"
            )

    def map_output_bytes(self, input_bytes: float) -> float:
        """Bytes one map task materializes after map + combine."""
        return input_bytes * self.map_selectivity * self.combiner_reduction

    def reduce_output_bytes(self, shuffled_bytes: float) -> float:
        return shuffled_bytes * self.reduce_selectivity


#: GridMix JavaSort: identity map and reduce over ~100-byte records;
#: CPU is (de)serialization plus the map-side sort.
JAVASORT_PROFILE = WorkloadProfile(
    name="javasort",
    map_cpu_per_byte=1.0 / (25 * MiB),
    map_selectivity=1.0,
    reduce_cpu_per_byte=1.0 / (50 * MiB),
    reduce_selectivity=1.0,
)

#: Hadoop's WordCount example (with its standard combiner): heavy JVM
#: string parsing in map, near-constant-size word tables out.
WORDCOUNT_PROFILE = WorkloadProfile(
    name="wordcount",
    map_cpu_per_byte=1.0 / (2.5 * MiB),
    map_selectivity=1.6,  # <word, 1> pairs outweigh the raw text
    reduce_cpu_per_byte=1.0 / (20 * MiB),
    reduce_selectivity=1.0,
    combiner_reduction=0.01,  # per-block vocabulary << block size
)


@dataclass(frozen=True)
class JobSpec:
    """One job submission: input size, workload, reduce parallelism.

    ``num_reduce_tasks=None`` follows GridMix JavaSort and sets one
    reduce task per input block — the 1:1 shape behind Figure 1's ~2400
    reducers at 150 GB.

    ``partition_weights`` models key skew: the fraction of every map's
    output going to each reduce partition (normalized internally).
    None means the uniform split a hash partitioner gives well-spread
    keys; a skewed vector reproduces the hot-reducer pathology.
    """

    name: str
    input_bytes: int
    profile: WorkloadProfile
    num_reduce_tasks: Optional[int] = None
    input_file: str = "input"
    partition_weights: Optional[tuple[float, ...]] = None

    def __post_init__(self) -> None:
        if self.input_bytes < 1:
            raise ValueError(f"input must be >= 1 byte, got {self.input_bytes}")
        if self.num_reduce_tasks is not None and self.num_reduce_tasks < 1:
            raise ValueError(
                f"need >= 1 reduce task, got {self.num_reduce_tasks}"
            )
        if self.partition_weights is not None:
            if any(w < 0 for w in self.partition_weights):
                raise ValueError("partition weights may not be negative")
            if sum(self.partition_weights) <= 0:
                raise ValueError("partition weights must sum to > 0")

    def normalized_weights(self, num_reduces: int) -> list[float]:
        """Per-partition output fractions, length ``num_reduces``."""
        if self.partition_weights is None:
            return [1.0 / num_reduces] * num_reduces
        if len(self.partition_weights) != num_reduces:
            raise ValueError(
                f"{len(self.partition_weights)} weights for "
                f"{num_reduces} reduce tasks"
            )
        total = sum(self.partition_weights)
        return [w / total for w in self.partition_weights]

    def num_map_tasks(self, block_size: int) -> int:
        """One map task per block, as in Hadoop's FileInputFormat."""
        return max(1, math.ceil(self.input_bytes / block_size))

    def reduce_tasks(self, block_size: int) -> int:
        if self.num_reduce_tasks is not None:
            return self.num_reduce_tasks
        return self.num_map_tasks(block_size)
