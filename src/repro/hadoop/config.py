"""Hadoop 0.20.2 configuration, reduced to the knobs that shape the paper.

Defaults mirror the stock ``mapred-default.xml``/``hdfs-default.xml``
values of the version the paper runs (0.20.2 on JDK 1.6): 64 MB blocks,
3x replication, 3 s minimum heartbeat, one map assignment per heartbeat,
5 parallel shuffle copiers, 5% reduce slowstart.  ``map_slots`` /
``reduce_slots`` are the two knobs Table I varies (4/2 … 16/16).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.util.units import MiB


@dataclass(frozen=True)
class HadoopConfig:
    """Cluster-wide Hadoop configuration."""

    # -- HDFS ---------------------------------------------------------------
    block_size: int = 64 * MiB
    replication: int = 3

    # -- slots (Table I's column variable) -----------------------------------
    map_slots: int = 8
    reduce_slots: int = 8

    # -- JobTracker scheduling ------------------------------------------------
    heartbeat_interval: float = 3.0
    maps_per_heartbeat: int = 1
    reduces_per_heartbeat: int = 1
    reduce_slowstart: float = 0.05  # fraction of maps done before reduces start

    # -- task execution ---------------------------------------------------------
    task_jvm_startup: float = 1.0  # fork + JVM boot + localization
    io_sort_mb: int = 100 * MiB  # map-side sort buffer
    io_sort_factor: int = 10  # streams merged per pass

    # -- shuffle ------------------------------------------------------------------
    parallel_copies: int = 5
    shuffle_memory_bytes: int = 140 * MiB  # ~0.7 of a 200 MB reduce JVM
    completion_poll_interval: float = 1.0  # reducer's map-event poll period

    # -- shuffle robustness (lossy networks) ----------------------------------
    # These knobs only matter when the run's FaultPlan contains network
    # faults; with a reliable network the copy stage never consults them,
    # keeping clean runs bit-for-bit identical.
    #: ``mapred.shuffle.read.timeout``-style cap: a fetch whose bytes have
    #: not all arrived after this long is cancelled and retried.
    fetch_timeout: float = 30.0
    #: Attempts per fetch batch against one host before the copier gives
    #: up on that host for the round and reports it unreachable.
    fetch_retries: int = 4
    #: Exponential backoff between fetch retries: base * 2^(k-1) capped
    #: at the max, with ±50% jitter from the run's seeded RNG.  The same
    #: progression drives the per-host penalty box.
    fetch_backoff_base: float = 1.0
    fetch_backoff_max: float = 30.0
    #: Fetch-failure reports against one map output before the JobTracker
    #: re-executes the map (0.20's three-strikes rule).
    fetch_failure_threshold: int = 3

    # -- speculative execution ------------------------------------------------
    #: Re-run straggling maps on another node (0.20.2 ships with this on;
    #: our default keeps it off so the paper-calibration experiments are
    #: unaffected — the straggler experiment turns it on explicitly).
    speculative_execution: bool = False
    #: A running map is a straggler once its elapsed time exceeds this
    #: multiple of the average completed-map duration.
    speculative_slowness: float = 1.5

    # -- HDFS repair (storage faults only) ------------------------------------
    # These knobs only matter when the run's FaultPlan contains storage
    # specs; without them no StorageManager is built and clean runs stay
    # bit-for-bit identical.
    #: ``dfs.balance/replication`` bandwidth cap per repair stream, in
    #: bytes/s — re-replication competes with the shuffle on the same
    #: links but is throttled like real HDFS balancer traffic.
    repair_bandwidth_cap: float = 10 * MiB
    #: ``dfs.namenode.replication.max-streams``: concurrent repair copies.
    repair_max_streams: int = 2

    # -- fault tolerance -----------------------------------------------------
    #: ``mapred.tasktracker.expiry.interval``: a TaskTracker that has not
    #: heartbeated for this long is declared lost (0.20.2 default: 10 min).
    tasktracker_expiry_interval: float = 600.0
    #: ``mapred.map.max.attempts`` / ``mapred.reduce.max.attempts``: a task
    #: whose attempts all fail this many times fails the whole job.
    max_attempts: int = 4

    # -- misc --------------------------------------------------------------------
    job_setup_time: float = 5.0  # job client + setup/cleanup tasks
    rpc_status_bytes: int = 512  # serialized heartbeat payload

    def __post_init__(self) -> None:
        if self.block_size < 1 * MiB:
            raise ValueError(f"block size too small: {self.block_size}")
        if self.replication < 1:
            raise ValueError(f"replication must be >= 1, got {self.replication}")
        if self.map_slots < 1 or self.reduce_slots < 1:
            raise ValueError(
                f"slots must be >= 1, got {self.map_slots}/{self.reduce_slots}"
            )
        if not 0.0 <= self.reduce_slowstart <= 1.0:
            raise ValueError(f"slowstart must be in [0,1]: {self.reduce_slowstart}")
        if self.heartbeat_interval <= 0 or self.completion_poll_interval <= 0:
            raise ValueError("intervals must be positive")
        if self.parallel_copies < 1:
            raise ValueError(f"parallel copies must be >= 1: {self.parallel_copies}")
        if self.fetch_timeout <= 0:
            raise ValueError(f"fetch timeout must be positive: {self.fetch_timeout}")
        if self.fetch_retries < 0:
            # 0 is legal: every failed fetch escalates straight to a
            # fetch-failure strike instead of re-trying the same host.
            raise ValueError(f"fetch retries must be >= 0: {self.fetch_retries}")
        if self.fetch_backoff_base <= 0:
            raise ValueError(
                f"fetch backoff base must be positive: {self.fetch_backoff_base}"
            )
        if self.fetch_backoff_max < self.fetch_backoff_base:
            raise ValueError(
                f"fetch backoff cap ({self.fetch_backoff_max}) below the "
                f"base ({self.fetch_backoff_base})"
            )
        if self.fetch_failure_threshold < 1:
            raise ValueError(
                f"fetch failure threshold must be >= 1: {self.fetch_failure_threshold}"
            )
        if self.speculative_slowness <= 1.0:
            raise ValueError(
                f"speculative slowness must exceed 1.0: {self.speculative_slowness}"
            )
        if self.repair_bandwidth_cap <= 0:
            raise ValueError(
                f"repair bandwidth cap must be positive: {self.repair_bandwidth_cap}"
            )
        if self.repair_max_streams < 1:
            raise ValueError(
                f"repair max streams must be >= 1: {self.repair_max_streams}"
            )
        if self.tasktracker_expiry_interval <= 0:
            raise ValueError(
                f"expiry interval must be positive: {self.tasktracker_expiry_interval}"
            )
        if self.max_attempts < 1:
            raise ValueError(f"max attempts must be >= 1: {self.max_attempts}")

    def with_slots(self, map_slots: int, reduce_slots: int) -> "HadoopConfig":
        """The Table-I sweep helper: same config, different slot counts."""
        return replace(self, map_slots=map_slots, reduce_slots=reduce_slots)
