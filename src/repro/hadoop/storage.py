"""Living HDFS: replica liveness, re-replication, and block loss.

:class:`~repro.hadoop.hdfs.HdfsNamespace` is a static placement map; it
says where replicas were *written*.  This module overlays liveness on
top of it: which replicas still exist right now, which are latently
corrupt, which nodes are decommissioning — and a NameNode-style repair
pipeline that copies under-replicated blocks over real simnet links so
repair traffic competes with the shuffle.

The manager is built only when the fault plan carries storage specs
(:data:`~repro.simnet.faults.STORAGE_FAULT_SPECS`); runs without them
never touch this code, preserving the bit-for-bit clean-run contract.

Liveness vocabulary (mirrors HDFS):

* **live** — the replica is on a healthy, reachable datanode.
* **stale** — the holder stopped heartbeating (crashed); the bytes are
  still on its disk and come back if the node rejoins, but readers
  cannot reach them meanwhile.
* **corrupt** — the bytes are damaged; nobody knows until a reader's
  checksum verification fails, which drops the replica and queues a
  repair (the HDFS client report protocol).
* **lost** — no live *and* no stale holders remain: :class:`BlockLostError`.

Repair is a prioritized queue (blocks at replication 1 before
replication 2) drained by ``repair_max_streams`` worker processes, each
copy throttled to ``repair_bandwidth_cap`` — the
``dfs.namenode.replication.max-streams`` / bandwidth-cap pair of real
HDFS.
"""

from __future__ import annotations

import heapq
from math import inf
from typing import Callable, Optional

from repro.hadoop.hdfs import Block, HdfsNamespace
from repro.simnet.cluster import Cluster
from repro.simnet.kernel import Event, Interrupt, Process, Simulator
from repro.simnet.network import FlowFailed
from repro.util.rng import make_rng


class BlockLostError(RuntimeError):
    """Every replica of a block is gone — the input is unrecoverable."""

    def __init__(self, file_name: str, block_id: int):
        self.file_name = file_name
        self.block_id = block_id
        self.reason = f"block_lost:{file_name}:{block_id}"
        super().__init__(self.reason)


class StorageManager:
    """Replica liveness + repair over one namespace on one cluster.

    ``repair=False`` (the MPI-D mode) keeps the liveness bookkeeping but
    never re-replicates — MPI has no NameNode healing its input.
    ``is_node_dead`` lets the host veto repair sources/targets that are
    currently crashed (distinct from disk-failed).
    """

    def __init__(
        self,
        sim: Simulator,
        cluster: Cluster,
        hdfs: HdfsNamespace,
        *,
        seed: int,
        repair: bool = True,
        repair_bandwidth_cap: float = inf,
        repair_max_streams: int = 2,
        repair_retry_backoff: float = 1.0,
        is_node_dead: Optional[Callable[[int], bool]] = None,
    ):
        self.sim = sim
        self.cluster = cluster
        self.hdfs = hdfs
        self.repair_enabled = repair
        self.repair_bandwidth_cap = repair_bandwidth_cap
        self.repair_max_streams = repair_max_streams
        self.repair_retry_backoff = repair_retry_backoff
        self._is_dead = is_node_dead or (lambda n: False)
        self._rng = make_rng(seed, "hdfs-repair")

        # block_id -> {node}: replicas readable right now.
        self._live: dict[int, set[int]] = {}
        # node -> {block_id}: inverse of _live.
        self._on_node: dict[int, set[int]] = {}
        # node -> {block_id} on a non-heartbeating node's intact disk.
        self._stale: dict[int, set[int]] = {}
        self._stale_blocks: dict[int, set[int]] = {}
        # Latent damage: (block_id, node) pairs awaiting discovery.
        self._corrupt: set[tuple[int, int]] = set()
        # Permanently destroyed pairs (disk failures, dropped corruption)
        # — the damage record MPI-D restarts carry across attempts.
        self._destroyed: set[tuple[int, int]] = set()
        # Disk incarnation per node: bumped on DiskFailure so a reader
        # mid-transfer can tell its source's bytes just evaporated.
        self._disk_epoch: dict[int, int] = {}
        self._decommissioning: set[int] = set()
        self._decommissioned: set[int] = set()
        self._block_info: dict[int, tuple[str, Block]] = {}
        self._lost: set[int] = set()

        # Repair queue: (live-replica-count, seq, block_id) min-heap with
        # lazy invalidation — only the newest seq per block is honored.
        self._heap: list[tuple[int, int, int]] = []
        self._queue_token: dict[int, int] = {}
        self._seq = 0
        self._work_event: Optional[Event] = None
        self._workers: list[Process] = []

        self.blocks_repaired = 0
        self.repair_bytes = 0.0
        self.repair_flows_failed = 0
        self.blocks_lost = 0
        self.read_failovers = 0
        self.corrupt_replicas_dropped = 0
        self.disk_failures = 0
        self.excess_replicas_dropped = 0

        for f in hdfs._files.values():
            self.register_file(f.name)

    # -- registration ---------------------------------------------------------
    def register_file(self, name: str) -> None:
        """Track liveness for every block of an existing namespace file."""
        f = self.hdfs.lookup(name)
        for block in f.blocks:
            self._block_info[block.block_id] = (name, block)
            self._live[block.block_id] = set(block.replicas)
            for node in block.replicas:
                self._on_node.setdefault(node, set()).add(block.block_id)

    def apply_damage(
        self, damage: tuple[frozenset[tuple[int, int]], frozenset[tuple[int, int]]]
    ) -> None:
        """Replay a prior attempt's damage record (MPI-D restarts: a lost
        disk stays lost; latent corruption stays latent)."""
        destroyed, corrupt = damage
        for bid, node in sorted(destroyed):
            if node in self._live.get(bid, ()):
                self._drop_live(bid, node)
            self._destroyed.add((bid, node))
            self._note_if_lost(bid, 0.0)
        self._corrupt.update(corrupt)

    def damage(
        self,
    ) -> tuple[frozenset[tuple[int, int]], frozenset[tuple[int, int]]]:
        return frozenset(self._destroyed), frozenset(self._corrupt)

    def any_block_lost(self) -> bool:
        return bool(self._lost)

    # -- queries --------------------------------------------------------------
    def block_name(self, block_id: int) -> tuple[str, int]:
        return self._block_info[block_id][0], block_id

    def is_decommissioning(self, node: int) -> bool:
        return node in self._decommissioning

    def read_candidates(self, block: Block, reader: int) -> list[int]:
        """Live replica holders, locality-ordered: the reader's own copy
        first, then the stored placement order, then repair copies.

        On an undamaged block this reproduces the static read path
        exactly (local if local, else ``replicas[0]``) — no RNG, no new
        events.
        """
        live = self._live.get(block.block_id, set())
        ordered = [n for n in block.replicas if n in live]
        ordered += sorted(n for n in live if n not in block.replicas)
        if reader in live:
            ordered.remove(reader)
            ordered.insert(0, reader)
        return ordered

    def block_lost(self, block_id: int) -> bool:
        """No live and no stale holder anywhere — unrecoverable."""
        return not self._live.get(block_id) and not self._stale_blocks.get(
            block_id
        )

    def read_epoch(self, node: int) -> int:
        return self._disk_epoch.get(node, 0)

    def read_ok(self, block_id: int, node: int, epoch: int) -> bool:
        """Did a read started at disk-incarnation ``epoch`` return good
        bytes?  (Checksum verification, in effect.)"""
        return (
            node in self._live.get(block_id, ())
            and self._disk_epoch.get(node, 0) == epoch
            and (block_id, node) not in self._corrupt
        )

    def is_corrupt(self, block_id: int, node: int) -> bool:
        return (block_id, node) in self._corrupt

    # -- observation ----------------------------------------------------------
    def _obs_instant(self, category: str, name: str, track: str) -> None:
        obs = self.sim.obs
        if obs.enabled:
            obs.tracer.instant(category, name, track=track)
            obs.metrics.counter(category).add()

    def note_failover(self, reason: str, block_id: int, node: int) -> None:
        """A reader skipped a dead/corrupt replica and tried the next."""
        self.read_failovers += 1
        self._obs_instant(
            "hdfs.read.failover",
            f"blk{block_id} n{node} {reason}",
            track="hdfs:failover",
        )

    def _note_if_lost(self, block_id: int, now: float) -> None:
        if block_id in self._lost or not self.block_lost(block_id):
            return
        self._lost.add(block_id)
        self.blocks_lost += 1
        name, _ = self._block_info[block_id]
        self._obs_instant(
            "hdfs.block.lost", f"{name} blk{block_id}", track="hdfs:namenode"
        )

    # -- fault entry points (StorageFaultHost) --------------------------------
    def disk_failed(self, node: int, now: float) -> None:
        """The node's disk died: every replica on it is destroyed."""
        self.disk_failures += 1
        self._disk_epoch[node] = self._disk_epoch.get(node, 0) + 1
        for bid in sorted(self._on_node.pop(node, set())):
            self._live[bid].discard(node)
            self._corrupt.discard((bid, node))
            self._destroyed.add((bid, node))
            self._enqueue_repair(bid)
            self._note_if_lost(bid, now)
        for bid in sorted(self._stale.pop(node, set())):
            self._stale_blocks[bid].discard(node)
            self._destroyed.add((bid, node))
            self._note_if_lost(bid, now)
        self._kick()

    def corrupt_replica(self, node: int, now: float, rng) -> bool:
        """Silently damage one replica on ``node``; False when it holds
        nothing (the injector absorbs the event)."""
        blocks = self._on_node.get(node)
        if not blocks:
            return False
        ordered = sorted(blocks)
        bid = ordered[int(rng.integers(len(ordered)))]
        self._corrupt.add((bid, node))
        return True

    def decommission(self, node: int, now: float) -> None:
        """Graceful drain: out of the placement pool now, replicas
        readable until copied elsewhere."""
        if node in self._decommissioning or node in self._decommissioned:
            return
        self._decommissioning.add(node)
        for bid in sorted(self._on_node.get(node, set())):
            if self._healthy_count(bid) >= self._target(bid):
                self._drop_decom_replicas(bid)
            else:
                self._enqueue_repair(bid)
        self._maybe_drained(node)
        self._kick()

    def report_corruption(self, block_id: int, node: int, now: float) -> None:
        """A reader's checksum failed: drop the replica, queue a repair."""
        self._corrupt.discard((block_id, node))
        if node in self._live.get(block_id, ()):
            self._drop_live(block_id, node)
            self._destroyed.add((block_id, node))
            self.corrupt_replicas_dropped += 1
            self._obs_instant(
                "hdfs.replica.corrupt",
                f"blk{block_id} n{node}",
                track="hdfs:namenode",
            )
            self._enqueue_repair(block_id)
            self._note_if_lost(block_id, now)

    # -- heartbeat-driven liveness --------------------------------------------
    def datanode_lost(self, node: int, now: float) -> None:
        """Heartbeat expiry: the node's replicas go stale and the
        NameNode starts re-replicating them."""
        blocks = self._on_node.pop(node, set())
        if not blocks:
            return
        self._stale[node] = set(blocks)
        for bid in sorted(blocks):
            self._live[bid].discard(node)
            self._stale_blocks.setdefault(bid, set()).add(node)
            self._enqueue_repair(bid)
        self._kick()

    def datanode_rejoined(self, node: int, now: float) -> None:
        """A stale node came back: its intact replicas re-register;
        copies made redundant by repair in the meantime are deleted."""
        returned = self._stale.pop(node, set())
        for bid in sorted(returned):
            self._stale_blocks[bid].discard(node)
            live = self._live.setdefault(bid, set())
            if len(live) >= self._target(bid):
                self.excess_replicas_dropped += 1
                self._corrupt.discard((bid, node))
                continue
            live.add(node)
            self._on_node.setdefault(node, set()).add(bid)
        if returned:
            self._kick()

    # -- repair pipeline ------------------------------------------------------
    def start_repair(self) -> None:
        """Spawn the NameNode's replication streams (idempotent)."""
        if not self.repair_enabled or self._workers:
            return
        for i in range(self.repair_max_streams):
            self._workers.append(
                self.sim.process(self._repair_worker(i), name=f"hdfs-repair-{i}")
            )

    def stop_repair(self) -> None:
        for proc in self._workers:
            if proc.is_alive:
                proc.interrupt("job over")

    def _placement_pool(self) -> list[int]:
        return [
            n
            for n in self.hdfs.datanodes
            if not self._is_dead(n)
            and n not in self._decommissioning
            and n not in self._decommissioned
        ]

    def _target(self, block_id: int) -> int:
        return min(self.hdfs.replication, max(1, len(self._placement_pool())))

    def _healthy_count(self, block_id: int) -> int:
        """Replicas on live, non-decommissioning nodes (what counts
        toward the replication target)."""
        return sum(
            1
            for n in self._live.get(block_id, ())
            if n not in self._decommissioning and not self._is_dead(n)
        )

    def _needs_repair(self, block_id: int) -> bool:
        return (
            block_id not in self._lost
            and bool(self._live.get(block_id))
            and self._healthy_count(block_id) < self._target(block_id)
        )

    def _enqueue_repair(self, block_id: int) -> None:
        if not self.repair_enabled or block_id in self._lost:
            return
        self._seq += 1
        self._queue_token[block_id] = self._seq
        heapq.heappush(
            self._heap, (self._healthy_count(block_id), self._seq, block_id)
        )

    def _kick(self) -> None:
        ev = self._work_event
        if ev is not None and not ev.triggered:
            ev.succeed()

    def _pop_repair(self) -> Optional[int]:
        while self._heap:
            _, seq, bid = heapq.heappop(self._heap)
            if self._queue_token.get(bid) != seq:
                continue  # superseded entry
            del self._queue_token[bid]
            if self._needs_repair(bid):
                return bid
        return None

    def _repair_worker(self, stream: int):
        sim = self.sim
        try:
            while True:
                bid = self._pop_repair()
                if bid is None:
                    ev = self._work_event
                    if ev is None or ev.triggered:
                        ev = self._work_event = sim.event()
                    yield ev
                    continue
                ok = yield from self._repair_one(bid, stream)
                if not ok:
                    # Source vanished mid-copy or no source/target right
                    # now: back off instead of spinning at t+0.
                    yield sim.timeout(self.repair_retry_backoff)
        except Interrupt:
            return

    def _repair_one(self, bid: int, stream: int = 0):
        """Copy one replica of ``bid`` to a new node over real links.

        Returns True when a replica landed (or the block no longer needs
        repair); False asks the worker to back off before retrying.
        ``stream`` picks the trace lane: concurrent streams must not
        share a track, or the tracer nests their overlapping spans and an
        abort on one closes the other.
        """
        sim = self.sim
        name, block = self._block_info[bid]
        # Deterministic source: stored placement order first (the oldest
        # surviving replica), repair copies after; decommissioning nodes
        # are readable and may serve as sources.
        candidates = self.read_candidates(block, reader=-1)
        sources = [n for n in candidates if not self._is_dead(n)]
        pool = self._placement_pool()
        live = self._live.get(bid, set())
        targets = sorted(
            n for n in pool if n not in live and bid not in self._stale.get(n, ())
        )
        if not sources or not targets:
            self._enqueue_repair(bid)
            return False
        src = sources[0]
        dst = int(targets[int(self._rng.integers(len(targets)))])
        epoch = self.read_epoch(src)
        obs = sim.obs
        sid = 0
        if obs.enabled:
            sid = obs.tracer.begin(
                "hdfs.repair",
                f"blk{bid} n{src}->n{dst}",
                track=f"hdfs:repair:{stream}",
                block=bid,
                file=name,
                src=src,
                dst=dst,
                nbytes=block.size,
            )
        try:
            wire = self.cluster.send(
                src,
                dst,
                block.size,
                rate_cap=self.repair_bandwidth_cap,
                waiter_sid=sid,
            )
            yield sim.all_of(
                [self.cluster.node(src).disk_read(block.size), wire]
            )
        except FlowFailed:
            self.repair_flows_failed += 1
            if sid:
                obs.tracer.abort(sid, outcome="flow-lost")
            self._enqueue_repair(bid)
            return False
        if not self.read_ok(bid, src, epoch) or self._is_dead(dst):
            # The source evaporated mid-copy (or the target died): the
            # bytes that landed are garbage.
            if sid:
                obs.tracer.abort(sid, outcome="source-lost")
            self._enqueue_repair(bid)
            return False
        yield self.cluster.node(dst).disk_write(block.size)
        self._add_replica(bid, dst)
        self.blocks_repaired += 1
        self.repair_bytes += block.size
        if obs.enabled:
            obs.tracer.end(sid)
            obs.metrics.counter("hdfs.repair.blocks").add()
            obs.metrics.counter("hdfs.repair.bytes").add(block.size)
        if self._healthy_count(bid) >= self._target(bid):
            self._drop_decom_replicas(bid)
        if self._needs_repair(bid):
            self._enqueue_repair(bid)
        return True

    # -- replica bookkeeping --------------------------------------------------
    def _add_replica(self, bid: int, node: int) -> None:
        self._live.setdefault(bid, set()).add(node)
        self._on_node.setdefault(node, set()).add(bid)

    def _drop_live(self, bid: int, node: int) -> None:
        self._live.get(bid, set()).discard(node)
        self._on_node.get(node, set()).discard(bid)
        self._corrupt.discard((bid, node))

    def _drop_decom_replicas(self, bid: int) -> None:
        """The block is safe elsewhere: delete its copies on draining
        nodes (the decommission drain step)."""
        for node in sorted(self._live.get(bid, set())):
            if node in self._decommissioning:
                self._drop_live(bid, node)
                self._maybe_drained(node)

    def _maybe_drained(self, node: int) -> None:
        if node in self._decommissioning and not self._on_node.get(node):
            self._decommissioning.discard(node)
            self._decommissioned.add(node)
            self._obs_instant(
                "hdfs.decommissioned", f"node{node} drained", track="hdfs:namenode"
            )
