"""The reduce task execution model: copy -> sort -> reduce.

The **copy stage** is the paper's protagonist.  A running reducer polls
for newly announced map outputs every ``completion_poll_interval`` (the
GetMapEventsThread), fetches them over HTTP from the serving
TaskTracker's Jetty with at most ``parallel_copies`` concurrent copiers,
batching same-source segments the way the real scheduler coalesces per
host.  Each fetch pays Jetty's per-request setup, the mapper-side disk
read (contending with running maps), and the shared network.  Crucially,
copy time *includes waiting for maps that haven't finished* — that is
how Hadoop's counters measure it and why Figure 1's first-wave reducers
dominate.

The **sort stage** is the final merge: near-zero when segments fit the
shuffle memory (the paper measures 0.0102 s on average), plus disk merge
passes when they don't.  The **reduce stage** runs the user function and
writes output through the HDFS replication pipeline.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from repro.hadoop.jobtracker import MapOutputRef, ReduceTaskInfo
from repro.simnet.resources import SlotPool

if TYPE_CHECKING:  # pragma: no cover
    from repro.hadoop.simulation import HadoopSimulation
    from repro.hadoop.tasktracker import TaskTracker

#: In-memory final merge bookkeeping cost (the paper's measured ~10 ms).
IN_MEMORY_MERGE_TIME = 0.01


class _ShuffleState:
    """Mutable counters shared between a reducer and its fetch processes."""

    __slots__ = ("shuffled_bytes", "fetches", "spilled_to_disk")

    def __init__(self) -> None:
        self.shuffled_bytes = 0.0
        self.fetches = 0
        self.spilled_to_disk = False


def reduce_task_process(
    env: "HadoopSimulation", task: ReduceTaskInfo, tracker: "TaskTracker"
):
    """DES process for one reduce attempt."""
    sim = env.sim
    cfg = env.config
    jt = env.jobtracker
    metrics = task.metrics
    assert metrics is not None
    metrics.started_at = sim.now
    node = env.cluster.node(task.node)

    yield sim.timeout(cfg.task_jvm_startup)

    # ---------------- copy stage ------------------------------------------
    state = _ShuffleState()
    copiers = SlotPool(sim, cfg.parallel_copies, name=f"copiers-r{task.task_id}")
    cursor = 0
    initiated = 0
    inflight = []
    total_maps = jt.total_maps
    while initiated < total_maps:
        refs, cursor = jt.poll_map_outputs(cursor, task.partition)
        if refs:
            by_node: dict[int, list[MapOutputRef]] = {}
            for ref in refs:
                by_node.setdefault(ref.node, []).append(ref)
            for src, group in by_node.items():
                proc = sim.process(
                    _fetch_batch(env, task, copiers, src, group, state),
                    name=f"fetch-r{task.task_id}-n{src}",
                )
                inflight.append(proc)
                initiated += len(group)
        if initiated < total_maps:
            yield sim.timeout(cfg.completion_poll_interval)
    if inflight:
        yield sim.all_of(inflight)
    metrics.copy_done_at = sim.now
    metrics.shuffled_bytes = int(state.shuffled_bytes)
    metrics.fetches = state.fetches

    # ---------------- sort stage -------------------------------------------
    yield sim.timeout(IN_MEMORY_MERGE_TIME)
    if state.spilled_to_disk and total_maps > cfg.io_sort_factor:
        passes = max(0, math.ceil(math.log(total_maps, cfg.io_sort_factor)) - 1)
        for _ in range(passes):
            yield node.disk_read(state.shuffled_bytes, sequential=False)
            yield node.disk_write(state.shuffled_bytes)
    metrics.sort_done_at = sim.now

    # ---------------- reduce stage --------------------------------------------
    if state.spilled_to_disk:
        yield node.disk_read(state.shuffled_bytes)
    cpu_time = state.shuffled_bytes * env.spec.profile.reduce_cpu_per_byte
    yield node.cpus.acquire()
    try:
        yield sim.timeout(cpu_time)
    finally:
        node.cpus.release()

    output = env.spec.profile.reduce_output_bytes(state.shuffled_bytes)
    waits = [node.disk_write(output)]
    if output > 0:
        targets = env.hdfs.pick_replication_targets(task.node)
        for t in targets:
            t_node = env.cluster.node(t)
            nio = env.nio.wire_costs(int(output))
            waits.append(
                env.cluster.send(
                    task.node,
                    t_node.node_id,
                    nio.wire_bytes,
                    extra_latency=nio.setup_time,
                    rate_cap=nio.rate_cap,
                )
            )
            waits.append(t_node.disk_write(output))
    yield sim.all_of(waits)

    metrics.finished_at = sim.now
    jt.reduce_finished(task)
    tracker.reduce_completed(task)


def _fetch_batch(
    env: "HadoopSimulation",
    task: ReduceTaskInfo,
    copiers: SlotPool,
    src_node: int,
    group: list[MapOutputRef],
    state: _ShuffleState,
):
    """Fetch all newly-announced segments held by one source node.

    One HTTP request per segment (setup each), pipelined over one
    connection per host pair — the real scheduler's one-fetch-per-host
    rule makes per-host batching the faithful granularity.
    """
    sim = env.sim
    cfg = env.config
    yield copiers.acquire()
    try:
        total = sum(ref.partition_bytes for ref in group)
        setup = env.jetty.request_setup * len(group)
        headers = env.jetty.header_bytes * len(group)
        src = env.cluster.node(src_node)
        # Mapper-side service: each segment is a separate seeky read of a
        # map output file, contending with running map tasks.  Charge one
        # seek per segment (disk_read charges only one per call).
        seek_bytes = src.spec.disk_seek * src.disk.rate
        serve = src.disk.transfer(total + len(group) * seek_bytes)
        wire = env.cluster.send(
            src_node,
            task.node,
            total + headers,
            extra_latency=setup,
            rate_cap=env.jetty.stream_peak,
        )
        yield sim.all_of([serve, wire])
        state.shuffled_bytes += total
        state.fetches += len(group)
        if state.shuffled_bytes > cfg.shuffle_memory_bytes:
            state.spilled_to_disk = True
        if state.spilled_to_disk and total > 0:
            yield env.cluster.node(task.node).disk_write(total)
    finally:
        copiers.release()
