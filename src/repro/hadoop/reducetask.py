"""The reduce task execution model: copy -> sort -> reduce.

The **copy stage** is the paper's protagonist.  A running reducer polls
for newly announced map outputs every ``completion_poll_interval`` (the
GetMapEventsThread), fetches them over HTTP from the serving
TaskTracker's Jetty with at most ``parallel_copies`` concurrent copiers,
batching same-source segments the way the real scheduler coalesces per
host.  Each fetch pays Jetty's per-request setup, the mapper-side disk
read (contending with running maps), and the shared network.  Crucially,
copy time *includes waiting for maps that haven't finished* — that is
how Hadoop's counters measure it and why Figure 1's first-wave reducers
dominate.

Under fault injection a fetch can fail (the serving node died with the
map output in its local dir): the reducer notifies the JobTracker, which
re-executes the map; the re-completion is re-announced, and the reducer
fetches the segment from the map's new home.  Already-fetched segments
survive, exactly like real shuffle files on the reducer's side.

The **sort stage** is the final merge: near-zero when segments fit the
shuffle memory (the paper measures 0.0102 s on average), plus disk merge
passes when they don't.  The **reduce stage** runs the user function and
writes output through the HDFS replication pipeline (skipping datanodes
that are currently dead).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from repro.hadoop.jobtracker import _DONE as _DONE_STATE
from repro.hadoop.jobtracker import MapOutputRef, ReduceAttempt
from repro.simnet.kernel import Interrupt
from repro.simnet.network import FlowFailed
from repro.simnet.resources import SlotPool
from repro.util.rng import make_rng

if TYPE_CHECKING:  # pragma: no cover
    from repro.hadoop.simulation import HadoopSimulation
    from repro.hadoop.tasktracker import TaskTracker

#: In-memory final merge bookkeeping cost (the paper's measured ~10 ms).
IN_MEMORY_MERGE_TIME = 0.01


class _ShuffleState:
    """Mutable counters shared between a reducer and its fetch processes."""

    __slots__ = (
        "shuffled_bytes",
        "fetches",
        "spilled_to_disk",
        "initiated",
        "completed_ids",
        "inflight_ids",
        "retries",
        "rng",
        "host_failures",
        "penalty_until",
        "copy_sid",
    )

    def __init__(self) -> None:
        self.shuffled_bytes = 0.0
        self.fetches = 0
        #: The owning reducer's copy-phase span (0 = untraced); fetch
        #: processes draw gather edges back to it.
        self.copy_sid = 0
        self.spilled_to_disk = False
        #: Number of distinct map outputs fetched or in flight; a failed
        #: fetch gives its share back so the poll loop resumes.
        self.initiated = 0
        self.completed_ids: set[int] = set()
        self.inflight_ids: set[int] = set()
        # -- retry pipeline (populated only under network faults) ------------
        self.retries = 0
        self.rng = None  # this reducer's jitter stream
        #: node -> consecutive failed fetch attempts (clears on success).
        self.host_failures: dict[int, int] = {}
        #: Penalty box: node -> earliest time it may be contacted again.
        self.penalty_until: dict[int, float] = {}


def reduce_task_process(
    env: "HadoopSimulation", attempt: ReduceAttempt, tracker: "TaskTracker"
):
    """DES process for one reduce attempt (original or speculative)."""
    sim = env.sim
    cfg = env.config
    jt = env.jobtracker
    task = attempt.task
    metrics = attempt.metrics
    tr = sim.obs.tracer
    sid = tr.begin(
        "hadoop.reduce",
        f"reduce{task.task_id}" + (".spec" if attempt.speculative else ""),
        node=attempt.node,
    )
    try:
        metrics.started_at = sim.now
        node = env.cluster.node(attempt.node)

        yield sim.timeout(cfg.task_jvm_startup)

        # ---------------- copy stage ------------------------------------------
        copy_sid = tr.begin("hadoop.reduce", "copy", parent=sid)
        state = _ShuffleState()
        state.copy_sid = copy_sid
        fetcher = _fetch_batch
        if env.net_faults:
            # Lossy network: the retry/backoff pipeline, with this
            # attempt's own jitter stream so re-attempts re-draw.
            fetcher = _fetch_batch_robust
            state.rng = make_rng(env.seed, "shuffle", task.task_id, task.attempts)
        copiers = SlotPool(sim, cfg.parallel_copies, name=f"copiers-r{task.task_id}")
        cursor = 0
        inflight = []
        total_maps = jt.total_maps
        while True:
            while state.initiated < total_maps and not jt.job_failed:
                refs, cursor = jt.poll_map_outputs(cursor, task.partition)
                if env.fault_aware:
                    # Re-announcements can repeat a map id; fetch each once.
                    refs = [
                        r
                        for r in refs
                        if r.map_id not in state.completed_ids
                        and r.map_id not in state.inflight_ids
                    ]
                if refs:
                    by_node: dict[int, list[MapOutputRef]] = {}
                    for ref in refs:
                        by_node.setdefault(ref.node, []).append(ref)
                    for src, group in by_node.items():
                        proc = env.spawn_on_node(
                            attempt.node,
                            fetcher(env, attempt, copiers, src, group, state),
                            name=f"fetch-r{task.task_id}-n{src}",
                        )
                        inflight.append(proc)
                        state.initiated += len(group)
                        state.inflight_ids.update(r.map_id for r in group)
                if state.initiated < total_maps and not jt.job_failed:
                    yield sim.timeout(cfg.completion_poll_interval)
            if inflight:
                procs, inflight = inflight, []
                yield sim.all_of(procs)
            if jt.job_failed:
                tr.abort(sid, outcome="job-failed")
                return
            if state.initiated >= total_maps:
                break  # every fetch landed (failures decrement initiated)
        metrics.copy_done_at = sim.now
        metrics.shuffled_bytes = int(state.shuffled_bytes)
        metrics.fetches = state.fetches
        metrics.fetch_retries = state.retries
        tr.end(copy_sid, shuffled_bytes=state.shuffled_bytes, fetches=state.fetches)
        if sid:
            sim.obs.metrics.counter("hadoop.bytes_shuffled").add(state.shuffled_bytes)

        # ---------------- sort stage -------------------------------------------
        sort_sid = tr.begin("hadoop.reduce", "sort", parent=sid)
        yield sim.timeout(IN_MEMORY_MERGE_TIME)
        if state.spilled_to_disk and total_maps > cfg.io_sort_factor:
            passes = max(0, math.ceil(math.log(total_maps, cfg.io_sort_factor)) - 1)
            for _ in range(passes):
                yield node.disk_read(state.shuffled_bytes, sequential=False)
                yield node.disk_write(state.shuffled_bytes)
        metrics.sort_done_at = sim.now
        tr.end(sort_sid)

        # ---------------- reduce stage --------------------------------------------
        reduce_sid = tr.begin("hadoop.reduce", "reduce", parent=sid)
        if state.spilled_to_disk:
            yield node.disk_read(state.shuffled_bytes)
        cpu_time = state.shuffled_bytes * env.spec.profile.reduce_cpu_per_byte
        core = node.cpus.acquire()
        try:
            yield core
            yield sim.timeout(cpu_time)
        finally:
            node.cpus.cancel(core)

        output = env.spec.profile.reduce_output_bytes(state.shuffled_bytes)
        waits = [node.disk_write(output)]
        if output > 0:
            # Under fault injection the pipeline is planned against the
            # currently-live pool (clamping when it is short) rather than
            # drawn from the static map and filtered after the fact —
            # filtering post-draw silently under-replicated whenever a
            # chosen target happened to be dead.
            targets = env.hdfs.pick_replication_targets(
                attempt.node,
                live=env.live_datanodes() if env.fault_aware else None,
            )
            for t in targets:
                t_node = env.cluster.node(t)
                nio = env.nio.wire_costs(int(output))
                if env.net_faults:
                    # DFS pipeline streams resend through killed flows;
                    # exhaustion fails this attempt (caught below).
                    waits.append(
                        env.spawn_on_node(
                            attempt.node,
                            env.reliable_send(
                                attempt.node,
                                t_node.node_id,
                                nio.wire_bytes,
                                extra_latency=nio.setup_time,
                                rate_cap=nio.rate_cap,
                                rng=state.rng,
                                label=f"hdfs-r{task.task_id}",
                                waiter_sid=reduce_sid,
                            ),
                            name=f"repl-r{task.task_id}-n{t}",
                        )
                    )
                else:
                    waits.append(
                        env.cluster.send(
                            attempt.node,
                            t_node.node_id,
                            nio.wire_bytes,
                            extra_latency=nio.setup_time,
                            rate_cap=nio.rate_cap,
                            waiter_sid=reduce_sid,
                        )
                    )
                waits.append(t_node.disk_write(output))
        yield sim.all_of(waits)

        metrics.finished_at = sim.now
        won = jt.reduce_finished(attempt)
        tracker.reduce_completed(attempt)
        tr.end(reduce_sid)
        if won:
            tr.edge(sid, env.job_sid, "complete")
        tr.end(sid, outcome="done", won=won)
        if sid:
            sim.obs.metrics.counter("hadoop.reduces_finished").add()
    except Interrupt:
        tr.abort(sid, outcome="interrupted")
        return  # this node crashed; the JobTracker reschedules the reduce
    except FlowFailed:
        # Output replication could not beat the network faults even with
        # resends: this attempt fails on its live node and is requeued.
        jt.reduce_attempt_failed(attempt, sim.now)
        tracker.reduce_failed(attempt)
        tr.abort(sid, outcome="replication-failed")
        return


def _fetch_batch(
    env: "HadoopSimulation",
    attempt: ReduceAttempt,
    copiers: SlotPool,
    src_node: int,
    group: list[MapOutputRef],
    state: _ShuffleState,
):
    """Fetch all newly-announced segments held by one source node.

    One HTTP request per segment (setup each), pipelined over one
    connection per host pair — the real scheduler's one-fetch-per-host
    rule makes per-host batching the faithful granularity.

    A fetch from a node that is dead — or that dies and loses its local
    dirs while the bytes stream — fails: the reducer's share is handed
    back and the JobTracker is told so it can re-execute the maps.
    """
    sim = env.sim
    cfg = env.config
    obs = sim.obs
    fetch_sid = 0
    slot = copiers.acquire()
    try:
        yield slot
        epoch = env.node_epoch(src_node) if env.fault_aware else 0
        if env.fault_aware and env.is_node_dead(src_node):
            _fetch_failed(env, group, src_node, state)
            return
        total = sum(ref.partition_bytes for ref in group)
        fetch_sid = obs.tracer.begin(
            "transport.jetty",
            f"fetch r{attempt.task_id}<-n{src_node}",
            segments=len(group),
            nbytes=total,
        )
        if fetch_sid:
            obs.metrics.counter("transport.jetty.requests").add(len(group))
            obs.metrics.counter("transport.jetty.bytes").add(total)
            for ref in group:
                # This fetch exists because those maps produced output;
                # the copy phase as a whole was gated on the same maps
                # (the "avail" edge is the one the critical-path walk can
                # descend through — a map always ends before its fetch
                # begins, so the map->fetch edge alone is unreachable).
                obs.tracer.edge(ref.span_sid, fetch_sid, "shuffle", map_id=ref.map_id)
                obs.tracer.edge(ref.span_sid, state.copy_sid, "avail", map_id=ref.map_id)
        setup = env.jetty.request_setup * len(group)
        headers = env.jetty.header_bytes * len(group)
        src = env.cluster.node(src_node)
        # Mapper-side service: each segment is a separate seeky read of a
        # map output file, contending with running map tasks.  Charge one
        # seek per segment (disk_read charges only one per call).
        seek_bytes = src.spec.disk_seek * src.disk.rate
        serve = src.disk.transfer(total + len(group) * seek_bytes)
        wire = env.cluster.send(
            src_node,
            attempt.node,
            total + headers,
            extra_latency=setup,
            rate_cap=env.jetty.stream_peak,
            waiter_sid=fetch_sid,
        )
        yield sim.all_of([serve, wire])
        if env.fault_aware and (
            env.is_node_dead(src_node) or env.node_epoch(src_node) != epoch
        ):
            _fetch_failed(env, group, src_node, state)
            obs.tracer.abort(fetch_sid, outcome="failed:source-died")
            obs.metrics.counter("transport.jetty.failed_fetches").add(len(group))
            fetch_sid = 0
            return
        state.shuffled_bytes += total
        state.fetches += len(group)
        state.completed_ids.update(r.map_id for r in group)
        state.inflight_ids.difference_update(r.map_id for r in group)
        if state.shuffled_bytes > cfg.shuffle_memory_bytes:
            state.spilled_to_disk = True
        if state.spilled_to_disk and total > 0:
            yield env.cluster.node(attempt.node).disk_write(total)
        obs.tracer.edge(fetch_sid, state.copy_sid, "gather")
        obs.tracer.end(fetch_sid)
        fetch_sid = 0
    except Interrupt:
        return  # the reducer's own node died mid-fetch
    finally:
        obs.tracer.abort(fetch_sid, outcome="interrupted")
        copiers.cancel(slot)


def _fetch_failed(
    env: "HadoopSimulation",
    group: list[MapOutputRef],
    src_node: int,
    state: _ShuffleState,
) -> None:
    """Give the failed segments back to the poll loop and tell the master."""
    _give_back(group, state)
    env.jobtracker.fetch_failed(
        [r.map_id for r in group], src_node, env.sim.now
    )


def _give_back(group: list[MapOutputRef], state: _ShuffleState) -> None:
    """Return segments to the poll loop (undo their initiated share)."""
    state.initiated -= len(group)
    state.inflight_ids.difference_update(r.map_id for r in group)


def _drop_moved(
    env: "HadoopSimulation",
    group: list[MapOutputRef],
    src_node: int,
    state: _ShuffleState,
) -> list[MapOutputRef]:
    """Hand back segments whose map no longer lives on ``src_node``.

    While a fetch process was backing off, the strike threshold (tripped
    by this reducer or another) may have re-executed some of its maps
    elsewhere; those segments return to the poll loop, which will see
    the new completions' announcements.
    """
    jt = env.jobtracker
    keep: list[MapOutputRef] = []
    moved: list[MapOutputRef] = []
    for ref in group:
        task = jt.maps[ref.map_id]
        if task.state == _DONE_STATE and task.node == src_node:
            keep.append(ref)
        else:
            moved.append(ref)
    if moved:
        _give_back(moved, state)
    return keep


def _backoff(
    env: "HadoopSimulation",
    attempt: ReduceAttempt,
    src_node: int,
    delay: float,
    label: str,
):
    """Wait out a retry/penalty delay under its own span category, so the
    gantt visually separates *waiting to retry* from *transferring*."""
    tr = env.sim.obs.tracer
    sid = tr.begin(
        "hadoop.shuffle.backoff",
        f"{label} r{attempt.task_id}<-n{src_node}",
        delay=delay,
    )
    try:
        yield env.sim.timeout(delay)
    except Interrupt:
        tr.abort(sid, outcome="interrupted")
        raise
    tr.end(sid)


def _fetch_batch_robust(
    env: "HadoopSimulation",
    attempt: ReduceAttempt,
    copiers: SlotPool,
    src_node: int,
    group: list[MapOutputRef],
    state: _ShuffleState,
):
    """The lossy-network twin of :func:`_fetch_batch`.

    Same request anatomy (per-host batch, Jetty setup, mapper-side disk
    service, shared wire), wrapped in Hadoop 0.20's ShuffleScheduler
    semantics:

    * a **fetch timeout** cancels a stuck transfer;
    * a failed attempt retries against the same host after an
      exponentially backed-off, jittered delay;
    * hosts that keep failing sit in a per-reducer **penalty box**;
    * once ``fetch_retries`` attempts are exhausted the reducer reports
      a fetch-failure **strike** per map to the JobTracker, which
      re-executes the map when ``fetch_failure_threshold`` strikes
      accumulate — re-announcement then routes the segments to the
      map's new home.

    Dead-node fetches keep the definite-failure fast path (immediate
    re-execution), identical to the reliable-network pipeline.
    """
    sim = env.sim
    cfg = env.config
    jt = env.jobtracker
    obs = sim.obs
    policy = env.fetch_retry_policy
    src = env.cluster.node(src_node)
    fetch_sid = 0
    slot = copiers.acquire()
    try:
        yield slot
        wait = state.penalty_until.get(src_node, 0.0) - sim.now
        if wait > 0:
            yield from _backoff(env, attempt, src_node, wait, "penalty")
        tries = 0
        while True:
            group = _drop_moved(env, group, src_node, state)
            if not group:
                return
            if jt.job_failed:
                _give_back(group, state)
                return
            if env.is_node_dead(src_node):
                _fetch_failed(env, group, src_node, state)
                return
            epoch = env.node_epoch(src_node)
            total = sum(ref.partition_bytes for ref in group)
            fetch_sid = obs.tracer.begin(
                "transport.jetty",
                f"fetch r{attempt.task_id}<-n{src_node}",
                segments=len(group),
                nbytes=total,
                attempt=tries,
            )
            if fetch_sid:
                obs.metrics.counter("transport.jetty.requests").add(len(group))
                for ref in group:
                    obs.tracer.edge(
                        ref.span_sid, fetch_sid, "shuffle", map_id=ref.map_id
                    )
                    if tries == 0:  # retries re-fetch the same output
                        obs.tracer.edge(
                            ref.span_sid, state.copy_sid, "avail", map_id=ref.map_id
                        )
            setup = env.jetty.request_setup * len(group)
            headers = env.jetty.header_bytes * len(group)
            seek_bytes = src.spec.disk_seek * src.disk.rate
            serve = src.disk.transfer(total + len(group) * seek_bytes)
            flow = env.cluster.send_flow(
                src_node,
                attempt.node,
                total + headers,
                extra_latency=setup,
                rate_cap=env.jetty.stream_peak,
                waiter_sid=fetch_sid,
            )
            done = sim.all_of([serve, flow.done])
            deadline = sim.timeout(cfg.fetch_timeout)
            failure = None
            try:
                yield sim.any_of([done, deadline])
            except FlowFailed:
                failure = "flow-lost"
            else:
                if not done.triggered:
                    env.cluster.network.cancel_flow(flow, reason="fetch-timeout")
                    failure = "timeout"
                elif not done.ok:
                    failure = "flow-lost"
            # The race is settled either way: tombstone the deadline so the
            # kernel never has to dispatch a dead timer (no-op if it fired).
            deadline.cancel()
            if failure is None and (
                env.is_node_dead(src_node) or env.node_epoch(src_node) != epoch
            ):
                _fetch_failed(env, group, src_node, state)
                obs.tracer.abort(fetch_sid, outcome="failed:source-died")
                obs.metrics.counter("transport.jetty.failed_fetches").add(len(group))
                fetch_sid = 0
                return
            if failure is None:
                state.shuffled_bytes += total
                state.fetches += len(group)
                state.completed_ids.update(r.map_id for r in group)
                state.inflight_ids.difference_update(r.map_id for r in group)
                state.host_failures.pop(src_node, None)
                state.penalty_until.pop(src_node, None)
                if fetch_sid:
                    obs.metrics.counter("transport.jetty.bytes").add(total)
                if state.shuffled_bytes > cfg.shuffle_memory_bytes:
                    state.spilled_to_disk = True
                if state.spilled_to_disk and total > 0:
                    yield env.cluster.node(attempt.node).disk_write(total)
                obs.tracer.edge(fetch_sid, state.copy_sid, "gather")
                obs.tracer.end(fetch_sid)
                fetch_sid = 0
                return
            # One failed attempt: count it, grow the host's penalty,
            # back off, try again.
            obs.tracer.abort(fetch_sid, outcome=f"failed:{failure}")
            obs.metrics.counter("transport.jetty.failed_fetches").add(len(group))
            fetch_sid = 0
            tries += 1
            state.retries += 1
            jt.fetch_retries += 1
            fails = state.host_failures.get(src_node, 0) + 1
            state.host_failures[src_node] = fails
            state.penalty_until[src_node] = sim.now + policy.delay(
                min(fails, policy.retries + 1)
            )
            if tries > policy.retries:
                # Exhausted against this host: one strike per map (the
                # 0.20 "too many fetch failures" report), then a fresh
                # round after a max-length wait.  The JobTracker
                # re-executes the maps at the strike threshold, at which
                # point _drop_moved hands the segments back.
                jt.fetch_failed(
                    [r.map_id for r in group], src_node, sim.now, definite=False
                )
                tries = 0
                delay = policy.delay(policy.retries + 1, state.rng)
                yield from _backoff(env, attempt, src_node, delay, "strike-wait")
            else:
                delay = policy.delay(tries, state.rng)
                yield from _backoff(env, attempt, src_node, delay, f"retry{tries}")
    except Interrupt:
        return  # the reducer's own node died mid-fetch
    finally:
        obs.tracer.abort(fetch_sid, outcome="interrupted")
        copiers.cancel(slot)
