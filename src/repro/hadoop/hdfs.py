"""HDFS namenode metadata: files, blocks, replica placement, locality.

Only metadata is simulated — block *contents* never exist; what matters
to the experiments is how many blocks a file has, where their replicas
live (that decides map-task locality), and how writes pipeline to
``replication`` datanodes (that decides reduce-output network traffic).

Placement follows the single-rack version of HDFS's default policy:
first replica on the writer's node, the rest on distinct random nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

import numpy as np

from repro.util.rng import make_rng


@dataclass(frozen=True)
class Block:
    """One HDFS block: id, size, and the nodes holding replicas."""

    block_id: int
    size: int
    replicas: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"block size may not be negative: {self.size}")
        if not self.replicas:
            raise ValueError("a block needs at least one replica")
        if len(set(self.replicas)) != len(self.replicas):
            raise ValueError(f"duplicate replica nodes: {self.replicas}")

    def is_local_to(self, node: int) -> bool:
        return node in self.replicas


@dataclass
class HdfsFile:
    """A file: ordered blocks."""

    name: str
    blocks: list[Block] = field(default_factory=list)

    @property
    def size(self) -> int:
        return sum(b.size for b in self.blocks)

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)


class HdfsNamespace:
    """The namenode: create files, place replicas, answer locality queries.

    ``datanodes`` are the node ids (in whatever id space the caller uses
    — the simulated cluster passes its worker node ids) that hold blocks.
    """

    def __init__(
        self,
        datanodes: "list[int] | int",
        block_size: int,
        replication: int,
        seed: int = 0,
    ):
        if isinstance(datanodes, int):
            datanodes = list(range(datanodes))
        if not datanodes:
            raise ValueError("need at least one datanode")
        if len(set(datanodes)) != len(datanodes):
            raise ValueError(f"duplicate datanode ids: {datanodes}")
        if replication < 1:
            raise ValueError(f"replication must be >= 1, got {replication}")
        self.datanodes = list(datanodes)
        self.block_size = block_size
        self.replication = min(replication, len(self.datanodes))
        self._files: dict[str, HdfsFile] = {}
        self._next_block_id = 0
        self._rng = make_rng(seed, "hdfs")
        # Times a write pipeline wanted more targets than live datanodes
        # could supply and was clamped (warning counter, never raises).
        self.clamped_placements = 0
        # Round-robin pointer so big files spread evenly (the paper
        # "distribute[s] all input data across all nodes").
        self._rr = 0

    # -- writes -------------------------------------------------------------
    def create_file(
        self, name: str, size: int, writer_node: Optional[int] = None
    ) -> HdfsFile:
        """Create ``name`` of ``size`` bytes; returns the file's metadata.

        With ``writer_node`` given, every block's first replica lands
        there (HDFS write affinity); otherwise first replicas round-robin
        across all datanodes — the balanced layout of a distcp-loaded
        benchmark input.
        """
        if name in self._files:
            raise ValueError(f"file exists: {name}")
        if size < 0:
            raise ValueError(f"file size may not be negative: {size}")
        f = HdfsFile(name)
        remaining = size
        while remaining > 0:
            blk_size = min(self.block_size, remaining)
            f.blocks.append(self._place_block(blk_size, writer_node))
            remaining -= blk_size
        if size == 0:
            pass  # empty file: zero blocks, like HDFS
        self._files[name] = f
        return f

    def _place_block(self, size: int, writer_node: Optional[int]) -> Block:
        if writer_node is not None:
            if writer_node not in self.datanodes:
                raise ValueError(f"writer node {writer_node} is not a datanode")
            first = writer_node
        else:
            first = self.datanodes[self._rr]
            self._rr = (self._rr + 1) % len(self.datanodes)
        others = [n for n in self.datanodes if n != first]
        extra = (
            list(self._rng.choice(others, size=self.replication - 1, replace=False))
            if self.replication > 1
            else []
        )
        block = Block(
            block_id=self._next_block_id,
            size=size,
            replicas=(first, *map(int, extra)),
        )
        self._next_block_id += 1
        return block

    # -- reads ---------------------------------------------------------------
    def lookup(self, name: str) -> HdfsFile:
        if name not in self._files:
            raise FileNotFoundError(name)
        return self._files[name]

    def exists(self, name: str) -> bool:
        return name in self._files

    def pick_replication_targets(
        self, writer_node: int, live: Optional[Iterable[int]] = None
    ) -> list[int]:
        """Datanodes for a new block's 2nd..Nth replicas (pipeline targets).

        ``live`` restricts the candidate pool to the given datanodes (the
        simulation passes the currently-alive, non-decommissioning set so
        a dead node is never chosen); ``live=None`` keeps the static
        behavior — and draws from the RNG identically, so clean runs are
        bit-for-bit unchanged.  A replication factor exceeding the pool
        clamps and bumps :attr:`clamped_placements` instead of
        mis-placing.
        """
        if live is None:
            pool = self.datanodes
        else:
            allowed = set(live)
            pool = [n for n in self.datanodes if n in allowed]
        others = [n for n in pool if n != writer_node]
        k = self.replication - 1
        if k <= 0:
            return []
        if not others:
            self.clamped_placements += 1
            return []
        if k > len(others):
            self.clamped_placements += 1
            k = len(others)
        return list(
            map(int, self._rng.choice(others, size=k, replace=False))
        )

    def locality_fraction(self, name: str, assignment: dict[int, int]) -> float:
        """Fraction of blocks whose assigned node (block_id -> node) holds
        a replica — the data-locality metric experiments report."""
        f = self.lookup(name)
        if not f.blocks:
            return 1.0
        local = sum(
            1
            for b in f.blocks
            if b.block_id in assignment and b.is_local_to(assignment[b.block_id])
        )
        return local / len(f.blocks)
