"""Performance-bench harness for the simulation engine (``python -m repro bench``).

PR 4 made the engine fast (incremental max-min, kernel tombstones, a
timer-wheel option) under the contract that **no simulated result may
change**.  This package is the other half of that contract: it measures
the speedups and simultaneously re-checks fast-vs-reference equality on
every run, writing both to ``BENCH_engine.json`` so the perf trajectory
is a tracked artifact rather than folklore.

* :mod:`repro.bench.engine` — the individual micro- and macro-benchmarks;
* :mod:`repro.bench.cli` — the ``python -m repro bench`` entry point.
"""

from repro.bench.engine import (
    BenchReport,
    bench_fig6,
    bench_kernel_cancel,
    bench_kernel_dispatch,
    bench_maxmin_churn,
    bench_maxmin_solver,
    bench_network_faults,
    run_bench,
)
from repro.bench.cli import main

__all__ = [
    "BenchReport",
    "bench_maxmin_solver",
    "bench_maxmin_churn",
    "bench_kernel_dispatch",
    "bench_kernel_cancel",
    "bench_fig6",
    "bench_network_faults",
    "run_bench",
    "main",
]
