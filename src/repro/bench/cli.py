"""``python -m repro bench`` — run the engine bench harness.

Writes ``BENCH_engine.json``: a :class:`repro.bench.engine.BenchReport`
with a :mod:`repro.obs` run manifest attached (config hash, git rev,
wall-clock), and exits non-zero if any fast-vs-reference comparison
diverged — the same contract the CI ``bench-smoke`` job enforces.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.bench.engine import run_bench
from repro.obs.manifest import build_manifest


def _parse_sizes(text: str) -> tuple[float, ...]:
    return tuple(float(tok) for tok in text.split(",") if tok.strip())


def _fmt_speedup(entry: dict) -> str:
    mark = "ok " if entry.get("identical", True) else "DIVERGED"
    if "speedup" not in entry:
        return f"{'-':>7}  {mark}"
    return f"{entry['speedup']:6.2f}x  {mark}"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro bench", description=__doc__
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced scale for CI smoke (small fig6 size, fewer flows/timers)",
    )
    parser.add_argument(
        "--sizes",
        type=str,
        default=None,
        help="comma-separated Figure-6 sizes in GB (default 1,10,100; quick: 1)",
    )
    parser.add_argument("--seed", type=int, default=2011)
    parser.add_argument(
        "--out",
        type=str,
        default="BENCH_engine.json",
        help="output path (default BENCH_engine.json)",
    )
    args = parser.parse_args(argv)

    sizes = _parse_sizes(args.sizes) if args.sizes else None
    t0 = time.perf_counter()
    report = run_bench(
        quick=args.quick,
        seed=args.seed,
        sizes_gb=sizes,
        progress=lambda msg: print(f"[bench] {msg}", flush=True),
    )
    wall = time.perf_counter() - t0
    report.manifest = build_manifest(
        experiment="bench_engine",
        config={
            "quick": args.quick,
            "seed": args.seed,
            "sizes_gb": list(sizes) if sizes else None,
        },
        seed=args.seed,
        wall_seconds=wall,
    ).to_dict()

    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    with out.open("w") as fh:
        json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")

    print(f"\nengine bench ({wall:.1f}s wall) -> {out}")
    for section in ("micro", "macro"):
        for name, entry in getattr(report, section).items():
            print(f"  {section}/{name:<16} {_fmt_speedup(entry)}")
    if report.divergence:
        print(
            "\nFAIL: fast-path results diverged from the reference solver",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
