"""``python -m repro bench`` — run the engine bench harness.

Writes ``BENCH_engine.json``: a :class:`repro.bench.engine.BenchReport`
with a :mod:`repro.obs` run manifest attached (config hash, git rev,
wall-clock), and exits non-zero if any fast-vs-reference comparison
diverged — the same contract the CI ``bench-smoke`` job enforces.

``--compare`` additionally diffs the run against the history file
(``BENCH_history.jsonl``; see :mod:`repro.bench.history`), appends the
fresh entry, and exits non-zero when a gated metric (a fast-vs-
reference speedup ratio) regressed beyond ``--threshold``.

When the scalability macro carries simulator self-profiles (see
:mod:`repro.simnet.profiler`), the per-leg wall-clock attributions are
also written to ``--self-profile-out`` (default
``BENCH_selfprofile.json`` next to ``--out``) together with their
``deterministic_view`` — the event counts with wall-clock stripped,
diffable across same-seed runs in CI.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.bench import history as history_mod
from repro.bench.engine import run_bench
from repro.obs.manifest import build_manifest


def _parse_sizes(text: str) -> tuple[float, ...]:
    return tuple(float(tok) for tok in text.split(",") if tok.strip())


def _collect_self_profiles(report) -> dict:
    """Pull ``self_profile`` snapshots out of the scalability macro,
    keyed ``"<kind>@<nodes>"``.  Empty when profiling was off."""
    legs: dict = {}
    per_nodes = report.macro.get("scalability", {}).get("per_nodes", {})
    for nodes, entry in sorted(per_nodes.items(), key=lambda kv: int(kv[0])):
        for kind, leg in sorted(entry.items()):
            prof = leg.get("self_profile") if isinstance(leg, dict) else None
            if prof is not None:
                legs[f"{kind}@{nodes}"] = prof
    return legs


def _fmt_speedup(entry: dict) -> str:
    mark = "ok " if entry.get("identical", True) else "DIVERGED"
    if "speedup" not in entry:
        return f"{'-':>7}  {mark}"
    return f"{entry['speedup']:6.2f}x  {mark}"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro bench", description=__doc__
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced scale for CI smoke (small fig6 size, fewer flows/timers)",
    )
    parser.add_argument(
        "--sizes",
        type=str,
        default=None,
        help="comma-separated Figure-6 sizes in GB (default 1,10,100; quick: 1)",
    )
    parser.add_argument("--seed", type=int, default=2011)
    parser.add_argument(
        "--out",
        type=str,
        default="BENCH_engine.json",
        help="output path (default BENCH_engine.json)",
    )
    parser.add_argument(
        "--compare",
        action="store_true",
        help="diff against the history file and gate on speedup regressions",
    )
    parser.add_argument(
        "--history",
        type=str,
        default="BENCH_history.jsonl",
        help="bench history JSONL (default BENCH_history.jsonl)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=None,
        help=f"gated-metric noise threshold (default {history_mod.DEFAULT_THRESHOLD})",
    )
    parser.add_argument(
        "--no-append",
        action="store_true",
        help="with --compare: don't record this run in the history file",
    )
    parser.add_argument(
        "--compare-json",
        type=str,
        default=None,
        help="with --compare: also write the per-metric deltas as JSON",
    )
    parser.add_argument(
        "--self-profile-out",
        type=str,
        default=None,
        help="simulator self-profile output path "
        "(default BENCH_selfprofile.json next to --out)",
    )
    args = parser.parse_args(argv)

    sizes = _parse_sizes(args.sizes) if args.sizes else None
    t0 = time.perf_counter()
    report = run_bench(
        quick=args.quick,
        seed=args.seed,
        sizes_gb=sizes,
        progress=lambda msg: print(f"[bench] {msg}", flush=True),
    )
    wall = time.perf_counter() - t0
    report.manifest = build_manifest(
        experiment="bench_engine",
        config={
            "quick": args.quick,
            "seed": args.seed,
            "sizes_gb": list(sizes) if sizes else None,
        },
        seed=args.seed,
        wall_seconds=wall,
    ).to_dict()

    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    with out.open("w") as fh:
        json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")

    profiles = _collect_self_profiles(report)
    if profiles:
        from repro.simnet.profiler import deterministic_view

        prof_out = Path(
            args.self_profile_out
            if args.self_profile_out
            else out.parent / "BENCH_selfprofile.json"
        )
        prof_out.parent.mkdir(parents=True, exist_ok=True)
        with prof_out.open("w") as fh:
            json.dump(
                {
                    "legs": profiles,
                    "deterministic_view": deterministic_view(
                        {"legs": profiles}
                    ),
                },
                fh,
                indent=2,
                sort_keys=True,
            )
            fh.write("\n")
        print(f"wrote {prof_out} ({len(profiles)} profiled legs)")

    print(f"\nengine bench ({wall:.1f}s wall) -> {out}")
    for section in ("micro", "macro"):
        for name, entry in getattr(report, section).items():
            print(f"  {section}/{name:<16} {_fmt_speedup(entry)}")
    status = 0
    if report.divergence:
        print(
            "\nFAIL: fast-path results diverged from the reference solver",
            file=sys.stderr,
        )
        status = 1

    if args.compare:
        threshold = (
            args.threshold
            if args.threshold is not None
            else history_mod.DEFAULT_THRESHOLD
        )
        entry = history_mod.make_entry(report.to_dict())
        past = history_mod.load_history(args.history)
        deltas, prev = history_mod.compare(entry, past, threshold=threshold)
        print()
        print(history_mod.render_comparison(deltas, prev, threshold))
        if args.compare_json:
            cmp_out = Path(args.compare_json)
            with cmp_out.open("w") as fh:
                json.dump(
                    {
                        "threshold": threshold,
                        "previous_rev": (prev or {}).get("git_rev"),
                        "deltas": [d.to_dict() for d in deltas],
                    },
                    fh,
                    indent=2,
                    sort_keys=True,
                )
                fh.write("\n")
            print(f"wrote {cmp_out}")
        if not args.no_append:
            history_mod.append_history(args.history, entry)
            print(f"appended to {args.history}")
        if any(d.regressed for d in deltas):
            print(
                f"\nFAIL: gated bench metric regressed beyond -{threshold:.0%}",
                file=sys.stderr,
            )
            status = status or 2
    return status


if __name__ == "__main__":
    raise SystemExit(main())
