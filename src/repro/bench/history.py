"""Bench history + regression gate (``python -m repro bench --compare``).

Every gated run appends one JSON line to a history file (default
``BENCH_history.jsonl``): flattened metrics plus the run manifest's git
rev/config hash.  ``--compare`` diffs the fresh run against the most
recent *compatible* entry (same ``--quick`` flag and size sweep) and
against the best compatible entry ever recorded, then exits non-zero
if a gated metric regressed beyond the noise threshold.

What gates and what doesn't: **speedup ratios gate** (fast-path vs
reference solver on the same machine in the same run — if that ratio
drops, the fast path genuinely lost its edge); absolute wall seconds
are reported with their deltas but never gate, because they measure
the host as much as the code and CI hosts vary wildly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

#: A gated metric must not drop below (1 - threshold) x previous.
DEFAULT_THRESHOLD = 0.25

#: Wall-clock keys reported (lower is better) but never gated.
_WALL_KEYS = ("fast_s", "run_s", "wheel_s", "total_fast_s")


def flatten_metrics(report: dict) -> dict[str, float]:
    """``section.name.metric -> value`` for every bench entry.

    ``*.speedup`` entries are the gated ratios; one wall-seconds key
    per entry rides along for context.
    """
    out: dict[str, float] = {}
    for section in ("micro", "macro"):
        for name, entry in (report.get(section) or {}).items():
            if not isinstance(entry, dict):
                continue
            prefix = f"{section}.{name}"
            if isinstance(entry.get("speedup"), (int, float)):
                out[f"{prefix}.speedup"] = float(entry["speedup"])
            for key in _WALL_KEYS:
                if isinstance(entry.get(key), (int, float)):
                    out[f"{prefix}.{key}"] = float(entry[key])
                    break
    return out


def is_gated(metric: str) -> bool:
    return metric.endswith(".speedup")


def make_entry(report: dict) -> dict:
    """One history line for a :class:`BenchReport` dict."""
    manifest = report.get("manifest") or {}
    return {
        "created_at": manifest.get("created_at"),
        "git_rev": manifest.get("git_rev"),
        "config_hash": manifest.get("config_hash"),
        "config": manifest.get("config") or {},
        "divergence": bool(report.get("divergence", False)),
        "metrics": flatten_metrics(report),
    }


def compatible(a: dict, b: dict) -> bool:
    """Entries are comparable when they benched the same workload."""
    ca, cb = a.get("config") or {}, b.get("config") or {}
    return (
        ca.get("quick") == cb.get("quick")
        and ca.get("sizes_gb") == cb.get("sizes_gb")
    )


def load_history(path: Union[str, Path]) -> list[dict]:
    path = Path(path)
    if not path.exists():
        return []
    entries = []
    with path.open() as fh:
        for line in fh:
            line = line.strip()
            if line:
                entries.append(json.loads(line))
    return entries


def append_history(path: Union[str, Path], entry: dict) -> None:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a") as fh:
        json.dump(entry, fh, sort_keys=True)
        fh.write("\n")


@dataclass(frozen=True)
class MetricDelta:
    """One metric, fresh run vs history."""

    metric: str
    current: float
    previous: Optional[float]
    best: Optional[float]
    #: Fractional change vs previous; positive = better.  Speedups are
    #: better higher, wall seconds better lower.
    delta: Optional[float]
    gated: bool
    regressed: bool

    def to_dict(self) -> dict:
        return {
            "metric": self.metric,
            "current": self.current,
            "previous": self.previous,
            "best": self.best,
            "delta": self.delta,
            "gated": self.gated,
            "regressed": self.regressed,
        }


def compare(
    entry: dict,
    history: list[dict],
    threshold: float = DEFAULT_THRESHOLD,
) -> tuple[list[MetricDelta], Optional[dict]]:
    """Diff ``entry`` against its most recent compatible predecessor.

    Returns the per-metric deltas and the predecessor used (None on a
    cold start — nothing gates then).
    """
    peers = [h for h in history if compatible(h, entry)]
    prev = peers[-1] if peers else None
    deltas: list[MetricDelta] = []
    for metric, value in sorted(entry["metrics"].items()):
        gated = is_gated(metric)
        prev_v = (prev or {}).get("metrics", {}).get(metric)
        best_v: Optional[float] = None
        for peer in peers:
            v = peer.get("metrics", {}).get(metric)
            if v is None:
                continue
            if best_v is None:
                best_v = v
            else:
                best_v = max(best_v, v) if gated else min(best_v, v)
        delta = None
        regressed = False
        if prev_v:
            better_higher = gated  # wall seconds are better lower
            delta = (value - prev_v) / prev_v
            if not better_higher:
                delta = -delta
            regressed = gated and delta < -threshold
        deltas.append(
            MetricDelta(
                metric=metric,
                current=value,
                previous=prev_v,
                best=best_v,
                delta=delta,
                gated=gated,
                regressed=regressed,
            )
        )
    return deltas, prev


def render_comparison(
    deltas: list[MetricDelta],
    prev: Optional[dict],
    threshold: float,
) -> str:
    """ASCII diff table; gated regressions flagged loudly."""
    if prev is None:
        return "bench history: cold start — nothing to compare against yet"
    lines = [
        "bench vs previous compatible run "
        f"(rev {str(prev.get('git_rev'))[:12]}, "
        f"gate: speedups within -{threshold:.0%}):",
        f"  {'metric':<32} {'current':>10} {'previous':>10} "
        f"{'delta':>8} {'best':>10}",
    ]
    for d in deltas:
        delta = f"{d.delta:+.1%}" if d.delta is not None else "-"
        prev_s = f"{d.previous:.4g}" if d.previous is not None else "-"
        best_s = f"{d.best:.4g}" if d.best is not None else "-"
        mark = "  REGRESSED" if d.regressed else ("" if d.gated else "  (info)")
        lines.append(
            f"  {d.metric:<32} {d.current:>10.4g} {prev_s:>10} "
            f"{delta:>8} {best_s:>10}{mark}"
        )
    n = sum(d.regressed for d in deltas)
    lines.append(
        f"  -> {n} gated regression(s)" if n else "  -> no gated regressions"
    )
    return "\n".join(lines)
