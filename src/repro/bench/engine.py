"""Micro- and macro-benchmarks of the simulation engine.

Every benchmark here does two jobs at once:

1. **time** the fast path against the reference implementation
   (``_maxmin_rates_reference`` / the plain binary heap), and
2. **verify** that both produce bit-for-bit identical simulated results
   — rates, completion times, exported metrics.

A benchmark that reports a speedup for a solver that diverged would be
worse than useless, so each result carries an ``identical`` flag and
:func:`run_bench` aggregates them into a top-level ``divergence`` bit
that the CLI (and the CI ``bench-smoke`` job) turns into a non-zero
exit status.

Timings use ``time.perf_counter``; micro-benchmarks report best-of-N
to shave scheduler noise, macro-benchmarks run once per solver (the
Figure-6 100 GB point is seconds, not microseconds).
"""

from __future__ import annotations

import gc
import json
import random
import time
from dataclasses import asdict, dataclass, field
from typing import Callable, Optional

from repro.simnet.engine import use_engine
from repro.simnet.kernel import Simulator
from repro.simnet.network import Network, use_solver

#: Paper testbed scale: 8 dual-NIC-ish nodes → star with 16 directed links.
_GIGE_BPS = 117e6


# ---------------------------------------------------------------------------
# report container
# ---------------------------------------------------------------------------


@dataclass
class BenchReport:
    """One harness run: micro + macro sections plus the divergence bit."""

    micro: dict = field(default_factory=dict)
    macro: dict = field(default_factory=dict)
    divergence: bool = False
    manifest: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return asdict(self)

    def record(self, section: str, name: str, result: dict) -> None:
        getattr(self, section)[name] = result
        if result.get("identical") is False:
            self.divergence = True
        # A same-seed rerun that exports different bytes is as
        # disqualifying as a cross-engine divergence.
        if result.get("deterministic") is False:
            self.divergence = True


def _best_of(fn: Callable[[], float], repeats: int) -> float:
    return min(fn() for _ in range(max(1, repeats)))


# ---------------------------------------------------------------------------
# micro: max-min solver
# ---------------------------------------------------------------------------


def _star_network(
    num_nodes: int, flows: int, caps_every: int, seed: int
) -> tuple[Simulator, Network]:
    """A star topology loaded with ``flows`` concurrent transfers.

    Every ``caps_every``-th flow carries a rate cap (the Hadoop-RPC
    virtual bottleneck), which is what makes the reference solver
    re-scan: each cap freeze restarts its link sweep.
    """
    sim = Simulator()
    net = Network(sim)
    links = []
    for n in range(num_nodes):
        links.append(
            (net.add_link(f"n{n}.up", _GIGE_BPS), net.add_link(f"n{n}.dn", _GIGE_BPS))
        )
    rng = random.Random(seed)
    for i in range(flows):
        src = rng.randrange(num_nodes)
        dst = rng.randrange(num_nodes)
        while dst == src:
            dst = rng.randrange(num_nodes)
        cap = 20e6 + rng.random() * 50e6 if i % caps_every == 0 else float("inf")
        net.transfer_flow(
            (links[src][0], links[dst][1]), 1e12, rate_cap=cap
        )
    return sim, net


def bench_maxmin_solver(
    flows: int = 400,
    num_nodes: int = 16,
    caps_every: int = 4,
    repeats: int = 5,
    solves: int = 40,
    seed: int = 2011,
) -> dict:
    """Time one full max-min solve, fast vs reference, same flow state.

    The fast solver is forced through its worst case — every link dirty,
    one connected component spanning the whole star — so the measured
    gain is the solver kernel itself (sorted-once links, maintained
    unfrozen counts, the cap cursor and cap batching), not the
    incremental dirty-set bookkeeping.
    """

    def run_ref() -> float:
        _, net = _star_network(num_nodes, flows, caps_every, seed)
        t0 = time.perf_counter()
        for _ in range(solves):
            net._maxmin_rates_reference()
        return time.perf_counter() - t0

    def run_fast() -> float:
        _, net = _star_network(num_nodes, flows, caps_every, seed)
        t0 = time.perf_counter()
        for _ in range(solves):
            net._dirty.update(net._links.values())
            net._maxmin_rates_fast()
        return time.perf_counter() - t0

    # Equality first: same state, both solvers, rates keyed by flow seq.
    _, net = _star_network(num_nodes, flows, caps_every, seed)
    net._dirty.update(net._links.values())
    net._maxmin_rates_fast()
    fast_rates = {f.seq: f.rate for f in net._flows}
    net._maxmin_rates_reference()
    ref_rates = {f.seq: f.rate for f in net._flows}

    ref_s = _best_of(run_ref, repeats) / solves
    fast_s = _best_of(run_fast, repeats) / solves
    return {
        "flows": flows,
        "links": 2 * num_nodes,
        "capped_flows": len(range(0, flows, caps_every)),
        "solves": solves,
        "repeats": repeats,
        "reference_ms_per_solve": ref_s * 1e3,
        "fast_ms_per_solve": fast_s * 1e3,
        "speedup": ref_s / fast_s if fast_s > 0 else float("inf"),
        "identical": fast_rates == ref_rates,
    }


def _churn_script(
    num_nodes: int, flows: int, kills_every: int, caps_every: int, seed: int
) -> tuple[Simulator, Network, list]:
    """Seeded arrival/kill churn over a star; returns the finish log.

    Arrivals are spread over time (so flow sets overlap but change),
    every ``kills_every``-th flow is killed mid-flight, and the log
    records ``(flow_seq, finish_time, ok)`` for an exact cross-solver
    comparison.
    """
    sim = Simulator()
    net = Network(sim)
    links = []
    for n in range(num_nodes):
        links.append(
            (net.add_link(f"n{n}.up", _GIGE_BPS), net.add_link(f"n{n}.dn", _GIGE_BPS))
        )
    rng = random.Random(seed)
    log: list = []

    def driver():
        live = []
        for i in range(flows):
            src = rng.randrange(num_nodes)
            dst = rng.randrange(num_nodes)
            while dst == src:
                dst = rng.randrange(num_nodes)
            cap = 30e6 + rng.random() * 60e6 if i % caps_every == 0 else float("inf")
            nbytes = 1e6 + rng.random() * 64e6
            flow = net.transfer_flow(
                (links[src][0], links[dst][1]), nbytes, rate_cap=cap
            )

            def _done(ev, f=flow):
                log.append((f.seq, sim.now, ev.ok))

            flow.done.callbacks.append(_done)
            flow.done.defuse()  # bench kills flows on purpose; don't raise
            live.append(flow)
            if i % kills_every == kills_every - 1:
                victim = live[rng.randrange(len(live))]
                net.fail_flow(victim, reason="bench-kill")
            yield sim.timeout(0.001 + rng.random() * 0.02)

    sim.process(driver(), name="churn-driver")
    return sim, net, log


def bench_maxmin_churn(
    flows: int = 600,
    num_nodes: int = 16,
    kills_every: int = 7,
    caps_every: int = 5,
    repeats: int = 3,
    seed: int = 2011,
) -> dict:
    """End-to-end churn: every start/finish/kill triggers a reallocation.

    This is the production shape of the win — the dirty-set skip path,
    component-restricted solves, and timer tombstones all participate.
    The finish log (flow seq, finish time, outcome) must match exactly.
    """

    def run_with(solver: str) -> tuple[float, list, float, dict]:
        with use_solver(solver):
            sim, net, log = _churn_script(
                num_nodes, flows, kills_every, caps_every, seed
            )
            t0 = time.perf_counter()
            end = sim.run()
            wall = time.perf_counter() - t0
        counters = {
            "rate_recomputes": net.rate_recomputes,
            "rate_recompute_flows": net.rate_recompute_flows,
            "rate_skips": net.rate_skips,
            "events_dispatched": sim.events_dispatched,
            "events_cancelled": sim.events_cancelled,
        }
        return wall, log, end, counters

    ref_wall, ref_log, ref_end, _ = run_with("reference")
    fast_wall, fast_log, fast_end, fast_counters = run_with("fast")
    for _ in range(repeats - 1):
        ref_wall = min(ref_wall, run_with("reference")[0])
        fast_wall = min(fast_wall, run_with("fast")[0])
    return {
        "flows": flows,
        "links": 2 * num_nodes,
        "repeats": repeats,
        "reference_s": ref_wall,
        "fast_s": fast_wall,
        "speedup": ref_wall / fast_wall if fast_wall > 0 else float("inf"),
        "identical": ref_log == fast_log and ref_end == fast_end,
        "sim_end": fast_end,
        "counters": fast_counters,
    }


# ---------------------------------------------------------------------------
# micro: kernel dispatch
# ---------------------------------------------------------------------------


def _timer_storm(
    sim: Simulator, timers: int, cancel_fraction: float, seed: int
) -> float:
    """Schedule a seeded storm of timeouts, cancel a fraction, run."""
    rng = random.Random(seed)
    pending = []
    for _ in range(timers):
        pending.append(sim.timeout(0.001 + rng.random() * 2.0))
    if cancel_fraction > 0:
        n_cancel = int(timers * cancel_fraction)
        for ev in rng.sample(pending, n_cancel):
            ev.cancel()
    t0 = time.perf_counter()
    sim.run()
    return time.perf_counter() - t0


def bench_kernel_dispatch(
    timers: int = 200_000, repeats: int = 3, seed: int = 2011, slot: float = 0.05
) -> dict:
    """Raw event dispatch: binary heap vs the slotted timer wheel."""
    heap_s = _best_of(lambda: _timer_storm(Simulator(), timers, 0.0, seed), repeats)
    wheel_s = _best_of(
        lambda: _timer_storm(Simulator(timer_slot=slot), timers, 0.0, seed), repeats
    )
    heap_end = Simulator()
    _timer_storm(heap_end, timers, 0.0, seed)
    wheel_end = Simulator(timer_slot=slot)
    _timer_storm(wheel_end, timers, 0.0, seed)
    return {
        "timers": timers,
        "repeats": repeats,
        "timer_slot": slot,
        "heap_s": heap_s,
        "wheel_s": wheel_s,
        "heap_events_per_s": timers / heap_s,
        "wheel_events_per_s": timers / wheel_s,
        "speedup": heap_s / wheel_s if wheel_s > 0 else float("inf"),
        "identical": heap_end.now == wheel_end.now,
    }


def bench_kernel_cancel(
    timers: int = 200_000,
    cancel_fraction: float = 0.9,
    repeats: int = 3,
    seed: int = 2011,
) -> dict:
    """The PR-3 retry/backoff shape: most timers are cancelled before firing.

    Tombstones make a cancel O(1); the bench shows what a 90 %-cancelled
    storm costs end-to-end (cancelled events still pop, but dispatch
    nothing).
    """
    run_s = _best_of(
        lambda: _timer_storm(Simulator(), timers, cancel_fraction, seed), repeats
    )
    sim = Simulator()
    _timer_storm(sim, timers, cancel_fraction, seed)
    return {
        "timers": timers,
        "cancel_fraction": cancel_fraction,
        "repeats": repeats,
        "run_s": run_s,
        "events_dispatched": sim.events_dispatched,
        "events_cancelled": sim.events_cancelled,
        "identical": sim.events_cancelled == int(timers * cancel_fraction),
    }


# ---------------------------------------------------------------------------
# macro: experiments, fast vs reference
# ---------------------------------------------------------------------------


def bench_fig6(
    sizes_gb: tuple[float, ...] = (1.0, 10.0, 100.0),
    seed: int = 2011,
    repeats: int = 5,
) -> dict:
    """Figure-6 WordCount at each size, full fast path vs full reference.

    The fast leg is the process default — vectorized flow engine plus
    fast solver; the reference leg pins *both* knobs back (``use_engine``
    + ``use_solver``), so the ratio measures the whole optimization
    stack.  Exports (the full Hadoop and MPI-D metrics dicts) are
    serialised with sorted keys and compared as strings — bit-for-bit,
    the same check the determinism CI applies.  Each leg is timed
    best-of-N with the reference leg first, so the fast leg never gets
    the cold-cache run and neither leg wears the machine's background
    noise alone.
    """
    from repro.experiments import fig6_wordcount as f6

    per_size: dict = {}
    total_fast = total_ref = 0.0
    all_identical = True
    for size in sizes_gb:
        fast_s = ref_s = float("inf")
        fast = ref = None
        for _ in range(max(1, repeats)):
            # Collect the previous leg's cycle garbage (tens of
            # thousands of flow/event closures) *outside* the timed
            # window — each leg is measured on its own allocations.
            with use_engine("reference"), use_solver("reference"):
                gc.collect()
                t0 = time.perf_counter()
                ref = f6.run(sizes_gb=(size,), seed=seed)
                ref_s = min(ref_s, time.perf_counter() - t0)
            gc.collect()
            t0 = time.perf_counter()
            fast = f6.run(sizes_gb=(size,), seed=seed)
            fast_s = min(fast_s, time.perf_counter() - t0)
        fast_json = json.dumps(
            {"hadoop": fast.hadoop_metrics, "mpid": fast.mpid_metrics},
            sort_keys=True,
        )
        ref_json = json.dumps(
            {"hadoop": ref.hadoop_metrics, "mpid": ref.mpid_metrics},
            sort_keys=True,
        )
        identical = fast_json == ref_json
        all_identical = all_identical and identical
        total_fast += fast_s
        total_ref += ref_s
        per_size[f"{size:g}"] = {
            "fast_s": fast_s,
            "reference_s": ref_s,
            "speedup": ref_s / fast_s if fast_s > 0 else float("inf"),
            "identical": identical,
        }
    return {
        "seed": seed,
        "sizes_gb": list(sizes_gb),
        "per_size": per_size,
        "total_fast_s": total_fast,
        "total_reference_s": total_ref,
        "speedup": total_ref / total_fast if total_fast > 0 else float("inf"),
        "identical": all_identical,
    }


def bench_network_faults(
    input_gb: float = 0.5,
    seeds: tuple[int, ...] = (2011,),
    rates: tuple[float, ...] = (120.0, 900.0),
    partitions: tuple[float, ...] = (5.0,),
) -> dict:
    """The lossy-network sweep (PR 3's stress workload), fast vs reference."""
    from repro.experiments import network_faults as nf

    t0 = time.perf_counter()
    fast = nf.run(
        input_gb=input_gb,
        seeds=seeds,
        rates_per_link_hour=rates,
        partition_durations=partitions,
    )
    fast_s = time.perf_counter() - t0
    with use_engine("reference"), use_solver("reference"):
        t0 = time.perf_counter()
        ref = nf.run(
            input_gb=input_gb,
            seeds=seeds,
            rates_per_link_hour=rates,
            partition_durations=partitions,
        )
        ref_s = time.perf_counter() - t0
    fast_json = json.dumps(asdict(fast), sort_keys=True, default=str)
    ref_json = json.dumps(asdict(ref), sort_keys=True, default=str)
    return {
        "input_gb": input_gb,
        "seeds": list(seeds),
        "rates_per_link_hour": list(rates),
        "partition_durations": list(partitions),
        "fast_s": fast_s,
        "reference_s": ref_s,
        "speedup": ref_s / fast_s if fast_s > 0 else float("inf"),
        "identical": fast_json == ref_json,
    }


def _scalability_single_job(
    nodes: int, seed: int, mib_per_worker: int, profiler=None
) -> tuple[float, str, int, float]:
    """One Hadoop WordCount on an ``nodes``-node cluster, input scaled
    with the worker count.  Returns (wall s, export JSON, events
    dispatched, simulated elapsed).  ``profiler`` (a
    :class:`~repro.simnet.profiler.SelfProfiler`) rides an extra,
    untimed leg only — never the timed comparisons."""
    from repro.hadoop import HadoopConfig, JobSpec, WORDCOUNT_PROFILE
    from repro.hadoop.simulation import HadoopSimulation
    from repro.simnet.cluster import ClusterSpec
    from repro.util.units import MiB

    workers = nodes - 1
    spec = JobSpec(
        name=f"scal-{nodes}n",
        input_bytes=workers * mib_per_worker * MiB,
        profile=WORDCOUNT_PROFILE,
        num_reduce_tasks=max(1, workers // 64),
    )
    hsim = HadoopSimulation(
        spec=spec,
        config=HadoopConfig(),
        cluster_spec=ClusterSpec(num_nodes=nodes),
        seed=seed,
    )
    if profiler is not None:
        hsim.sim.attach_profiler(profiler)
    t0 = time.perf_counter()
    metrics = hsim.run()
    wall = time.perf_counter() - t0
    export = json.dumps(metrics.to_dict(), sort_keys=True)
    return wall, export, hsim.sim.events_dispatched, metrics.elapsed


def _scalability_multi_tenant(
    nodes: int, seed: int, horizon: float, profiler=None
) -> tuple[float, str, int, float]:
    """A two-tenant arrival stream on an ``nodes``-node cluster, arrival
    rates scaled with the cluster so the offered load per node is
    constant across sweep points."""
    from repro.cluster import (
        MultiTenantEngine,
        QueueConfig,
        SchedulerConfig,
        TenantSpec,
    )
    from repro.hadoop.config import HadoopConfig
    from repro.simnet.cluster import ClusterSpec

    scale = nodes / 100.0
    tenants = [
        TenantSpec(
            name="batch",
            rate=0.02 * scale,
            profile="poisson",
            workloads=("javaSort", "streamSort"),
            min_input_bytes=64 * 2**20,
            max_input_bytes=512 * 2**20,
        ),
        TenantSpec(
            name="interactive",
            rate=0.03 * scale,
            profile="diurnal",
            workloads=("webdataScan",),
            max_input_bytes=128 * 2**20,
        ),
    ]
    queues = [
        QueueConfig(name="batch", weight=1.0, capacity=0.55, max_queued=64),
        QueueConfig(
            name="interactive", weight=2.0, capacity=0.45, max_queued=16
        ),
    ]
    engine = MultiTenantEngine(
        tenants,
        scheduler=SchedulerConfig(policy="fair"),
        queues=queues,
        cluster_spec=ClusterSpec(num_nodes=nodes),
        hadoop_config=HadoopConfig(map_slots=4, reduce_slots=4),
        seed=seed,
        horizon=horizon,
    )
    if profiler is not None:
        engine.setup()
        engine.sim.attach_profiler(profiler)
    t0 = time.perf_counter()
    report = engine.run()
    wall = time.perf_counter() - t0
    export = json.dumps(report, sort_keys=True)
    return wall, export, engine.sim.events_dispatched, report["makespan"]


def bench_scalability(
    node_counts: tuple[int, ...] = (200, 500, 1000),
    seed: int = 2011,
    mib_per_worker: int = 32,
    horizon: float = 240.0,
    profile: bool = True,
) -> dict:
    """Synthetic large clusters: vectorized vs reference flow engine.

    Both legs run the *same fast solver* — this macro isolates the flow
    engine (horizon batching, deferred solve flush, pooled ticks, shared
    heartbeat ticks), not the solver.  Per cluster size it runs a
    single Hadoop job (input scaled with workers, so heartbeat traffic
    dominates as the cluster grows) and a multi-tenant arrival stream,
    and reports wall time, dispatched-event counts, the engine speedup
    and two correctness bits:

    * ``identical`` — vectorized exports == reference exports,
      bit-for-bit (sorted-key JSON string compare);
    * ``deterministic`` — two same-seed vectorized runs export
      byte-identical results (the arena/slot reuse must not leak state
      between runs).

    When ``profile`` is set, one *extra, untimed* vectorized run per
    (nodes, kind) rides with a :class:`~repro.simnet.profiler.SelfProfiler`
    attached, and its wall-clock attribution snapshot lands in
    ``entry[kind]["self_profile"]``.  The profiler never touches the
    timed legs — the speedup numbers above are measured with the
    profiler detached, exactly as before.
    """
    from repro.simnet.profiler import SelfProfiler

    per_nodes: dict = {}
    total_vec = total_ref = 0.0
    all_identical = True
    for nodes in node_counts:
        entry: dict = {}
        for kind, runner in (
            (
                "single_job",
                lambda profiler=None: _scalability_single_job(
                    nodes, seed, mib_per_worker, profiler=profiler
                ),
            ),
            (
                "multi_tenant",
                lambda profiler=None: _scalability_multi_tenant(
                    nodes, seed, horizon, profiler=profiler
                ),
            ),
        ):
            with use_engine("reference"):
                ref_wall, ref_export, ref_events, sim_elapsed = runner()
            vec_wall, vec_export, vec_events, _ = runner()
            vec_wall2, vec_export2, _, _ = runner()
            vec_wall = min(vec_wall, vec_wall2)
            identical = vec_export == ref_export
            all_identical = all_identical and identical
            total_vec += vec_wall
            total_ref += ref_wall
            entry[kind] = {
                "vectorized_s": vec_wall,
                "reference_s": ref_wall,
                "speedup": ref_wall / vec_wall if vec_wall > 0 else float("inf"),
                "identical": identical,
                "deterministic": vec_export == vec_export2,
                "events_vectorized": vec_events,
                "events_reference": ref_events,
                "sim_elapsed_s": sim_elapsed,
            }
            if profile:
                prof = SelfProfiler(leg=f"{kind}@{nodes}")
                runner(profiler=prof)
                entry[kind]["self_profile"] = prof.snapshot()
        per_nodes[str(nodes)] = entry
    return {
        "seed": seed,
        "node_counts": list(node_counts),
        "mib_per_worker": mib_per_worker,
        "horizon_s": horizon,
        "per_nodes": per_nodes,
        "total_fast_s": total_vec,
        "total_reference_s": total_ref,
        "speedup": total_ref / total_vec if total_vec > 0 else float("inf"),
        "identical": all_identical,
        "deterministic": all(
            leg["deterministic"]
            for entry in per_nodes.values()
            for leg in entry.values()
        ),
    }


# ---------------------------------------------------------------------------
# harness
# ---------------------------------------------------------------------------


def run_bench(
    quick: bool = False,
    seed: int = 2011,
    sizes_gb: Optional[tuple[float, ...]] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> BenchReport:
    """Run the full harness; ``quick`` shrinks every knob for CI smoke.

    The report's ``manifest`` is filled by the CLI (it owns wall-clock
    accounting); library callers get it empty.
    """
    say = progress or (lambda msg: None)
    report = BenchReport()
    if sizes_gb is None:
        sizes_gb = (1.0,) if quick else (1.0, 10.0, 100.0)
    micro_flows = 120 if quick else 400
    churn_flows = 150 if quick else 600
    timers = 30_000 if quick else 200_000
    repeats = 2 if quick else 3

    say("micro: max-min solver (full re-solve, worst case)")
    report.record(
        "micro",
        "maxmin_solver",
        bench_maxmin_solver(
            flows=micro_flows, repeats=repeats + 2, solves=10 if quick else 40, seed=seed
        ),
    )
    say("micro: max-min churn (incremental, production shape)")
    report.record(
        "micro",
        "maxmin_churn",
        bench_maxmin_churn(flows=churn_flows, repeats=repeats, seed=seed),
    )
    say("micro: kernel dispatch (heap vs timer wheel)")
    report.record(
        "micro", "kernel_dispatch", bench_kernel_dispatch(timers=timers, repeats=repeats, seed=seed)
    )
    say("micro: kernel cancel storm (tombstones)")
    report.record(
        "micro", "kernel_cancel", bench_kernel_cancel(timers=timers, repeats=repeats, seed=seed)
    )
    # The micros above churned hundreds of thousands of timer objects;
    # collect the garbage and freeze the survivors so the macros' timed
    # legs never pay gen-2 scans over a heap they didn't allocate.  The
    # fast leg packs the same allocations into fewer wall seconds, so
    # stray GC pauses bias the *ratio*, not just the absolute numbers.
    gc.collect()
    gc.freeze()
    say(f"macro: Figure-6 WordCount at {', '.join(f'{s:g}' for s in sizes_gb)} GB")
    report.record(
        "macro",
        "fig6",
        bench_fig6(sizes_gb=sizes_gb, seed=seed, repeats=1 if quick else 5),
    )
    scal_nodes = (100,) if quick else (200, 500, 1000)
    say(
        "macro: scalability (engine A/B at "
        + ", ".join(str(n) for n in scal_nodes)
        + " nodes)"
    )
    report.record(
        "macro",
        "scalability",
        bench_scalability(
            node_counts=scal_nodes,
            seed=seed,
            mib_per_worker=16 if quick else 32,
            horizon=120.0 if quick else 240.0,
        ),
    )
    say("macro: network-fault sweep")
    if quick:
        report.record(
            "macro",
            "network_faults",
            bench_network_faults(
                input_gb=0.25, seeds=(seed,), rates=(900.0,), partitions=(5.0,)
            ),
        )
    else:
        report.record(
            "macro",
            "network_faults",
            bench_network_faults(input_gb=0.5, seeds=(seed,)),
        )
    return report
