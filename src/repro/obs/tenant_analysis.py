"""Per-tenant capacity-planning analysis of multi-tenant traces.

PR 5's critical-path analyzer explains one job; the multi-tenant engine
produces traces where the interesting question is per *tenant*: of the
time tenant A's jobs spent in the system, how much was queue wait, how
much was work thrown away by preemption, how much was shuffle (the
paper's copy stage), and how much was the rest of the runtime?  This
module answers that from the ``tenant.queue``/``tenant.job`` spans and
``tenant.preempt``/``tenant.shed`` instants the engine records, plus the
per-job ``hadoop.job``/``mpid.job`` DAGs for the shuffle split.

It also carries the Coz-style what-if machinery over to scheduler
knobs.  A projection replays the traced arrival/service history through
a deterministic greedy FIFO queue model with the knob turned:

* :func:`project_queue_capacity` — raise a queue's ``max_running``;
* :func:`project_drop_tenant` — remove one tenant's offered load
  ("what does preempting tenant B buy tenant A?");
* :func:`project_add_nodes` — scale each job's map waves to a larger
  cluster, shrinking the map critical-path seconds accordingly.

Replayed baselines are reported next to the observed ones so the
projection error decomposes into model error vs knob effect; the
validation loop (re-running the simulator with the knob actually
turned) lives in :mod:`repro.experiments.capacity`, mirroring how
:mod:`repro.experiments.critical_path` owns PR 5's knob mapping.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.obs.analysis import TraceDAG, critical_path
from repro.obs.tracer import SpanTracer

#: Blame buckets, in display order.  They tile each tenant's total
#: job-seconds (sum of per-job latencies) exactly.
TENANT_BUCKETS = ("queue_wait", "preemption", "shuffle", "runtime")


@dataclass
class TenantJob:
    """One submission reconstructed from its tenant spans."""

    job_id: int
    tenant: str
    queue: str
    name: str
    runtime: str  # "hadoop" | "mpid" | ""
    submitted: float
    dispatched: Optional[float] = None
    finished: Optional[float] = None
    outcome: str = "unfinished"
    #: Attempt-seconds preemption threw away (from instant ``lost_s``).
    preempt_lost: float = 0.0

    @property
    def queue_wait(self) -> float:
        if self.dispatched is None:
            return 0.0
        return self.dispatched - self.submitted

    @property
    def service(self) -> float:
        """Dispatch-to-finish seconds (the job span's duration)."""
        if self.dispatched is None or self.finished is None:
            return 0.0
        return self.finished - self.dispatched

    @property
    def latency(self) -> float:
        if self.finished is None:
            return 0.0
        return self.finished - self.submitted


def jobs_from_tracer(tracer: SpanTracer) -> list[TenantJob]:
    """Pair every ``tenant.queue``/``tenant.job`` span into job records.

    Pairing uses the ``job_id`` span arg when present (engine traces
    since the capacity-planning work write it) and falls back to
    in-order name matching per track for older stores.  Admission-shed
    submissions (a ``tenant.shed`` instant, no queue span) are included
    with ``outcome="shed"`` and no dispatch.
    """
    jobs: dict[tuple, TenantJob] = {}
    by_jid: dict[int, TenantJob] = {}
    #: (track, name) -> jobs whose run span has not been claimed yet.
    unclaimed: dict[tuple[str, str], list[TenantJob]] = {}
    synthetic = -1

    def tenant_of(track: str, args: dict) -> str:
        t = args.get("tenant")
        if t:
            return t
        return track.split(":", 1)[1] if ":" in track else track

    for span in tracer.spans:
        if span.category == "tenant.queue":
            tenant = tenant_of(span.track, span.args)
            jid = span.args.get("job_id")
            if jid is None:
                jid, synthetic = synthetic, synthetic - 1
            job = TenantJob(
                job_id=jid,
                tenant=tenant,
                queue=span.args.get("queue", tenant),
                name=span.name,
                runtime=span.args.get("runtime", ""),
                submitted=span.t0,
            )
            outcome = span.args.get("outcome")
            if outcome == "shed":
                job.outcome = "shed"
                job.finished = span.t1
            elif outcome == "dispatched":
                job.dispatched = span.t1
                unclaimed.setdefault((span.track, span.name), []).append(job)
            jobs[(span.track, span.t0, span.sid)] = job
            by_jid[jid] = job
        elif span.category == "tenant.job":
            jid = span.args.get("job_id")
            job = by_jid.get(jid) if jid is not None else None
            if job is None:
                stack = unclaimed.get((span.track, span.name), [])
                job = stack.pop(0) if stack else None
            else:
                stack = unclaimed.get((span.track, span.name), [])
                if job in stack:
                    stack.remove(job)
            if job is None:  # run span with no queue span: synthesize
                tenant = tenant_of(span.track, span.args)
                job = TenantJob(
                    job_id=span.args.get("job_id", synthetic),
                    tenant=tenant,
                    queue=span.args.get("queue", tenant),
                    name=span.name,
                    runtime=span.args.get("runtime", ""),
                    submitted=span.t0,
                )
                synthetic -= 1
                jobs[(span.track, span.t0, span.sid)] = job
            job.dispatched = span.t0
            if span.t1 is not None:
                job.finished = span.t1
                job.outcome = span.args.get("outcome", "done")
            if not job.runtime:
                job.runtime = span.args.get("runtime", "")

    # Admission sheds recorded only as instants (no queue span).
    for inst in tracer.instants:
        if inst.category != "tenant.shed":
            continue
        tenant = tenant_of(inst.track, inst.args)
        jid = inst.args.get("job_id")
        if jid is not None and jid in by_jid:
            continue
        job = TenantJob(
            job_id=jid if jid is not None else synthetic,
            tenant=tenant,
            queue=inst.args.get("queue", tenant),
            name=inst.name,
            runtime="",
            submitted=inst.time,
            finished=inst.time,
            outcome="shed",
        )
        synthetic -= 1
        jobs[(inst.track, inst.time, -job.job_id)] = job
        if jid is not None:
            by_jid[jid] = job

    out = sorted(jobs.values(), key=lambda j: (j.submitted, j.tenant, j.name))
    # Attribute preemption losses to the victim job by name + interval.
    for inst in tracer.instants:
        if inst.category != "tenant.preempt":
            continue
        lost = float(inst.args.get("lost_s", 0.0))
        victim = inst.name.split(" -", 1)[0]
        for job in out:
            if (
                job.name == victim
                and job.dispatched is not None
                and job.dispatched <= inst.time
                and (job.finished is None or inst.time <= job.finished)
            ):
                job.preempt_lost += lost
                break
    return out


# -- blame ----------------------------------------------------------------------


def _job_dag_roots(tracer: SpanTracer) -> dict[tuple[str, float], int]:
    """(job name, start time) -> runtime job-span sid, for shuffle blame."""
    roots: dict[tuple[str, float], int] = {}
    for span in tracer.spans:
        if span.category in ("hadoop.job", "mpid.job"):
            roots[(span.name, round(span.t0, 9))] = span.sid
    return roots


def tenant_blame(
    tracer: SpanTracer, dag: Optional[TraceDAG] = None
) -> dict[str, dict]:
    """Per-tenant blame buckets over completed jobs.

    For every tenant, tiles the total job-seconds (sum of completed
    jobs' submit-to-finish latencies) into queue-wait, preemption loss,
    shuffle (per-job critical-path copy seconds) and remaining runtime.
    """
    jobs = jobs_from_tracer(tracer)
    if dag is None:
        dag = TraceDAG.from_tracer(tracer, name="tenants")
    roots = _job_dag_roots(tracer)
    out: dict[str, dict] = {}
    for job in jobs:
        entry = out.setdefault(
            job.tenant,
            {
                "queue": job.queue,
                "jobs": 0,
                "completed": 0,
                "shed": 0,
                "failed": 0,
                "total_seconds": 0.0,
                "blame_seconds": {b: 0.0 for b in TENANT_BUCKETS},
            },
        )
        entry["jobs"] += 1
        if job.outcome == "shed":
            entry["shed"] += 1
            continue
        if job.outcome == "failed":
            entry["failed"] += 1
        if job.outcome != "done":
            continue
        entry["completed"] += 1
        service = job.service
        preempt = min(job.preempt_lost, service)
        copy_s = 0.0
        sid = roots.get((job.name, round(job.dispatched, 9)))
        if sid is not None:
            cp = critical_path(dag, root=sid)
            copy_s = cp.seconds_in(stage="copy")
        shuffle = min(copy_s, service - preempt)
        blame = entry["blame_seconds"]
        blame["queue_wait"] += job.queue_wait
        blame["preemption"] += preempt
        blame["shuffle"] += shuffle
        blame["runtime"] += service - preempt - shuffle
        entry["total_seconds"] += job.latency
    for entry in out.values():
        total = entry["total_seconds"]
        entry["blame_pct"] = {
            b: (100.0 * s / total if total > 0 else 0.0)
            for b, s in entry["blame_seconds"].items()
        }
    return out


# -- capacity projections --------------------------------------------------------


@dataclass(frozen=True)
class CapacityProjection:
    """One scheduler-knob what-if, Coz-style but for queue structure."""

    knob: str  #: "queue_capacity" | "drop_tenant" | "add_nodes"
    detail: dict
    tenant: str  #: tenant whose metric is projected ("" = whole queue)
    metric: str  #: what ``baseline``/``predicted`` measure
    baseline_observed: float  #: the metric as traced
    baseline_replayed: float  #: the metric under the replay model, knob off
    predicted: float  #: the metric under the replay model, knob on

    @property
    def predicted_delta(self) -> float:
        return self.baseline_observed - self.predicted

    def to_dict(self) -> dict:
        return {
            "knob": self.knob,
            "detail": self.detail,
            "tenant": self.tenant,
            "metric": self.metric,
            "baseline_observed": self.baseline_observed,
            "baseline_replayed": self.baseline_replayed,
            "predicted": self.predicted,
            "predicted_delta": self.predicted_delta,
        }


def replay_fifo(
    jobs: Iterable[TenantJob],
    servers: int,
    services: Optional[dict[int, float]] = None,
) -> dict[int, tuple[float, float]]:
    """Greedy FIFO replay of (submit, service) pairs through ``servers``
    dispatch slots; returns job_id -> (start, finish).

    This is the engine's dispatch discipline in miniature: jobs start in
    submit order as soon as a slot frees (``max_running`` slots per
    queue), each holding its slot for its traced service time.  It is
    exact when jobs do not contend for task slots *inside* the cluster,
    and a calibrated first-order model otherwise — which is why
    projections carry ``baseline_replayed`` alongside the observation.
    """
    if servers < 1:
        raise ValueError(f"servers must be >= 1, got {servers}")
    free = [0.0] * servers
    heapq.heapify(free)
    out: dict[int, tuple[float, float]] = {}
    ordered = sorted(jobs, key=lambda j: (j.submitted, j.job_id))
    for job in ordered:
        svc = (
            services.get(job.job_id, job.service)
            if services is not None
            else job.service
        )
        start = max(job.submitted, heapq.heappop(free))
        finish = start + svc
        heapq.heappush(free, finish)
        out[job.job_id] = (start, finish)
    return out


def _tenant_makespan(
    jobs: list[TenantJob],
    finishes: Optional[dict[int, tuple[float, float]]] = None,
    tenant: str = "",
) -> float:
    """First submit to last finish for ``tenant`` (all tenants when "")."""
    mine = [j for j in jobs if not tenant or j.tenant == tenant]
    if not mine:
        return 0.0
    t0 = min(j.submitted for j in mine)
    if finishes is None:
        t1 = max(j.finished or j.submitted for j in mine)
    else:
        t1 = max(finishes[j.job_id][1] for j in mine if j.job_id in finishes)
    return t1 - t0


def _completed(jobs: Iterable[TenantJob], queue: str) -> list[TenantJob]:
    return [j for j in jobs if j.queue == queue and j.outcome == "done"]


def project_queue_capacity(
    jobs: Iterable[TenantJob],
    queue: str,
    max_running: int,
    new_max_running: int,
    tenant: str = "",
) -> CapacityProjection:
    """What if ``queue`` could dispatch ``new_max_running`` jobs at once?"""
    qjobs = _completed(jobs, queue)
    base = replay_fifo(qjobs, max_running)
    new = replay_fifo(qjobs, new_max_running)
    return CapacityProjection(
        knob="queue_capacity",
        detail={"queue": queue, "max_running": max_running,
                "new_max_running": new_max_running},
        tenant=tenant,
        metric="makespan",
        baseline_observed=_tenant_makespan(qjobs, tenant=tenant),
        baseline_replayed=_tenant_makespan(qjobs, base, tenant=tenant),
        predicted=_tenant_makespan(qjobs, new, tenant=tenant),
    )


def project_drop_tenant(
    jobs: Iterable[TenantJob],
    queue: str,
    victim: str,
    beneficiary: str,
    max_running: int,
) -> CapacityProjection:
    """What does removing ``victim``'s load buy ``beneficiary``?"""
    qjobs = _completed(jobs, queue)
    base = replay_fifo(qjobs, max_running)
    kept = [j for j in qjobs if j.tenant != victim]
    new = replay_fifo(kept, max_running)
    return CapacityProjection(
        knob="drop_tenant",
        detail={"queue": queue, "victim": victim},
        tenant=beneficiary,
        metric="makespan",
        baseline_observed=_tenant_makespan(qjobs, tenant=beneficiary),
        baseline_replayed=_tenant_makespan(qjobs, base, tenant=beneficiary),
        predicted=_tenant_makespan(kept, new, tenant=beneficiary),
    )


def project_add_nodes(
    tracer: SpanTracer,
    jobs: Iterable[TenantJob],
    queue: str,
    max_running: int,
    map_slots: int,
    new_map_slots: int,
    tenant: str = "",
    dag: Optional[TraceDAG] = None,
) -> CapacityProjection:
    """What if the cluster had ``new_map_slots`` map slots per job?

    First-order map-wave model: a job with M maps runs them in
    ``ceil(M / slots)`` waves, so its *map* critical-path seconds scale
    by the wave ratio; copy/sort/reduce time is left alone.  Per-job map
    seconds and map counts come from the job's own DAG (the
    ``hadoop.job`` span's ``maps`` arg and critical-path map blame).
    """
    import math

    qjobs = _completed(jobs, queue)
    if dag is None:
        dag = TraceDAG.from_tracer(tracer, name="tenants")
    roots = _job_dag_roots(tracer)
    services: dict[int, float] = {}
    for job in qjobs:
        svc = job.service
        sid = roots.get((job.name, round(job.dispatched, 9)))
        if sid is not None:
            cp = critical_path(dag, root=sid)
            map_s = cp.seconds_in(stage="map")
            maps = int(dag.spans[sid].args.get("maps", 0))
            if maps > 0 and map_s > 0:
                waves = math.ceil(maps / max(1, map_slots))
                new_waves = math.ceil(maps / max(1, new_map_slots))
                svc = svc - map_s * (1.0 - new_waves / waves)
        services[job.job_id] = max(0.0, svc)
    base = replay_fifo(qjobs, max_running)
    new = replay_fifo(qjobs, max_running, services=services)
    return CapacityProjection(
        knob="add_nodes",
        detail={"queue": queue, "map_slots": map_slots,
                "new_map_slots": new_map_slots},
        tenant=tenant,
        metric="makespan",
        baseline_observed=_tenant_makespan(qjobs, tenant=tenant),
        baseline_replayed=_tenant_makespan(qjobs, base, tenant=tenant),
        predicted=_tenant_makespan(qjobs, new, tenant=tenant),
    )


# -- one-call analysis -----------------------------------------------------------


def analyze_tenants(
    tracer: SpanTracer,
    projections: Iterable[CapacityProjection] = (),
) -> dict:
    """Full per-tenant analysis of one multi-tenant trace, JSON-ready."""
    jobs = jobs_from_tracer(tracer)
    dag = TraceDAG.from_tracer(tracer, name="tenants")
    blame = tenant_blame(tracer, dag=dag)
    preempts = [i for i in tracer.instants if i.category == "tenant.preempt"]
    sheds = [i for i in tracer.instants if i.category == "tenant.shed"]
    return {
        "system": "tenants",
        "jobs": len(jobs),
        "completed": sum(1 for j in jobs if j.outcome == "done"),
        "failed": sum(1 for j in jobs if j.outcome == "failed"),
        "shed": sum(1 for j in jobs if j.outcome == "shed"),
        "preempt_events": len(preempts),
        "preempt_lost_seconds": sum(
            float(i.args.get("lost_s", 0.0)) for i in preempts
        ),
        "shed_events": len(sheds),
        "makespan": _tenant_makespan(jobs),
        "tenants": blame,
        "projections": [p.to_dict() for p in projections],
    }


def format_tenant_analysis(report: dict) -> str:
    """Human-readable rendering of one :func:`analyze_tenants` result."""
    lines = [
        f"== tenants: {report['jobs']} jobs "
        f"({report['completed']} done, {report['failed']} failed, "
        f"{report['shed']} shed) over {report['makespan']:.2f} s ==",
        "",
        "per-tenant blame (tiles each tenant's job-seconds):",
    ]
    for tenant in sorted(report["tenants"]):
        entry = report["tenants"][tenant]
        lines.append(
            f"  {tenant:<14} queue={entry['queue']:<10} "
            f"{entry['completed']}/{entry['jobs']} done  "
            f"{entry['total_seconds']:>10.2f} s total"
        )
        for bucket in TENANT_BUCKETS:
            secs = entry["blame_seconds"][bucket]
            pct = entry["blame_pct"][bucket]
            lines.append(f"    {bucket:<11} {secs:>10.2f} s  {pct:>6.2f} %")
    if report["preempt_events"]:
        lines.append("")
        lines.append(
            f"preemptions: {report['preempt_events']} events, "
            f"{report['preempt_lost_seconds']:.2f} s of work lost"
        )
    if report["projections"]:
        lines.append("")
        lines.append("capacity what-ifs (replay model; validate by re-run):")
        for p in report["projections"]:
            who = p["tenant"] or "all"
            lines.append(
                f"  {p['knob']:<15} {who:<12} {p['metric']}: "
                f"{p['baseline_observed']:>9.2f} s -> {p['predicted']:>9.2f} s "
                f"(replayed baseline {p['baseline_replayed']:.2f} s)"
            )
    return "\n".join(lines)
