"""Span-based tracing with explicit span IDs, nesting and categories.

A *span* is an interval of simulated time with a category (``"net"``,
``"hadoop.map"``, ...), a name, and a *track* — the horizontal lane it
renders on (one per task attempt, per flow, per node — whatever the
instrumented model picks).  Spans nest two ways:

* implicitly: a ``begin`` on a track with an open span becomes that
  span's child (a per-track stack, like call frames);
* explicitly: pass ``parent=<sid>`` and the child inherits the parent's
  track.

``begin`` returns an integer span ID; ``end(sid)`` closes it.  IDs make
re-entrant names safe (two retries of ``map3`` are two distinct spans)
and survive out-of-order closing — the old label-matching tracer in
:mod:`repro.simnet.trace` could do neither.

The tracer never schedules simulator events and never consumes
randomness: tracing on or off, the simulated event sequence is
identical.  ``NULL_TRACER`` is the disabled twin — ``begin`` returns 0,
``end(0)`` is a no-op — so instrumented code needs no branching.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional


class TraceError(RuntimeError):
    """Misused tracer API (double end, unknown span id, ...)."""


@dataclass
class Span:
    """One interval of simulated time; ``t1 is None`` while still open."""

    sid: int
    parent: int  # 0 = root
    category: str
    name: str
    track: str
    t0: float
    t1: Optional[float] = None
    args: dict = field(default_factory=dict)

    @property
    def open(self) -> bool:
        return self.t1 is None

    @property
    def duration(self) -> float:
        if self.t1 is None:
            raise TraceError(f"span {self.sid} ({self.name!r}) is still open")
        return self.t1 - self.t0


@dataclass(frozen=True)
class Instant:
    """A point event (fault injected, message sent, ...)."""

    time: float
    category: str
    name: str
    track: str
    args: dict = field(default_factory=dict)


@dataclass(frozen=True)
class Edge:
    """An explicit happens-before edge between two spans.

    Parent/child nesting covers most structure for free, but some
    dependencies cross tracks: a shuffle fetch depends on the map
    attempt whose output it pulls, a copy phase gathers from many
    fetches, an MPI-D recv waits on flows issued by remote mappers.
    ``kind`` names the dependency ("shuffle", "flow", "barrier", ...)
    so the DAG builder and critical-path walker can attribute wait
    time to it.
    """

    src: int  #: the span that must finish first
    dst: int  #: the span that (partly) waits on it
    kind: str
    time: float  #: simulated time the edge was recorded
    args: dict = field(default_factory=dict)


class SpanTracer:
    """Collects spans and instants against a simulated-time clock.

    ``sink`` (default None) is an optional streaming listener — an
    object with ``on_begin(span)``, ``on_end(sid, t1, args)``,
    ``on_instant(instant)`` and ``on_edge(edge)`` — notified in exactly
    the order events are recorded.  The streaming trace store
    (:mod:`repro.obs.store`) uses it to append events to disk as they
    happen instead of holding the whole trace in memory twice.
    """

    def __init__(self, clock: Callable[[], float]):
        self._clock = clock
        self.enabled = True
        #: Spans in begin order; ``sid`` is the 1-based index into this list.
        self.spans: list[Span] = []
        self.instants: list[Instant] = []
        self.edges: list[Edge] = []
        self.sink = None
        self._open_by_track: dict[str, list[int]] = {}

    # -- recording ------------------------------------------------------------
    def begin(
        self,
        category: str,
        name: str,
        *,
        track: Optional[str] = None,
        parent: int = 0,
        **args: Any,
    ) -> int:
        """Open a span; returns its ID (0 when tracing is disabled).

        ``parent=<sid>`` nests explicitly (and inherits the parent's
        track); otherwise the span nests under the innermost open span
        of its track.  ``track=None`` without a parent mints a fresh
        unique track — the right default for top-level units of work
        that may overlap (task attempts, flows).
        """
        if not self.enabled:
            return 0
        sid = len(self.spans) + 1
        if parent:
            if not 1 <= parent <= len(self.spans):
                raise TraceError(f"unknown parent span id {parent}")
            if track is None:
                track = self.spans[parent - 1].track
        if track is None:
            track = f"{name}#{sid}"
        stack = self._open_by_track.setdefault(track, [])
        if not parent and stack:
            parent = stack[-1]
        span = Span(sid, parent, category, name, track, self._clock(), None, args)
        self.spans.append(span)
        stack.append(sid)
        if self.sink is not None:
            self.sink.on_begin(span)
        return sid

    def end(self, sid: int, **args: Any) -> None:
        """Close span ``sid`` at the current time.  ``end(0)`` is a no-op."""
        if sid == 0:
            return
        if not 1 <= sid <= len(self.spans):
            raise TraceError(f"unknown span id {sid}")
        span = self.spans[sid - 1]
        if span.t1 is not None:
            raise TraceError(f"span {sid} ({span.name!r}) already ended")
        span.t1 = self._clock()
        if args:
            span.args.update(args)
        stack = self._open_by_track.get(span.track)
        if stack and sid in stack:
            stack.remove(sid)
        if self.sink is not None:
            self.sink.on_end(sid, span.t1, args)

    def abort(self, sid: int, **args: Any) -> None:
        """Close ``sid`` and every open descendant on its track (LIFO).

        The interrupt-safe close: a crashed task ends all the phase
        spans it had open at the moment the kernel threw into it.
        """
        if sid == 0:
            return
        if not 1 <= sid <= len(self.spans):
            raise TraceError(f"unknown span id {sid}")
        span = self.spans[sid - 1]
        stack = self._open_by_track.get(span.track, [])
        if sid not in stack:
            return  # already closed
        while stack:
            top = stack[-1]
            self.end(top, **args)
            if top == sid:
                break

    def instant(
        self, category: str, name: str, *, track: str = "events", **args: Any
    ) -> None:
        """Record a point event."""
        if not self.enabled:
            return
        inst = Instant(self._clock(), category, name, track, args)
        self.instants.append(inst)
        if self.sink is not None:
            self.sink.on_instant(inst)

    def edge(self, src: int, dst: int, kind: str = "dep", **args: Any) -> None:
        """Record that span ``dst`` causally waits on span ``src``.

        Either sid being 0 (a span begun while tracing was off, or a
        dependency the caller could not resolve) makes this a no-op, so
        instrumented code never branches on whether tracing is on.
        """
        if not self.enabled or src == 0 or dst == 0:
            return
        n = len(self.spans)
        if not 1 <= src <= n:
            raise TraceError(f"unknown edge source span id {src}")
        if not 1 <= dst <= n:
            raise TraceError(f"unknown edge destination span id {dst}")
        if src == dst:
            raise TraceError(f"edge from span {src} to itself")
        edge = Edge(src, dst, kind, self._clock(), args)
        self.edges.append(edge)
        if self.sink is not None:
            self.sink.on_edge(edge)

    # -- queries ----------------------------------------------------------------
    def track_of(self, sid: int) -> Optional[str]:
        """The track a span lives on (None for the disabled sid 0)."""
        if sid == 0:
            return None
        return self.spans[sid - 1].track

    def by_category(self, category: str) -> Iterator[Span]:
        return (s for s in self.spans if s.category == category)

    def open_spans(self) -> list[Span]:
        return [s for s in self.spans if s.t1 is None]

    def categories(self) -> set[str]:
        cats = {s.category for s in self.spans}
        cats.update(i.category for i in self.instants)
        return cats

    def last_time(self) -> float:
        """Latest timestamp seen (for closing unfinished spans on export)."""
        t = 0.0
        for s in self.spans:
            t = max(t, s.t0 if s.t1 is None else s.t1)
        for i in self.instants:
            t = max(t, i.time)
        return t

    def __len__(self) -> int:
        return len(self.spans)


class NullTracer:
    """The disabled tracer: records nothing, allocates nothing."""

    enabled = False
    spans: tuple = ()
    instants: tuple = ()
    edges: tuple = ()
    sink = None

    def begin(self, category, name, *, track=None, parent=0, **args) -> int:
        return 0

    def end(self, sid, **args) -> None:
        pass

    def abort(self, sid, **args) -> None:
        pass

    def instant(self, category, name, *, track="events", **args) -> None:
        pass

    def edge(self, src, dst, kind="dep", **args) -> None:
        pass

    def track_of(self, sid):
        return None

    def by_category(self, category):
        return iter(())

    def open_spans(self):
        return []

    def categories(self):
        return set()

    def last_time(self) -> float:
        return 0.0

    def __len__(self) -> int:
        return 0


NULL_TRACER = NullTracer()
