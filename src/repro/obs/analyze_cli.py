"""``python -m repro analyze <trace>`` — critical-path analysis of a trace.

Takes a Perfetto trace written by ``python -m repro trace`` (or any
:func:`repro.obs.perfetto.write_trace` output), **or a streamed
``.jsonl`` trace store** (reconstructed exactly via
:func:`repro.obs.store.load_tracer`), rebuilds the span DAG per
simulated system, and reports:

* causal critical-path blame per stage (map/copy/sort/reduce/idle),
  guaranteed to sum to 100% of the makespan;
* the Table-I-style counter breakdown measured from the same spans;
* the top bottleneck spans (critical-path seconds + slack);
* a Coz-style what-if table: predicted makespan if one stage were
  10/25/50% faster.

``--validate`` closes the loop on the top what-if: it re-runs the
simulator with the matching knob actually turned (the run parameters
come from the trace's ``.manifest.json`` sidecar) and prints predicted
vs measured.  Only the ``fig6`` Hadoop run is re-runnable this way.

``--tenants`` switches to the multi-tenant capacity analysis: the
trace must be a ``.jsonl`` store from a
:class:`~repro.cluster.engine.MultiTenantEngine` run, and the report
becomes per-tenant blame (queue-wait / preemption / shuffle / runtime)
over every tenant's jobs (see :mod:`repro.obs.tenant_analysis`).
Capacity what-if projections with validated re-runs live in
``python -m repro capacity``.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.obs.analysis import analyze_dag, dags_from_trace, format_analysis
from repro.util.units import parse_size


def _load_manifest(trace_path: Path) -> dict:
    sidecar = Path(f"{trace_path}.manifest.json")
    if not sidecar.exists():
        raise FileNotFoundError(
            f"--validate needs the run manifest, but {sidecar} does not exist "
            "(re-run `python -m repro trace` to produce both files)"
        )
    with sidecar.open() as fh:
        return json.load(fh)


def _validate(trace_path: Path, dags: dict, pct: float) -> int:
    """Re-run the simulator with the top what-if knob turned."""
    from repro.experiments.critical_path import validate_top_what_if
    from repro.obs.analysis import critical_path

    manifest = _load_manifest(trace_path)
    config = manifest.get("config", {})
    experiment = manifest.get("experiment")
    if experiment != "fig6" or "hadoop" not in dags:
        print(
            f"--validate: only fig6 Hadoop traces are re-runnable "
            f"(this is {experiment!r}); skipping"
        )
        return 0
    nbytes = parse_size(str(config.get("size", "1GB")))
    seed = int(config.get("seed", 2011))
    cp = critical_path(dags["hadoop"])
    v = validate_top_what_if(cp, nbytes, seed, pct=pct)
    print()
    print(
        f"what-if validation (hadoop, {v.stage} -{v.pct:.0%}): "
        f"predicted {v.predicted:.2f} s, re-ran with the knob turned: "
        f"{v.actual:.2f} s  (error {v.error:.1%})"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro analyze", description=__doc__
    )
    parser.add_argument(
        "trace", type=Path,
        help="Perfetto trace_event JSON or streamed .jsonl trace store",
    )
    parser.add_argument(
        "--top", type=int, default=10, help="bottleneck spans to list"
    )
    parser.add_argument(
        "--pcts",
        type=str,
        default="10,25,50",
        help="what-if virtual speedups, percent (default 10,25,50)",
    )
    parser.add_argument(
        "--json", type=Path, default=None, help="also write the full report as JSON"
    )
    parser.add_argument(
        "--system",
        type=str,
        default=None,
        help="analyze only this process (default: every process in the trace)",
    )
    parser.add_argument(
        "--validate",
        action="store_true",
        help="re-run the simulator with the top what-if knob turned (fig6 only)",
    )
    parser.add_argument(
        "--validate-pct",
        type=float,
        default=0.25,
        help="virtual speedup to validate (default 0.25)",
    )
    parser.add_argument(
        "--tenants",
        action="store_true",
        help="per-tenant capacity analysis (.jsonl multi-tenant store)",
    )
    args = parser.parse_args(argv)

    is_store = args.trace.suffix == ".jsonl"

    if args.tenants:
        if not is_store:
            parser.error(
                "--tenants needs a .jsonl trace store (multi-tenant runs "
                "stream their traces; Perfetto exports lose the span args)"
            )
        from repro.obs.store import load_tracer
        from repro.obs.tenant_analysis import (
            analyze_tenants,
            format_tenant_analysis,
        )

        tracer = load_tracer(args.trace)
        report = analyze_tenants(tracer)
        print(format_tenant_analysis(report))
        if args.json is not None:
            with args.json.open("w") as fh:
                json.dump(report, fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"wrote {args.json}")
        return 0

    pcts = tuple(float(tok) / 100.0 for tok in args.pcts.split(",") if tok.strip())
    if is_store:
        from repro.obs.analysis import TraceDAG
        from repro.obs.store import load_tracer, read_footer

        footer = read_footer(args.trace)
        system = (footer or {}).get("system", "sim")
        tracer = load_tracer(args.trace)
        dags = {system: TraceDAG.from_tracer(tracer, system)}
    else:
        dags = dags_from_trace(args.trace)
    if args.system is not None:
        if args.system not in dags:
            parser.error(
                f"no process {args.system!r} in trace "
                f"(have: {', '.join(sorted(dags))})"
            )
        dags = {args.system: dags[args.system]}
    if not dags:
        parser.error(f"{args.trace} contains no spans")

    reports = {}
    for name in sorted(dags):
        report = analyze_dag(dags[name], top=args.top, pcts=pcts)
        reports[name] = report
        print(format_analysis(report))
        print()

    if args.json is not None:
        with args.json.open("w") as fh:
            json.dump(reports, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json}")

    if args.validate:
        return _validate(args.trace, dags, args.validate_pct)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
