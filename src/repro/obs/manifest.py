"""Per-experiment run manifests: what produced this result file?

A :class:`RunManifest` is the reproducibility sidecar written next to
every trace/metrics dump: the experiment name and knob values, a stable
hash of those knobs (so two result files from the same configuration
can be matched mechanically), the seed, the git revision the code ran
at, wall-clock accounting, and the trace's event volumes.

The simulated results themselves are deterministic in (code, config,
seed); the manifest records exactly that triple plus the only
non-deterministic fact worth keeping — when and how long the run took
on the host.
"""

from __future__ import annotations

import json
import subprocess
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro._version import __version__
from repro.util.hashing import fnv1a_64


def config_hash(config: dict) -> str:
    """Stable 64-bit hex digest of a configuration mapping.

    Canonical JSON (sorted keys, default=str for exotic values) through
    FNV-1a — deterministic across processes and platforms, unlike
    ``hash()``.
    """
    canonical = json.dumps(config, sort_keys=True, default=str)
    return f"{fnv1a_64(canonical.encode('utf-8')):016x}"


def git_revision() -> Optional[str]:
    """The repository HEAD revision, or None outside a git checkout."""
    root = Path(__file__).resolve().parents[3]
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=root,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


@dataclass
class RunManifest:
    """Everything needed to re-run (and trust) one experiment output."""

    experiment: str
    config: dict = field(default_factory=dict)
    config_hash: str = ""
    seed: Optional[int] = None
    git_rev: Optional[str] = None
    created_at: str = ""
    wall_seconds: float = 0.0
    sim_elapsed: dict = field(default_factory=dict)
    event_counts: dict = field(default_factory=dict)
    version: str = __version__

    def to_dict(self) -> dict:
        return asdict(self)

    def write(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        return path


def build_manifest(
    experiment: str,
    config: dict,
    seed: Optional[int] = None,
    observers: Optional[list] = None,
    wall_seconds: float = 0.0,
    sim_elapsed: Optional[dict] = None,
) -> RunManifest:
    """Assemble a manifest from an experiment's run context.

    ``observers`` is the ``[(name, Observer), ...]`` list handed to the
    trace exporter; each contributes its event counts under its name.
    """
    counts = {}
    for name, obs in observers or []:
        counts[name] = obs.event_counts()
    return RunManifest(
        experiment=experiment,
        config=config,
        config_hash=config_hash(config),
        seed=seed,
        git_rev=git_revision(),
        created_at=time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        wall_seconds=wall_seconds,
        sim_elapsed=sim_elapsed or {},
        event_counts=counts,
    )
