"""Fleet view: aggregate a directory of streamed trace stores by footer.

A long-running study produces many trace stores — one per run, per
seed, per policy.  Each closed store already ends with a footer holding
event counts, the final simulated time, a metrics snapshot and (for
multi-tenant runs) the engine's per-tenant SLO summary.  This module
builds the cross-run/cross-tenant rollup reading *only* those footers
(:func:`~repro.obs.store.read_footer` tail-scans; nothing here is
O(events)), so summarizing a directory of gigabyte stores costs a few
kilobytes of IO per store.

Everything in the output derives from simulated-time quantities — no
wall clock, no filesystem timestamps, store identity is the file name —
so two fleets built from same-seed runs serialize byte-identically
(pinned by ``tests/obs/test_fleet.py`` and the CI fleet-smoke job).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro.obs.metrics import merge_histogram_snapshots, snapshot_rows
from repro.obs.store import read_footer

#: Histogram metric prefixes worth merging fleet-wide.
_MERGE_PREFIXES = ("tenants.", "queues.")

#: A later run whose makespan grew past this factor over the previous
#: run of the same system is flagged as a regression.
DEFAULT_REGRESSION_THRESHOLD = 0.10


def scan_stores(
    root: Union[str, Path], pattern: str = "*.jsonl"
) -> list[tuple[Path, dict]]:
    """(path, footer) for every *closed* store under ``root``, name order.

    Stores without a footer (still being written, or truncated) are
    skipped — a fleet view must not block on a live run.
    """
    root = Path(root)
    out: list[tuple[Path, dict]] = []
    for path in sorted(root.glob(pattern)):
        footer = read_footer(path)
        if footer is not None:
            out.append((path, footer))
    return out


@dataclass
class FleetSummary:
    """The cross-run/cross-tenant rollup of one store directory."""

    root: str
    stores: list[dict] = field(default_factory=list)
    tenants: dict[str, dict] = field(default_factory=dict)
    histograms: dict[str, dict] = field(default_factory=dict)
    regressions: list[dict] = field(default_factory=list)
    totals: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "root": self.root,
            "stores": self.stores,
            "tenants": self.tenants,
            "histograms": self.histograms,
            "regressions": self.regressions,
            "totals": self.totals,
        }

    def to_json(self) -> str:
        """Canonical serialization: sorted keys, no wall-clock content."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def metric_rows(self) -> tuple[list[str], list[list]]:
        """CSV-shaped view of the merged histograms, percentiles filled."""
        return snapshot_rows(self.histograms)


def _store_row(path: Path, footer: dict) -> dict:
    row = {
        "store": path.name,
        "system": footer.get("system", ""),
        "events": footer.get("events", 0),
        "final_time": footer.get("final_time", 0.0),
        "counts": footer.get("counts", {}),
    }
    summary = footer.get("summary") or {}
    if summary:
        for key in ("policy", "seed", "makespan", "jobs", "completed",
                    "failed", "shed", "unfinished"):
            if key in summary:
                row[key] = summary[key]
        blame = summary.get("blame")
        if blame:
            row["blame"] = blame
    return row


def _merge_tenants(stores: list[tuple[Path, dict]]) -> dict[str, dict]:
    """Cross-run per-tenant rollup from the footers' engine summaries."""
    acc: dict[str, dict] = {}
    for _path, footer in stores:
        tenants = (footer.get("summary") or {}).get("tenants") or {}
        for name in sorted(tenants):
            t = tenants[name]
            entry = acc.setdefault(
                name,
                {
                    "queue": t.get("queue", name),
                    "runs": 0,
                    "submitted": 0,
                    "completed": 0,
                    "failed": 0,
                    "shed": 0,
                    "unfinished": 0,
                    "slot_seconds": 0.0,
                    "latency_p50": 0.0,
                    "latency_p95": 0.0,
                    "latency_p99": 0.0,
                    "queue_wait_p95": 0.0,
                    "utilization": 0.0,
                },
            )
            entry["runs"] += 1
            for key in ("submitted", "completed", "failed", "shed",
                        "unfinished"):
                entry[key] += int(t.get(key, 0))
            entry["slot_seconds"] += float(t.get("slot_seconds", 0.0))
            # Worst-case SLO percentiles across runs: the fleet question
            # is "how bad does it get", not "how good is the average".
            for key in ("latency_p50", "latency_p95", "latency_p99",
                        "queue_wait_p95"):
                entry[key] = max(entry[key], float(t.get(key, 0.0)))
            entry["utilization"] += float(t.get("utilization", 0.0))
    for entry in acc.values():
        runs = max(1, entry["runs"])
        entry["utilization"] = entry["utilization"] / runs
        offered = entry["submitted"]
        entry["attainment"] = (
            entry["completed"] / offered if offered > 0 else 0.0
        )
    return acc


def _merge_histograms(stores: list[tuple[Path, dict]]) -> dict[str, dict]:
    groups: dict[str, list[dict]] = {}
    for _path, footer in stores:
        for name, snap in (footer.get("metrics") or {}).items():
            if snap.get("type") != "histogram":
                continue
            if not name.startswith(_MERGE_PREFIXES):
                continue
            groups.setdefault(name, []).append(snap)
    return {
        name: merge_histogram_snapshots(snaps)
        for name, snaps in sorted(groups.items())
    }


def _find_regressions(
    rows: list[dict], threshold: float
) -> list[dict]:
    """Flag run-over-run makespan growth / completion drops per system.

    Stores compare in name order (the natural run order for generated
    fleets: ``run-001.jsonl``, ``run-002.jsonl``, ...), grouped by the
    footer ``system`` tag.
    """
    by_system: dict[str, list[dict]] = {}
    for row in rows:
        by_system.setdefault(row["system"], []).append(row)
    out: list[dict] = []
    for system in sorted(by_system):
        seq = by_system[system]
        for prev, cur in zip(seq, seq[1:]):
            base = prev.get("makespan", prev.get("final_time", 0.0))
            now = cur.get("makespan", cur.get("final_time", 0.0))
            if base > 0 and now > base * (1.0 + threshold):
                out.append(
                    {
                        "kind": "makespan",
                        "system": system,
                        "from_store": prev["store"],
                        "to_store": cur["store"],
                        "before": base,
                        "after": now,
                        "ratio": now / base,
                    }
                )
            done_before = prev.get("completed")
            done_now = cur.get("completed")
            if (
                done_before is not None
                and done_now is not None
                and done_before > 0
                and done_now < done_before * (1.0 - threshold)
            ):
                out.append(
                    {
                        "kind": "completed",
                        "system": system,
                        "from_store": prev["store"],
                        "to_store": cur["store"],
                        "before": done_before,
                        "after": done_now,
                        "ratio": done_now / done_before,
                    }
                )
    return out


def fleet_summary(
    source: Union[str, Path, list],
    pattern: str = "*.jsonl",
    regression_threshold: float = DEFAULT_REGRESSION_THRESHOLD,
    root_label: Optional[str] = None,
) -> FleetSummary:
    """Build the fleet rollup for a directory (or pre-scanned list).

    ``source`` is a directory path, or the ``(path, footer)`` list a
    prior :func:`scan_stores` returned.  ``root_label`` overrides the
    recorded root name (the CI job passes a stable label so the output
    stays byte-identical across checkout locations).
    """
    if isinstance(source, (str, Path)):
        stores = scan_stores(source, pattern=pattern)
        root = root_label if root_label is not None else Path(source).name
    else:
        stores = list(source)
        root = root_label if root_label is not None else "fleet"
    rows = [_store_row(path, footer) for path, footer in stores]
    tenants = _merge_tenants(stores)
    totals = {
        "stores": len(rows),
        "events": sum(r["events"] for r in rows),
        "jobs": sum(r.get("jobs", 0) for r in rows),
        "completed": sum(r.get("completed", 0) for r in rows),
        "failed": sum(r.get("failed", 0) for r in rows),
        "shed": sum(r.get("shed", 0) for r in rows),
        "final_time": max((r["final_time"] for r in rows), default=0.0),
    }
    return FleetSummary(
        root=root,
        stores=rows,
        tenants=tenants,
        histograms=_merge_histograms(stores),
        regressions=_find_regressions(rows, regression_threshold),
        totals=totals,
    )
