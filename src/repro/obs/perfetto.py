"""Chrome/Perfetto ``trace_event`` JSON export.

The format is the Trace Event Format that both ``chrome://tracing`` and
https://ui.perfetto.dev load directly: a JSON object with a
``traceEvents`` array of events.  We emit

* ``"ph": "M"`` metadata naming each process (one per observer — e.g.
  the Hadoop run and the MPI-D run of a comparison) and each thread
  (one per span track);
* ``"ph": "X"`` complete events for spans (``ts``/``dur`` in
  microseconds of *simulated* time); each carries its tracer span id
  and parent id in ``args`` so a trace file round-trips losslessly
  back into a dependency DAG (:mod:`repro.obs.analysis`);
* ``"ph": "i"`` instant events for point occurrences (faults, sends);
* ``"ph": "C"`` counter events for every gauge sample;
* ``"ph": "s"`` / ``"ph": "f"`` flow-event pairs for every explicit
  happens-before edge (``Tracer.edge``) — Perfetto draws these as
  arrows between the two spans.

Spans still open at export time (a task killed by fault injection) are
closed at the trace's final timestamp and flagged ``"unfinished"`` —
Perfetto has no notion of a half-open complete event.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Optional, Sequence, Tuple, Union

from repro.obs.metrics import Gauge
from repro.obs.observer import Observer

#: Simulated seconds -> trace microseconds.
_US = 1e6

ObserverSet = Union[Observer, Sequence[Tuple[str, Observer]]]


def _normalize(observers: ObserverSet) -> list[tuple[str, Observer]]:
    if isinstance(observers, Observer):
        return [("sim", observers)]
    return list(observers)


def trace_events(obs: Observer, pid: int = 1, pid_name: str = "sim") -> list[dict]:
    """All trace events of one observer under process id ``pid``.

    Track (thread) ids are assigned in first-begin order, so two runs of
    the same seeded simulation export byte-identical event lists.
    """
    events: list[dict] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": pid,
            "tid": 0,
            "args": {"name": pid_name},
        }
    ]
    tids: dict[str, int] = {}

    def tid_of(track: str) -> int:
        tid = tids.get(track)
        if tid is None:
            tid = len(tids) + 1
            tids[track] = tid
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": track},
                }
            )
        return tid

    end_time = obs.final_time()
    close_at: dict[int, float] = {}
    for span in obs.tracer.spans:
        t1 = span.t1
        args = dict(span.args)
        if t1 is None:
            t1 = end_time
            args["unfinished"] = True
        close_at[span.sid] = t1
        args["sid"] = span.sid
        args["parent"] = span.parent
        events.append(
            {
                "ph": "X",
                "name": span.name,
                "cat": span.category,
                "ts": span.t0 * _US,
                "dur": (t1 - span.t0) * _US,
                "pid": pid,
                "tid": tid_of(span.track),
                "args": args,
            }
        )
    for k, edge in enumerate(obs.tracer.edges, start=1):
        src = obs.tracer.spans[edge.src - 1]
        dst = obs.tracer.spans[edge.dst - 1]
        flow_args = {"src": edge.src, "dst": edge.dst, **edge.args}
        # The start binds inside the source span, the finish inside the
        # destination span at the moment the dependency resolved.
        t_start = close_at[edge.src]
        t_finish = min(max(dst.t0, t_start), close_at[edge.dst])
        events.append(
            {
                "ph": "s",
                "id": k,
                "name": edge.kind,
                "cat": "edge",
                "ts": t_start * _US,
                "pid": pid,
                "tid": tid_of(src.track),
                "args": flow_args,
            }
        )
        events.append(
            {
                "ph": "f",
                "bp": "e",
                "id": k,
                "name": edge.kind,
                "cat": "edge",
                "ts": t_finish * _US,
                "pid": pid,
                "tid": tid_of(dst.track),
                "args": flow_args,
            }
        )
    for inst in obs.tracer.instants:
        events.append(
            {
                "ph": "i",
                "s": "t",
                "name": inst.name,
                "cat": inst.category,
                "ts": inst.time * _US,
                "pid": pid,
                "tid": tid_of(inst.track),
                "args": dict(inst.args),
            }
        )
    for name in obs.metrics.names():
        metric = obs.metrics._metrics[name]
        if not isinstance(metric, Gauge):
            continue
        for t, v in metric.samples:
            events.append(
                {
                    "ph": "C",
                    "name": name,
                    "cat": "metrics",
                    "ts": t * _US,
                    "pid": pid,
                    "args": {name.rsplit(".", 1)[-1]: v},
                }
            )
    return events


def trace_dict(observers: ObserverSet, manifest=None) -> dict:
    """The full JSON-object form of one or many observers' traces.

    ``manifest`` may be a plain dict or a
    :class:`~repro.obs.manifest.RunManifest`; it lands in ``otherData``.
    """
    merged: list[dict] = []
    for i, (name, obs) in enumerate(_normalize(observers), start=1):
        merged.extend(trace_events(obs, pid=i, pid_name=name))
    out: dict = {"traceEvents": merged, "displayTimeUnit": "ms"}
    if manifest is not None:
        if hasattr(manifest, "to_dict"):
            manifest = manifest.to_dict()
        out["otherData"] = manifest
    return out


def write_trace(
    observers: ObserverSet,
    path: Union[str, Path],
    manifest=None,
) -> Path:
    """Write a Perfetto-loadable trace file; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        json.dump(trace_dict(observers, manifest=manifest), fh)
    return path


_REQUIRED_BY_PHASE = {
    "X": ("name", "cat", "ts", "dur", "pid", "tid"),
    "i": ("name", "cat", "ts", "pid", "tid"),
    "C": ("name", "ts", "pid"),
    "M": ("name", "pid"),
    "s": ("name", "cat", "id", "ts", "pid", "tid"),
    "f": ("name", "cat", "id", "ts", "pid", "tid"),
}


def validate_trace(data: Union[dict, str, Path]) -> list[dict]:
    """Schema-check a trace file/dict; returns the events on success.

    Raises :class:`ValueError` on the first malformed event.  Used by
    the CI smoke job and the test suite, so "the trace loads in
    Perfetto" is asserted mechanically, not anecdotally.
    """
    if not isinstance(data, dict):
        with Path(data).open() as fh:
            data = json.load(fh)
    events = data.get("traceEvents")
    if not isinstance(events, list) or not events:
        raise ValueError("trace has no traceEvents array (or it is empty)")
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            raise ValueError(f"event {i} is not an object: {ev!r}")
        ph = ev.get("ph")
        if ph not in _REQUIRED_BY_PHASE:
            raise ValueError(f"event {i} has unsupported phase {ph!r}")
        for key in _REQUIRED_BY_PHASE[ph]:
            if key not in ev:
                raise ValueError(f"{ph!r} event {i} is missing {key!r}: {ev}")
        if ph == "X":
            if ev["dur"] < 0:
                raise ValueError(f"event {i} has negative duration: {ev}")
            if ev["ts"] < 0:
                raise ValueError(f"event {i} has negative timestamp: {ev}")
    return events


def categories_in(events: Iterable[dict]) -> set[str]:
    """Distinct categories present (for acceptance checks)."""
    return {ev["cat"] for ev in events if "cat" in ev}
