"""``python -m repro trace <experiment>`` — run one observed experiment.

The fastest path from "what is the simulator doing?" to a timeline: one
command runs a small experiment with the observer attached and writes

* a Chrome/Perfetto ``trace_event`` JSON (open at https://ui.perfetto.dev
  or ``chrome://tracing``) with one process per simulated system and one
  thread per track (task attempt, flow, node),
* a ``<trace-out>.manifest.json`` sidecar (config hash, seed, git rev,
  wall-clock, event counts),
* optionally a metrics dump (``--metrics-out``, CSV or JSON by
  extension) and an ASCII Gantt of the phase spans (``--gantt``).

Experiments:

* ``fig6``  — WordCount, Hadoop and MPI-D side by side (two pids).
* ``fig1``  — JavaSort shuffle anatomy on Hadoop.
* ``fault`` — one Hadoop run under Poisson node churn (fault instants,
  aborted attempts, re-executions).
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.obs.gantt import ascii_gantt
from repro.obs.manifest import build_manifest
from repro.obs.perfetto import write_trace
from repro.util.units import fmt_bytes, parse_size

_EXPERIMENTS = ("fig6", "fig1", "fault")


def _wordcount_spec(nbytes: int):
    from repro.hadoop import JobSpec, WORDCOUNT_PROFILE

    return JobSpec(
        name=f"wordcount-{fmt_bytes(nbytes)}",
        input_bytes=nbytes,
        profile=WORDCOUNT_PROFILE,
        num_reduce_tasks=1,
    )


def _run_fig6(nbytes: int, seed: int, attach=None):
    from repro.hadoop import HadoopConfig
    from repro.hadoop.simulation import HadoopSimulation
    from repro.mrmpi import MrMpiConfig
    from repro.mrmpi.simulator import MrMpiSimulation

    spec = _wordcount_spec(nbytes)
    hsim = HadoopSimulation(
        spec=spec,
        config=HadoopConfig(map_slots=7, reduce_slots=7),
        seed=seed,
        observe=True,
    )
    if attach is not None:
        attach("hadoop", hsim.obs)
    hm = hsim.run()
    msim = MrMpiSimulation(
        spec=spec, config=MrMpiConfig(num_mappers=49, num_reducers=1), observe=True
    )
    if attach is not None:
        attach("mpid", msim.obs)
    mm = msim.run()
    observers = [("hadoop", hsim.obs), ("mpid", msim.obs)]
    return observers, {"hadoop": hm.elapsed, "mpid": mm.elapsed}


def _run_fig1(nbytes: int, seed: int, attach=None):
    from repro.hadoop import HadoopConfig, JAVASORT_PROFILE, JobSpec
    from repro.hadoop.simulation import HadoopSimulation

    spec = JobSpec(
        name=f"javasort-{fmt_bytes(nbytes)}",
        input_bytes=nbytes,
        profile=JAVASORT_PROFILE,
    )
    sim = HadoopSimulation(
        spec=spec,
        config=HadoopConfig(map_slots=8, reduce_slots=8),
        seed=seed,
        observe=True,
    )
    if attach is not None:
        attach("hadoop", sim.obs)
    metrics = sim.run()
    return [("hadoop", sim.obs)], {"hadoop": metrics.elapsed}


def _run_fault(nbytes: int, seed: int, rate_per_hour: float = 40.0, attach=None):
    from repro.hadoop import HadoopConfig, JobFailedError
    from repro.hadoop.simulation import HadoopSimulation
    from repro.simnet.cluster import ClusterSpec
    from repro.simnet.faults import CrashRate, FaultPlan

    plan = FaultPlan(
        specs=(
            CrashRate(
                rate=rate_per_hour / 3600.0,
                nodes=tuple(range(1, ClusterSpec().num_nodes)),
                restart_after=30.0,
            ),
        ),
        seed=seed,
    )
    sim = HadoopSimulation(
        spec=_wordcount_spec(nbytes),
        config=HadoopConfig(
            map_slots=7, reduce_slots=7, tasktracker_expiry_interval=60.0
        ),
        seed=seed,
        fault_plan=plan,
        observe=True,
    )
    if attach is not None:
        attach("hadoop-faulted", sim.obs)
    try:
        metrics = sim.run()
    except JobFailedError as err:
        metrics = err.metrics
    return [("hadoop-faulted", sim.obs)], {"hadoop-faulted": metrics.elapsed}


def run_experiment(experiment: str, nbytes: int, seed: int,
                   rate_per_hour: float = 40.0, attach=None):
    """Run one named experiment with observers on; shared with ``replay``.

    ``attach(name, obs)`` — when given — is called for each simulation
    after construction and *before* ``run()``, which is the window where
    a streaming store can hook the tracer/metrics sinks and still see
    every event.
    """
    if experiment == "fig6":
        return _run_fig6(nbytes, seed, attach=attach)
    if experiment == "fig1":
        return _run_fig1(nbytes, seed, attach=attach)
    if experiment == "fault":
        return _run_fault(nbytes, seed, rate_per_hour, attach=attach)
    raise ValueError(f"unknown experiment {experiment!r}")


def _write_metrics(path: Path, observers) -> None:
    """Metrics dump: ``.json`` gets the full registry, else CSV rows."""
    if path.suffix == ".json":
        payload = {name: obs.metrics.to_dict() for name, obs in observers}
        with path.open("w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        return
    import csv

    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        header_written = False
        for name, obs in observers:
            header, rows = obs.metrics.rows()
            if not header_written:
                writer.writerow(["system", *header])
                header_written = True
            for row in rows:
                writer.writerow([name, *row])


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro trace", description=__doc__
    )
    parser.add_argument("experiment", choices=_EXPERIMENTS)
    parser.add_argument(
        "--size", type=str, default="1GB", help="input size (e.g. 256MB, 1GB)"
    )
    parser.add_argument("--seed", type=int, default=2011)
    parser.add_argument(
        "--rate", type=float, default=40.0, help="fault: crashes per node-hour"
    )
    parser.add_argument(
        "--trace-out", type=Path, default=Path("trace.json"),
        help="Perfetto trace_event JSON output path",
    )
    parser.add_argument(
        "--metrics-out", type=Path, default=None,
        help="also dump the metrics registry (CSV, or JSON by extension)",
    )
    parser.add_argument(
        "--out-dir", type=Path, default=None,
        help="directory for every artifact (trace, manifest, metrics, "
        "stores, dashboard); relative output paths resolve under it",
    )
    parser.add_argument(
        "--stream", action="store_true",
        help="also stream the raw events to a <experiment>.<system>"
        ".store.jsonl trace store as they are recorded",
    )
    parser.add_argument(
        "--dashboard", action="store_true",
        help="also fold the run into frames and write dashboard.html",
    )
    parser.add_argument(
        "--gantt", action="store_true", help="print an ASCII Gantt timeline"
    )
    parser.add_argument(
        "--gantt-limit", type=int, default=None, metavar="N",
        help="cap the Gantt at N tracks (adds a '… N more tracks' footer)",
    )
    args = parser.parse_args(argv)

    out_dir = args.out_dir
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)

    def _resolve(path: Path) -> Path:
        return out_dir / path if out_dir is not None and not path.is_absolute() else path

    trace_out = _resolve(args.trace_out)
    writers = []
    store_paths: list[Path] = []

    def _attach(name: str, obs) -> None:
        if not args.stream:
            return
        path = _resolve(Path(f"{args.experiment}.{name}.store.jsonl"))
        writers.append(obs.stream_to(path, system=name))
        store_paths.append(path)

    nbytes = parse_size(args.size)
    t0 = time.perf_counter()
    try:
        observers, sim_elapsed = run_experiment(
            args.experiment, nbytes, args.seed, args.rate, attach=_attach
        )
    finally:
        for writer in writers:
            writer.close()
    wall = time.perf_counter() - t0

    manifest = build_manifest(
        experiment=args.experiment,
        config={"size": args.size, "seed": args.seed, "rate": args.rate},
        seed=args.seed,
        observers=observers,
        wall_seconds=wall,
        sim_elapsed=sim_elapsed,
    )
    write_trace(observers, trace_out, manifest=manifest)
    manifest.write(Path(f"{trace_out}.manifest.json"))
    print(f"wrote {trace_out} (+ {trace_out}.manifest.json)")
    for path in store_paths:
        print(f"wrote {path} (streamed trace store)")
    for name, obs in observers:
        counts = obs.event_counts()
        print(
            f"  {name}: {sim_elapsed[name]:.2f} simulated seconds, "
            f"{counts['spans']} spans, {counts['instants']} instants, "
            f"{counts['metrics']} metrics"
        )
    if args.metrics_out is not None:
        metrics_out = _resolve(args.metrics_out)
        _write_metrics(metrics_out, observers)
        print(f"wrote {metrics_out}")
    if args.dashboard:
        from repro.obs.dashboard import write_dashboard
        from repro.obs.replay import replay_observer

        replays = [
            (name, replay_observer(obs, system=name)) for name, obs in observers
        ]
        dash = _resolve(Path("dashboard.html"))
        write_dashboard(
            dash, replays,
            title=f"repro trace — {args.experiment} {args.size}",
            manifest=manifest,
        )
        print(f"wrote {dash} — open it in a browser to replay this run")
    if args.gantt:
        for name, obs in observers:
            print()
            print(
                ascii_gantt(
                    obs,
                    categories={
                        "hadoop.job", "hadoop.map", "hadoop.reduce",
                        "mpid.job", "mpid.map", "mpid.reduce", "fault",
                    },
                    title=name,
                    max_tracks=args.gantt_limit,
                )
            )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
