"""``python -m repro trace <experiment>`` — run one observed experiment.

The fastest path from "what is the simulator doing?" to a timeline: one
command runs a small experiment with the observer attached and writes

* a Chrome/Perfetto ``trace_event`` JSON (open at https://ui.perfetto.dev
  or ``chrome://tracing``) with one process per simulated system and one
  thread per track (task attempt, flow, node),
* a ``<trace-out>.manifest.json`` sidecar (config hash, seed, git rev,
  wall-clock, event counts),
* optionally a metrics dump (``--metrics-out``, CSV or JSON by
  extension) and an ASCII Gantt of the phase spans (``--gantt``).

Experiments:

* ``fig6``  — WordCount, Hadoop and MPI-D side by side (two pids).
* ``fig1``  — JavaSort shuffle anatomy on Hadoop.
* ``fault`` — one Hadoop run under Poisson node churn (fault instants,
  aborted attempts, re-executions).
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.obs.gantt import ascii_gantt
from repro.obs.manifest import build_manifest
from repro.obs.perfetto import write_trace
from repro.util.units import fmt_bytes, parse_size

_EXPERIMENTS = ("fig6", "fig1", "fault")


def _wordcount_spec(nbytes: int):
    from repro.hadoop import JobSpec, WORDCOUNT_PROFILE

    return JobSpec(
        name=f"wordcount-{fmt_bytes(nbytes)}",
        input_bytes=nbytes,
        profile=WORDCOUNT_PROFILE,
        num_reduce_tasks=1,
    )


def _run_fig6(nbytes: int, seed: int):
    from repro.hadoop import HadoopConfig
    from repro.hadoop.simulation import HadoopSimulation
    from repro.mrmpi import MrMpiConfig
    from repro.mrmpi.simulator import MrMpiSimulation

    spec = _wordcount_spec(nbytes)
    hsim = HadoopSimulation(
        spec=spec,
        config=HadoopConfig(map_slots=7, reduce_slots=7),
        seed=seed,
        observe=True,
    )
    hm = hsim.run()
    msim = MrMpiSimulation(
        spec=spec, config=MrMpiConfig(num_mappers=49, num_reducers=1), observe=True
    )
    mm = msim.run()
    observers = [("hadoop", hsim.obs), ("mpid", msim.obs)]
    return observers, {"hadoop": hm.elapsed, "mpid": mm.elapsed}


def _run_fig1(nbytes: int, seed: int):
    from repro.hadoop import HadoopConfig, JAVASORT_PROFILE, JobSpec
    from repro.hadoop.simulation import HadoopSimulation

    spec = JobSpec(
        name=f"javasort-{fmt_bytes(nbytes)}",
        input_bytes=nbytes,
        profile=JAVASORT_PROFILE,
    )
    sim = HadoopSimulation(
        spec=spec,
        config=HadoopConfig(map_slots=8, reduce_slots=8),
        seed=seed,
        observe=True,
    )
    metrics = sim.run()
    return [("hadoop", sim.obs)], {"hadoop": metrics.elapsed}


def _run_fault(nbytes: int, seed: int, rate_per_hour: float = 40.0):
    from repro.hadoop import HadoopConfig, JobFailedError
    from repro.hadoop.simulation import HadoopSimulation
    from repro.simnet.cluster import ClusterSpec
    from repro.simnet.faults import CrashRate, FaultPlan

    plan = FaultPlan(
        specs=(
            CrashRate(
                rate=rate_per_hour / 3600.0,
                nodes=tuple(range(1, ClusterSpec().num_nodes)),
                restart_after=30.0,
            ),
        ),
        seed=seed,
    )
    sim = HadoopSimulation(
        spec=_wordcount_spec(nbytes),
        config=HadoopConfig(
            map_slots=7, reduce_slots=7, tasktracker_expiry_interval=60.0
        ),
        seed=seed,
        fault_plan=plan,
        observe=True,
    )
    try:
        metrics = sim.run()
    except JobFailedError as err:
        metrics = err.metrics
    return [("hadoop-faulted", sim.obs)], {"hadoop-faulted": metrics.elapsed}


def _write_metrics(path: Path, observers) -> None:
    """Metrics dump: ``.json`` gets the full registry, else CSV rows."""
    if path.suffix == ".json":
        payload = {name: obs.metrics.to_dict() for name, obs in observers}
        with path.open("w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        return
    import csv

    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["system", "metric", "type", "value", "mean", "min", "max", "events"])
        for name, obs in observers:
            _header, rows = obs.metrics.rows()
            for row in rows:
                writer.writerow([name, *row])


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro trace", description=__doc__
    )
    parser.add_argument("experiment", choices=_EXPERIMENTS)
    parser.add_argument(
        "--size", type=str, default="1GB", help="input size (e.g. 256MB, 1GB)"
    )
    parser.add_argument("--seed", type=int, default=2011)
    parser.add_argument(
        "--rate", type=float, default=40.0, help="fault: crashes per node-hour"
    )
    parser.add_argument(
        "--trace-out", type=Path, default=Path("trace.json"),
        help="Perfetto trace_event JSON output path",
    )
    parser.add_argument(
        "--metrics-out", type=Path, default=None,
        help="also dump the metrics registry (CSV, or JSON by extension)",
    )
    parser.add_argument(
        "--gantt", action="store_true", help="print an ASCII Gantt timeline"
    )
    args = parser.parse_args(argv)

    nbytes = parse_size(args.size)
    t0 = time.perf_counter()
    if args.experiment == "fig6":
        observers, sim_elapsed = _run_fig6(nbytes, args.seed)
    elif args.experiment == "fig1":
        observers, sim_elapsed = _run_fig1(nbytes, args.seed)
    else:
        observers, sim_elapsed = _run_fault(nbytes, args.seed, args.rate)
    wall = time.perf_counter() - t0

    manifest = build_manifest(
        experiment=args.experiment,
        config={"size": args.size, "seed": args.seed, "rate": args.rate},
        seed=args.seed,
        observers=observers,
        wall_seconds=wall,
        sim_elapsed=sim_elapsed,
    )
    write_trace(observers, args.trace_out, manifest=manifest)
    manifest.write(Path(f"{args.trace_out}.manifest.json"))
    print(f"wrote {args.trace_out} (+ {args.trace_out}.manifest.json)")
    for name, obs in observers:
        counts = obs.event_counts()
        print(
            f"  {name}: {sim_elapsed[name]:.2f} simulated seconds, "
            f"{counts['spans']} spans, {counts['instants']} instants, "
            f"{counts['metrics']} metrics"
        )
    if args.metrics_out is not None:
        _write_metrics(args.metrics_out, observers)
        print(f"wrote {args.metrics_out}")
    if args.gantt:
        for name, obs in observers:
            print()
            print(
                ascii_gantt(
                    obs,
                    categories={
                        "hadoop.job", "hadoop.map", "hadoop.reduce",
                        "mpid.job", "mpid.map", "mpid.reduce", "fault",
                    },
                    title=name,
                )
            )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
