"""Streaming trace store: append-as-recorded JSONL spans/instants/edges.

The Perfetto exporter and the ASCII Gantt both hold the whole trace in
memory before writing a byte — fine at 1 GB, hostile to the multi-tenant
and 1000-node items on the roadmap.  This module is the incremental
alternative:

* :class:`TraceStoreWriter` — a tracer *sink* (see
  :attr:`~repro.obs.tracer.SpanTracer.sink`): every ``begin``/``end``/
  ``instant``/``edge`` call, and every gauge/histogram transition,
  appends exactly one JSON line to the store file the moment it is
  recorded.  Peak writer memory is O(1) events no matter how long the
  run.
* a **footer index** — the last line of a closed store carries event
  counts, the final simulated time, a metrics snapshot, and a sparse
  ``[event_index, byte_offset]`` index so a reader can seek without
  scanning.
* :func:`read_events` / :class:`TraceStoreReader` — a chunked iterator
  that parses the file ``chunk_bytes`` at a time; resident memory is
  O(chunk), never O(trace).  ``max_buffered_bytes`` records the
  high-water mark so tests can pin that claim.
* :func:`load_tracer` — folds a stream back into a
  :class:`~repro.obs.tracer.SpanTracer`; a trace streamed to disk
  reconstructs the exact in-memory tracer state (bit-for-bit spans,
  instants, edges and open-span stacks — pinned by
  ``tests/obs/test_store.py``).

Event lines (``k`` tags the kind):

```
{"k":"header","version":1,"system":"hadoop"}
{"k":"begin","sid":1,"parent":0,"cat":"hadoop.job","name":"...","track":"...","t0":0.0,"args":{}}
{"k":"end","sid":1,"t1":45.9,"args":{}}
{"k":"instant","t":3.0,"cat":"fault","name":"crash node3","track":"faults","args":{}}
{"k":"edge","src":4,"dst":9,"kind":"shuffle","t":12.0,"args":{}}
{"k":"sample","m":"slots.node1.cpus.in_use","t":2.5,"v":3.0}
{"k":"footer", ...}
```

Timestamps are simulated seconds; nothing wall-clock enters the file, so
two runs of the same seeded simulation write byte-identical stores (the
CI determinism job diffs exactly that).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterable, Iterator, Optional, Union

from repro.obs.tracer import Edge, Instant, Span, SpanTracer

FORMAT_VERSION = 1

#: One index entry is recorded in the footer every this many events.
DEFAULT_INDEX_EVERY = 1000


def _compact(obj: dict) -> str:
    return json.dumps(obj, separators=(",", ":"))


class TraceStoreWriter:
    """Appends trace events to a JSONL file as they are recorded.

    Use as a context manager, or call :meth:`close` explicitly — the
    footer (counts, final time, metrics snapshot, seek index) is only
    written on close.  ``attach(obs)`` wires the writer into a live
    observer as both the tracer sink and the metrics sample sink.
    """

    def __init__(
        self,
        path: Union[str, Path],
        system: str = "sim",
        index_every: int = DEFAULT_INDEX_EVERY,
    ):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.system = system
        self.index_every = max(1, index_every)
        self._fh = self.path.open("w")
        self._obs = None
        self.closed = False
        self.events = 0
        self.counts = {"begin": 0, "end": 0, "instant": 0, "edge": 0, "sample": 0}
        self._index: list[list] = []
        #: Producer-supplied run summary (e.g. the multi-tenant engine's
        #: per-tenant SLO report).  Written into the footer when
        #: non-empty, so fleet tooling can aggregate a directory of
        #: stores reading only footers.  Must be JSON-serializable and
        #: wall-clock-free to preserve the byte-identity guarantee.
        self.summary: dict = {}
        self._write({"k": "header", "version": FORMAT_VERSION,
                     "system": self.system})

    # -- wiring ---------------------------------------------------------------
    def attach(self, obs) -> "TraceStoreWriter":
        """Stream everything ``obs`` records from now on into this store."""
        self._obs = obs
        if obs.tracer.enabled:
            obs.tracer.sink = self
        if obs.metrics.enabled:
            obs.metrics.sample_sink = self
        return self

    def _write(self, obj: dict) -> None:
        self._fh.write(_compact(obj))
        self._fh.write("\n")

    def _event(self, obj: dict) -> None:
        if self.events % self.index_every == 0:
            self._index.append([self.events, self._fh.tell()])
        self.events += 1
        self.counts[obj["k"]] += 1
        self._write(obj)

    # -- sink protocol --------------------------------------------------------
    def on_begin(self, span: Span) -> None:
        self._event(
            {
                "k": "begin",
                "sid": span.sid,
                "parent": span.parent,
                "cat": span.category,
                "name": span.name,
                "track": span.track,
                "t0": span.t0,
                "args": span.args,
            }
        )

    def on_end(self, sid: int, t1: float, args: dict) -> None:
        self._event({"k": "end", "sid": sid, "t1": t1, "args": args})

    def on_instant(self, inst: Instant) -> None:
        self._event(
            {
                "k": "instant",
                "t": inst.time,
                "cat": inst.category,
                "name": inst.name,
                "track": inst.track,
                "args": inst.args,
            }
        )

    def on_edge(self, edge: Edge) -> None:
        self._event(
            {
                "k": "edge",
                "src": edge.src,
                "dst": edge.dst,
                "kind": edge.kind,
                "t": edge.time,
                "args": edge.args,
            }
        )

    def on_sample(self, name: str, t: float, value: float) -> None:
        self._event({"k": "sample", "m": name, "t": t, "v": value})

    # -- closing --------------------------------------------------------------
    def close(self) -> Path:
        """Detach from the observer and write the footer; idempotent."""
        if self.closed:
            return self.path
        obs = self._obs
        final_time = 0.0
        metrics: dict = {}
        if obs is not None:
            if obs.tracer.sink is self:
                obs.tracer.sink = None
            if obs.metrics.sample_sink is self:
                obs.metrics.sample_sink = None
            final_time = obs.final_time()
            metrics = obs.metrics.to_dict(until=final_time)
        footer = {
            "k": "footer",
            "version": FORMAT_VERSION,
            "system": self.system,
            "events": self.events,
            "counts": self.counts,
            "final_time": final_time,
            "index_every": self.index_every,
            "index": self._index,
            "metrics": metrics,
        }
        if self.summary:
            footer["summary"] = self.summary
        self._write(footer)
        self._fh.close()
        self.closed = True
        return self.path

    def __enter__(self) -> "TraceStoreWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class TraceStoreReader:
    """Chunked iterator over a store file's event lines.

    Reads ``chunk_bytes`` at a time and yields parsed events one by one;
    only the current chunk plus at most one carried partial line is ever
    resident (``max_buffered_bytes`` records the observed peak, which
    tests pin to O(chunk)).  The header is consumed on construction; the
    footer, if present, lands in :attr:`footer` once iteration passes it.
    """

    def __init__(self, path: Union[str, Path], chunk_bytes: int = 1 << 16):
        self.path = Path(path)
        self.chunk_bytes = max(256, chunk_bytes)
        self.header: Optional[dict] = None
        self.footer: Optional[dict] = None
        self.events_read = 0
        self.max_buffered_bytes = 0

    def __iter__(self) -> Iterator[dict]:
        buffer = ""
        with self.path.open("r") as fh:
            while True:
                chunk = fh.read(self.chunk_bytes)
                if not chunk:
                    break
                buffer += chunk
                self.max_buffered_bytes = max(self.max_buffered_bytes, len(buffer))
                *lines, buffer = buffer.split("\n")
                for line in lines:
                    event = self._parse(line)
                    if event is not None:
                        yield event
        if buffer.strip():
            event = self._parse(buffer)
            if event is not None:
                yield event

    def _parse(self, line: str) -> Optional[dict]:
        if not line.strip():
            return None
        obj = json.loads(line)
        kind = obj.get("k")
        if kind == "header":
            self.header = obj
            return None
        if kind == "footer":
            self.footer = obj
            return None
        self.events_read += 1
        return obj


def read_events(
    path: Union[str, Path], chunk_bytes: int = 1 << 16
) -> Iterator[dict]:
    """Iterate a store file's events with O(chunk) resident memory."""
    return iter(TraceStoreReader(path, chunk_bytes=chunk_bytes))


def read_footer(path: Union[str, Path], tail_bytes: int = 1 << 16) -> Optional[dict]:
    """The footer of a closed store, read from the file's tail only.

    Scans backwards in ``tail_bytes`` blocks for the last line; returns
    None for a store that was never closed.  Never reads the whole file.
    """
    path = Path(path)
    size = path.stat().st_size
    with path.open("rb") as fh:
        tail = b""
        pos = size
        while pos > 0:
            step = min(tail_bytes, pos)
            pos -= step
            fh.seek(pos)
            tail = fh.read(step) + tail
            stripped = tail.rstrip(b"\n")
            if b"\n" in stripped or pos == 0:
                last = stripped.rsplit(b"\n", 1)[-1]
                if not last.strip():
                    return None
                try:
                    obj = json.loads(last)
                except json.JSONDecodeError:
                    return None
                return obj if obj.get("k") == "footer" else None
    return None


def events_of(obs) -> Iterator[dict]:
    """The store-format event stream of a live (finished) observer.

    Produces the same dict schema the store file holds, ordered by
    simulated time, so :mod:`repro.obs.replay` folds a live observer and
    a streamed file identically.  Ties at one timestamp keep a valid
    order: a span's begin always precedes its end, and a sid-``n`` begin
    precedes a sid-``m>n`` begin.  Gauge samples are included (gauges
    retain their history); histogram transitions are not retained in
    memory and appear only in streamed stores.
    """
    keyed: list[tuple[float, int, dict]] = []
    for span in obs.tracer.spans:
        keyed.append(
            (
                span.t0,
                2 * span.sid,
                {
                    "k": "begin",
                    "sid": span.sid,
                    "parent": span.parent,
                    "cat": span.category,
                    "name": span.name,
                    "track": span.track,
                    "t0": span.t0,
                    "args": span.args,
                },
            )
        )
        if span.t1 is not None:
            keyed.append(
                (
                    span.t1,
                    2 * span.sid + 1,
                    {"k": "end", "sid": span.sid, "t1": span.t1, "args": {}},
                )
            )
    base = 2 * len(obs.tracer.spans) + 2
    for i, inst in enumerate(obs.tracer.instants):
        keyed.append(
            (
                inst.time,
                base + i,
                {
                    "k": "instant",
                    "t": inst.time,
                    "cat": inst.category,
                    "name": inst.name,
                    "track": inst.track,
                    "args": inst.args,
                },
            )
        )
    base += len(obs.tracer.instants)
    for i, edge in enumerate(obs.tracer.edges):
        keyed.append(
            (
                edge.time,
                base + i,
                {
                    "k": "edge",
                    "src": edge.src,
                    "dst": edge.dst,
                    "kind": edge.kind,
                    "t": edge.time,
                    "args": edge.args,
                },
            )
        )
    base += len(obs.tracer.edges)
    for i, name in enumerate(obs.metrics.names()):
        metric = obs.metrics._metrics[name]
        for t, v in getattr(metric, "samples", ()):
            keyed.append(
                (t, base + i, {"k": "sample", "m": name, "t": t, "v": v})
            )
    keyed.sort(key=lambda kv: (kv[0], kv[1]))
    return (ev for _, _, ev in keyed)


def load_tracer(
    source: Union[str, Path, Iterable[dict]],
    chunk_bytes: int = 1 << 16,
) -> SpanTracer:
    """Fold a store (path or event stream) back into a ``SpanTracer``.

    The reconstruction replays events in recorded order, so the result
    matches the live tracer bit-for-bit: same span list (ids, parents,
    tracks, times, args), same instants, same edges, and the same
    open-span stacks for any spans never closed.  The returned tracer's
    clock is pinned to the last timestamp seen, so ``last_time()``/
    exports behave as they would on the original.
    """
    if isinstance(source, (str, Path)):
        source = read_events(source, chunk_bytes=chunk_bytes)
    last_t = [0.0]
    tracer = SpanTracer(lambda: last_t[0])
    spans = tracer.spans
    for ev in source:
        kind = ev["k"]
        if kind == "begin":
            sid = ev["sid"]
            if sid != len(spans) + 1:
                raise ValueError(
                    f"store corrupt: begin sid {sid} after {len(spans)} spans"
                )
            span = Span(
                sid,
                ev["parent"],
                ev["cat"],
                ev["name"],
                ev["track"],
                ev["t0"],
                None,
                ev["args"],
            )
            spans.append(span)
            tracer._open_by_track.setdefault(span.track, []).append(sid)
            last_t[0] = max(last_t[0], span.t0)
        elif kind == "end":
            sid = ev["sid"]
            if not 1 <= sid <= len(spans):
                raise ValueError(f"store corrupt: end of unknown span {sid}")
            span = spans[sid - 1]
            span.t1 = ev["t1"]
            if ev["args"]:
                span.args.update(ev["args"])
            stack = tracer._open_by_track.get(span.track)
            if stack and sid in stack:
                stack.remove(sid)
            last_t[0] = max(last_t[0], span.t1)
        elif kind == "instant":
            tracer.instants.append(
                Instant(ev["t"], ev["cat"], ev["name"], ev["track"], ev["args"])
            )
            last_t[0] = max(last_t[0], ev["t"])
        elif kind == "edge":
            tracer.edges.append(
                Edge(ev["src"], ev["dst"], ev["kind"], ev["t"], ev["args"])
            )
            last_t[0] = max(last_t[0], ev["t"])
        elif kind != "sample":
            raise ValueError(f"store corrupt: unknown event kind {kind!r}")
    return tracer
