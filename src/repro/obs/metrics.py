"""Metrics sampled in simulated time: counters, gauges, time-weighted stats.

Three metric kinds cover what the simulators need to report:

* :class:`Counter` — monotonically accumulated totals (bytes shuffled,
  heartbeats sent, messages injected);
* :class:`Gauge` — a sampled time series of (time, value) points, the
  shape Chrome's counter tracks (``"ph": "C"``) render;
* :class:`TimeWeightedHistogram` — statistics of a piecewise-constant
  signal weighted by how long each value held: link active-flow counts,
  slot occupancy, device queue depths.  ``set(3)`` at t=2 then ``set(0)``
  at t=5 contributes value 3 for three seconds; the mean is the time
  integral over the observation window, which is what "average queue
  depth" actually means (an arithmetic mean of the transition values
  would weight a microsecond blip like an hour-long plateau).

All metrics read the clock only when updated — they never schedule
simulator events, so measurement cannot perturb the simulation.  The
``Null*`` twins make disabled runs allocation-free.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Callable, Optional, Sequence


class Counter:
    """A float total plus the number of ``add`` calls."""

    __slots__ = ("name", "value", "events")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self.events = 0

    def add(self, n: float = 1.0) -> None:
        self.value += n
        self.events += 1

    def to_dict(self) -> dict:
        return {"type": "counter", "value": self.value, "events": self.events}


class Gauge:
    """A sampled time series; keeps every (time, value) transition."""

    __slots__ = ("name", "_clock", "_sink", "value", "samples")

    def __init__(
        self,
        name: str,
        clock: Callable[[], float],
        sink: Optional[list] = None,
    ):
        self.name = name
        self._clock = clock
        self._sink = sink if sink is not None else [None]
        self.value = 0.0
        self.samples: list[tuple[float, float]] = []

    def set(self, value: float) -> None:
        self.value = float(value)
        t = self._clock()
        self.samples.append((t, self.value))
        if self._sink[0] is not None:
            self._sink[0].on_sample(self.name, t, self.value)

    def to_dict(self) -> dict:
        return {
            "type": "gauge",
            "value": self.value,
            "samples": len(self.samples),
            "max": max((v for _, v in self.samples), default=0.0),
        }


class TimeWeightedHistogram:
    """Time-weighted statistics of a piecewise-constant signal.

    The signal starts at 0 at construction time.  ``set``/``add`` move
    it; every moment between transitions is credited to the value that
    held.  Optional ``bounds`` add a duration histogram: ``bounds=(1, 4)``
    tracks seconds spent in value ranges [0,1), [1,4), [4,inf).
    """

    __slots__ = (
        "name",
        "_clock",
        "_sink",
        "_t0",
        "_t",
        "value",
        "integral",
        "sq_integral",
        "vmin",
        "vmax",
        "bounds",
        "bucket_seconds",
        "value_seconds",
        "transitions",
    )

    def __init__(
        self,
        name: str,
        clock: Callable[[], float],
        bounds: Sequence[float] = (),
        sink: Optional[list] = None,
    ):
        self.name = name
        self._clock = clock
        self._sink = sink if sink is not None else [None]
        self._t0 = self._t = clock()
        self.value = 0.0
        self.integral = 0.0
        self.sq_integral = 0.0
        self.vmin = 0.0
        self.vmax = 0.0
        self.bounds = tuple(sorted(bounds))
        self.bucket_seconds = [0.0] * (len(self.bounds) + 1)
        #: Seconds the signal spent at each exact value — the full
        #: time-weighted distribution that :meth:`percentiles` reads.
        #: Bounded by the number of *distinct* values, which for the
        #: occupancy/queue-depth signals these track is small.
        self.value_seconds: dict[float, float] = {}
        self.transitions = 0

    def _accumulate(self, until: Optional[float] = None) -> None:
        now = self._clock() if until is None else until
        dt = now - self._t
        if dt > 0:
            self.integral += self.value * dt
            self.sq_integral += self.value * self.value * dt
            self.bucket_seconds[bisect_right(self.bounds, self.value)] += dt
            self.value_seconds[self.value] = (
                self.value_seconds.get(self.value, 0.0) + dt
            )
            self._t = now

    def set(self, value: float) -> None:
        self._accumulate()
        self.value = float(value)
        self.vmin = min(self.vmin, self.value)
        self.vmax = max(self.vmax, self.value)
        self.transitions += 1
        if self._sink[0] is not None:
            self._sink[0].on_sample(self.name, self._t, self.value)

    def add(self, delta: float) -> None:
        self.set(self.value + delta)

    # -- statistics -----------------------------------------------------------
    def elapsed(self, until: Optional[float] = None) -> float:
        now = self._clock() if until is None else until
        return now - self._t0

    def mean(self, until: Optional[float] = None) -> float:
        """Time-weighted mean over the whole observation window."""
        now = self._clock() if until is None else until
        span = now - self._t0
        if span <= 0:
            return self.value
        tail = self.value * max(0.0, now - self._t)
        return (self.integral + tail) / span

    def distribution(self, until: Optional[float] = None) -> list[tuple[str, float]]:
        """Seconds spent per value bucket (only useful with ``bounds``)."""
        self._accumulate(until)
        edges = ["-inf", *[f"{b:g}" for b in self.bounds], "+inf"]
        return [
            (f"[{edges[i]}, {edges[i + 1]})", self.bucket_seconds[i])
            for i in range(len(self.bucket_seconds))
        ]

    def percentiles(
        self,
        ps: Sequence[float] = (50.0, 95.0, 99.0),
        until: Optional[float] = None,
    ) -> dict[str, float]:
        """Time-weighted percentiles: ``p95`` is the smallest value the
        signal sat at or below for 95% of the observation window.

        This is the duration-weighted quantile of the piecewise-constant
        signal, not a quantile of the transition values — a microsecond
        spike to 40 does not move p50 the way an hour-long plateau at 3
        does.  Returns ``{"p50": v, ...}`` keyed by the (``:g``-formatted)
        requested percentiles.
        """
        self._accumulate(until)
        total = sum(self.value_seconds.values())
        out: dict[str, float] = {}
        if total <= 0:
            # Nothing observed for any duration yet: every percentile is
            # the current value.
            return {f"p{p:g}": self.value for p in ps}
        levels = sorted(self.value_seconds.items())
        for p in ps:
            need = total * min(max(p, 0.0), 100.0) / 100.0
            acc = 0.0
            result = levels[-1][0]
            for value, seconds in levels:
                acc += seconds
                if acc >= need - 1e-12 * total:
                    result = value
                    break
            out[f"p{p:g}"] = result
        return out

    def to_dict(self, until: Optional[float] = None) -> dict:
        pct = self.percentiles(until=until)
        out = {
            "type": "histogram",
            "mean": self.mean(until),
            "min": self.vmin,
            "max": self.vmax,
            "p50": pct["p50"],
            "p95": pct["p95"],
            "p99": pct["p99"],
            "last": self.value,
            "transitions": self.transitions,
            # The full duration-weighted distribution, keyed by
            # repr(value) so the mapping survives a JSON round trip
            # losslessly.  Without it a snapshot (e.g. a trace-store
            # footer) cannot be re-aggregated: merged percentiles need
            # the distribution, not just its summary points.
            "value_seconds": {
                repr(v): s for v, s in sorted(self.value_seconds.items())
            },
        }
        if self.bounds:
            out["bucket_seconds"] = {
                label: secs for label, secs in self.distribution(until)
            }
        return out


class MetricsRegistry:
    """Get-or-create home of every named metric in one simulation.

    ``sample_sink`` (default None) is an optional streaming listener
    with an ``on_sample(name, time, value)`` method, notified on every
    gauge/histogram transition.  The cell is shared with every metric at
    creation, so attaching a sink after metrics were handed out still
    streams their future samples.
    """

    def __init__(self, clock: Callable[[], float]):
        self._clock = clock
        self.enabled = True
        self._metrics: dict[str, object] = {}
        self._sample_cell: list = [None]

    @property
    def sample_sink(self):
        return self._sample_cell[0]

    @sample_sink.setter
    def sample_sink(self, sink) -> None:
        self._sample_cell[0] = sink

    def _get(self, name: str, kind: type, factory):
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get(
            name, Gauge, lambda: Gauge(name, self._clock, self._sample_cell)
        )

    def histogram(
        self, name: str, bounds: Sequence[float] = ()
    ) -> TimeWeightedHistogram:
        return self._get(
            name,
            TimeWeightedHistogram,
            lambda: TimeWeightedHistogram(
                name, self._clock, bounds, self._sample_cell
            ),
        )

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def to_dict(self, until: Optional[float] = None) -> dict:
        """JSON-serializable snapshot of every metric."""
        out = {}
        for name in self.names():
            metric = self._metrics[name]
            if isinstance(metric, TimeWeightedHistogram):
                out[name] = metric.to_dict(until)
            else:
                out[name] = metric.to_dict()  # type: ignore[attr-defined]
        return out

    def rows(self, until: Optional[float] = None) -> tuple[list[str], list[list]]:
        """CSV-shaped dump: one row per metric with its headline stats."""
        header = ["metric", "type", "value", "mean", "min", "max",
                  "p50", "p95", "p99", "events"]
        rows: list[list] = []
        for name in self.names():
            m = self._metrics[name]
            if isinstance(m, Counter):
                rows.append(
                    [name, "counter", m.value, "", "", "", "", "", "", m.events]
                )
            elif isinstance(m, Gauge):
                vmax = max((v for _, v in m.samples), default=0.0)
                rows.append(
                    [name, "gauge", m.value, "", "", vmax, "", "", "",
                     len(m.samples)]
                )
            else:
                assert isinstance(m, TimeWeightedHistogram)
                pct = m.percentiles(until=until)
                rows.append(
                    [name, "histogram", m.value, m.mean(until), m.vmin, m.vmax,
                     pct["p50"], pct["p95"], pct["p99"], m.transitions]
                )
        return header, rows


class _NullMetric:
    """Shared sink for every metric call on a disabled registry."""

    __slots__ = ()
    name = "null"
    value = 0.0
    events = 0
    samples: tuple = ()
    bounds: tuple = ()
    vmin = 0.0
    vmax = 0.0
    transitions = 0

    def add(self, n: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def mean(self, until=None) -> float:
        return 0.0

    def elapsed(self, until=None) -> float:
        return 0.0

    def distribution(self, until=None) -> list:
        return []

    def percentiles(self, ps=(50.0, 95.0, 99.0), until=None) -> dict:
        return {f"p{p:g}": 0.0 for p in ps}

    def to_dict(self, until=None) -> dict:
        return {}


_NULL_METRIC = _NullMetric()


class NullRegistry:
    """The disabled registry: every lookup returns the shared no-op metric."""

    enabled = False
    sample_sink = None

    def counter(self, name: str) -> _NullMetric:
        return _NULL_METRIC

    def gauge(self, name: str) -> _NullMetric:
        return _NULL_METRIC

    def histogram(self, name: str, bounds: Sequence[float] = ()) -> _NullMetric:
        return _NULL_METRIC

    def names(self) -> list[str]:
        return []

    def __len__(self) -> int:
        return 0

    def __contains__(self, name: str) -> bool:
        return False

    def to_dict(self, until=None) -> dict:
        return {}

    def rows(self, until=None) -> tuple[list[str], list[list]]:
        return ["metric", "type", "value", "mean", "min", "max",
                "p50", "p95", "p99", "events"], []


NULL_REGISTRY = NullRegistry()


# -- snapshot aggregation ------------------------------------------------------
#
# Trace-store footers carry ``MetricsRegistry.to_dict()`` snapshots, not
# live metric objects.  The fleet aggregator re-derives duration-weighted
# percentiles from the serialized ``value_seconds`` distributions so the
# numbers survive merging across stores — summary points (p50/p95/p99)
# alone cannot be combined.


def percentiles_from_value_seconds(
    value_seconds: dict,
    ps: Sequence[float] = (50.0, 95.0, 99.0),
) -> dict[str, float]:
    """Duration-weighted percentiles of a serialized distribution.

    Accepts the ``value_seconds`` mapping from
    :meth:`TimeWeightedHistogram.to_dict` (string keys, post-JSON) or a
    live ``value_seconds`` dict (float keys) — same algorithm as
    :meth:`TimeWeightedHistogram.percentiles`.
    """
    levels = sorted((float(v), float(s)) for v, s in value_seconds.items())
    total = sum(s for _, s in levels)
    if total <= 0:
        return {f"p{p:g}": 0.0 for p in ps}
    out: dict[str, float] = {}
    for p in ps:
        need = total * min(max(p, 0.0), 100.0) / 100.0
        acc = 0.0
        result = levels[-1][0]
        for value, seconds in levels:
            acc += seconds
            if acc >= need - 1e-12 * total:
                result = value
                break
        out[f"p{p:g}"] = result
    return out


def merge_histogram_snapshots(snapshots: Sequence[dict]) -> dict:
    """Merge serialized histogram snapshots into one aggregate snapshot.

    The merged ``value_seconds`` is the per-value sum of seconds across
    all inputs (concatenating observation windows), from which the
    duration-weighted mean and p50/p95/p99 are recomputed exactly.
    Snapshots missing ``value_seconds`` (pre-fix footers) contribute
    their min/max/transitions but no distribution mass.
    """
    merged: dict[float, float] = {}
    vmin = 0.0
    vmax = 0.0
    transitions = 0
    for snap in snapshots:
        vmin = min(vmin, float(snap.get("min", 0.0)))
        vmax = max(vmax, float(snap.get("max", 0.0)))
        transitions += int(snap.get("transitions", 0))
        for v, s in snap.get("value_seconds", {}).items():
            key = float(v)
            merged[key] = merged.get(key, 0.0) + float(s)
    total = sum(merged.values())
    mean = (
        sum(v * s for v, s in merged.items()) / total if total > 0 else 0.0
    )
    pct = percentiles_from_value_seconds(merged)
    return {
        "type": "histogram",
        "mean": mean,
        "min": vmin,
        "max": vmax,
        "p50": pct["p50"],
        "p95": pct["p95"],
        "p99": pct["p99"],
        "transitions": transitions,
        "total_seconds": total,
        "value_seconds": {repr(v): s for v, s in sorted(merged.items())},
    }


def snapshot_rows(metrics: dict) -> tuple[list[str], list[list]]:
    """:meth:`MetricsRegistry.rows`, but from a serialized snapshot.

    This is the fleet path: footers hold ``to_dict()`` output, not live
    metrics.  Histogram percentile columns are recomputed from the
    serialized distribution (falling back to the stored summary points),
    so they no longer render blank after aggregation.
    """
    header = ["metric", "type", "value", "mean", "min", "max",
              "p50", "p95", "p99", "events"]
    rows: list[list] = []
    for name in sorted(metrics):
        snap = metrics[name]
        kind = snap.get("type", "")
        if kind == "counter":
            rows.append([name, "counter", snap.get("value", 0.0),
                         "", "", "", "", "", "", snap.get("events", 0)])
        elif kind == "gauge":
            rows.append([name, "gauge", snap.get("value", 0.0),
                         "", "", snap.get("max", 0.0), "", "", "",
                         snap.get("samples", 0)])
        elif kind == "histogram":
            vs = snap.get("value_seconds")
            if vs:
                pct = percentiles_from_value_seconds(vs)
            else:
                pct = {f"p{p:g}": snap.get(f"p{p:g}", 0.0)
                       for p in (50.0, 95.0, 99.0)}
            rows.append([
                name, "histogram", snap.get("last", snap.get("value", 0.0)),
                snap.get("mean", 0.0), snap.get("min", 0.0),
                snap.get("max", 0.0), pct["p50"], pct["p95"], pct["p99"],
                snap.get("transitions", 0),
            ])
        else:  # unknown kind: carry the name through, blank stats
            rows.append([name, kind, "", "", "", "", "", "", "", ""])
    return header, rows
