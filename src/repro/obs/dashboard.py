"""Self-contained HTML dashboards: run playback and sweep browsing.

Two generators, zero runtime dependencies (no server, no CDN, no
third-party JS — one file you can open from disk or attach to a CI run):

* :func:`render_dashboard` / :func:`write_dashboard` — the **replay
  dashboard**: the frames of one or more :class:`~repro.obs.replay.Replay`
  objects inlined as a JSON island, driven by a playback scrubber over
  four linked canvas views — per-node slot-occupancy heatmap, animated
  src→dst shuffle-flow matrix, stacked stage timeline, and counter
  sparklines — plus the fault/HDFS markers of the current frame.
* :func:`render_sweep_browser` / :func:`write_sweep_browser` — the
  **sweep browser**: every CSV the ``experiments`` exporters wrote
  (``results/*.csv``) charted as lines over its first column, JSON
  export summaries, ``BENCH_scalability.json`` flattened into a
  per-node-count speedup chart, and the bench-history speedup trends
  from ``benchmarks/*.jsonl`` — the cross-run companion to the
  single-run replay view.  Gate failures (engine divergence, lost
  determinism, a speedup ratio dropping past the regression threshold)
  surface as an alert list and highlight the trend chart.
* :func:`render_fleet_page` / :func:`write_fleet_page` — the **fleet
  page**: the :class:`~repro.obs.fleet.FleetSummary` rollup of a
  directory of streamed trace stores as linked tables — per-store
  rows, per-tenant SLO attainment, merged occupancy histograms with
  duration-weighted percentiles — with regression rows flagged.

The JSON island is a ``<script type="application/json">`` block (inert
to the HTML parser; ``</`` is escaped so payload content can never close
it).  All drawing is vanilla canvas; colors live in CSS custom
properties with a validated light and dark step per role.
"""

from __future__ import annotations

import csv
import json
from html import escape
from pathlib import Path
from typing import Iterable, Optional, Sequence, Tuple, Union

from repro._version import __version__
from repro.obs.fleet import FleetSummary, fleet_summary
from repro.obs.metrics import snapshot_rows
from repro.obs.replay import Replay

ReplaySet = Union[Replay, Sequence[Tuple[str, Replay]]]


def _normalize(replays: ReplaySet) -> list[tuple[str, Replay]]:
    if isinstance(replays, Replay):
        return [(replays.system, replays)]
    return list(replays)


def _island(payload: dict) -> str:
    """JSON for inline embedding; ``</`` escaped so the script can't close."""
    return json.dumps(payload, sort_keys=True).replace("</", "<\\/")


#: Shared look: chart-surface + ink + series tokens, light and dark.
_STYLE = """
  :root {
    color-scheme: light dark;
    --surface: #fcfcfb; --panel: #f0efec; --grid: #d9d8d3;
    --ink: #0b0b0b; --ink-2: #52514e;
    --s1: #2a78d6; --s2: #eb6834; --s3: #1baf7a; --s4: #eda100;
    --seq-lo: #cde2fb; --seq-hi: #0d366b; --alert: #e34948;
  }
  @media (prefers-color-scheme: dark) {
    :root {
      --surface: #1a1a19; --panel: #262624; --grid: #383835;
      --ink: #ffffff; --ink-2: #c3c2b7;
      --s1: #3987e5; --s2: #d95926; --s3: #199e70; --s4: #c98500;
      --seq-lo: #10305a; --seq-hi: #9ec5f4; --alert: #e66767;
    }
  }
  * { box-sizing: border-box; }
  body { margin: 0; padding: 16px 20px; background: var(--surface);
         color: var(--ink);
         font: 13px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif; }
  h1 { font-size: 17px; margin: 0 0 2px; }
  h2 { font-size: 13px; font-weight: 600; margin: 0 0 6px; color: var(--ink); }
  .sub { color: var(--ink-2); margin-bottom: 12px; }
  .panel { background: var(--panel); border-radius: 8px; padding: 10px 12px;
           margin-bottom: 12px; }
  canvas { display: block; width: 100%; }
  .row { display: grid; gap: 12px; }
  button { font: inherit; color: var(--ink); background: var(--surface);
           border: 1px solid var(--grid); border-radius: 6px;
           padding: 3px 12px; cursor: pointer; }
  button.on { border-color: var(--s1); color: var(--s1); font-weight: 600; }
  .legend { display: flex; gap: 14px; flex-wrap: wrap; color: var(--ink-2);
            font-size: 12px; margin-top: 4px; }
  .legend span::before { content: ""; display: inline-block; width: 10px;
            height: 10px; border-radius: 3px; margin-right: 5px;
            vertical-align: -1px; background: var(--c); }
  #tip { position: fixed; pointer-events: none; background: var(--panel);
         color: var(--ink); border: 1px solid var(--grid); border-radius: 6px;
         padding: 5px 8px; font-size: 12px; display: none; z-index: 10;
         max-width: 320px; }
  table { border-collapse: collapse; font-size: 12px; }
  td, th { padding: 2px 10px 2px 0; text-align: right; color: var(--ink-2); }
  th { color: var(--ink); }
  details summary { cursor: pointer; color: var(--ink-2); font-size: 12px; }
"""

_DASHBOARD_JS = r"""
const DATA = JSON.parse(document.getElementById('replay-data').textContent);
const SYS = Object.keys(DATA.systems);
let cur = SYS[0], fi = 0, playing = false, timer = null;
const css = n => getComputedStyle(document.documentElement)
  .getPropertyValue(n).trim();
const S = () => DATA.systems[cur];
const F = () => S().frames[fi];
const fmtB = b => b >= 1<<30 ? (b/(1<<30)).toFixed(2)+' GB'
  : b >= 1<<20 ? (b/(1<<20)).toFixed(1)+' MB'
  : b >= 1024 ? (b/1024).toFixed(1)+' KB' : b.toFixed(0)+' B';
const tip = document.getElementById('tip');
function showTip(ev, html) {
  tip.innerHTML = html; tip.style.display = 'block';
  tip.style.left = Math.min(ev.clientX + 12, innerWidth - 330) + 'px';
  tip.style.top = (ev.clientY + 12) + 'px';
}
function hideTip() { tip.style.display = 'none'; }

function mix(a, b, t) {  // hex lerp for the sequential ramp
  const pa = [1,3,5].map(i => parseInt(a.slice(i,i+2),16));
  const pb = [1,3,5].map(i => parseInt(b.slice(i,i+2),16));
  return 'rgb(' + pa.map((v,i) => Math.round(v+(pb[i]-v)*t)).join(',') + ')';
}
const seq = t => mix(css('--seq-lo'), css('--seq-hi'),
                     Math.max(0, Math.min(1, t)));

function sized(id, h) {
  const c = document.getElementById(id);
  const w = c.clientWidth || c.parentNode.clientWidth || 600;
  const r = devicePixelRatio || 1;
  c.width = w * r; c.height = h * r; c.style.height = h + 'px';
  const g = c.getContext('2d');
  g.setTransform(r, 0, 0, r, 0, 0);
  g.clearRect(0, 0, w, h);
  return [c, g, w, h];
}

// ---- view 1: cluster heatmap (nodes x frames, occupancy) -------------------
function maxSlots() {
  let m = 1;
  for (const n of S().nodes) {
    const o = S().max_occupancy[n] || {};
    m = Math.max(m, (o.map || 0) + (o.reduce || 0));
  }
  return m;
}
function drawHeatmap() {
  const s = S(), nodes = s.nodes, nf = s.frames.length;
  const rowH = Math.max(14, Math.min(22, 200 / Math.max(1, nodes.length)));
  const labelW = 52, h = nodes.length * rowH + 18;
  const [c, g, w] = sized('view-heatmap', h);
  const cw = (w - labelW) / nf, cap = maxSlots();
  g.font = '11px system-ui'; g.textBaseline = 'middle';
  nodes.forEach((node, r) => {
    g.fillStyle = css('--ink-2');
    g.textAlign = 'right';
    g.fillText(node, labelW - 6, r * rowH + rowH / 2);
    for (let b = 0; b < nf; b++) {
      const f = s.frames[b];
      const occ = (f.node_map[node] || 0) + (f.node_reduce[node] || 0);
      g.fillStyle = occ > 0 ? seq(occ / cap) : css('--panel');
      g.fillRect(labelW + b * cw, r * rowH + 1,
                 Math.max(cw - 0.5, 0.5), rowH - 2);
    }
  });
  // cursor
  g.fillStyle = css('--alert');
  g.fillRect(labelW + fi * cw, 0, Math.max(cw * 0.25, 1.5),
             nodes.length * rowH);
  g.fillStyle = css('--ink-2'); g.textAlign = 'left';
  g.fillText('0s', labelW, nodes.length * rowH + 9);
  g.textAlign = 'right';
  g.fillText(s.t_end.toFixed(1) + 's', w - 2, nodes.length * rowH + 9);
  c.onmousemove = ev => {
    const rect = c.getBoundingClientRect();
    const b = Math.floor((ev.clientX - rect.left - labelW) / cw);
    const r = Math.floor((ev.clientY - rect.top) / rowH);
    if (b < 0 || b >= nf || r < 0 || r >= nodes.length) { hideTip(); return; }
    const f = s.frames[b], node = nodes[r];
    showTip(ev, '<b>' + node + '</b> @ ' + f.t0.toFixed(1) + 's<br>map slots: '
      + (f.node_map[node] || 0).toFixed(2) + '<br>reduce slots: '
      + (f.node_reduce[node] || 0).toFixed(2));
  };
  c.onmouseleave = hideTip;
  c.onclick = ev => {
    const rect = c.getBoundingClientRect();
    const b = Math.floor((ev.clientX - rect.left - labelW) / cw);
    if (b >= 0 && b < nf) seek(b);
  };
}

// ---- view 2: shuffle flow matrix (src -> dst, current frame) ---------------
function drawFlows() {
  const s = S(), nodes = s.nodes, n = Math.max(1, nodes.length);
  let peak = 1;
  for (const f of s.frames)
    for (const k in f.flows) peak = Math.max(peak, f.flows[k]);
  const labelW = 52, cell = Math.max(12, Math.min(26, 210 / n));
  const h = n * cell + 24;
  const [c, g] = sized('view-flows', h);
  g.font = '10px system-ui'; g.textBaseline = 'middle';
  const f = F();
  nodes.forEach((src, r) => {
    g.fillStyle = css('--ink-2'); g.textAlign = 'right';
    g.fillText(src, labelW - 6, 14 + r * cell + cell / 2);
    nodes.forEach((dst, col) => {
      const v = f.flows[src + '>' + dst] || 0;
      g.fillStyle = v > 0 ? seq(Math.log1p(v) / Math.log1p(peak))
                          : css('--panel');
      g.fillRect(labelW + col * cell, 14 + r * cell,
                 cell - 2, cell - 2);
    });
  });
  g.fillStyle = css('--ink-2'); g.textAlign = 'center';
  nodes.forEach((dst, col) => {
    g.fillText(dst.replace('node', 'n'),
               labelW + col * cell + cell / 2, 7);
  });
  c.onmousemove = ev => {
    const rect = c.getBoundingClientRect();
    const col = Math.floor((ev.clientX - rect.left - labelW) / cell);
    const r = Math.floor((ev.clientY - rect.top - 14) / cell);
    if (col < 0 || col >= n || r < 0 || r >= n) { hideTip(); return; }
    const v = F().flows[nodes[r] + '>' + nodes[col]] || 0;
    showTip(ev, nodes[r] + ' &rarr; ' + nodes[col] + '<br>in flight: '
            + fmtB(v));
  };
  c.onmouseleave = hideTip;
}

// ---- view 3: stage timeline (stacked area over frames) ---------------------
const STAGES = ['map', 'copy', 'sort', 'reduce'];
const STAGE_C = ['--s1', '--s2', '--s3', '--s4'];
function drawStages() {
  const s = S(), nf = s.frames.length, h = 120;
  const [c, g, w] = sized('view-stages', h);
  let peak = 1;
  for (const f of s.frames) {
    let tot = 0;
    for (const st of STAGES) tot += f.stages[st] || 0;
    peak = Math.max(peak, tot);
  }
  const cw = w / nf;
  for (let b = 0; b < nf; b++) {
    const f = s.frames[b];
    let y = h - 14;
    STAGES.forEach((st, i) => {
      const v = (f.stages[st] || 0) / peak * (h - 20);
      if (v <= 0) return;
      g.fillStyle = css(STAGE_C[i]);
      g.fillRect(b * cw, y - v, Math.max(cw - 0.5, 0.5), v);
      y -= v + 1;  // 1px surface gap between stacked segments
    });
  }
  g.fillStyle = css('--alert');
  g.fillRect(fi * cw, 0, Math.max(cw * 0.25, 1.5), h - 14);
  g.font = '11px system-ui'; g.fillStyle = css('--ink-2');
  g.textAlign = 'left'; g.textBaseline = 'middle';
  g.fillText('peak ' + peak.toFixed(0) + ' live phases', 4, h - 7);
  c.onmousemove = ev => {
    const rect = c.getBoundingClientRect();
    const b = Math.floor((ev.clientX - rect.left) / cw);
    if (b < 0 || b >= nf) { hideTip(); return; }
    const f = s.frames[b];
    showTip(ev, '<b>' + f.t0.toFixed(1) + 's</b><br>' + STAGES.map((st, i) =>
      '<span style="color:' + css(STAGE_C[i]) + '">&#9632;</span> ' + st
      + ' ' + (f.stages[st] || 0).toFixed(2)).join('<br>'));
  };
  c.onmouseleave = hideTip;
  c.onclick = ev => {
    const rect = c.getBoundingClientRect();
    seek(Math.floor((ev.clientX - rect.left) / cw));
  };
}

// ---- view 4: counter sparklines -------------------------------------------
const SPARKS = [
  ['spark-inflight', 'in-flight shuffle bytes', f => f.inflight_bytes, fmtB],
  ['spark-delivered', 'bytes delivered (cumulative)',
   f => f.bytes_delivered, fmtB],
  ['spark-links', 'mean link utilization', f => {
    const ks = Object.keys(f.links);
    const all = S().links.length || 1;
    return ks.reduce((a, k) => a + f.links[k], 0) / all;
  }, v => (100 * v).toFixed(1) + '%'],
  ['spark-markers', 'faults / HDFS events', f => f.marker_count,
   v => v.toFixed(0)],
];
function drawSparks() {
  const s = S(), nf = s.frames.length;
  SPARKS.forEach(([id, label, get, fmt]) => {
    const vals = s.frames.map(get);
    const peak = Math.max(1e-12, ...vals);
    const [c, g, w, h] = sized(id, 44);
    const cw = w / nf;
    g.fillStyle = css('--s1');
    if (id === 'spark-markers') {       // discrete events: bars, not a line
      vals.forEach((v, b) => {
        if (v > 0) {
          g.fillStyle = css('--alert');
          const bh = Math.max(2, v / peak * (h - 16));
          g.fillRect(b * cw, h - 12 - bh, Math.max(cw - 0.5, 1), bh);
        }
      });
    } else {
      g.strokeStyle = css('--s1'); g.lineWidth = 2; g.beginPath();
      vals.forEach((v, b) => {
        const x = b * cw + cw / 2, y = h - 12 - v / peak * (h - 18);
        b === 0 ? g.moveTo(x, y) : g.lineTo(x, y);
      });
      g.stroke();
    }
    g.fillStyle = css('--alert');
    g.fillRect(fi * cw, 0, Math.max(cw * 0.25, 1.5), h - 12);
    g.font = '10px system-ui'; g.fillStyle = css('--ink-2');
    g.textAlign = 'left'; g.textBaseline = 'middle';
    g.fillText(label + ' — ' + fmt(get(F())), 2, h - 5);
    c.onclick = ev => {
      const rect = c.getBoundingClientRect();
      seek(Math.floor((ev.clientX - rect.left) / cw));
    };
  });
}

// ---- playback --------------------------------------------------------------
function drawMarkers() {
  const el = document.getElementById('markers-list');
  const f = F();
  if (!f.marker_count) { el.textContent = 'no fault/HDFS events in this frame';
                         return; }
  const more = f.marker_count - f.markers.length;
  el.innerHTML = f.markers.map(m =>
    '<b>' + m.t.toFixed(2) + 's</b> [' + m.cat + '] ' + m.name)
    .join('<br>') + (more > 0 ? '<br>&hellip; ' + more + ' more' : '');
}
function redraw() {
  const f = F();
  document.getElementById('tlabel').textContent =
    f.t0.toFixed(1) + 's – ' + f.t1.toFixed(1) + 's (frame ' + (fi + 1)
    + '/' + S().frames.length + ')';
  drawHeatmap(); drawFlows(); drawStages(); drawSparks(); drawMarkers();
}
function seek(b) {
  fi = Math.max(0, Math.min(S().frames.length - 1, b));
  document.getElementById('scrub').value = fi;
  redraw();
}
function setSystem(name) {
  cur = name; fi = Math.min(fi, S().frames.length - 1);
  const scrub = document.getElementById('scrub');
  scrub.max = S().frames.length - 1; scrub.value = fi;
  document.querySelectorAll('#sys-select button').forEach(b =>
    b.classList.toggle('on', b.textContent === name));
  redraw();
}
function play(on) {
  playing = on === undefined ? !playing : on;
  document.getElementById('play').textContent = playing
    ? '❚❚ pause' : '▶ play';
  clearInterval(timer);
  if (playing) timer = setInterval(() => {
    if (fi >= S().frames.length - 1) { play(false); return; }
    seek(fi + 1);
  }, 90);
}

const sysBar = document.getElementById('sys-select');
SYS.forEach(name => {
  const b = document.createElement('button');
  b.textContent = name;
  b.onclick = () => setSystem(name);
  sysBar.appendChild(b);
});
document.getElementById('scrub')
  .addEventListener('input', ev => seek(+ev.target.value));
document.getElementById('play').onclick = () => play();
document.addEventListener('keydown', ev => {
  if (ev.key === ' ') { ev.preventDefault(); play(); }
  if (ev.key === 'ArrowRight') seek(fi + 1);
  if (ev.key === 'ArrowLeft') seek(fi - 1);
});
addEventListener('resize', redraw);
matchMedia('(prefers-color-scheme: dark)').addEventListener('change', redraw);
setSystem(cur);
"""


def render_dashboard(
    replays: ReplaySet,
    title: str = "repro replay",
    manifest=None,
) -> str:
    """One self-contained HTML page over the given replays."""
    pairs = _normalize(replays)
    if not pairs:
        raise ValueError("no replays to render")
    payload = {
        "title": title,
        "version": __version__,
        "manifest": (
            manifest.to_dict() if hasattr(manifest, "to_dict") else manifest
        ),
        "systems": {name: r.to_dict() for name, r in pairs},
    }
    sub_bits = []
    for name, r in pairs:
        sub_bits.append(
            f"{name}: {r.t_end:.1f}s simulated, {len(r.frames)} frames, "
            f"{len(r.nodes)} nodes, {r.spans_seen} spans"
        )
    legend = (
        '<div class="legend">'
        '<span style="--c: var(--s1)">map</span>'
        '<span style="--c: var(--s2)">copy</span>'
        '<span style="--c: var(--s3)">sort</span>'
        '<span style="--c: var(--s4)">reduce</span>'
        "</div>"
    )
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>{title}</title>
<style>{_STYLE}</style>
</head>
<body>
<h1>{title}</h1>
<div class="sub">{" &middot; ".join(sub_bits)}</div>
<div class="panel">
  <div style="display:flex; gap:10px; align-items:center; flex-wrap:wrap">
    <span id="sys-select" style="display:flex; gap:6px"></span>
    <button id="play">&#9654; play</button>
    <input id="scrub" type="range" min="0" max="1" value="0"
           style="flex:1; min-width:200px">
    <span id="tlabel" style="color:var(--ink-2); min-width:180px"></span>
  </div>
</div>
<div class="row" style="grid-template-columns: 2fr 1fr">
  <div class="panel">
    <h2>Cluster heatmap &mdash; occupied task slots per node</h2>
    <canvas id="view-heatmap"></canvas>
  </div>
  <div class="panel">
    <h2>Shuffle flows &mdash; in-flight bytes src&rarr;dst</h2>
    <canvas id="view-flows"></canvas>
  </div>
</div>
<div class="panel">
  <h2>Stage timeline &mdash; live phases</h2>
  <canvas id="view-stages"></canvas>
  {legend}
</div>
<div class="row" style="grid-template-columns: 1fr 1fr">
  <div class="panel">
    <h2>Counters</h2>
    <canvas id="spark-inflight"></canvas>
    <canvas id="spark-delivered"></canvas>
    <canvas id="spark-links"></canvas>
    <canvas id="spark-markers"></canvas>
  </div>
  <div class="panel">
    <h2>Events in frame</h2>
    <div id="markers-list" style="color:var(--ink-2); font-size:12px"></div>
  </div>
</div>
<div id="tip"></div>
<script type="application/json" id="replay-data">{_island(payload)}</script>
<script>{_DASHBOARD_JS}</script>
</body>
</html>
"""


def write_dashboard(
    path: Union[str, Path],
    replays: ReplaySet,
    title: str = "repro replay",
    manifest=None,
) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_dashboard(replays, title=title, manifest=manifest))
    return path


def extract_data_island(html: str, island_id: str = "replay-data") -> dict:
    """Parse the JSON island back out of a rendered page (for tests/CI)."""
    needle = f'id="{island_id}">'
    start = html.index(needle) + len(needle)
    end = html.index("</script>", start)
    return json.loads(html[start:end].replace("<\\/", "</"))


# -- sweep browser ------------------------------------------------------------

#: CSV cells kept per file (beyond this the table is truncated, counted).
_SWEEP_MAX_ROWS = 400

_SWEEP_JS = r"""
const DATA = JSON.parse(document.getElementById('sweep-data').textContent);
const css = n => getComputedStyle(document.documentElement)
  .getPropertyValue(n).trim();
const SLOTS = ['--s1', '--s2', '--s3', '--s4'];
const tip = document.getElementById('tip');
function showTip(ev, html) {
  tip.innerHTML = html; tip.style.display = 'block';
  tip.style.left = Math.min(ev.clientX + 12, innerWidth - 330) + 'px';
  tip.style.top = (ev.clientY + 12) + 'px';
}
function numericSeries(table) {
  // first column = x; every later column that parses as numbers = a series
  const cols = table.header.length;
  const out = [];
  for (let c = 1; c < cols && out.length < 4; c++) {
    const vals = table.rows.map(r => r[c]);
    if (vals.some(v => v === '' || v === null || isNaN(+v))) continue;
    out.push({name: table.header[c], vals: vals.map(Number)});
  }
  return out;
}
function drawChart(canvas, table) {
  const series = numericSeries(table);
  const xs = table.rows.map(r => +r[0]);
  const w = canvas.clientWidth || 560, h = 150, r = devicePixelRatio || 1;
  canvas.width = w * r; canvas.height = h * r;
  canvas.style.height = h + 'px';
  const g = canvas.getContext('2d');
  g.setTransform(r, 0, 0, r, 0, 0);
  if (!series.length || xs.some(isNaN)) {
    g.font = '12px system-ui'; g.fillStyle = css('--ink-2');
    g.fillText('no numeric series to chart — see table below', 8, 20);
    return;
  }
  const x0 = Math.min(...xs), x1 = Math.max(...xs);
  let vmax = -Infinity, vmin = Infinity;
  series.forEach(s => s.vals.forEach(v => {
    vmax = Math.max(vmax, v); vmin = Math.min(vmin, v); }));
  if (vmin > 0) vmin = 0;
  const px = x => 40 + (x1 > x0 ? (x - x0) / (x1 - x0) : 0.5) * (w - 50);
  const py = v => 8 + (1 - (v - vmin) / (vmax - vmin || 1)) * (h - 28);
  g.strokeStyle = css('--grid'); g.lineWidth = 1;
  g.beginPath(); g.moveTo(40, py(0)); g.lineTo(w - 8, py(0)); g.stroke();
  series.forEach((s, i) => {
    g.strokeStyle = css(SLOTS[i]); g.lineWidth = 2; g.beginPath();
    s.vals.forEach((v, j) =>
      j === 0 ? g.moveTo(px(xs[j]), py(v)) : g.lineTo(px(xs[j]), py(v)));
    g.stroke();
    s.vals.forEach((v, j) => {
      g.fillStyle = css(SLOTS[i]);
      g.beginPath(); g.arc(px(xs[j]), py(v), 3, 0, 7); g.fill();
    });
  });
  g.font = '10px system-ui'; g.fillStyle = css('--ink-2');
  g.textAlign = 'left';
  g.fillText(String(x0), 40, h - 4);
  g.textAlign = 'right';
  g.fillText(String(x1), w - 8, h - 4);
  g.save(); g.textAlign = 'left';
  g.fillText(vmax.toPrecision(4), 2, 14); g.fillText(vmin.toPrecision(3), 2, h - 16);
  g.restore();
  canvas.onmousemove = ev => {
    const rect = canvas.getBoundingClientRect();
    const mx = ev.clientX - rect.left;
    let best = 0, dist = Infinity;
    xs.forEach((x, j) => {
      const d = Math.abs(px(x) - mx);
      if (d < dist) { dist = d; best = j; }
    });
    showTip(ev, '<b>' + table.header[0] + ' = ' + xs[best] + '</b><br>'
      + series.map((s, i) => '<span style="color:' + css(SLOTS[i])
        + '">&#9632;</span> ' + s.name + ': ' + s.vals[best]).join('<br>'));
  };
  canvas.onmouseleave = () => { tip.style.display = 'none'; };
}
const root = document.getElementById('charts');
for (const name of Object.keys(DATA.csv).sort()) {
  const table = DATA.csv[name];
  const panel = document.createElement('div');
  panel.className = 'panel';
  const series = numericSeries(table);
  panel.innerHTML = '<h2>' + name + '</h2>'
    + '<canvas></canvas>'
    + '<div class="legend">' + series.map((s, i) =>
        '<span style="--c: var(' + SLOTS[i] + ')">' + s.name + '</span>')
        .join('') + '</div>'
    + '<details><summary>table (' + table.rows.length + ' rows'
    + (table.truncated ? ', truncated' : '') + ')</summary>'
    + '<table><tr>' + table.header.map(x => '<th>' + x + '</th>').join('')
    + '</tr>' + table.rows.map(row => '<tr>' + row.map(x =>
        '<td>' + x + '</td>').join('') + '</tr>').join('')
    + '</table></details>';
  root.appendChild(panel);
  drawChart(panel.querySelector('canvas'), table);
}
const bench = document.getElementById('bench');
const entries = DATA.bench;
if (!entries.length) {
  bench.parentNode.style.display = 'none';
} else {
  const metrics = {};
  entries.forEach((e, i) => {
    for (const k in e.metrics) {
      if (!k.endsWith('.speedup')) continue;
      (metrics[k] = metrics[k] || []).push([i, e.metrics[k], e]);
    }
  });
  for (const k of Object.keys(metrics).sort()) {
    const row = document.createElement('div');
    row.innerHTML = '<h2>' + k + '</h2><canvas></canvas>';
    bench.appendChild(row);
    const pts = metrics[k];
    const c = row.querySelector('canvas');
    const w = c.clientWidth || 560, h = 60, r2 = devicePixelRatio || 1;
    c.width = w * r2; c.height = h * r2; c.style.height = h + 'px';
    const g = c.getContext('2d');
    g.setTransform(r2, 0, 0, r2, 0, 0);
    const vmax = Math.max(...pts.map(p => p[1]), 1e-9);
    g.strokeStyle = css('--s1'); g.lineWidth = 2; g.beginPath();
    pts.forEach(([i, v], j) => {
      const x = 8 + (pts.length > 1 ? j / (pts.length - 1) : 0.5) * (w - 70);
      const y = h - 8 - v / vmax * (h - 20);
      j === 0 ? g.moveTo(x, y) : g.lineTo(x, y);
    });
    g.stroke();
    g.font = '11px system-ui'; g.textAlign = 'right';
    g.textBaseline = 'middle';
    const last = pts[pts.length - 1][1];
    const prev = pts.length > 1 ? pts[pts.length - 2][1] : last;
    // regression gate: highlight when the latest ratio dropped >10%
    const gated = last < prev * 0.9;
    g.fillStyle = gated ? css('--alert') : css('--ink-2');
    g.fillText(last.toFixed(2) + 'x' + (gated ? ' ▼' : ''),
               w - 4, h - 8 - last / vmax * (h - 20));
  }
}
"""


#: Run-over-run ``.speedup`` drop past this factor is flagged as an alert.
_BENCH_REGRESSION_THRESHOLD = 0.10


def _scalability_table(payload: dict) -> Optional[dict]:
    """Flatten ``BENCH_scalability.json`` into a chartable speedup table."""
    per_nodes = payload.get("per_nodes") or {}
    if not per_nodes:
        return None
    kinds = sorted({k for legs in per_nodes.values() for k in legs})
    header = ["nodes"] + [f"{kind}.speedup" for kind in kinds]
    rows = []
    for nodes in sorted(per_nodes, key=lambda n: int(n)):
        legs = per_nodes[nodes]
        row = [nodes]
        for kind in kinds:
            leg = legs.get(kind) or {}
            sp = leg.get("speedup")
            row.append(f"{sp:.4f}" if isinstance(sp, (int, float)) else "")
        rows.append(row)
    return {"header": header, "rows": rows, "truncated": False}


def _scalability_alerts(name: str, payload: dict) -> list[str]:
    """Gate failures recorded inside a scalability bench export."""
    alerts: list[str] = []
    per_nodes = payload.get("per_nodes") or {}
    for nodes in sorted(per_nodes, key=lambda n: int(n)):
        for kind in sorted(per_nodes[nodes]):
            leg = per_nodes[nodes][kind] or {}
            where = f"{name}: {kind} @ {nodes} nodes"
            if leg.get("identical") is False:
                alerts.append(f"{where} — engines diverged")
            if leg.get("deterministic") is False:
                alerts.append(f"{where} — vectorized run not deterministic")
    if payload.get("identical") is False:
        alerts.append(f"{name} — engine divergence (overall)")
    if payload.get("deterministic") is False:
        alerts.append(f"{name} — determinism lost (overall)")
    return alerts


def _bench_history_alerts(
    entries: list[dict], threshold: float = _BENCH_REGRESSION_THRESHOLD
) -> list[str]:
    """Consecutive-entry ``.speedup`` regressions across bench history."""
    alerts: list[str] = []
    series: dict[str, list[tuple[float, dict]]] = {}
    for entry in entries:
        for key, value in (entry.get("metrics") or {}).items():
            if isinstance(value, (int, float)):
                series.setdefault(key, []).append((float(value), entry))
    for key in sorted(series):
        pts = series[key]
        for (before, _), (after, entry) in zip(pts, pts[1:]):
            if before > 0 and after < before * (1.0 - threshold):
                rev = entry.get("git_rev") or "?"
                alerts.append(
                    f"bench {key} regressed {before:.2f}x -> {after:.2f}x "
                    f"at {rev}"
                )
    return alerts


def build_sweep_data(
    results_dir: Optional[Union[str, Path]] = None,
    bench_histories: Iterable[Union[str, Path]] = (),
    max_rows: int = _SWEEP_MAX_ROWS,
) -> dict:
    """Collect the sweep browser's payload from files already on disk.

    Reads the ``experiments`` CSV/JSON exports in ``results_dir`` (the
    multi-tenant sweep's ``multi_tenant.csv``/``.json`` land here like
    every other experiment), any bench-history JSONL files, and — when
    present — ``BENCH_scalability.json``, whose per-node-count legs
    flatten into a speedup table charted like a CSV sweep.  Nothing is
    re-run.  Oversize CSVs are truncated (flagged ``truncated``), JSON
    exports contribute a shallow summary, and every gate failure or
    run-over-run speedup regression lands in ``alerts``.
    """
    data: dict = {"csv": {}, "json": {}, "bench": [], "alerts": []}
    if results_dir is not None:
        results_dir = Path(results_dir)
        for path in sorted(results_dir.glob("*.csv")):
            with path.open() as fh:
                rows = list(csv.reader(fh))
            if not rows:
                continue
            table = {
                "header": rows[0],
                "rows": rows[1 : max_rows + 1],
                "truncated": len(rows) - 1 > max_rows,
            }
            data["csv"][path.name] = table
        for path in sorted(results_dir.glob("*.json")):
            try:
                with path.open() as fh:
                    payload = json.load(fh)
            except (OSError, json.JSONDecodeError):
                continue
            if isinstance(payload, dict):
                data["json"][path.name] = {
                    "experiment": payload.get("experiment"),
                    "keys": sorted(payload)[:24],
                }
                if "per_nodes" in payload and path.name.startswith("BENCH_"):
                    table = _scalability_table(payload)
                    if table is not None:
                        data["csv"][path.name] = table
                    data["alerts"].extend(
                        _scalability_alerts(path.name, payload)
                    )
    for hist in bench_histories:
        hist = Path(hist)
        if not hist.exists():
            continue
        with hist.open() as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    continue
                data["bench"].append(
                    {
                        "created_at": entry.get("created_at"),
                        "git_rev": (entry.get("git_rev") or "")[:10],
                        "metrics": {
                            k: v
                            for k, v in (entry.get("metrics") or {}).items()
                            if k.endswith(".speedup")
                        },
                    }
                )
    data["alerts"].extend(_bench_history_alerts(data["bench"]))
    return data


def render_sweep_browser(
    sweep_data: dict, title: str = "repro sweep browser"
) -> str:
    """The cross-run page: one chart+table per exported CSV, bench trends."""
    n_csv = len(sweep_data.get("csv", {}))
    n_bench = len(sweep_data.get("bench", []))
    json_list = "".join(
        f"<li><b>{name}</b> — {meta.get('experiment') or '?'} "
        f"({len(meta.get('keys', []))} top-level keys)</li>"
        for name, meta in sorted(sweep_data.get("json", {}).items())
    )
    alerts = sweep_data.get("alerts", [])
    alert_panel = ""
    if alerts:
        items = "".join(f"<li>{escape(str(a))}</li>" for a in alerts)
        alert_panel = (
            '<div class="panel">'
            '<h2 style="color:var(--alert)">Regressions &amp; gate failures'
            f"</h2><ul style=\"color:var(--alert)\">{items}</ul></div>"
        )
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>{title}</title>
<style>{_STYLE}</style>
</head>
<body>
<h1>{title}</h1>
<div class="sub">{n_csv} exported sweeps &middot; {n_bench} bench history
entries &middot; generated by repro {__version__}</div>
{alert_panel}
<div id="charts"></div>
<div class="panel">
  <h2>JSON exports</h2>
  <ul style="color:var(--ink-2)">{json_list or "<li>none found</li>"}</ul>
</div>
<div class="panel">
  <h2>Bench speedup history</h2>
  <div id="bench"></div>
</div>
<div id="tip"></div>
<script type="application/json" id="sweep-data">{_island(sweep_data)}</script>
<script>{_SWEEP_JS}</script>
</body>
</html>
"""


def write_sweep_browser(
    path: Union[str, Path],
    results_dir: Optional[Union[str, Path]] = None,
    bench_histories: Iterable[Union[str, Path]] = (),
    title: str = "repro sweep browser",
) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    data = build_sweep_data(results_dir, bench_histories)
    path.write_text(render_sweep_browser(data, title=title))
    return path


# -- fleet page ---------------------------------------------------------------


def _cell(value) -> str:
    """One table cell; floats trimmed, everything HTML-escaped."""
    if isinstance(value, bool):
        value = "yes" if value else "no"
    elif isinstance(value, float):
        value = f"{value:.4g}"
    return f"<td>{escape(str(value))}</td>"


def _table(header: Sequence[str], rows: Iterable[str]) -> str:
    head = "".join(f"<th>{escape(str(h))}</th>" for h in header)
    body = "".join(rows)
    return f"<table><tr>{head}</tr>{body}</table>"


#: Columns of the per-store table (summary keys fall back to blank).
_STORE_COLS = ("store", "system", "events", "final_time", "policy", "seed",
               "makespan", "jobs", "completed", "failed", "shed")

#: Columns of the per-tenant SLO table.
_TENANT_COLS = ("runs", "submitted", "completed", "shed", "attainment",
                "latency_p50", "latency_p95", "latency_p99",
                "queue_wait_p95", "utilization")


def render_fleet_page(summary, title: str = "repro fleet") -> str:
    """One self-contained HTML page over a fleet rollup.

    ``summary`` is a :class:`~repro.obs.fleet.FleetSummary` or its
    ``to_dict()`` payload.  Pure server-side tables — the page needs no
    script beyond the JSON island (id ``fleet-data``) that carries the
    full rollup for downstream tooling and tests.
    """
    if isinstance(summary, FleetSummary):
        payload = summary.to_dict()
    else:
        payload = dict(summary)
    stores = payload.get("stores", [])
    tenants = payload.get("tenants", {})
    regressions = payload.get("regressions", [])
    totals = payload.get("totals", {})
    flagged = {r.get("to_store") for r in regressions}

    store_rows = []
    for row in stores:
        style = (
            ' style="color:var(--alert)"' if row.get("store") in flagged
            else ""
        )
        cells = "".join(_cell(row.get(col, "")) for col in _STORE_COLS)
        store_rows.append(f"<tr{style}>{cells}</tr>")

    tenant_rows = []
    for name in sorted(tenants):
        t = tenants[name]
        slo_miss = t.get("attainment", 1.0) < 1.0 or t.get("shed", 0) > 0
        style = ' style="color:var(--alert)"' if slo_miss else ""
        cells = _cell(name) + _cell(t.get("queue", ""))
        cells += "".join(_cell(t.get(col, "")) for col in _TENANT_COLS)
        tenant_rows.append(f"<tr{style}>{cells}</tr>")

    header, rows = snapshot_rows(payload.get("histograms", {}))
    metric_rows = [
        "<tr>" + "".join(_cell(v) for v in row) + "</tr>" for row in rows
    ]

    if regressions:
        reg_items = "".join(
            "<li>{}</li>".format(escape(
                f"[{r.get('kind')}] {r.get('system')}: "
                f"{r.get('from_store')} -> {r.get('to_store')} "
                f"({r.get('before'):.4g} -> {r.get('after'):.4g}, "
                f"x{r.get('ratio'):.3f})"
            ))
            for r in regressions
        )
        reg_panel = (
            '<div class="panel"><h2 style="color:var(--alert)">Regressions'
            f"</h2><ul style=\"color:var(--alert)\">{reg_items}</ul></div>"
        )
    else:
        reg_panel = (
            '<div class="panel"><h2>Regressions</h2>'
            '<div style="color:var(--ink-2)">none detected</div></div>'
        )

    sub = (
        f"{totals.get('stores', 0)} stores &middot; "
        f"{totals.get('events', 0)} events &middot; "
        f"{totals.get('jobs', 0)} jobs offered &middot; "
        f"{totals.get('completed', 0)} completed &middot; "
        f"root: {escape(str(payload.get('root', '')))} &middot; "
        f"generated by repro {__version__}"
    )
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>{escape(title)}</title>
<style>{_STYLE}</style>
</head>
<body>
<h1>{escape(title)}</h1>
<div class="sub">{sub}</div>
{reg_panel}
<div class="panel">
  <h2>Stores &mdash; one row per closed trace store (footer scan only)</h2>
  {_table(_STORE_COLS, store_rows)}
</div>
<div class="panel">
  <h2>Tenants &mdash; cross-run SLO rollup (worst-case percentiles)</h2>
  {_table(("tenant", "queue") + _TENANT_COLS, tenant_rows)}
</div>
<div class="panel">
  <h2>Merged histograms &mdash; duration-weighted percentiles</h2>
  {_table(header, metric_rows)}
</div>
<script type="application/json" id="fleet-data">{_island(payload)}</script>
</body>
</html>
"""


def write_fleet_page(
    path: Union[str, Path],
    summary,
    title: str = "repro fleet",
    pattern: str = "*.jsonl",
) -> Path:
    """Render the fleet page to ``path``.

    ``summary`` may be a ready :class:`~repro.obs.fleet.FleetSummary`
    (or its dict), or a store directory — the rollup is built here.
    """
    if isinstance(summary, (str, Path)):
        summary = fleet_summary(summary, pattern=pattern)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_fleet_page(summary, title=title))
    return path
