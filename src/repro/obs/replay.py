"""Replay engine: fold a trace event stream into time-bucketed frames.

The paper's argument is visual-temporal — Figure 1's shuffle anatomy and
Table I's copy-stage dominance are claims about *when* slots, links and
stages are busy.  A :class:`Replay` answers those questions as pure
data: the run's timeline is cut into equal buckets and each
:class:`ReplayFrame` carries, for its slice of simulated time,

* per-node **map/reduce slot occupancy** (time-weighted mean over the
  bucket, from task-attempt spans);
* per-link **utilization** (fraction of the bucket the link carried at
  least one flow) and the **in-flight shuffle byte matrix** (src node ->
  dst node, time-weighted mean, from ``net`` spans);
* the **stage mix** (how many map / copy / sort / reduce phases were
  live) plus active ``hdfs.repair`` streams;
* per-tenant **running-job occupancy** (time-weighted mean, from the
  multi-tenant engine's ``tenant.job`` spans);
* **markers** — fault, HDFS and tenant (preempt/shed) instants that
  fired in the bucket;
* cumulative counters (bytes delivered) and, for streamed stores, the
  last value of each sampled metric.

Frames are plain data usable headlessly (the conservation tests and the
HTML dashboard both consume them).  The fold is single-pass and keeps
only the open-span state plus the frame accumulators, so replaying a
streamed store through :func:`repro.obs.store.read_events` peaks at
O(chunk) resident events, never O(trace).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Union

from repro.obs.analysis import stage_of

#: Stage-mix keys every frame carries, in display order.
FRAME_STAGES = ("map", "copy", "sort", "reduce")

#: Categories whose *attempt* spans (parent == 0) occupy a task slot.
_MAP_CATS = ("hadoop.map", "mpid.map")
_REDUCE_CATS = ("hadoop.reduce", "mpid.reduce")

#: Instant categories surfaced as frame markers.
_MARKER_PREFIXES = ("fault", "hdfs.", "tenant.")

#: Markers kept verbatim per frame; the count is always exact.
MARKERS_PER_FRAME = 100


@dataclass
class ReplayFrame:
    """One bucket of simulated time, aggregated for playback."""

    index: int
    t0: float
    t1: float
    #: node -> time-weighted mean occupied map / reduce slots.
    node_map: dict = field(default_factory=dict)
    node_reduce: dict = field(default_factory=dict)
    #: link -> fraction of the bucket with >= 1 active flow.
    links: dict = field(default_factory=dict)
    #: "src>dst" -> time-weighted mean in-flight bytes.
    flows: dict = field(default_factory=dict)
    #: stage -> time-weighted mean live phase count.
    stages: dict = field(default_factory=dict)
    #: tenant -> time-weighted mean running jobs (multi-tenant runs only).
    tenants: dict = field(default_factory=dict)
    #: time-weighted mean of total in-flight bytes / active repair streams.
    inflight_bytes: float = 0.0
    repairs: float = 0.0
    #: cumulative delivered bytes at the frame's end.
    bytes_delivered: float = 0.0
    #: fault/HDFS instants in this bucket (capped; count is exact).
    markers: list = field(default_factory=list)
    marker_count: int = 0
    #: last sampled value per streamed metric (forward-filled).
    samples: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "t0": self.t0,
            "t1": self.t1,
            "node_map": self.node_map,
            "node_reduce": self.node_reduce,
            "links": self.links,
            "flows": self.flows,
            "stages": self.stages,
            "tenants": self.tenants,
            "inflight_bytes": self.inflight_bytes,
            "repairs": self.repairs,
            "bytes_delivered": self.bytes_delivered,
            "markers": self.markers,
            "marker_count": self.marker_count,
            "samples": self.samples,
        }


@dataclass
class Replay:
    """A whole run, folded into frames plus run-level aggregates."""

    system: str
    t_end: float
    bucket_dt: float
    frames: list[ReplayFrame]
    nodes: list[str]
    links: list[str]
    #: node -> {"map": peak, "reduce": peak} persisted occupancy (dt > 0).
    max_occupancy: dict
    #: in-flight bytes left when the stream ended (0 for a finished job).
    final_inflight_bytes: float
    total_bytes_delivered: float
    total_markers: int
    spans_seen: int
    #: metrics whose sample series were dropped by ``sample_series_limit``.
    samples_dropped: list[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "system": self.system,
            "t_end": self.t_end,
            "bucket_dt": self.bucket_dt,
            "nodes": self.nodes,
            "links": self.links,
            "max_occupancy": self.max_occupancy,
            "final_inflight_bytes": self.final_inflight_bytes,
            "total_bytes_delivered": self.total_bytes_delivered,
            "total_markers": self.total_markers,
            "spans_seen": self.spans_seen,
            "samples_dropped": self.samples_dropped,
            "frames": [f.to_dict() for f in self.frames],
        }


def _node_of_link(link: str) -> str:
    """``node3.up`` -> ``node3`` (a link is one node's up/down pipe)."""
    return link.rsplit(".", 1)[0]


def _flow_endpoints(route: str) -> Optional[tuple[str, str, list[str]]]:
    """Parse a ``net`` span name ``xfer a.up->b.down`` into (src, dst, links)."""
    if not route.startswith("xfer "):
        return None
    links = route[len("xfer "):].split("->")
    if not links:
        return None
    return _node_of_link(links[0]), _node_of_link(links[-1]), links


class _Fold:
    """Single-pass accumulator state for :func:`replay_events`."""

    def __init__(self, t_end: float, buckets: int, sample_series_limit: int):
        self.t_end = t_end
        self.n = buckets
        self.dt = (t_end / buckets) if t_end > 0 else 1.0
        self.limit = sample_series_limit
        self.last_t = 0.0
        # Open-span roles (the only per-event state that persists).
        self.roles: dict[int, tuple] = {}
        # Instantaneous state.
        self.occ: dict[tuple[str, str], int] = {}
        self.stage_now: dict[str, int] = dict.fromkeys(FRAME_STAGES, 0)
        self.tenant_now: dict[str, int] = {}
        self.link_active: dict[str, int] = {}
        self.pair_bytes: dict[str, float] = {}
        self.inflight = 0.0
        self.repairs_now = 0
        self.delivered = 0.0
        self.spans_seen = 0
        # Per-bucket accumulators (seconds-weighted).
        self.occ_acc: dict[tuple[str, str], list[float]] = {}
        self.stage_acc = {s: [0.0] * buckets for s in FRAME_STAGES}
        self.tenant_acc: dict[str, list[float]] = {}
        self.link_acc: dict[str, list[float]] = {}
        self.pair_acc: dict[str, list[float]] = {}
        self.inflight_acc = [0.0] * buckets
        self.repair_acc = [0.0] * buckets
        self.delivered_at = [0.0] * buckets
        self.markers: list[list[dict]] = [[] for _ in range(buckets)]
        self.marker_counts = [0] * buckets
        self.sample_series: dict[str, list[Optional[float]]] = {}
        self.samples_dropped: set[str] = set()
        self.max_occ: dict[tuple[str, str], float] = {}

    # -- time ------------------------------------------------------------------
    def bucket_of(self, t: float) -> int:
        return min(self.n - 1, max(0, int(t / self.dt)))

    def _spread(self, t0: float, t1: float):
        """Yield (bucket, overlap_seconds) for the interval [t0, t1)."""
        b0, b1 = self.bucket_of(t0), self.bucket_of(t1)
        for b in range(b0, b1 + 1):
            lo = max(t0, b * self.dt)
            hi = min(t1, (b + 1) * self.dt if b < self.n - 1 else self.t_end)
            if hi > lo:
                yield b, hi - lo

    def advance(self, t: float) -> None:
        """Credit the held state for (last_t, t), then move the clock."""
        t = min(t, self.t_end) if self.t_end > 0 else t
        if t <= self.last_t:
            return
        spread = list(self._spread(self.last_t, t))
        for key, count in self.occ.items():
            if count:
                acc = self.occ_acc.setdefault(key, [0.0] * self.n)
                for b, o in spread:
                    acc[b] += count * o
                peak = self.max_occ.get(key, 0.0)
                if count > peak:
                    self.max_occ[key] = float(count)
        for stage, count in self.stage_now.items():
            if count:
                acc = self.stage_acc[stage]
                for b, o in spread:
                    acc[b] += count * o
        for tenant, count in self.tenant_now.items():
            if count:
                acc = self.tenant_acc.setdefault(tenant, [0.0] * self.n)
                for b, o in spread:
                    acc[b] += count * o
        for link, count in self.link_active.items():
            if count:
                acc = self.link_acc.setdefault(link, [0.0] * self.n)
                for b, o in spread:
                    acc[b] += o
        for pair, nbytes in self.pair_bytes.items():
            if nbytes:
                acc = self.pair_acc.setdefault(pair, [0.0] * self.n)
                for b, o in spread:
                    acc[b] += nbytes * o
        if self.inflight:
            for b, o in spread:
                self.inflight_acc[b] += self.inflight * o
        if self.repairs_now:
            for b, o in spread:
                self.repair_acc[b] += self.repairs_now * o
        for b, _ in spread:
            self.delivered_at[b] = self.delivered
        self.last_t = t

    # -- events ----------------------------------------------------------------
    def on_begin(self, ev: dict) -> None:
        self.spans_seen += 1
        cat, name, parent = ev["cat"], ev["name"], ev["parent"]
        args = ev.get("args") or {}
        role: Optional[tuple] = None
        if parent == 0 and "node" in args and cat in _MAP_CATS:
            role = ("slot", f"node{args['node']}", "map")
        elif parent == 0 and "node" in args and cat in _REDUCE_CATS:
            role = ("slot", f"node{args['node']}", "reduce")
        elif cat == "net":
            parsed = _flow_endpoints(name)
            if parsed is not None:
                src, dst, links = parsed
                role = ("flow", src, dst, float(args.get("nbytes", 0.0)), links)
        elif cat == "hdfs.repair":
            role = ("repair",)
        elif cat == "tenant.job":
            tenant = args.get("tenant")
            if tenant is None:
                track = ev.get("track") or ""
                tenant = track.split(":", 1)[1] if ":" in track else ""
            if tenant:
                role = ("tenant", str(tenant))
        elif parent != 0:
            stage = stage_of(cat, name)
            if stage in FRAME_STAGES:
                role = ("stage", stage)
        if role is None:
            return
        self.roles[ev["sid"]] = role
        kind = role[0]
        if kind == "slot":
            key = (role[1], role[2])
            self.occ[key] = self.occ.get(key, 0) + 1
        elif kind == "stage":
            self.stage_now[role[1]] += 1
        elif kind == "tenant":
            self.tenant_now[role[1]] = self.tenant_now.get(role[1], 0) + 1
        elif kind == "repair":
            self.repairs_now += 1
        else:  # flow
            _, src, dst, nbytes, links = role
            pair = f"{src}>{dst}"
            self.pair_bytes[pair] = self.pair_bytes.get(pair, 0.0) + nbytes
            self.inflight += nbytes
            for link in links:
                self.link_active[link] = self.link_active.get(link, 0) + 1

    def on_end(self, ev: dict) -> None:
        role = self.roles.pop(ev["sid"], None)
        if role is None:
            return
        kind = role[0]
        if kind == "slot":
            key = (role[1], role[2])
            self.occ[key] = self.occ.get(key, 0) - 1
        elif kind == "stage":
            self.stage_now[role[1]] -= 1
        elif kind == "tenant":
            self.tenant_now[role[1]] -= 1
        elif kind == "repair":
            self.repairs_now -= 1
        else:
            _, src, dst, nbytes, links = role
            pair = f"{src}>{dst}"
            self.pair_bytes[pair] = self.pair_bytes.get(pair, 0.0) - nbytes
            self.inflight -= nbytes
            self.delivered += nbytes
            for link in links:
                self.link_active[link] = self.link_active.get(link, 0) - 1

    def on_instant(self, ev: dict) -> None:
        cat = ev["cat"]
        if not any(
            cat == p or cat.startswith(p) for p in _MARKER_PREFIXES
        ):
            return
        b = self.bucket_of(ev["t"])
        self.marker_counts[b] += 1
        if len(self.markers[b]) < MARKERS_PER_FRAME:
            self.markers[b].append(
                {"t": ev["t"], "cat": cat, "name": ev["name"]}
            )

    def on_sample(self, ev: dict) -> None:
        name = ev["m"]
        series = self.sample_series.get(name)
        if series is None:
            if len(self.sample_series) >= self.limit:
                self.samples_dropped.add(name)
                return
            series = self.sample_series[name] = [None] * self.n
        series[self.bucket_of(ev["t"])] = ev["v"]


def replay_events(
    events: Iterable[dict],
    t_end: float,
    system: str = "sim",
    buckets: int = 120,
    sample_series_limit: int = 32,
) -> Replay:
    """Fold an event stream (store-format dicts) into a :class:`Replay`.

    ``t_end`` fixes the bucket width up front so the fold stays single
    pass — take it from the store footer (:func:`replay_store` does),
    from ``Observer.final_time()``, or from the job's known makespan.
    """
    buckets = max(1, buckets)
    fold = _Fold(float(t_end), buckets, sample_series_limit)
    handlers = {
        "begin": fold.on_begin,
        "end": fold.on_end,
        "instant": fold.on_instant,
        "sample": fold.on_sample,
        "edge": lambda ev: None,
    }
    for ev in events:
        t = ev.get("t0", ev.get("t1", ev.get("t", fold.last_t)))
        fold.advance(t)
        handlers[ev["k"]](ev)
    if fold.t_end > fold.last_t:
        fold.advance(fold.t_end)

    nodes = sorted(
        {key[0] for key in fold.occ_acc}
        | {p.split(">")[0] for p in fold.pair_acc}
        | {p.split(">")[1] for p in fold.pair_acc},
        key=lambda n: (len(n), n),
    )
    links = sorted(fold.link_acc)
    dt = fold.dt
    frames: list[ReplayFrame] = []
    last_samples: dict[str, float] = {}
    for b in range(buckets):
        for name, series in fold.sample_series.items():
            if series[b] is not None:
                last_samples[name] = series[b]
        frames.append(
            ReplayFrame(
                index=b,
                t0=b * dt,
                t1=min((b + 1) * dt, fold.t_end) if fold.t_end > 0 else (b + 1) * dt,
                node_map={
                    key[0]: acc[b] / dt
                    for key, acc in fold.occ_acc.items()
                    if key[1] == "map" and acc[b] > 0
                },
                node_reduce={
                    key[0]: acc[b] / dt
                    for key, acc in fold.occ_acc.items()
                    if key[1] == "reduce" and acc[b] > 0
                },
                links={
                    link: min(1.0, acc[b] / dt)
                    for link, acc in fold.link_acc.items()
                    if acc[b] > 0
                },
                flows={
                    pair: acc[b] / dt
                    for pair, acc in fold.pair_acc.items()
                    if acc[b] > 0
                },
                stages={s: fold.stage_acc[s][b] / dt for s in FRAME_STAGES},
                tenants={
                    tenant: acc[b] / dt
                    for tenant, acc in sorted(fold.tenant_acc.items())
                    if acc[b] > 0
                },
                inflight_bytes=fold.inflight_acc[b] / dt,
                repairs=fold.repair_acc[b] / dt,
                bytes_delivered=fold.delivered_at[b],
                markers=fold.markers[b],
                marker_count=fold.marker_counts[b],
                samples=dict(last_samples),
            )
        )
    # Forward-fill cumulative delivered bytes through empty buckets.
    running = 0.0
    for f in frames:
        running = max(running, f.bytes_delivered)
        f.bytes_delivered = running
    max_occupancy: dict[str, dict] = {}
    for (node, kind), peak in fold.max_occ.items():
        max_occupancy.setdefault(node, {})[kind] = peak
    return Replay(
        system=system,
        t_end=fold.t_end,
        bucket_dt=dt,
        frames=frames,
        nodes=nodes,
        links=links,
        max_occupancy=max_occupancy,
        final_inflight_bytes=fold.inflight,
        total_bytes_delivered=fold.delivered,
        total_markers=sum(fold.marker_counts),
        spans_seen=fold.spans_seen,
        samples_dropped=sorted(fold.samples_dropped),
    )


def replay_observer(
    obs, system: str = "sim", buckets: int = 120, **kw
) -> Replay:
    """Replay a live (finished) observer's recorded events."""
    from repro.obs.store import events_of

    return replay_events(
        events_of(obs), obs.final_time(), system=system, buckets=buckets, **kw
    )


def replay_store(
    path: Union[str, Path],
    buckets: int = 120,
    chunk_bytes: int = 1 << 16,
    t_end: Optional[float] = None,
    **kw,
) -> Replay:
    """Replay a streamed store file through the chunked reader.

    ``t_end`` defaults to the footer's ``final_time``; pass it
    explicitly to replay a store that was never closed.
    """
    from repro.obs.store import read_events, read_footer

    footer = read_footer(path)
    system = "sim"
    if footer is not None:
        system = footer.get("system", system)
    if t_end is None:
        if footer is None:
            raise ValueError(
                f"{path}: store has no footer (writer never closed); "
                "pass t_end= explicitly"
            )
        t_end = footer["final_time"]
    return replay_events(
        read_events(path, chunk_bytes=chunk_bytes),
        t_end,
        system=system,
        buckets=buckets,
        **kw,
    )


def replays_from_perfetto(
    source: Union[str, Path, dict], buckets: int = 120, **kw
) -> dict[str, Replay]:
    """Replay every process of a Perfetto ``trace_event`` JSON file.

    Convenience for existing ``trace.json`` artifacts: the whole file is
    loaded and re-sorted (the streaming-memory guarantee belongs to the
    JSONL store, not to this path).  Span ids come from the exporter's
    ``args.sid``; thread names recover the tracks.
    """
    import json as _json

    if not isinstance(source, dict):
        with Path(source).open() as fh:
            source = _json.load(fh)
    by_pid: dict[int, list[tuple[float, int, dict]]] = {}
    names: dict[int, str] = {}
    tracks: dict[tuple[int, int], str] = {}
    seq = 0
    for ev in source.get("traceEvents", ()):
        ph, pid = ev.get("ph"), ev.get("pid", 0)
        seq += 1
        if ph == "M":
            if ev["name"] == "process_name":
                names[pid] = ev["args"]["name"]
            elif ev["name"] == "thread_name":
                tracks[(pid, ev["tid"])] = ev["args"]["name"]
            continue
        t = ev.get("ts", 0) / 1e6
        out = by_pid.setdefault(pid, [])
        if ph == "X":
            args = dict(ev.get("args") or {})
            sid = args.pop("sid", None)
            parent = args.pop("parent", 0)
            args.pop("unfinished", None)
            if sid is None:
                continue
            t1 = t + ev.get("dur", 0) / 1e6
            track = tracks.get((pid, ev.get("tid", 0)), "")
            out.append(
                (
                    t,
                    2 * sid,
                    {"k": "begin", "sid": sid, "parent": parent,
                     "cat": ev.get("cat", ""), "name": ev["name"],
                     "track": track, "t0": t, "args": args},
                )
            )
            out.append(
                (t1, 2 * sid + 1, {"k": "end", "sid": sid, "t1": t1, "args": {}})
            )
        elif ph == "i":
            out.append(
                (
                    t,
                    1 << 40,
                    {"k": "instant", "t": t, "cat": ev.get("cat", ""),
                     "name": ev["name"], "track": "", "args": dict(ev.get("args") or {})},
                )
            )
        elif ph == "C":
            for key, v in (ev.get("args") or {}).items():
                out.append(
                    (t, (1 << 40) + seq,
                     {"k": "sample", "m": f"{ev['name']}", "t": t, "v": v})
                )
    replays: dict[str, Replay] = {}
    for pid, keyed in sorted(by_pid.items()):
        keyed.sort(key=lambda kv: (kv[0], kv[1]))
        t_end = max((kv[0] for kv in keyed), default=0.0)
        name = names.get(pid, f"pid{pid}")
        replays[name] = replay_events(
            (ev for _, _, ev in keyed), t_end, system=name,
            buckets=buckets, **kw
        )
    return replays
