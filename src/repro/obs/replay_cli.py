"""``python -m repro replay <trace-or-experiment>`` — the run dashboard.

One command from a run (or an existing trace artifact) to a single
self-contained HTML file you can open from disk: cluster heatmap,
animated shuffle flows, stage timeline and counter sparklines over a
playback scrubber (see :mod:`repro.obs.dashboard`).

The target decides where the events come from:

* ``fig6`` / ``fig1`` / ``fault`` — run that experiment now (same
  runners as ``repro trace``) and replay the live observers;
* ``*.jsonl`` — a streamed trace store written by ``repro trace
  --stream`` (read chunked; memory stays O(chunk), not O(trace));
* ``*.json``  — an existing Perfetto ``trace_event`` export;
* ``sweep``   — no replay at all: build the cross-run sweep browser
  from ``results/*.csv`` exports and bench history JSONL files;
* ``fleet <dir>`` — aggregate every closed ``.jsonl`` store under the
  directory (footer scans only — O(footer) per store, never
  O(events)) into the cross-run/cross-tenant fleet page, plus a
  canonical JSON rollup for diffing in CI.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.util.units import parse_size

#: Bench histories the sweep browser picks up when ``--bench`` is absent.
_DEFAULT_BENCH = ("BENCH_history.jsonl", "benchmarks/BENCH_baseline.jsonl")


def _dump_json(path: Path, replays) -> None:
    payload = {name: r.to_dict() for name, r in replays}
    with path.open("w") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
        fh.write("\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro replay", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "target",
        help="fig6|fig1|fault (run now), a .jsonl trace store, "
        "a Perfetto trace.json, 'sweep', or 'fleet'",
    )
    parser.add_argument(
        "store_dir", nargs="?", type=Path, default=None,
        help="fleet: directory of .jsonl trace stores",
    )
    parser.add_argument(
        "--size", type=str, default="1GB",
        help="experiment targets: input size (e.g. 256MB, 1GB)",
    )
    parser.add_argument("--seed", type=int, default=2011)
    parser.add_argument(
        "--rate", type=float, default=40.0,
        help="fault target: crashes per node-hour",
    )
    parser.add_argument(
        "--buckets", type=int, default=120,
        help="playback frames to fold the run into (default 120)",
    )
    parser.add_argument(
        "--out", type=Path, default=None,
        help="HTML output path (default dashboard.html / sweep.html)",
    )
    parser.add_argument(
        "--json-out", type=Path, default=None,
        help="also dump the folded frames as JSON (headless use)",
    )
    parser.add_argument(
        "--results-dir", type=Path, default=Path("results"),
        help="sweep: directory of experiments CSV/JSON exports",
    )
    parser.add_argument(
        "--bench", type=Path, nargs="*", default=None,
        help="sweep: bench history JSONL files "
        f"(default: {', '.join(_DEFAULT_BENCH)} when present)",
    )
    parser.add_argument(
        "--root-label", type=str, default=None,
        help="fleet: override the recorded root name (CI byte-stability)",
    )
    args = parser.parse_args(argv)

    from repro.obs.dashboard import write_dashboard, write_sweep_browser

    if args.target == "fleet":
        from repro.obs.dashboard import write_fleet_page
        from repro.obs.fleet import fleet_summary

        if args.store_dir is None or not args.store_dir.is_dir():
            parser.error("fleet needs a directory of .jsonl trace stores")
        summary = fleet_summary(args.store_dir, root_label=args.root_label)
        if not summary.stores:
            parser.error(f"{args.store_dir}: no closed .jsonl stores found")
        out = args.out or Path("fleet.html")
        write_fleet_page(out, summary)
        json_out = args.json_out or out.with_suffix(".json")
        json_out.parent.mkdir(parents=True, exist_ok=True)
        json_out.write_text(summary.to_json() + "\n")
        t = summary.totals
        print(
            f"  fleet: {t['stores']} stores, {t['events']} events, "
            f"{t['jobs']} jobs ({t['completed']} completed), "
            f"{len(summary.tenants)} tenants, "
            f"{len(summary.regressions)} regressions"
        )
        print(f"wrote {out} — open it in a browser")
        print(f"wrote {json_out}")
        return 0

    if args.target == "sweep":
        out = args.out or Path("sweep.html")
        bench = (
            args.bench
            if args.bench is not None
            else [p for p in map(Path, _DEFAULT_BENCH) if p.exists()]
        )
        results = args.results_dir if args.results_dir.is_dir() else None
        if results is None:
            print(f"note: {args.results_dir}/ not found — run "
                  "`python -m repro.experiments.export` first for charts")
        write_sweep_browser(out, results_dir=results, bench_histories=bench)
        print(f"wrote {out} — open it in a browser")
        return 0

    from repro.obs.replay import (
        replay_observer,
        replay_store,
        replays_from_perfetto,
    )

    target = args.target
    manifest = None
    if target in ("fig6", "fig1", "fault"):
        from repro.obs.cli import run_experiment

        observers, sim_elapsed = run_experiment(
            target, parse_size(args.size), args.seed, args.rate
        )
        replays = [
            (name, replay_observer(obs, system=name, buckets=args.buckets))
            for name, obs in observers
        ]
        title = f"repro replay — {target} {args.size}"
    elif target.endswith(".jsonl"):
        r = replay_store(target, buckets=args.buckets)
        replays = [(r.system, r)]
        title = f"repro replay — {Path(target).name}"
    elif target.endswith(".json"):
        replays = sorted(
            replays_from_perfetto(target, buckets=args.buckets).items()
        )
        if not replays:
            parser.error(f"{target}: no replayable processes found")
        title = f"repro replay — {Path(target).name}"
    else:
        parser.error(
            f"unknown target {target!r}: expected fig6|fig1|fault|sweep, "
            "a .jsonl store, or a .json trace"
        )

    for name, r in replays:
        print(
            f"  {name}: {r.t_end:.2f}s simulated -> {len(r.frames)} frames, "
            f"{len(r.nodes)} nodes, {r.spans_seen} spans, "
            f"{r.total_markers} markers"
        )
    out = args.out or Path("dashboard.html")
    write_dashboard(out, replays, title=title, manifest=manifest)
    print(f"wrote {out} — open it in a browser")
    if args.json_out is not None:
        _dump_json(args.json_out, replays)
        print(f"wrote {args.json_out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
