"""Simulation-wide observability: spans, metrics, exporters, manifests.

The layer has three moving parts, all reachable from any model through
the :class:`~repro.simnet.kernel.Simulator` they already hold:

* :class:`SpanTracer` — span-based tracing with explicit span IDs,
  nesting and categories (kernel events, network transfers, transport
  sends, map/reduce phases, MPI-D phases, fault injections);
* :class:`MetricsRegistry` — counters, gauges and time-weighted
  histograms sampled in *simulated* time (link utilization, queue
  depths, slot occupancy, bytes shuffled);
* exporters — Chrome/Perfetto ``trace_event`` JSON
  (:func:`trace_events` / :func:`write_trace`), an ASCII Gantt renderer
  (:func:`ascii_gantt`) and per-run manifests (:func:`build_manifest`);
* the streaming layer — an append-as-recorded JSONL trace store
  (:class:`TraceStoreWriter` / :func:`read_events` / :func:`load_tracer`),
  a replay engine folding event streams into time-bucketed frames
  (:func:`replay_events` / :func:`replay_store`), and self-contained
  HTML dashboards (:func:`write_dashboard` / :func:`write_sweep_browser`).

An :class:`Observer` bundles one tracer plus one registry and attaches
to a simulator (``Observer.attach(sim)``); every instrumented model
reads ``sim.obs``.  The default is :data:`NULL_OBS`, a no-op whose
methods never schedule events, never consume randomness, and never
allocate — a run with observability off is bit-for-bit identical to a
run of the uninstrumented code.
"""

from repro.obs.dashboard import (
    render_dashboard,
    render_fleet_page,
    render_sweep_browser,
    write_dashboard,
    write_fleet_page,
    write_sweep_browser,
)
from repro.obs.fleet import FleetSummary, fleet_summary, scan_stores
from repro.obs.gantt import ascii_gantt
from repro.obs.manifest import RunManifest, build_manifest, config_hash, git_revision
from repro.obs.metrics import (
    Counter,
    Gauge,
    MetricsRegistry,
    TimeWeightedHistogram,
)
from repro.obs.observer import NULL_OBS, NullObserver, Observer
from repro.obs.perfetto import trace_events, validate_trace, write_trace
from repro.obs.replay import (
    Replay,
    ReplayFrame,
    replay_events,
    replay_observer,
    replay_store,
    replays_from_perfetto,
)
from repro.obs.store import (
    TraceStoreReader,
    TraceStoreWriter,
    events_of,
    load_tracer,
    read_events,
    read_footer,
)
from repro.obs.tenant_analysis import (
    CapacityProjection,
    TenantJob,
    analyze_tenants,
    format_tenant_analysis,
    jobs_from_tracer,
    tenant_blame,
)
from repro.obs.tracer import Edge, Instant, Span, SpanTracer, TraceError

__all__ = [
    "CapacityProjection",
    "Counter",
    "Edge",
    "FleetSummary",
    "Gauge",
    "Instant",
    "MetricsRegistry",
    "NULL_OBS",
    "NullObserver",
    "Observer",
    "Replay",
    "ReplayFrame",
    "RunManifest",
    "Span",
    "SpanTracer",
    "TenantJob",
    "TimeWeightedHistogram",
    "TraceError",
    "TraceStoreReader",
    "TraceStoreWriter",
    "analyze_tenants",
    "ascii_gantt",
    "build_manifest",
    "config_hash",
    "events_of",
    "fleet_summary",
    "format_tenant_analysis",
    "git_revision",
    "jobs_from_tracer",
    "load_tracer",
    "read_events",
    "read_footer",
    "render_dashboard",
    "render_fleet_page",
    "render_sweep_browser",
    "replay_events",
    "replay_observer",
    "replay_store",
    "replays_from_perfetto",
    "scan_stores",
    "tenant_blame",
    "trace_events",
    "validate_trace",
    "write_dashboard",
    "write_fleet_page",
    "write_sweep_browser",
]
