"""The Observer: one tracer + one metrics registry bound to a simulator.

``Observer.attach(sim)`` is the single switch that turns observability
on: it sets ``sim.obs`` so every model holding the simulator reaches the
same tracer and registry without any plumbing.  Attach *before* building
the cluster/models — resources bind their metrics at construction.

When nothing is attached, ``sim.obs`` is :data:`NULL_OBS`: ``enabled``
is False, the tracer's ``begin`` returns 0, and every metric call hits a
shared no-op object.  The null path performs no allocation, schedules no
events and consumes no randomness, which is what makes an untraced run
bit-for-bit identical to the uninstrumented code.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry, NullRegistry
from repro.obs.tracer import NULL_TRACER, NullTracer, SpanTracer

if TYPE_CHECKING:  # pragma: no cover - typing only; no runtime kernel import
    from repro.simnet.kernel import Simulator


class Observer:
    """Live observability for one simulation run."""

    enabled = True

    def __init__(
        self,
        sim: Optional["Simulator"] = None,
        clock: Optional[Callable[[], float]] = None,
    ):
        if clock is None:
            clock = (lambda: sim.now) if sim is not None else (lambda: 0.0)
        self.sim = sim
        self.clock = clock
        self.tracer = SpanTracer(clock)
        self.metrics = MetricsRegistry(clock)

    @classmethod
    def attach(cls, sim: "Simulator") -> "Observer":
        """Create an observer and make it the simulator's ``obs``."""
        obs = cls(sim)
        sim.obs = obs
        return obs

    def stream_to(self, path, system: str = "sim"):
        """Open a streaming trace store and wire this observer into it.

        Everything recorded from this call on is appended to ``path`` as
        it happens (see :mod:`repro.obs.store`).  The caller owns the
        returned :class:`~repro.obs.store.TraceStoreWriter` and must
        ``close()`` it (or use it as a context manager) so the footer is
        written.
        """
        from repro.obs.store import TraceStoreWriter

        return TraceStoreWriter(path, system=system).attach(self)

    def final_time(self) -> float:
        """Latest simulated time known to tracer or simulator."""
        t = self.tracer.last_time()
        if self.sim is not None:
            t = max(t, self.sim.now)
        return t

    def event_counts(self) -> dict:
        """Headline volumes for run manifests."""
        open_spans = len(self.tracer.open_spans())
        return {
            "spans": len(self.tracer.spans),
            "open_spans": open_spans,
            "instants": len(self.tracer.instants),
            "metrics": len(self.metrics),
            "categories": sorted(self.tracer.categories()),
        }


class NullObserver:
    """The detached default: observability off."""

    enabled = False
    sim = None
    tracer: NullTracer = NULL_TRACER
    metrics: NullRegistry = NULL_REGISTRY

    def final_time(self) -> float:
        return 0.0

    def event_counts(self) -> dict:
        return {"spans": 0, "open_spans": 0, "instants": 0, "metrics": 0,
                "categories": []}


NULL_OBS = NullObserver()
