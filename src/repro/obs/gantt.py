"""ASCII Gantt timeline renderer for terminals.

One row per span track, bars over a shared simulated-time axis — the
quick look that answers "where did the time go" without leaving the
shell.  Perfetto is for zooming; this is for glancing.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.observer import Observer

_BAR = "█"
_PARTIAL = "▏"


def ascii_gantt(
    obs: Observer,
    width: int = 72,
    categories: Optional[set[str]] = None,
    max_rows: int = 36,
    label_width: int = 26,
    title: str = "",
    max_tracks: Optional[int] = None,
) -> str:
    """Render the observer's spans as a fixed-width Gantt chart.

    ``categories`` filters which span categories draw (None = all).
    Tracks render in order of first activity; when there are more than
    ``max_rows`` the middle is elided, never the first or last wave.
    ``max_tracks`` is the harder cap (``--gantt-limit``): only the first
    N tracks draw at all, with a "… N more tracks" footer for the rest —
    the right shape for CI logs where the first wave is the story.
    """
    spans = [
        s
        for s in obs.tracer.spans
        if categories is None or s.category in categories
    ]
    if not spans:
        return "(no spans recorded)"
    t_end = obs.final_time()
    t_max = max(t_end, max(s.t1 if s.t1 is not None else s.t0 for s in spans))
    if t_max <= 0:
        t_max = 1.0

    tracks: dict[str, list] = {}
    for s in spans:
        tracks.setdefault(s.track, []).append(s)
    ordered = sorted(tracks.items(), key=lambda kv: min(s.t0 for s in kv[1]))

    footer = ""
    if max_tracks is not None and 0 < max_tracks < len(ordered):
        truncated = len(ordered) - max_tracks
        ordered = ordered[:max_tracks]
        footer = f"… {truncated} more tracks"

    if len(ordered) > max_rows:
        head = ordered[: max_rows - max_rows // 3]
        tail = ordered[-(max_rows // 3) :]
        elided = len(ordered) - len(head) - len(tail)
        ordered = head + [(f"... {elided} more tracks ...", [])] + tail

    lines = []
    if title:
        lines.append(title)
    # Every line below is exactly label_width + 1 + width characters, so
    # the axis, the rule, and the bar rows stay column-aligned no matter
    # how wide the time label prints.
    end_label = f"{t_max:.2f}s"
    axis = f"{'':<{label_width}} 0s{end_label:>{width - 2}}"
    lines.append(axis)
    lines.append(f"{'':<{label_width}} {'-' * width}")
    for track, ss in ordered:
        label = track if len(track) <= label_width else track[: label_width - 1] + "…"
        if not ss:
            lines.append(f"{label:<{label_width}} {'':<{width}}")
            continue
        cells = [" "] * width
        for s in ss:
            t1 = s.t1 if s.t1 is not None else t_max
            c0 = min(max(int(s.t0 / t_max * (width - 1)), 0), width - 1)
            c1 = min(max(int(t1 / t_max * (width - 1)), c0), width - 1)
            if c1 == c0:
                # Zero-duration (or sub-cell) span: a tick mark, never
                # overwriting a real bar already in the cell.
                if cells[c0] == " ":
                    cells[c0] = _PARTIAL if t1 <= s.t0 else _BAR
            else:
                for c in range(c0, c1 + 1):
                    cells[c] = _BAR
        lines.append(f"{label:<{label_width}} {''.join(cells)}")
    if footer:
        lines.append(footer)
    return "\n".join(lines)
