"""Trace-DAG reconstruction, critical-path analysis and causal what-if.

The paper's whole argument is an *attribution* argument: Figure 1 and
Table I blame the copy stage for most of a Hadoop job's lifetime, and
Figure 6 quantifies what fixing it buys.  This module computes the same
attributions from recorded spans instead of hand-kept counters:

* :class:`TraceDAG` — the dependency graph of a finished run, rebuilt
  from span parent ids plus the explicit happens-before edges
  (``Tracer.edge``) the simulators emit where nesting can't see the
  dependency (map output -> shuffle fetch, fetch -> copy phase, flow ->
  waiter, mapper barrier -> MPI-D recv, task -> job completion).  Builds
  from a live :class:`~repro.obs.observer.Observer` or from a Perfetto
  trace file written by :func:`~repro.obs.perfetto.write_trace`.
* :func:`critical_path` — the job's longest dependency chain, found by
  walking backwards from the job span's end and always descending into
  the *last-finishing* prerequisite.  The resulting segments tile the
  whole makespan, so per-stage blame percentages sum to 100.
* :func:`phase_breakdown` — the Table-I statistic (copy share of total
  task time) recomputed purely from spans, cross-checkable against
  :class:`~repro.hadoop.metrics.JobMetrics`.
* :func:`what_if` — Coz-style virtual speedup: the predicted makespan
  if every critical-path second in one stage/category ran ``pct``
  faster, computed on the DAG with no re-simulation.  (Validation by
  actual re-simulation lives in :mod:`repro.experiments.critical_path`,
  which owns the config-knob mapping.)
* :func:`span_slack` — recorded-time slack per span: how much later a
  span could have finished without moving anything downstream of it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Union

from repro.obs.observer import Observer
from repro.obs.tracer import SpanTracer

_US = 1e6

#: Map a span to one of the paper's stages.  ``None`` means "inherit the
#: enclosing stage" (net flows under a fetch are copy time; under output
#: replication they are reduce time).
_HADOOP_PHASES = {"copy": "copy", "sort": "sort", "reduce": "reduce"}
_MPID_PHASES = {"recv": "copy", "merge": "sort", "write": "reduce"}

#: Every stage the blame report can produce, in display order.
STAGES = ("map", "copy", "sort", "reduce", "idle")


def stage_of(category: str, name: str) -> Optional[str]:
    """The paper-stage of one span, or None to inherit from the walk."""
    if category in ("hadoop.map", "mpid.map"):
        return "map"
    if category == "hadoop.reduce":
        return _HADOOP_PHASES.get(name)  # attempt spans inherit
    if category == "mpid.reduce":
        return _MPID_PHASES.get(name)
    if category in ("transport.jetty", "hadoop.shuffle.backoff", "mpid.retransmit"):
        return "copy"
    if category.endswith(".job"):
        return "idle"
    return None  # net / kernel / anything generic: context decides


@dataclass
class DagSpan:
    """One span, normalized (always closed) for graph work."""

    sid: int
    parent: int
    category: str
    name: str
    track: str
    t0: float
    t1: float
    args: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


class TraceDAG:
    """Spans + parent links + explicit edges of one traced run."""

    def __init__(
        self,
        spans: Iterable[DagSpan],
        edges: Iterable[tuple[int, int, str]],
        name: str = "sim",
    ):
        self.name = name
        self.spans: dict[int, DagSpan] = {s.sid: s for s in spans}
        self.edges: list[tuple[int, int, str]] = []
        #: sid -> child sids (from span parent ids), begin order.
        self.children: dict[int, list[int]] = {}
        #: sid -> [(pred sid, kind)] from explicit edges.
        self.preds: dict[int, list[tuple[int, str]]] = {}
        #: sid -> [(succ sid, kind)] — the reverse view, for slack.
        self.succs: dict[int, list[tuple[int, str]]] = {}
        for s in self.spans.values():
            if s.parent and s.parent in self.spans:
                self.children.setdefault(s.parent, []).append(s.sid)
        for src, dst, kind in edges:
            if src in self.spans and dst in self.spans:
                self.edges.append((src, dst, kind))
                self.preds.setdefault(dst, []).append((src, kind))
                self.succs.setdefault(src, []).append((dst, kind))

    # -- construction ----------------------------------------------------------
    @classmethod
    def from_tracer(cls, tracer: SpanTracer, name: str = "sim") -> "TraceDAG":
        """Build from a live tracer; open spans close at the last time seen."""
        end = tracer.last_time()
        spans = [
            DagSpan(
                s.sid,
                s.parent,
                s.category,
                s.name,
                s.track,
                s.t0,
                end if s.t1 is None else s.t1,
                s.args,
            )
            for s in tracer.spans
        ]
        return cls(spans, [(e.src, e.dst, e.kind) for e in tracer.edges], name=name)

    @classmethod
    def from_observer(cls, obs: Observer, name: str = "sim") -> "TraceDAG":
        return cls.from_tracer(obs.tracer, name=name)

    @classmethod
    def from_trace_events(
        cls, events: Iterable[dict], pid: int, name: str = "sim"
    ) -> "TraceDAG":
        """Rebuild one process's DAG from exported trace events.

        Requires the ``sid``/``parent`` span args the exporter has
        written since edges exist; older traces raise ``ValueError``.
        """
        tracks: dict[int, str] = {}
        spans: list[DagSpan] = []
        edges: list[tuple[int, int, str]] = []
        for ev in events:
            if ev.get("pid") != pid:
                continue
            ph = ev.get("ph")
            if ph == "M" and ev.get("name") == "thread_name":
                tracks[ev["tid"]] = ev["args"]["name"]
            elif ph == "X":
                args = ev.get("args", {})
                if "sid" not in args:
                    raise ValueError(
                        "trace predates span-id export; re-capture it with "
                        "`python -m repro trace` to analyze"
                    )
                t0 = ev["ts"] / _US
                spans.append(
                    DagSpan(
                        args["sid"],
                        args.get("parent", 0),
                        ev.get("cat", ""),
                        ev["name"],
                        tracks.get(ev["tid"], str(ev["tid"])),
                        t0,
                        t0 + ev["dur"] / _US,
                        args,
                    )
                )
            elif ph == "s" and ev.get("cat") == "edge":
                args = ev.get("args", {})
                edges.append((args["src"], args["dst"], ev["name"]))
        return cls(spans, edges, name=name)

    # -- queries ---------------------------------------------------------------
    def root(self) -> int:
        """The job span, or the longest top-level span as a fallback."""
        jobs = [
            s for s in self.spans.values() if s.category.endswith(".job")
        ]
        if jobs:
            return max(jobs, key=lambda s: (s.t1, s.sid)).sid
        roots = [s for s in self.spans.values() if not s.parent]
        if not roots:
            raise ValueError("trace has no root span")
        return max(roots, key=lambda s: (s.duration, s.sid)).sid

    def __len__(self) -> int:
        return len(self.spans)


def load_trace(path: Union[str, Path, dict]) -> dict:
    """Load a trace file (or pass a decoded dict straight through)."""
    if isinstance(path, dict):
        return path
    with Path(path).open() as fh:
        return json.load(fh)


def dags_from_trace(data: Union[str, Path, dict]) -> dict[str, TraceDAG]:
    """One :class:`TraceDAG` per process in an exported trace file."""
    data = load_trace(data)
    events = data.get("traceEvents", [])
    names: dict[int, str] = {}
    for ev in events:
        if ev.get("ph") == "M" and ev.get("name") == "process_name":
            names[ev["pid"]] = ev["args"]["name"]
    out = {}
    for pid in sorted(names):
        name = names[pid]
        dag = TraceDAG.from_trace_events(events, pid, name=name)
        if len(dag):
            out[name] = dag
    return out


# -- critical path --------------------------------------------------------------


@dataclass(frozen=True)
class Segment:
    """One stretch of the critical path attributed to one span."""

    sid: int
    category: str
    name: str
    stage: str
    t0: float
    t1: float

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


@dataclass
class CriticalPath:
    """The job's longest dependency chain, as makespan-tiling segments."""

    root: int
    t_start: float
    t_end: float
    segments: list[Segment]

    @property
    def makespan(self) -> float:
        return self.t_end - self.t_start

    def blame(self) -> dict[str, float]:
        """Critical-path seconds per stage (sums to the makespan)."""
        out: dict[str, float] = {}
        for seg in self.segments:
            out[seg.stage] = out.get(seg.stage, 0.0) + seg.duration
        return out

    def blame_pct(self) -> dict[str, float]:
        span = self.makespan
        if span <= 0:
            return {}
        return {k: 100.0 * v / span for k, v in self.blame().items()}

    def by_category(self) -> dict[str, float]:
        """Critical-path seconds per span category."""
        out: dict[str, float] = {}
        for seg in self.segments:
            out[seg.category] = out.get(seg.category, 0.0) + seg.duration
        return out

    def seconds_in(self, *, stage: str = None, category: str = None,
                   name: str = None) -> float:
        """Critical-path seconds matching the given filters (AND)."""
        total = 0.0
        for seg in self.segments:
            if stage is not None and seg.stage != stage:
                continue
            if category is not None and seg.category != category:
                continue
            if name is not None and seg.name != name:
                continue
            total += seg.duration
        return total

    def by_span(self) -> dict[int, float]:
        out: dict[int, float] = {}
        for seg in self.segments:
            out[seg.sid] = out.get(seg.sid, 0.0) + seg.duration
        return out


def critical_path(
    dag: TraceDAG, root: Optional[int] = None, eps: float = 1e-9
) -> CriticalPath:
    """Walk the last-finishing-prerequisite chain back from the job end.

    At each point in time the walk sits inside one span and asks: which
    prerequisite (child span or explicit-edge predecessor) finished
    last, no later than now?  Time up to that finish is the span's own
    doing; then the walk descends into the prerequisite.  When no
    prerequisite reaches back that far, the rest of the span's interval
    is its own.  The emitted segments tile ``[root.t0, root.t1]``
    exactly — blame percentages always sum to 100.
    """
    if root is None:
        root = dag.root()
    spans = dag.spans
    rspan = spans[root]
    segments: list[Segment] = []

    def emit(span: DagSpan, stage: str, t0: float, t1: float) -> None:
        if t1 - t0 > eps:
            segments.append(
                Segment(span.sid, span.category, span.name, stage, t0, t1)
            )

    def candidates(sid: int) -> list[int]:
        out = list(dag.children.get(sid, ()))
        out.extend(p for p, _kind in dag.preds.get(sid, ()))
        return out

    root_stage = stage_of(rspan.category, rspan.name) or "idle"
    # Frames: [sid, current time, stage]; a frame covers its span's
    # interval downward and pops at the span's start.
    frames: list[list] = [[root, rspan.t1, root_stage]]
    max_steps = 20 * (len(spans) + len(dag.edges)) + 1000
    steps = 0
    while frames:
        steps += 1
        if steps > max_steps:  # pragma: no cover - malformed-trace guard
            raise RuntimeError(
                "critical-path walk did not converge (cyclic or malformed trace)"
            )
        frame = frames[-1]
        sid, t, stage = frame
        span = spans[sid]
        if t <= span.t0 + eps:
            frames.pop()
            if frames:
                # Propagate the low-water mark actually covered, not the
                # span's start: a predecessor reached through this frame
                # may have begun before the parent did, and the parent
                # must not re-cover that time.
                frames[-1][1] = min(frames[-1][1], t, span.t0)
            continue
        best: Optional[DagSpan] = None
        for cid in candidates(sid):
            c = spans[cid]
            if c.t1 <= t + eps and c.t1 > span.t0 + eps:
                if best is None or (c.t1, c.sid) > (best.t1, best.sid):
                    best = c
        if best is None:
            emit(span, stage, span.t0, t)
            frame[1] = span.t0
            continue
        t_desc = min(t, best.t1)
        if t_desc < t:
            emit(span, stage, t_desc, t)  # nothing newer to blame: self time
            frame[1] = t_desc
        child_stage = stage_of(best.category, best.name) or stage
        frames.append([best.sid, t_desc, child_stage])
    return CriticalPath(
        root=root, t_start=rspan.t0, t_end=rspan.t1, segments=segments[::-1]
    )


# -- slack ---------------------------------------------------------------------


def span_slack(dag: TraceDAG, root: Optional[int] = None) -> dict[int, float]:
    """Recorded-time slack: seconds a span's finish could slip before it
    pushes its tightest downstream chain past the job's recorded end.

    Computed with a backward pass over recorded times: a span's *tail*
    is the longest downstream chain of post-finish work reachable via
    its successors (explicit edge targets and its parent).  Slack is
    ``job_end - (t1 + tail)``; spans on the critical path come out at
    (numerically) zero.
    """
    if root is None:
        root = dag.root()
    job_end = dag.spans[root].t1
    tails: dict[int, float] = {}
    order = sorted(dag.spans.values(), key=lambda s: (-s.t1, -s.sid))
    for span in order:
        tail = 0.0
        succs = list(dag.succs.get(span.sid, ()))
        if span.parent and span.parent in dag.spans:
            succs.append((span.parent, "parent"))
        for q_sid, _kind in succs:
            q = dag.spans[q_sid]
            # Only the part of q that runs after this span finishes is
            # downstream work; q's own tail is already computed (it ends
            # later) or treated as 0 on a tie.
            rem = max(0.0, q.t1 - max(q.t0, span.t1))
            tail = max(tail, rem + tails.get(q_sid, 0.0))
        tails[span.sid] = tail
    return {
        sid: max(0.0, job_end - (dag.spans[sid].t1 + tail))
        for sid, tail in tails.items()
    }


# -- Table-I style phase breakdown (counter cross-check) -------------------------


def phase_breakdown(dag: TraceDAG) -> dict:
    """The Figure-1 / Table-I statistic recomputed from spans alone.

    Uses Hadoop's counter semantics: a reducer's copy time runs from
    *task start* to copy-phase end (it includes waiting for unfinished
    maps — the paper's central measurement choice), and the denominator
    is the summed wall time of every winning map attempt plus every
    reduce attempt.  Cross-check against
    :attr:`repro.hadoop.metrics.JobMetrics.copy_fraction`.
    """
    is_mpid = any(s.category == "mpid.map" for s in dag.spans.values())
    map_cat, red_cat = ("mpid.map", "mpid.reduce") if is_mpid else (
        "hadoop.map", "hadoop.reduce"
    )
    phase_names = _MPID_PHASES if is_mpid else _HADOOP_PHASES
    map_time = 0.0
    n_maps = 0
    for s in dag.spans.values():
        if s.category == map_cat and not s.parent:
            if not is_mpid and not s.args.get("won", True):
                continue  # speculative losers are not in the counters
            map_time += s.duration
            n_maps += 1
    copy_time = sort_time = reduce_time = 0.0
    reduce_attempt_time = 0.0
    n_reduces = 0
    for s in dag.spans.values():
        if s.category != red_cat:
            continue
        if not s.parent:
            reduce_attempt_time += s.duration
            n_reduces += 1
            continue
        stage = phase_names.get(s.name)
        attempt = dag.spans.get(s.parent)
        if stage == "copy" and attempt is not None:
            # Counter semantics: copy is measured from task start.
            copy_time += s.t1 - attempt.t0
        elif stage == "sort":
            sort_time += s.duration
        elif stage == "reduce":
            reduce_time += s.duration
    total_task_time = map_time + reduce_attempt_time
    frac = (lambda x: 100.0 * x / total_task_time) if total_task_time > 0 else (
        lambda x: 0.0
    )
    return {
        "system": "mpid" if is_mpid else "hadoop",
        "maps": n_maps,
        "reduces": n_reduces,
        "map_seconds": map_time,
        "copy_seconds": copy_time,
        "sort_seconds": sort_time,
        "reduce_seconds": reduce_time,
        "total_task_seconds": total_task_time,
        "copy_pct": frac(copy_time),
        "sort_pct": frac(sort_time),
        "reduce_pct": frac(reduce_time),
        "map_pct": frac(map_time),
    }


# -- causal what-if --------------------------------------------------------------


@dataclass(frozen=True)
class WhatIf:
    """Predicted effect of virtually speeding up one target by ``pct``."""

    target: str  #: stage name ("map", "copy", ...) or "cat:<category>"
    pct: float  #: fractional speedup applied (0.25 = 25% faster)
    cp_seconds: float  #: critical-path seconds the target owns today
    baseline_makespan: float
    predicted_makespan: float

    @property
    def predicted_delta(self) -> float:
        return self.baseline_makespan - self.predicted_makespan

    def to_dict(self) -> dict:
        return {
            "target": self.target,
            "pct": self.pct,
            "cp_seconds": self.cp_seconds,
            "baseline_makespan": self.baseline_makespan,
            "predicted_makespan": self.predicted_makespan,
            "predicted_delta": self.predicted_delta,
        }


def what_if(cp: CriticalPath, target: str, pct: float) -> WhatIf:
    """Coz-style virtual speedup of one stage (or ``cat:<category>``).

    First-order estimate: every critical-path second owned by the target
    shrinks by ``pct``; off-path work has slack and does not move the
    makespan.  It ignores path re-ordering (a speedup large enough to
    make a different chain critical is over-credited), so treat big
    ``pct`` values as upper bounds — and validate the one you act on by
    re-simulation (:mod:`repro.experiments.critical_path`).
    """
    if not 0.0 <= pct < 1.0:
        raise ValueError(f"pct must be in [0, 1), got {pct}")
    if target.startswith("cat:"):
        secs = cp.seconds_in(category=target[4:])
    else:
        secs = cp.seconds_in(stage=target)
    return WhatIf(
        target=target,
        pct=pct,
        cp_seconds=secs,
        baseline_makespan=cp.makespan,
        predicted_makespan=cp.makespan - pct * secs,
    )


def what_if_table(
    cp: CriticalPath, pcts: Iterable[float] = (0.1, 0.25, 0.5)
) -> list[WhatIf]:
    """What-ifs for every stage present on the critical path, biggest first."""
    blame = cp.blame()
    out = []
    for stage in sorted(blame, key=lambda s: -blame[s]):
        for pct in pcts:
            out.append(what_if(cp, stage, pct))
    return out


# -- top-k bottlenecks -----------------------------------------------------------


def top_bottlenecks(dag: TraceDAG, cp: CriticalPath, k: int = 10) -> list[dict]:
    """The k spans owning the most critical-path time, with their slack."""
    slack = span_slack(dag, root=cp.root)
    per_span = cp.by_span()
    top = sorted(per_span.items(), key=lambda kv: (-kv[1], kv[0]))[:k]
    out = []
    for sid, secs in top:
        span = dag.spans[sid]
        out.append(
            {
                "sid": sid,
                "category": span.category,
                "name": span.name,
                "track": span.track,
                "cp_seconds": secs,
                "duration": span.duration,
                "slack": slack.get(sid, 0.0),
            }
        )
    return out


# -- one-call analysis ------------------------------------------------------------


def analyze_dag(
    dag: TraceDAG,
    top: int = 10,
    pcts: Iterable[float] = (0.1, 0.25, 0.5),
) -> dict:
    """Full analysis of one process's DAG as a JSON-ready dict."""
    cp = critical_path(dag)
    breakdown = phase_breakdown(dag)
    return {
        "system": dag.name,
        "spans": len(dag),
        "edges": len(dag.edges),
        "makespan": cp.makespan,
        "critical_path": {
            "segments": len(cp.segments),
            "blame_seconds": cp.blame(),
            "blame_pct": cp.blame_pct(),
            "by_category": cp.by_category(),
        },
        "phase_breakdown": breakdown,
        "bottlenecks": top_bottlenecks(dag, cp, k=top),
        "what_if": [w.to_dict() for w in what_if_table(cp, pcts)],
    }


def format_analysis(report: dict) -> str:
    """Human-readable rendering of one :func:`analyze_dag` result."""
    lines = []
    name = report["system"]
    lines.append(f"== {name}: {report['makespan']:.2f} s makespan, "
                 f"{report['spans']} spans, {report['edges']} edges ==")
    lines.append("")
    lines.append("critical-path blame (causal; sums to 100%):")
    blame_pct = report["critical_path"]["blame_pct"]
    blame_s = report["critical_path"]["blame_seconds"]
    for stage in STAGES:
        if stage in blame_pct:
            lines.append(
                f"  {stage:<8} {blame_s[stage]:>10.2f} s  {blame_pct[stage]:>6.2f} %"
            )
    pb = report["phase_breakdown"]
    lines.append("")
    lines.append(
        "phase breakdown (Table-I counter semantics, from spans): "
        f"copy {pb['copy_pct']:.1f}%  sort {pb['sort_pct']:.1f}%  "
        f"reduce {pb['reduce_pct']:.1f}%  map {pb['map_pct']:.1f}%"
    )
    lines.append("")
    lines.append(f"top bottleneck spans (critical-path seconds / slack):")
    for b in report["bottlenecks"]:
        lines.append(
            f"  {b['cp_seconds']:>9.2f} s  {b['category']:<18} {b['name']:<26} "
            f"dur {b['duration']:>8.2f} s  slack {b['slack']:>8.2f} s"
        )
    lines.append("")
    lines.append("what-if (virtual speedup -> predicted makespan):")
    by_target: dict[str, list] = {}
    for w in report["what_if"]:
        by_target.setdefault(w["target"], []).append(w)
    for target, ws in by_target.items():
        cells = "  ".join(
            f"-{int(w['pct'] * 100):>2}%: {w['predicted_makespan']:>9.2f} s"
            for w in ws
        )
        lines.append(f"  {target:<8} ({ws[0]['cp_seconds']:>9.2f} s on path)  {cells}")
    return "\n".join(lines)
