"""Length-prefixed binary encoding of keys and values.

MPI-D's *data realignment* step (paper §IV-A) reformats key/value-list
pairs from a discrete hash table into address-sequential, fixed-size
partitions so they can travel through an MPI send as one contiguous
buffer.  This module is the wire format for that step: a small tagged,
length-prefixed encoding that roundtrips the value types MapReduce jobs
here use, with a pickle escape hatch for anything else.

Layout of one encoded object::

    tag:1 byte | length:4 bytes LE | payload:length bytes

and one record is simply ``encode(key) + encode(value)``.
"""

from __future__ import annotations

import pickle
import struct
from typing import Any, Iterator

_TAG_BYTES = 0x01
_TAG_STR = 0x02
_TAG_INT = 0x03
_TAG_FLOAT = 0x04
_TAG_NONE = 0x05
_TAG_LIST = 0x06
_TAG_TUPLE = 0x07
_TAG_PICKLE = 0x7F

_HEADER = struct.Struct("<BI")
_F64 = struct.Struct("<d")


def encode_kv(obj: Any) -> bytes:
    """Encode one Python object into the tagged length-prefixed format."""
    if obj is None:
        return _HEADER.pack(_TAG_NONE, 0)
    if isinstance(obj, bool):
        # bool is an int subclass; encode via int branch deliberately so that
        # decode(encode(True)) == 1 == True by equality.  Kept explicit.
        payload = int(obj).to_bytes(9, "little", signed=True)
        return _HEADER.pack(_TAG_INT, len(payload)) + payload
    if isinstance(obj, bytes):
        return _HEADER.pack(_TAG_BYTES, len(obj)) + obj
    if isinstance(obj, bytearray):
        return _HEADER.pack(_TAG_BYTES, len(obj)) + bytes(obj)
    if isinstance(obj, str):
        payload = obj.encode("utf-8")
        return _HEADER.pack(_TAG_STR, len(payload)) + payload
    if isinstance(obj, int):
        nbytes = max(1, (obj.bit_length() + 8) // 8)
        payload = obj.to_bytes(nbytes, "little", signed=True)
        return _HEADER.pack(_TAG_INT, len(payload)) + payload
    if isinstance(obj, float):
        return _HEADER.pack(_TAG_FLOAT, 8) + _F64.pack(obj)
    if isinstance(obj, (list, tuple)):
        tag = _TAG_LIST if isinstance(obj, list) else _TAG_TUPLE
        body = b"".join(encode_kv(item) for item in obj)
        return _HEADER.pack(tag, len(body)) + body
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    return _HEADER.pack(_TAG_PICKLE, len(payload)) + payload


def _decode_at(buf: bytes, offset: int) -> tuple[Any, int]:
    if offset + _HEADER.size > len(buf):
        raise ValueError(f"truncated header at offset {offset}")
    tag, length = _HEADER.unpack_from(buf, offset)
    start = offset + _HEADER.size
    end = start + length
    if end > len(buf):
        raise ValueError(f"truncated payload at offset {start} (want {length} bytes)")
    payload = buf[start:end]
    if tag == _TAG_NONE:
        return None, end
    if tag == _TAG_BYTES:
        return bytes(payload), end
    if tag == _TAG_STR:
        return payload.decode("utf-8"), end
    if tag == _TAG_INT:
        return int.from_bytes(payload, "little", signed=True), end
    if tag == _TAG_FLOAT:
        return _F64.unpack(payload)[0], end
    if tag in (_TAG_LIST, _TAG_TUPLE):
        items = []
        pos = start
        while pos < end:
            item, pos = _decode_at(buf, pos)
            items.append(item)
        return (items if tag == _TAG_LIST else tuple(items)), end
    if tag == _TAG_PICKLE:
        return pickle.loads(payload), end
    raise ValueError(f"unknown tag 0x{tag:02x} at offset {offset}")


def decode_kv(buf: bytes, offset: int = 0) -> tuple[Any, int]:
    """Decode one object from ``buf`` at ``offset``; returns ``(obj, next_offset)``."""
    return _decode_at(bytes(buf), offset)


def encoded_kv_size(obj: Any) -> int:
    """Size in bytes :func:`encode_kv` would produce for ``obj``."""
    return len(encode_kv(obj))


def encode_record(key: Any, value: Any) -> bytes:
    """Encode one ``(key, value)`` record as two consecutive objects."""
    return encode_kv(key) + encode_kv(value)


def decode_record(buf: bytes, offset: int = 0) -> tuple[Any, Any, int]:
    """Decode one ``(key, value)`` record; returns ``(key, value, next_offset)``."""
    key, offset = decode_kv(buf, offset)
    value, offset = decode_kv(buf, offset)
    return key, value, offset


def iter_records(buf: bytes) -> Iterator[tuple[Any, Any]]:
    """Iterate all ``(key, value)`` records packed back-to-back in ``buf``."""
    offset = 0
    n = len(buf)
    while offset < n:
        key, value, offset = decode_record(buf, offset)
        yield key, value


def serialized_size(key: Any, value: Any) -> int:
    """Wire size of one record — the quantity MPI-D's spill threshold tracks."""
    return encoded_kv_size(key) + encoded_kv_size(value)
