"""Deterministic hashing.

Python's built-in ``hash`` on ``str``/``bytes`` is randomised per process
(PYTHONHASHSEED), which would make partition assignment — and therefore
every simulated shuffle — nondeterministic across runs.  All partitioning
in this repository goes through :func:`stable_hash` instead.

:func:`java_string_hash` reimplements ``java.lang.String.hashCode`` because
Hadoop's ``HashPartitioner`` computes ``(key.hashCode() & MAX_VALUE) %
numReduceTasks``; using it keeps our simulated partition skew comparable to
real Hadoop's for string keys.
"""

from __future__ import annotations

from typing import Any

_FNV_OFFSET_64 = 0xCBF29CE484222325
_FNV_PRIME_64 = 0x100000001B3
_MASK_64 = 0xFFFFFFFFFFFFFFFF


def fnv1a_64(data: bytes) -> int:
    """64-bit FNV-1a hash of ``data``; deterministic across processes."""
    h = _FNV_OFFSET_64
    for byte in data:
        h ^= byte
        h = (h * _FNV_PRIME_64) & _MASK_64
    return h


def java_string_hash(s: str) -> int:
    """``java.lang.String.hashCode()``: signed 32-bit ``h = 31*h + c``."""
    h = 0
    for ch in s:
        h = (31 * h + ord(ch)) & 0xFFFFFFFF
    # Interpret as signed 32-bit, as Java would.
    if h >= 0x80000000:
        h -= 0x100000000
    return h


def _key_bytes(key: Any) -> bytes:
    if isinstance(key, bytes):
        return key
    if isinstance(key, str):
        return key.encode("utf-8")
    if isinstance(key, bool):
        return b"\x01" if key else b"\x00"
    if isinstance(key, int):
        return key.to_bytes(16, "little", signed=True)
    if isinstance(key, float):
        import struct

        return struct.pack("<d", key)
    if isinstance(key, tuple):
        parts = bytearray()
        for item in key:
            piece = _key_bytes(item)
            parts += len(piece).to_bytes(4, "little")
            parts += piece
        return bytes(parts)
    if key is None:
        return b"\xff<none>"
    raise TypeError(f"unhashable key type for stable_hash: {type(key).__name__}")


def stable_hash(key: Any) -> int:
    """Deterministic non-negative 64-bit hash for partitioning.

    Supports the key types MapReduce jobs in this repository use: ``bytes``,
    ``str``, ``int``, ``float``, ``bool``, ``None`` and tuples thereof.
    """
    return fnv1a_64(_key_bytes(key))
