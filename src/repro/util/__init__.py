"""Shared utilities: units, stable hashing, serialization, RNG discipline.

Everything in this package is dependency-free (stdlib + numpy) and safe to
import from any other subpackage; nothing here imports the rest of
:mod:`repro`.
"""

from repro.util.units import (
    KB,
    MB,
    GB,
    TB,
    KiB,
    MiB,
    GiB,
    US,
    MS,
    SECOND,
    fmt_bytes,
    fmt_time,
    parse_size,
)
from repro.util.hashing import stable_hash, fnv1a_64, java_string_hash
from repro.util.serde import (
    encode_kv,
    decode_kv,
    encoded_kv_size,
    encode_record,
    decode_record,
    serialized_size,
)
from repro.util.rng import make_rng, derive_seed

__all__ = [
    "KB",
    "MB",
    "GB",
    "TB",
    "KiB",
    "MiB",
    "GiB",
    "US",
    "MS",
    "SECOND",
    "fmt_bytes",
    "fmt_time",
    "parse_size",
    "stable_hash",
    "fnv1a_64",
    "java_string_hash",
    "encode_kv",
    "decode_kv",
    "encoded_kv_size",
    "encode_record",
    "decode_record",
    "serialized_size",
    "make_rng",
    "derive_seed",
]
