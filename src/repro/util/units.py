"""Size and time units used throughout the reproduction.

The paper mixes decimal prefixes in prose ("128 MB", "1 GB") with what are
really binary sizes (a 64 MB HDFS block is 64 * 2**20 bytes).  We follow
Hadoop's convention: ``KB``/``MB``/``GB`` here are the *binary* units,
matching ``io.file.buffer.size``-style configuration values, and the
explicit ``KiB``/``MiB``/``GiB`` aliases are provided for clarity.

Times are plain floats in seconds; ``US``/``MS`` are multipliers so model
code can write ``65 * US`` instead of ``6.5e-5``.
"""

from __future__ import annotations

# --- sizes (bytes) -------------------------------------------------------
KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB
TiB = 1024 * GiB

# Hadoop-convention aliases: "64 MB block" means 64 * 2**20 bytes.
KB = KiB
MB = MiB
GB = GiB
TB = TiB

# --- times (seconds) -----------------------------------------------------
US = 1e-6
MS = 1e-3
SECOND = 1.0
MINUTE = 60.0

_SIZE_SUFFIXES = {
    "b": 1,
    "k": KiB,
    "kb": KiB,
    "kib": KiB,
    "m": MiB,
    "mb": MiB,
    "mib": MiB,
    "g": GiB,
    "gb": GiB,
    "gib": GiB,
    "t": TiB,
    "tb": TiB,
    "tib": TiB,
}


def parse_size(text: str | int | float) -> int:
    """Parse a human-readable size like ``"64MB"`` or ``"1.5 GiB"`` to bytes.

    Integers and floats pass through (rounded to int).  Raises
    :class:`ValueError` for unknown suffixes or negative sizes.
    """
    if isinstance(text, (int, float)):
        if text < 0:
            raise ValueError(f"size may not be negative: {text!r}")
        return int(text)
    s = text.strip().lower().replace(" ", "")
    idx = len(s)
    while idx > 0 and not s[idx - 1].isdigit():
        idx -= 1
    num, suffix = s[:idx], s[idx:]
    if not num:
        raise ValueError(f"no numeric part in size {text!r}")
    mult = _SIZE_SUFFIXES.get(suffix, None) if suffix else 1
    if mult is None:
        raise ValueError(f"unknown size suffix {suffix!r} in {text!r}")
    value = float(num) * mult
    if value < 0:
        raise ValueError(f"size may not be negative: {text!r}")
    return int(value)


def fmt_bytes(nbytes: float) -> str:
    """Format a byte count with a binary suffix, e.g. ``fmt_bytes(65536) == '64.0 KB'``."""
    n = float(nbytes)
    sign = "-" if n < 0 else ""
    n = abs(n)
    for unit, div in (("GB", GiB), ("MB", MiB), ("KB", KiB)):
        if n >= div:
            return f"{sign}{n / div:.1f} {unit}"
    if n == int(n):
        return f"{sign}{int(n)} B"
    return f"{sign}{n:.1f} B"


def fmt_time(seconds: float) -> str:
    """Format a duration: microseconds below 1 ms, ms below 1 s, else seconds."""
    s = float(seconds)
    sign = "-" if s < 0 else ""
    s = abs(s)
    if s < 1e-3:
        return f"{sign}{s / US:.1f} us"
    if s < 1.0:
        return f"{sign}{s / MS:.2f} ms"
    if s < 120.0:
        return f"{sign}{s:.2f} s"
    return f"{sign}{s / 60.0:.1f} min"
