"""Seeding discipline.

Every stochastic component (workload generators, jitter in cost models,
the DES) takes an explicit seed and derives child seeds with
:func:`derive_seed`, so an experiment is reproducible end-to-end from a
single root seed and two components never share a stream by accident.
"""

from __future__ import annotations

import numpy as np

from repro.util.hashing import fnv1a_64


def derive_seed(root: int, *path: object) -> int:
    """Derive a child seed from ``root`` and a label path.

    ``derive_seed(7, "node", 3)`` is stable across runs and distinct from
    ``derive_seed(7, "node", 4)`` and from ``derive_seed(8, "node", 3)``.
    """
    label = "/".join(str(p) for p in path)
    return fnv1a_64(f"{root}:{label}".encode("utf-8")) & 0x7FFFFFFFFFFFFFFF


def make_rng(root: int, *path: object) -> np.random.Generator:
    """A numpy Generator seeded from ``derive_seed(root, *path)``."""
    return np.random.default_rng(derive_seed(root, *path))
