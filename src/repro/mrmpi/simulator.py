"""DES model of MapReduce running on MPI-D (paper Figure 4 + Section IV-C).

Process layout mirrors the paper's experiment: the master (rank 0) lives
on the master node and hands out static splits at start; mapper
processes are pinned round-robin across the worker nodes with their
input split stored locally ("we distribute all input data across all
nodes to guarantee the data accessing locally as in Hadoop"); reducer
processes likewise.

Each mapper iterates spill-sized chunks: local disk read, user map +
combine CPU (native rate), realignment CPU, then fixed-size partition
arrays leave as MPI messages — eager sends, so the mapper does not wait
for delivery (the overlap the paper's buffering is designed for), while
the flows still contend on the shared network.  Reducers merge arriving
bytes (CPU charged per byte on arrival order is approximated as a final
merge after the last byte, which is exact for the makespan because the
merge rate exceeds the arrival rate everywhere in our regime) and write
output locally.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.hadoop.hdfs import HdfsFile, HdfsNamespace
from repro.hadoop.job import JobSpec
from repro.hadoop.storage import StorageManager
from repro.mrmpi.config import MrMpiConfig
from repro.obs import Observer
from repro.simnet.cluster import Cluster, ClusterSpec
from repro.simnet.faults import (
    NETWORK_FAULT_SPECS,
    STORAGE_FAULT_SPECS,
    FaultInjector,
    FaultPlan,
)
from repro.simnet.kernel import Event, Interrupt, Process, Simulator
from repro.simnet.network import FlowFailed
from repro.transports.mpich import MpichTransport
from repro.util.rng import derive_seed, make_rng


@dataclass
class MapperMetrics:
    rank: int
    node: int
    input_bytes: float = 0.0
    sent_bytes: float = 0.0
    messages: int = 0
    spills: int = 0
    started_at: float = 0.0
    finished_at: float = 0.0

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at


@dataclass
class ReducerMetrics:
    rank: int
    node: int
    received_bytes: float = 0.0
    started_at: float = 0.0
    copy_done_at: float = 0.0
    finished_at: float = 0.0

    @property
    def copy_time(self) -> float:
        return self.copy_done_at - self.started_at

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at


@dataclass
class MrMpiMetrics:
    """Job-level results of one MPI-D simulation run."""

    job_name: str
    elapsed: float = 0.0
    mappers: list[MapperMetrics] = field(default_factory=list)
    reducers: list[ReducerMetrics] = field(default_factory=list)
    # -- lossy-network accounting (all zero on a loss-free run) ---------------
    #: Killed flows observed by the network during this attempt.
    flows_lost: int = 0
    #: Arrays resent by the reliable-transport mode.
    retransmits: int = 0
    #: True when a lost stream was fatal (baseline MPICH: MPI_Abort).
    aborted: bool = False
    aborted_at: Optional[float] = None
    abort_reason: Optional[str] = None

    @property
    def total_sent_bytes(self) -> float:
        return sum(m.sent_bytes for m in self.mappers)

    @property
    def total_messages(self) -> int:
        return sum(m.messages for m in self.mappers)

    def summary(self) -> dict:
        return {
            "job": self.job_name,
            "elapsed": self.elapsed,
            "mappers": len(self.mappers),
            "reducers": len(self.reducers),
            "sent_bytes": self.total_sent_bytes,
            "messages": self.total_messages,
        }

    def fault_summary(self) -> dict:
        """The lossy-network counters as one record (Hadoop-symmetric)."""
        return {
            "flows_lost": self.flows_lost,
            "retransmits": self.retransmits,
            "aborted": self.aborted,
            "aborted_at": self.aborted_at,
            "abort_reason": self.abort_reason,
        }

    def to_dict(self) -> dict:
        """JSON-serializable dump: summary plus per-process records."""
        return {
            "summary": self.summary(),
            "faults": self.fault_summary(),
            "mappers": [
                {
                    "rank": m.rank,
                    "node": m.node,
                    "input_bytes": m.input_bytes,
                    "sent_bytes": m.sent_bytes,
                    "messages": m.messages,
                    "spills": m.spills,
                    "started_at": m.started_at,
                    "finished_at": m.finished_at,
                }
                for m in self.mappers
            ],
            "reducers": [
                {
                    "rank": r.rank,
                    "node": r.node,
                    "received_bytes": r.received_bytes,
                    "copy_time": r.copy_time,
                    "duration": r.duration,
                }
                for r in self.reducers
            ],
        }


class MpiJobAborted(RuntimeError):
    """The whole MPI job died (MPICH2's reaction to a fatal stream loss).

    Carries the abort instant and the attempt's partial metrics so the
    restart loop can account for the thrown-away progress.
    """

    def __init__(self, reason: str, at: float, metrics: MrMpiMetrics):
        super().__init__(f"MPI job aborted at t={at:.3f}s: {reason}")
        self.reason = reason
        self.at = at
        self.metrics = metrics


class _NetworkOnlyHost:
    """FaultHost stub for MPI-D: crash specs are rejected up front, so
    these hooks must never fire."""

    def crash_node(self, node_id: int, now: float) -> None:
        raise AssertionError("crash spec reached a network-only injector")

    def restart_node(self, node_id: int, now: float) -> None:
        raise AssertionError("restart reached a network-only injector")


@dataclass
class MrMpiSimulation:
    """One MPI-D MapReduce job on a freshly built simulated cluster."""

    spec: JobSpec
    config: MrMpiConfig = field(default_factory=MrMpiConfig)
    cluster_spec: ClusterSpec = field(default_factory=ClusterSpec)
    #: Network/storage-fault plan (node crashes are modeled analytically
    #: by :func:`run_mpid_job_under_faults`, because a crash kills the
    #: whole MPI job and a clean rerun is deterministic anyway).
    fault_plan: Optional[FaultPlan] = None
    #: Seed for the reliable-transport retransmission jitter streams and
    #: the input replica placement under storage faults.
    seed: int = 2011
    #: Storage damage carried over from a previous attempt (a destroyed
    #: replica does not come back on resubmission) — the record returned
    #: by ``StorageManager.damage()``.
    prior_damage: Optional[tuple] = None
    #: Observability: True attaches an :class:`~repro.obs.Observer`; off by
    #: default so an untraced run matches the uninstrumented code exactly.
    observe: bool = False
    #: Multi-tenant mode: run against an existing kernel + cluster instead
    #: of building a private pair.  Both must be given together; faults
    #: are then owned by the engine (``fault_plan`` must stay None).
    sim: Optional[Simulator] = None
    cluster: Optional[Cluster] = None

    def __post_init__(self) -> None:
        self.shared = self.sim is not None
        if self.shared != (self.cluster is not None):
            raise ValueError("pass sim and cluster together (or neither)")
        if self.shared:
            if self.fault_plan is not None:
                raise ValueError(
                    "per-job fault plans are not supported on a shared "
                    "cluster; give the plan to the engine instead"
                )
            self.cluster_spec = self.cluster.spec
            self.obs = self.sim.obs
        else:
            self.sim = Simulator()
            # Attach before Cluster: resources bind their metrics at init.
            self.obs = Observer.attach(self.sim) if self.observe else self.sim.obs
            self.cluster = Cluster(self.sim, self.cluster_spec)
        if self.cluster_spec.num_nodes < 2:
            raise ValueError("need a master plus at least one worker node")
        self.mpich = MpichTransport()
        self.num_workers = self.cluster_spec.num_nodes - 1
        cfg = self.config
        # Round-robin pinning over worker nodes (ids 1..N-1).
        self.mapper_nodes = [
            1 + (i % self.num_workers) for i in range(cfg.num_mappers)
        ]
        self.reducer_nodes = [
            1 + ((cfg.num_mappers + i) % self.num_workers)
            for i in range(cfg.num_reducers)
        ]
        self.metrics = MrMpiMetrics(job_name=self.spec.name)
        #: Output share per reducer (key-skew model; uniform by default).
        self.partition_weights = self.spec.normalized_weights(cfg.num_reducers)
        # Flows destined to each reducer, appended by mappers.
        self._reducer_flows: list[list[Event]] = [
            [] for _ in range(cfg.num_reducers)
        ]
        self._sent_per_reducer = [0.0] * cfg.num_reducers
        self._mappers_done = 0
        self._all_mappers_done: Optional[Event] = None
        # -- trace-DAG bookkeeping (all zeros when tracing is off) ------------
        #: Each reducer's recv-phase span, so mapper sends can name the
        #: span that waits on their flows (recv begins before the first
        #: send can leave: both sides pay the same startup_time, and a
        #: mapper reads+computes before emitting).
        self._recv_sids = [0] * cfg.num_reducers
        #: Finished mapper spans; reducers draw barrier edges from them.
        self._mapper_sids: list[int] = []
        #: In-flight span ids (by metrics object id) so a gang-wide
        #: interrupt can abort the right spans.
        self._open_mapper_sids: dict[int, int] = {}
        self._open_reducer_sids: dict[int, int] = {}
        #: The job span's tracer id (set by :meth:`run`).
        self.job_sid = 0
        self.injector: Optional[FaultInjector] = None
        self.net_faults = False
        #: True when engine-owned crashes can reach this gang (shared
        #: mode; the engine flips it after construction).
        self.fault_aware = False
        #: Processes per node, so a crash can take down the whole gang.
        self._node_procs: dict[int, list[Process]] = {}
        self._job_proc: Optional[Process] = None
        self._flows_failed_at_start = 0
        #: Input replica liveness under storage faults (no repair: MPI
        #: has no NameNode healing its input); None otherwise.
        self.hdfs: Optional[HdfsNamespace] = None
        self.storage: Optional[StorageManager] = None
        self._mapper_files: dict[int, HdfsFile] = {}
        if self.fault_plan:
            for fspec in self.fault_plan.specs:
                if not isinstance(
                    fspec, NETWORK_FAULT_SPECS + STORAGE_FAULT_SPECS
                ):
                    raise ValueError(
                        f"MrMpiSimulation only injects network and storage "
                        f"faults; {type(fspec).__name__} is covered by the "
                        f"analytic restart model (run_mpid_job_under_faults)"
                    )
            workers = tuple(range(1, self.cluster_spec.num_nodes))
            if self.fault_plan.has_storage_faults():
                self._build_storage(workers)
            self.injector = FaultInjector(
                self.sim,
                self.cluster,
                self.fault_plan,
                host=_NetworkOnlyHost(),
                storage=self.storage,
                default_storage_nodes=workers,
            )
            self.net_faults = self.fault_plan.has_network_faults()

    def _build_storage(self, workers: tuple[int, ...]) -> None:
        """Lay the pre-distributed input out as one file per mapper with
        its first replica on the mapper's node (the paper's "data
        accessing locally"); extra replicas (``input_replication``) land
        on other workers and are what failover reads after a disk dies."""
        cfg = self.config
        split = int(math.ceil(self.spec.input_bytes / cfg.num_mappers))
        self.hdfs = HdfsNamespace(
            datanodes=list(workers),
            block_size=cfg.input_block_size,
            replication=cfg.input_replication,
            seed=self.seed,
        )
        for rank, node_id in enumerate(self.mapper_nodes, start=1):
            self._mapper_files[rank] = self.hdfs.create_file(
                f"{self.spec.input_file}.m{rank}", split, writer_node=node_id
            )
        self.storage = StorageManager(
            self.sim, self.cluster, self.hdfs, seed=self.seed, repair=False
        )
        if self.prior_damage is not None:
            self.storage.apply_damage(self.prior_damage)

    # -- shared-cluster plumbing ------------------------------------------------
    def _spawn(self, node_id: int, gen, name: str = "") -> Process:
        """``sim.process`` plus crash registration in fault-aware mode."""
        proc = self.sim.process(gen, name=name)
        if self.fault_aware:
            self._node_procs.setdefault(node_id, []).append(proc)
        return proc

    def ranks_per_node(self) -> dict[int, int]:
        """How many of this gang's processes are pinned to each node —
        the scheduler's gang-reservation footprint."""
        out: dict[int, int] = {}
        for n in self.mapper_nodes:
            out[n] = out.get(n, 0) + 1
        for n in self.reducer_nodes:
            out[n] = out.get(n, 0) + 1
        return out

    def crash_node(self, node_id: int, now: float) -> None:
        """Engine fan-out: a node hosting one of this gang's ranks died.

        MPICH2 semantics — any rank's host dying aborts the whole job,
        so every process of the gang is interrupted (they release their
        shared-cluster resources on the way out).  Nodes that host none
        of this job's ranks leave it untouched.
        """
        if self.metrics.aborted:
            return
        if node_id != 0 and node_id not in self.ranks_per_node():
            return
        m = self.metrics
        m.aborted = True
        m.abort_reason = f"rank host n{node_id} crashed"
        m.aborted_at = now
        for procs in self._node_procs.values():
            for proc in procs:
                if proc.is_alive:
                    proc.interrupt(f"node {node_id} crashed: MPI_Abort")

    def restart_node(self, node_id: int, now: float) -> None:
        """A restarted node never rejoins a running MPI job."""

    # -- cost helpers -----------------------------------------------------------
    def _user_cpu(self, per_byte: float, nbytes: float) -> float:
        return nbytes * per_byte / self.config.native_speedup

    # -- processes -----------------------------------------------------------------
    def _mapper_proc(self, rank: int, node_id: int, split_bytes: float):
        sim = self.sim
        cfg = self.config
        profile = self.spec.profile
        node = self.cluster.node(node_id)
        m = MapperMetrics(rank=rank, node=node_id, input_bytes=split_bytes)
        self.metrics.mappers.append(m)
        tr = sim.obs.tracer
        sid = 0
        try:
            yield from self._mapper_body(rank, node_id, split_bytes, node, m)
        except Interrupt:
            # Our host (or a gang peer's) crashed: MPI_Abort.  Resources
            # held through ``cancel``-style finallys are already free.
            tr.abort(self._mapper_sid_of(m), outcome="interrupted")
            return

    def _mapper_sid_of(self, m: MapperMetrics) -> int:
        return self._open_mapper_sids.get(id(m), 0)

    def _mapper_body(
        self, rank: int, node_id: int, split_bytes: float, node, m: MapperMetrics
    ):
        sim = self.sim
        cfg = self.config
        profile = self.spec.profile
        yield sim.timeout(cfg.startup_time)
        m.started_at = sim.now
        tr = sim.obs.tracer
        sid = tr.begin(
            "mpid.map", f"mapper{rank}", node=node_id, input_bytes=split_bytes
        )
        self._open_mapper_sids[id(m)] = sid

        remaining = split_bytes
        # Chunk size chosen so one chunk's raw map output fills the spill
        # buffer — each iteration is exactly one spill cycle.
        chunk_in = max(1.0, cfg.spill_threshold / max(profile.map_selectivity, 1e-9))
        # Hot-loop locals: the send loop below runs once per reducer per
        # spill, so attribute chains are hoisted out of it.
        reducer_nodes = self.reducer_nodes
        weights = self.partition_weights
        reducer_flows = self._reducer_flows
        sent_per_reducer = self._sent_per_reducer
        recv_sids = self._recv_sids
        mpich = self.mpich
        partition_bytes = cfg.partition_bytes
        stream_per_msg = mpich.stream_per_msg
        reliable = self.net_faults and self.config.reliable_transport
        obs = sim.obs
        # Every full-size chunk produces the same per-reducer share, so
        # the message count, injection CPU and MPICH wire costs repeat
        # thousands of times — memoise them by share.  The fabric path
        # and base latency per reducer are loop constants outright
        # (this inlines Cluster.send's lookups; 0.0 + setup keeps the
        # local-send float association bit-identical).
        net = self.cluster.network
        nodes = self.cluster.nodes
        link_latency = self.cluster.spec.link_latency
        send_paths: list[tuple[tuple, float]] = [
            ((), 0.0)
            if rnode == node_id
            else ((nodes[node_id].uplink, nodes[rnode].downlink), link_latency)
            for rnode in reducer_nodes
        ]
        wc_cache: dict[float, tuple[int, float, float]] = {}
        # Horizon batching (vectorized engine, tracing off): the spill
        # chain's pure CPU delays — realign, compress, the first
        # reducer's injection cost — collapse into one pooled tick at
        # the accumulated absolute instant.  The accumulation performs
        # the same float additions in the same order the chained
        # timeouts would (((t + realign) + compress) + send_cpu), so
        # every send starts at the bit-identical time.  Span boundaries
        # pin the unfused chain when tracing is on.
        fused = not obs.enabled and self.cluster.network.engine == "vectorized"
        # Deeper fusion — CPU slot held via try_acquire with an
        # autonomous release tick — is only valid when nothing can
        # interrupt the mapper mid-chain: an interrupted scalar mapper
        # releases its core at the interrupt instant, the release tick
        # at the phase boundary.  Fault-free runs cannot be interrupted.
        fused_cpu = (
            fused
            and self.injector is None
            and not self.net_faults
            and self.storage is None
        )
        cpus = node.cpus
        # With no more pinned ranks than cores the pool can never
        # saturate: every acquire grants instantly and every release
        # is a counter flip nobody observes (the occupancy metrics are
        # null with tracing off).  Skip slot accounting entirely — and
        # with it the autonomous release tick.
        free_run = (
            fused_cpu
            and self.ranks_per_node().get(node_id, 0) <= cpus.capacity
        )

        def release_core(ev, pool=cpus):
            pool.release()

        # Chunk-derived quantities repeat for every full chunk (only the
        # final partial differs) — memoise instead of recomputing per
        # lap.  The tracer calls are no-ops when tracing is off; `traced`
        # skips even the no-op dispatch in this, the hottest loop in the
        # whole codebase.
        traced = obs.enabled
        job_metrics = self.metrics
        prev_chunk = -1.0
        chunk_cpu = chunk_out = 0.0
        read_sid = map_sid = send_sid = 0
        while remaining > 0:
            if job_metrics.aborted:
                # Another rank hit unrecoverable data loss: MPI_Abort
                # takes everyone down (pure state check — adds no events
                # on runs that never abort).
                tr.abort(sid, outcome="aborted")
                return
            offset = split_bytes - remaining
            chunk = min(chunk_in, remaining)
            remaining -= chunk
            if chunk != prev_chunk:
                prev_chunk = chunk
                chunk_cpu = self._user_cpu(profile.map_cpu_per_byte, chunk)
                chunk_out = profile.map_output_bytes(chunk)
            if traced:
                read_sid = tr.begin("mpid.map", "read", parent=sid)
            if self.storage is None:
                yield node.disk_read(chunk)
            else:
                ok = yield from self._read_chunk(
                    rank, node, offset, chunk, read_sid
                )
                if not ok:
                    tr.abort(read_sid, outcome="data-lost")
                    tr.abort(sid, outcome="aborted")
                    return
            if traced:
                tr.end(read_sid)
            cpu = chunk_cpu
            if traced:
                map_sid = tr.begin("mpid.map", "map", parent=sid)
            if fused_cpu and (free_run or cpus.try_acquire()):
                # Whole-chain horizon batching: the core's release is an
                # autonomous tick at the map phase's end, and the mapper
                # itself sleeps straight through map + realign [+compress]
                # into the first send — one resume for the whole CPU
                # chain.  All instants are the same float accumulation
                # the chained timeouts would produce.
                t_rel = sim.now + cpu
                if not free_run:
                    sim.tick_at(t_rel, release_core)
                if traced:
                    tr.end(map_sid)
                out = chunk_out
                if out <= 0:
                    yield sim.tick_at(t_rel)
                    continue
                m.spills += 1
                pending = t_rel + out * cfg.realign_cpu_per_byte
                if cfg.compress:
                    pending = pending + out * cfg.compress_cpu_per_byte
                    out *= cfg.compression_ratio
            else:
                core = cpus.acquire()
                try:
                    if not (fused and core.triggered):
                        # An uncontended slot grants synchronously;
                        # skipping the yield saves the resume (the
                        # pre-scheduled grant event still pops harmlessly
                        # with no callbacks).
                        yield core
                    yield sim.timeout(cpu)
                finally:
                    cpus.cancel(core)
                if traced:
                    tr.end(map_sid)
                # Spill: realign + eager sends of fixed-size arrays.
                out = chunk_out
                if out <= 0:
                    continue
                m.spills += 1
                realign_sid = (
                    tr.begin("mpid.map", "realign", parent=sid) if traced else 0
                )
                if fused:
                    # Defer the realign/compress sleep into the first
                    # send's injection sleep (one tick, not 2-3 timeouts).
                    pending = sim.now + out * cfg.realign_cpu_per_byte
                    if cfg.compress:
                        pending = pending + out * cfg.compress_cpu_per_byte
                        out *= cfg.compression_ratio
                else:
                    pending = None
                    yield sim.timeout(out * cfg.realign_cpu_per_byte)
                    if cfg.compress:
                        yield sim.timeout(out * cfg.compress_cpu_per_byte)
                        out *= cfg.compression_ratio
                if traced:
                    tr.end(realign_sid)
            if traced:
                send_sid = tr.begin("mpid.map", "send", parent=sid)
            for r, rnode in enumerate(reducer_nodes):
                share = out * weights[r]
                if share <= 0:
                    continue
                cached = wc_cache.get(share)
                if cached is None:
                    n_msgs = max(1, int(share // partition_bytes) + 1)
                    cached = (
                        n_msgs,
                        n_msgs * stream_per_msg,
                        mpich.wire_costs(int(share)).setup_time,
                    )
                    wc_cache[share] = cached
                n_msgs, send_cpu, setup_time = cached
                if pending is not None:
                    yield sim.tick_at(pending + send_cpu)
                    pending = None
                else:
                    yield sim.timeout(send_cpu)  # not overlapped: injection cost
                if reliable:
                    # Each array gets its own retransmission process; the
                    # reducer waits on it exactly like a bare flow.
                    flow = self._spawn(
                        node_id,
                        self._retransmit_proc(
                            node_id, rnode, share, setup_time, rank, r, m.spills
                        ),
                        name=f"retx-m{rank}-r{r}.{m.spills}",
                    )
                else:
                    path, base_lat = send_paths[r]
                    flow = net.transfer_flow(
                        path,
                        share,
                        latency=base_lat + setup_time,
                        waiter_sid=recv_sids[r],
                    ).done
                reducer_flows[r].append(flow)
                sent_per_reducer[r] += share
                m.sent_bytes += share
                m.messages += n_msgs
                if traced:
                    obs.metrics.counter("transport.mpich.messages").add(n_msgs)
                    obs.metrics.counter("transport.mpich.bytes").add(share)
            if pending is not None:
                # No reducer received bytes this spill; the realign/
                # compress CPU was still spent.
                yield sim.tick_at(pending)
            if traced:
                tr.end(send_sid, sent_bytes=m.sent_bytes)
        m.finished_at = sim.now
        tr.end(sid, messages=m.messages, spills=m.spills)
        self._open_mapper_sids.pop(id(m), None)
        if sid:
            self._mapper_sids.append(sid)
        self._mappers_done += 1
        if self._mappers_done == cfg.num_mappers:
            assert self._all_mappers_done is not None
            self._all_mappers_done.succeed()

    def _read_chunk(self, rank: int, node, offset: float, chunk: float, read_sid: int):
        """One chunk read against the replicated input (storage-fault runs).

        Clean runs read the local replica — the placement guarantees one —
        so an undamaged run costs exactly ``node.disk_read(chunk)``.  After
        a disk death the DFS-client loop below fails over to a remote
        replica (disk + wire, contending like any other flow); when every
        replica of the covering block is gone the job aborts, because MPI-D
        has no framework that could re-create the data (the Section-V
        asymmetry the durability experiment measures).  Returns True when
        the chunk was read, False after recording a fatal abort.
        """
        sim = self.sim
        storage = self.storage
        assert storage is not None
        f = self._mapper_files[rank]
        bidx = min(int(offset // self.config.input_block_size), len(f.blocks) - 1)
        block = f.blocks[bidx]
        bid = block.block_id
        while True:
            candidates = storage.read_candidates(block, node.node_id)
            if not candidates:
                name, b = storage.block_name(bid)
                self._record_abort(f"block_lost:{name}:{b}")
                self._stop_faults()
                return False
            src_id = candidates[0]
            epoch = storage.read_epoch(src_id)
            if src_id == node.node_id:
                yield node.disk_read(chunk)
            else:
                src = self.cluster.node(src_id)
                wire = self.cluster.send(
                    src_id, node.node_id, chunk, waiter_sid=read_sid
                )
                try:
                    yield sim.all_of([src.disk_read(chunk), wire])
                except FlowFailed as exc:
                    # Mixed plans only: a lossy network killed the transfer
                    # mid-read.  Baseline MPICH treats that as fatal.
                    self._record_abort(str(exc))
                    self._stop_faults()
                    return False
            if storage.is_corrupt(bid, src_id):
                storage.note_failover("corrupt", bid, src_id)
                storage.report_corruption(bid, src_id, sim.now)
                continue
            if storage.read_ok(bid, src_id, epoch):
                return True
            storage.note_failover("replica-gone", bid, src_id)

    def _stop_faults(self) -> None:
        """Stop open-ended fault streams so the heap can drain after a
        storage abort (network aborts stop them from :meth:`run`'s job
        process instead; storage aborts leave that process blocked on
        mappers that will never finish)."""
        if self.injector is not None:
            self.injector.stop()

    def _retransmit_proc(
        self,
        src: int,
        dst: int,
        nbytes: float,
        setup: float,
        rank: int,
        reducer: int,
        seq: int,
    ):
        """One array under reliable transport: resend on a killed flow.

        The backoff jitter stream is fixed by (seed, sender rank,
        reducer, spill number), so a run's retransmission timeline is
        reproducible.  Exhausting the budget re-raises — the reducer's
        wait then aborts the job, same as the baseline.
        """
        sim = self.sim
        policy = self.mpich.reliable_policy()
        rng = make_rng(self.seed, "mpid-retransmit", rank, reducer, seq)
        attempt = 0
        while True:
            flow = self.cluster.send_flow(
                src,
                dst,
                nbytes,
                extra_latency=setup,
                waiter_sid=self._recv_sids[reducer],
            )
            try:
                yield flow.done
                return
            except FlowFailed:
                attempt += 1
                if attempt > policy.retries:
                    raise
                self.metrics.retransmits += 1
                tr = sim.obs.tracer
                sid = tr.begin(
                    "mpid.retransmit",
                    f"retx n{src}->n{dst}",
                    attempt=attempt,
                )
                if sid:
                    sim.obs.metrics.counter("transport.mpich.retransmits").add()
                yield sim.timeout(policy.delay(attempt, rng))
                tr.end(sid)

    def _record_abort(self, reason: str) -> None:
        """First fatal loss wins; the abort instant is when the network
        actually killed the stream, not when the reducer noticed."""
        m = self.metrics
        if m.aborted:
            return
        m.aborted = True
        m.abort_reason = reason
        if self.shared:
            # The network's first-failure clock is cluster-global on a
            # shared fabric and may predate this job entirely.
            m.aborted_at = self.sim.now
        else:
            at = self.cluster.network.first_flow_failure_at
            m.aborted_at = at if at is not None else self.sim.now

    def _reducer_proc(self, index: int, node_id: int):
        sim = self.sim
        cfg = self.config
        r = ReducerMetrics(rank=cfg.num_mappers + 1 + index, node=node_id)
        self.metrics.reducers.append(r)
        tr = sim.obs.tracer
        try:
            yield from self._reducer_body(index, node_id, r)
        except Interrupt:
            tr.abort(self._open_reducer_sids.get(id(r), 0), outcome="interrupted")
            return

    def _reducer_body(self, index: int, node_id: int, r: ReducerMetrics):
        sim = self.sim
        cfg = self.config
        profile = self.spec.profile
        node = self.cluster.node(node_id)
        yield sim.timeout(cfg.startup_time)
        r.started_at = sim.now
        tr = sim.obs.tracer
        sid = tr.begin("mpid.reduce", f"reducer{index}", node=node_id)
        self._open_reducer_sids[id(r)] = sid

        # Wildcard reception: wait until every mapper finished emitting,
        # then for every in-flight array destined here.
        recv_sid = tr.begin("mpid.reduce", "recv", parent=sid)
        self._recv_sids[index] = recv_sid
        yield self._all_mappers_done
        for mapper_sid in self._mapper_sids:
            # The wildcard recv cannot return before every mapper is done
            # emitting — the paper's all-senders barrier, as edges.
            tr.edge(mapper_sid, recv_sid, "barrier")
        flows = self._reducer_flows[index]
        if flows:
            try:
                yield sim.all_of(flows)
            except FlowFailed as exc:
                # Fatal stream loss: MPICH2 takes the whole job down.
                self._record_abort(str(exc))
                tr.abort(recv_sid, outcome="aborted")
                tr.abort(sid, outcome="aborted")
                return
        r.received_bytes = self._sent_per_reducer[index]
        r.copy_done_at = sim.now
        tr.end(recv_sid, received_bytes=r.received_bytes)

        # Reverse realignment (+ decompression) + merge + user reduce.
        raw_bytes = r.received_bytes
        decompress_cpu = 0.0
        if cfg.compress:
            raw_bytes = r.received_bytes / cfg.compression_ratio
            decompress_cpu = raw_bytes * cfg.decompress_cpu_per_byte
        merge_cpu = self._user_cpu(profile.reduce_cpu_per_byte, raw_bytes)
        realign_cpu = raw_bytes * cfg.realign_cpu_per_byte + decompress_cpu
        merge_sid = tr.begin("mpid.reduce", "merge", parent=sid)
        core = node.cpus.acquire()
        try:
            yield core
            yield sim.timeout(merge_cpu + realign_cpu)
        finally:
            node.cpus.cancel(core)
        tr.end(merge_sid)
        output = profile.reduce_output_bytes(raw_bytes)
        write_sid = tr.begin("mpid.reduce", "write", parent=sid, output_bytes=output)
        for _ in range(cfg.output_replication):
            yield node.disk_write(output)
        tr.end(write_sid)
        r.finished_at = sim.now
        self._open_reducer_sids.pop(id(r), None)
        tr.edge(sid, self.job_sid, "complete")
        tr.end(sid, received_bytes=r.received_bytes)

    # -- driver --------------------------------------------------------------------------
    def start(self) -> Process:
        """Launch the gang on the kernel and return the supervising
        process.  Standalone callers use :meth:`run`; the multi-tenant
        engine calls this at dispatch time and :meth:`complete` after the
        supervisor finishes."""
        sim = self.sim
        cfg = self.config
        self._all_mappers_done = sim.event()
        split = self.spec.input_bytes / cfg.num_mappers
        job_sid = sim.obs.tracer.begin(
            "mpid.job",
            self.spec.name,
            track="mpid:job",
            input_bytes=self.spec.input_bytes,
            mappers=cfg.num_mappers,
            reducers=cfg.num_reducers,
        )
        self.job_sid = job_sid
        self._flows_failed_at_start = self.cluster.network.flows_failed
        t0 = sim.now

        procs = []
        for rank, node_id in enumerate(self.mapper_nodes, start=1):
            procs.append(
                self._spawn(
                    node_id,
                    self._mapper_proc(rank, node_id, split),
                    name=f"mapper{rank}",
                )
            )
        for i, node_id in enumerate(self.reducer_nodes):
            procs.append(
                self._spawn(
                    node_id, self._reducer_proc(i, node_id), name=f"reducer{i}"
                )
            )
        if self.injector is not None:
            self.injector.start()

        def job(sim_):
            yield sim.all_of(procs)
            self.metrics.elapsed = sim.now - t0
            if self.injector is not None:
                # Open-ended loss streams must not keep the heap alive.
                self.injector.stop()

        self._job_proc = sim.process(job(sim), name="job")
        return self._job_proc

    def complete(self) -> MrMpiMetrics:
        """Finalize after the supervisor process has finished.  Raises
        :class:`MpiJobAborted` if the gang was taken down."""
        sim = self.sim
        sim.obs.tracer.end(self.job_sid, aborted=self.metrics.aborted)
        self.metrics.flows_lost = (
            self.cluster.network.flows_failed - self._flows_failed_at_start
        )
        if self.metrics.aborted:
            raise MpiJobAborted(
                self.metrics.abort_reason or "stream lost",
                self.metrics.aborted_at or sim.now,
                self.metrics,
            )
        return self.metrics

    def run(self, until: Optional[float] = None) -> MrMpiMetrics:
        if self.shared:
            raise RuntimeError(
                "shared-cluster jobs are driven by the engine: "
                "use start()/complete()"
            )
        self.start()
        self.sim.run(until=until)
        metrics = self.complete()
        if metrics.elapsed == 0.0 and until is not None:
            raise RuntimeError(f"job did not finish by t={until}")
        return metrics


def run_mpid_job(
    spec: JobSpec,
    config: Optional[MrMpiConfig] = None,
    cluster_spec: Optional[ClusterSpec] = None,
) -> MrMpiMetrics:
    """Convenience: run one MPI-D job on the default (paper) cluster."""
    return MrMpiSimulation(
        spec=spec,
        config=config or MrMpiConfig(),
        cluster_spec=cluster_spec or ClusterSpec(),
    ).run()


# -- failure semantics --------------------------------------------------------
#
# MPI-D has no task-level fault tolerance: MPICH2 aborts the whole job
# when any rank dies, and the only recovery is resubmission (optionally
# from a coordinated checkpoint).  Because a clean rerun is *identical*
# to the first attempt — same static splits, same schedule, no
# heartbeat randomness — re-running the DES per attempt would reproduce
# the same number every time.  We therefore run the DES once for the
# clean makespan and replay the (deterministic, seed-derived) crash
# timeline analytically over it.  This is the same timeline the Hadoop
# injector plays out, so a comparison sees both systems hit by the
# identical failure sequence.


@dataclass
class MrMpiFaultMetrics:
    """Accounting of one MPI-D job run under a fault plan."""

    job_name: str
    #: Makespan of one undisturbed attempt (DES-measured).
    clean_elapsed: float
    #: Wall-clock until the job finally completed; ``inf`` if it never did.
    elapsed: float = 0.0
    restarts: int = 0
    #: Progress seconds thrown away by aborts (work re-done on restart).
    lost_work_seconds: float = 0.0
    #: Extra seconds spent writing checkpoints (0 without checkpointing).
    checkpoint_overhead_seconds: float = 0.0
    #: Seconds spent in restart windows (job down, nothing running).
    restart_overhead_seconds: float = 0.0
    completed: bool = True
    checkpointed: bool = False
    # -- lossy-network accounting (DES-measured; zero for crash plans) --------
    flows_lost: int = 0
    retransmits: int = 0
    # -- storage accounting (DES-measured; zero for crash/network plans) ------
    #: Reads that skipped a dead/corrupt replica for another copy.
    read_failovers: int = 0
    #: True when every replica of some input block was destroyed — the
    #: job can never complete, no matter how many times it restarts.
    data_lost: bool = False

    @property
    def slowdown(self) -> float:
        """Faulty / clean makespan ratio (inf when the job never finished)."""
        return self.elapsed / self.clean_elapsed if self.clean_elapsed > 0 else 1.0

    @property
    def wasted_task_seconds(self) -> float:
        """Total seconds spent on work that did not advance the job.

        The MPI-D counterpart of Hadoop's ``JobMetrics.wasted_task_seconds``:
        re-executed progress, downtime between abort and restart, and the
        checkpoint tax all count — so the two systems' fault overheads are
        reported in the same unit.
        """
        return (
            self.lost_work_seconds
            + self.restart_overhead_seconds
            + self.checkpoint_overhead_seconds
        )

    def summary(self) -> dict:
        return {
            "job": self.job_name,
            "clean_elapsed": self.clean_elapsed,
            "elapsed": self.elapsed,
            "restarts": self.restarts,
            "lost_work_seconds": self.lost_work_seconds,
            "checkpoint_overhead_seconds": self.checkpoint_overhead_seconds,
            "restart_overhead_seconds": self.restart_overhead_seconds,
            "wasted_task_seconds": self.wasted_task_seconds,
            "completed": self.completed,
            "checkpointed": self.checkpointed,
            "read_failovers": self.read_failovers,
            "data_lost": self.data_lost,
        }

    def fault_summary(self) -> dict:
        """The counter set experiments report symmetrically with Hadoop."""
        return {
            "restarts": self.restarts,
            "lost_work_seconds": self.lost_work_seconds,
            "restart_overhead_seconds": self.restart_overhead_seconds,
            "checkpoint_overhead_seconds": self.checkpoint_overhead_seconds,
            "wasted_task_seconds": self.wasted_task_seconds,
            "flows_lost": self.flows_lost,
            "retransmits": self.retransmits,
            "read_failovers": self.read_failovers,
            "data_lost": self.data_lost,
        }


def replay_restarts(
    job_name: str,
    work: float,
    crashes: list[float],
    restart_overhead: float,
    checkpoint_interval: Optional[float] = None,
    checkpoint_cost: float = 0.0,
    max_restarts: int = 100,
) -> MrMpiFaultMetrics:
    """Replay a crash timeline over a job needing ``work`` clean seconds.

    Pure function of its inputs.  Without checkpointing every crash
    restarts the job from zero progress; with it, execution pays
    ``checkpoint_cost`` per ``checkpoint_interval`` of progress (an
    overhead rate of ``1 + cost/interval``) and a crash resumes from the
    last *complete* interval.  Crashes landing inside a restart window
    hit a job that is not yet running and are absorbed by it.
    """
    if work < 0:
        raise ValueError(f"work may not be negative: {work}")
    out = MrMpiFaultMetrics(
        job_name=job_name,
        clean_elapsed=work,
        checkpointed=checkpoint_interval is not None,
    )
    rate = 1.0
    if checkpoint_interval is not None:
        rate += checkpoint_cost / checkpoint_interval
    t = 0.0  # wall clock
    done = 0.0  # progress (clean-work seconds) safely banked
    for c in sorted(crashes):
        finish = t + (work - done) * rate
        if c >= finish:
            break  # the job beat this crash
        if c < t:
            continue  # during a restart window: nothing running to kill
        progress = done + (c - t) / rate
        if checkpoint_interval is not None:
            keep = min(progress, (progress // checkpoint_interval) * checkpoint_interval)
        else:
            keep = 0.0
        out.lost_work_seconds += progress - keep
        done = keep
        t = c + restart_overhead
        out.restarts += 1
        out.restart_overhead_seconds += restart_overhead
        if out.restarts > max_restarts:
            out.completed = False
            out.elapsed = float("inf")
            return out
    out.elapsed = t + (work - done) * rate
    # Every progress second executed (banked or later lost) paid the
    # checkpoint tax of (rate - 1) wall seconds.
    out.checkpoint_overhead_seconds = (rate - 1.0) * (work + out.lost_work_seconds)
    return out


def run_mpid_job_under_faults(
    spec: JobSpec,
    plan,
    config: Optional[MrMpiConfig] = None,
    cluster_spec: Optional[ClusterSpec] = None,
    nodes: Optional[tuple[int, ...]] = None,
    clean_elapsed: Optional[float] = None,
) -> MrMpiFaultMetrics:
    """One MPI-D job under a :class:`~repro.simnet.faults.FaultPlan`.

    ``nodes`` is the set whose crashes hit the job (default: every node
    in the cluster — any rank's host dying aborts an MPI job).  Pass a
    cached ``clean_elapsed`` to skip re-running the DES when sweeping
    many fault rates over the same job.
    """
    cfg = config or MrMpiConfig()
    cspec = cluster_spec or ClusterSpec()
    if nodes is None:
        nodes = tuple(range(cspec.num_nodes))
    if clean_elapsed is None:
        clean_elapsed = run_mpid_job(spec, config=cfg, cluster_spec=cspec).elapsed
    # Adaptive horizon: the crash timeline must cover the (unknown)
    # faulty makespan.  Prefix consistency of ``crash_times`` makes
    # doubling safe — earlier crashes never move.
    horizon = max(4.0 * clean_elapsed, 600.0)
    while True:
        crashes = plan.crash_times(nodes, horizon)
        result = replay_restarts(
            spec.name,
            clean_elapsed,
            crashes,
            restart_overhead=cfg.restart_overhead,
            checkpoint_interval=cfg.checkpoint_interval,
            checkpoint_cost=cfg.checkpoint_cost,
            max_restarts=cfg.max_restarts,
        )
        if not result.completed or result.elapsed <= horizon:
            return result
        horizon *= 2.0


def run_mpid_job_under_net_faults(
    spec: JobSpec,
    plan: FaultPlan,
    config: Optional[MrMpiConfig] = None,
    cluster_spec: Optional[ClusterSpec] = None,
) -> MrMpiFaultMetrics:
    """One MPI-D job on a lossy network, restarts included.

    Unlike node crashes (deterministic rerun -> analytic replay),
    network faults interact with the traffic, so every attempt is a real
    DES run.  The baseline transport aborts on the first killed stream
    and the job is resubmitted from scratch (the paper's Section-V
    criticism made concrete); ``config.reliable_transport`` retransmits
    instead and usually completes in one attempt.

    Attempt 0 runs under ``plan`` exactly as Hadoop would see it —
    identical kill timeline for the head-to-head comparison.  Each
    resubmission re-derives the plan seed (a restarted job re-rolls the
    network's dice), so the restart sequence is still a pure function of
    (spec, plan, config).
    """
    cfg = config or MrMpiConfig()
    cspec = cluster_spec or ClusterSpec()
    clean = run_mpid_job(spec, config=cfg, cluster_spec=cspec).elapsed
    out = MrMpiFaultMetrics(job_name=spec.name, clean_elapsed=clean)
    wall = 0.0
    attempt = 0
    while True:
        # A resubmission starts ``wall`` seconds into the fault timeline:
        # one-shot outages it outlived never recur, and the re-rolled
        # seed keeps the loss streams independent across attempts.
        p = (
            plan
            if attempt == 0
            else replace(
                plan.shifted(wall),
                seed=derive_seed(plan.seed, "mpid-net-attempt", attempt),
            )
        )
        sim = MrMpiSimulation(
            spec=spec,
            config=cfg,
            cluster_spec=cspec,
            fault_plan=p,
            seed=p.seed,
        )
        try:
            m = sim.run()
        except MpiJobAborted as exc:
            out.restarts += 1
            out.lost_work_seconds += exc.at
            out.restart_overhead_seconds += cfg.restart_overhead
            out.flows_lost += exc.metrics.flows_lost
            out.retransmits += exc.metrics.retransmits
            wall += exc.at + cfg.restart_overhead
            if out.restarts > cfg.max_restarts:
                out.completed = False
                out.elapsed = float("inf")
                return out
            attempt += 1
            continue
        out.flows_lost += m.flows_lost
        out.retransmits += m.retransmits
        out.elapsed = wall + m.elapsed
        return out


def run_mpid_job_under_storage_faults(
    spec: JobSpec,
    plan: FaultPlan,
    config: Optional[MrMpiConfig] = None,
    cluster_spec: Optional[ClusterSpec] = None,
) -> MrMpiFaultMetrics:
    """One MPI-D job over failing input disks, restarts included.

    The crucial asymmetry with Hadoop (Section V): MPI-D has no NameNode
    re-replicating lost blocks, so storage damage is *permanent* — it is
    carried into every resubmission via ``prior_damage``.  With
    ``input_replication=1`` the first relevant disk death dooms the job;
    with extra replicas it survives by failing over (at remote-read cost)
    until the last copy of some block is gone, at which point restarting
    is pointless and the job is declared failed immediately.

    The replica placement is a pure function of ``plan.seed`` and is NOT
    re-rolled across attempts (the input layout does not change on
    resubmission); the fault streams are re-derived per attempt just as
    in the network-fault loop.
    """
    cfg = config or MrMpiConfig()
    cspec = cluster_spec or ClusterSpec()
    clean = run_mpid_job(spec, config=cfg, cluster_spec=cspec).elapsed
    out = MrMpiFaultMetrics(job_name=spec.name, clean_elapsed=clean)
    wall = 0.0
    attempt = 0
    damage: Optional[tuple] = None
    while True:
        p = (
            plan
            if attempt == 0
            else replace(
                plan.shifted(wall),
                seed=derive_seed(plan.seed, "mpid-storage-attempt", attempt),
            )
        )
        sim = MrMpiSimulation(
            spec=spec,
            config=cfg,
            cluster_spec=cspec,
            fault_plan=p,
            seed=plan.seed,  # placement is layout, not luck: never re-rolled
            prior_damage=damage,
        )
        try:
            m = sim.run()
        except MpiJobAborted as exc:
            out.restarts += 1
            out.lost_work_seconds += exc.at
            out.restart_overhead_seconds += cfg.restart_overhead
            out.flows_lost += exc.metrics.flows_lost
            out.retransmits += exc.metrics.retransmits
            if sim.storage is not None:
                out.read_failovers += sim.storage.read_failovers
                damage = sim.storage.damage()
                if sim.storage.any_block_lost():
                    # Every replica of some block is gone and nothing in
                    # the MPI world will bring it back: permanent DNF.
                    out.completed = False
                    out.data_lost = True
                    out.elapsed = float("inf")
                    return out
            wall += exc.at + cfg.restart_overhead
            if out.restarts > cfg.max_restarts:
                out.completed = False
                out.elapsed = float("inf")
                return out
            attempt += 1
            continue
        out.flows_lost += m.flows_lost
        out.retransmits += m.retransmits
        if sim.storage is not None:
            out.read_failovers += sim.storage.read_failovers
        out.elapsed = wall + m.elapsed
        return out
