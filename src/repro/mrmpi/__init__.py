"""The paper's Section-IV simulation system, priced on the DES.

:mod:`repro.core` *executes* MapReduce on MPI-D and produces real
answers; this package is its **performance twin**: the same pipeline
(static split assignment by the rank-0 master, local reads, hash-table
buffering with combining, spill -> realign -> fixed-size-partition MPI
sends, wildcard receive + merge at the reducers) modelled as
discrete-event processes on the simulated cluster, with communication
priced by the MPICH2 transport model.  Figure 6 compares its job times
against the simulated Hadoop of :mod:`repro.hadoop`.
"""

from repro.mrmpi.config import MrMpiConfig
from repro.mrmpi.simulator import (
    MpiJobAborted,
    MrMpiFaultMetrics,
    MrMpiMetrics,
    MrMpiSimulation,
    replay_restarts,
    run_mpid_job,
    run_mpid_job_under_faults,
    run_mpid_job_under_net_faults,
    run_mpid_job_under_storage_faults,
)

__all__ = [
    "MrMpiConfig",
    "MrMpiSimulation",
    "MrMpiMetrics",
    "MrMpiFaultMetrics",
    "MpiJobAborted",
    "replay_restarts",
    "run_mpid_job",
    "run_mpid_job_under_faults",
    "run_mpid_job_under_net_faults",
    "run_mpid_job_under_storage_faults",
]
