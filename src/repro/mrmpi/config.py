"""Configuration of the MapReduce-on-MPI-D execution model."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.util.units import KiB, MiB


@dataclass(frozen=True)
class MrMpiConfig:
    """Knobs of the Section-IV system (paper values where stated).

    The paper's experiment runs "49 processes as concurrent mappers, and
    1 process as the reducer.  Another one process is the rank 0 process
    as the master" on 8 nodes — :class:`MrMpiSimulation` defaults to that
    layout via ``num_mappers``/``num_reducers``.
    """

    num_mappers: int = 49
    num_reducers: int = 1

    #: mpiexec launch + MPI_Init + MPI_D_Init across the cluster.  One
    #: payment per job — unlike Hadoop's per-task JVM forks.
    startup_time: float = 0.5

    #: The prototype is native code (built on MPICH2); user-code CPU rates
    #: from the (JVM-calibrated) workload profile are divided by this.
    native_speedup: float = 1.7

    #: Hash-table buffer spill threshold (paper: "exceeds a particular
    #: size") and the fixed partition-array size.
    spill_threshold: int = 4 * MiB
    partition_bytes: int = 64 * KiB

    #: CPU cost of data realignment (address-sequential packing), per byte.
    realign_cpu_per_byte: float = 1.0 / (200 * MiB)

    #: Compress realigned arrays before sending (§IV-A improvement);
    #: ``compression_ratio`` is compressed/raw size, and the codec costs
    #: CPU on both ends (zlib-class rates on 2010 hardware).
    compress: bool = False
    compression_ratio: float = 0.4
    compress_cpu_per_byte: float = 1.0 / (60 * MiB)
    decompress_cpu_per_byte: float = 1.0 / (150 * MiB)

    #: The simulation system writes reducer output to the local disk once
    #: (no HDFS replication pipeline).
    output_replication: int = 1

    # -- input storage (storage-fault runs only) ------------------------------
    #: Replication of the pre-distributed input.  The paper's MPI-D reads
    #: its split from the local FS (replication 1, the default); the
    #: durability experiment sweeps this against Hadoop's
    #: ``dfs.replication`` — extra replicas live on other workers and are
    #: read remotely after a failover.  Only consulted when the fault
    #: plan carries storage specs.
    input_replication: int = 1
    #: Block size of the input layout under storage faults (the loss
    #: granularity a disk failure destroys).
    input_block_size: int = 64 * MiB

    # -- failure semantics (Section V discussion) -----------------------------
    #: MPI has no task-level recovery: any rank failure aborts the whole
    #: job, which is then resubmitted.  ``restart_overhead`` is the
    #: resubmission + relaunch cost paid before work resumes.
    restart_overhead: float = 5.0
    #: On a lossy network, plain MPICH treats a lost stream as a fatal
    #: error (connection reset -> MPI_Abort).  ``reliable_transport=True``
    #: instead retransmits the killed array after a TCP-RTO-style backoff
    #: (``MpichTransport.reliable_policy``), aborting only when the
    #: retransmission budget is exhausted.
    reliable_transport: bool = False
    #: Optional coordinated checkpointing: every ``checkpoint_interval``
    #: seconds of progress a snapshot costing ``checkpoint_cost`` seconds
    #: is taken; a restart resumes from the last complete snapshot
    #: instead of from scratch.  ``None`` disables checkpointing (the
    #: prototype's actual behaviour).
    checkpoint_interval: Optional[float] = None
    checkpoint_cost: float = 2.0
    #: Give up after this many restarts (the job is declared failed).
    max_restarts: int = 100

    def __post_init__(self) -> None:
        if self.num_mappers < 1 or self.num_reducers < 1:
            raise ValueError(
                f"need >= 1 mapper and reducer, got "
                f"{self.num_mappers}/{self.num_reducers}"
            )
        if self.startup_time < 0:
            raise ValueError(f"startup time may not be negative: {self.startup_time}")
        if self.native_speedup <= 0:
            raise ValueError(f"native speedup must be positive: {self.native_speedup}")
        if self.spill_threshold < 1 or self.partition_bytes < 64:
            raise ValueError("spill threshold / partition size too small")
        if self.output_replication < 1:
            raise ValueError(
                f"output replication must be >= 1: {self.output_replication}"
            )
        if self.input_replication < 1:
            raise ValueError(
                f"input replication must be >= 1: {self.input_replication}"
            )
        if self.input_block_size < 1 * MiB:
            raise ValueError(
                f"input block size too small: {self.input_block_size}"
            )
        if not 0 < self.compression_ratio <= 1.0:
            raise ValueError(
                f"compression ratio must be in (0, 1]: {self.compression_ratio}"
            )
        if self.restart_overhead < 0:
            raise ValueError(
                f"restart overhead may not be negative: {self.restart_overhead}"
            )
        if self.checkpoint_interval is not None and self.checkpoint_interval <= 0:
            raise ValueError(
                f"checkpoint interval must be positive (or None): "
                f"{self.checkpoint_interval}"
            )
        if self.checkpoint_cost < 0:
            raise ValueError(
                f"checkpoint cost may not be negative: {self.checkpoint_cost}"
            )
        if self.max_restarts < 0:
            raise ValueError(f"max_restarts may not be negative: {self.max_restarts}")
