"""Multi-tenant engine: many jobs, one cluster, one kernel.

:class:`MultiTenantEngine` drives an open-loop arrival stream (or
hand-submitted jobs) through the :class:`~repro.cluster.scheduler.
ClusterScheduler` onto a single shared simnet cluster.  Hadoop jobs run
elastically — their TaskTrackers poll the scheduler for slot grants every
heartbeat — while MPI-D jobs gang-reserve every rank's slot atomically
(optionally preempting Hadoop work to make room).  Fault plans apply
cluster-wide: one injector, with crash/restart fan-out to every live job.

Overload is a first-class regime, not an error:

* admission control sheds jobs past each queue's ``max_queued`` backlog,
  deterministically, before they cost anything;
* dispatch caps (``max_running``) bound the number of concurrent
  JobTrackers, so the backlog waits in O(1) state instead of thrashing;
* slot grants round up from fractional entitlements, so every running
  job keeps making progress — there is no circular wait anywhere in the
  design (slots are polled, never blocked on), hence no deadlock.

Everything — arrivals, scheduling, preemption, shedding — is driven by
the one seeded kernel, so a run is bit-for-bit reproducible and the
whole thing composes with `repro.obs` tracing and the replay dashboard.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Optional

from repro.cluster.arrivals import (
    Arrival,
    TenantSpec,
    build_arrivals,
    offered_load_summary,
)
from repro.cluster.scheduler import ClusterScheduler, QueueConfig, SchedulerConfig
from repro.hadoop.config import HadoopConfig
from repro.hadoop.job import JobSpec
from repro.hadoop.simulation import HadoopSimulation, JobFailedError
from repro.mrmpi.config import MrMpiConfig
from repro.mrmpi.simulator import MpiJobAborted, MrMpiSimulation
from repro.obs import Observer
from repro.simnet.cluster import Cluster, ClusterSpec
from repro.simnet.faults import FaultInjector, FaultPlan
from repro.simnet.kernel import Interrupt, Simulator
from repro.util.rng import make_rng
from repro.workloads.gridmix_suite import suite_by_name


def percentile(values: list[float], p: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(p / 100.0 * len(ordered)))
    return ordered[rank - 1]


@dataclass
class JobRecord:
    """One submission's life, from arrival to the report."""

    job_id: int
    tenant: str
    queue: str
    name: str
    runtime: str  # "hadoop" | "mpid"
    workload: str
    input_bytes: int
    submitted_at: float
    seed: int
    dispatched_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: "done" | "failed" | "shed" | None (= still queued/running).
    outcome: Optional[str] = None
    failure: Optional[str] = None
    elapsed: float = 0.0
    maps_preempted: int = 0
    reduces_preempted: int = 0
    #: The finished job's full metrics object (JobMetrics/MrMpiMetrics);
    #: not serialized into :meth:`to_dict` — use it for deep dives.
    metrics: Optional[object] = None
    _queue_sid: int = 0
    _run_sid: int = 0

    @property
    def queue_wait(self) -> float:
        if self.dispatched_at is None:
            return 0.0
        return self.dispatched_at - self.submitted_at

    @property
    def latency(self) -> float:
        if self.finished_at is None:
            return 0.0
        return self.finished_at - self.submitted_at

    def to_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "queue": self.queue,
            "name": self.name,
            "runtime": self.runtime,
            "workload": self.workload,
            "input_bytes": self.input_bytes,
            "submitted_at": self.submitted_at,
            "dispatched_at": self.dispatched_at,
            "finished_at": self.finished_at,
            "queue_wait": self.queue_wait,
            "latency": self.latency,
            "outcome": self.outcome or "unfinished",
            "failure": self.failure,
            "elapsed": self.elapsed,
            "maps_preempted": self.maps_preempted,
            "reduces_preempted": self.reduces_preempted,
        }


@dataclass
class _Pending:
    """A queued (admitted, undispatched) job."""

    record: JobRecord
    spec: JobSpec
    mpid_config: Optional[MrMpiConfig] = None
    #: Constructed lazily at first dispatch try (MPI-D placement is
    #: needed for the gang reservation) and cached across retries.
    sim_job: Optional[object] = None


class MultiTenantEngine:
    """One shared cluster serving many tenants' job streams."""

    def __init__(
        self,
        tenants: Optional[list[TenantSpec]] = None,
        *,
        scheduler: Optional[SchedulerConfig] = None,
        queues: Optional[list[QueueConfig]] = None,
        cluster_spec: Optional[ClusterSpec] = None,
        hadoop_config: Optional[HadoopConfig] = None,
        fault_plan: Optional[FaultPlan] = None,
        seed: int = 2011,
        horizon: float = 1800.0,
        observe: bool = False,
        #: MPI-D gang sizing caps (gangs scale with job size below these).
        mpid_max_mappers: int = 13,
        mpid_max_reducers: int = 7,
    ):
        self.tenants = list(tenants or [])
        self.sched_config = scheduler or SchedulerConfig()
        self.cluster_spec = cluster_spec or ClusterSpec()
        self.hadoop_config = hadoop_config or HadoopConfig()
        self.fault_plan = fault_plan
        if fault_plan is not None and fault_plan.has_storage_faults():
            raise ValueError(
                "storage fault specs are per-job (each job owns its HDFS "
                "namespace); multi-tenant runs take crash/churn/network/"
                "degradation specs only"
            )
        self.seed = seed
        self.horizon = horizon
        self.observe = observe
        self.mpid_max_mappers = mpid_max_mappers
        self.mpid_max_reducers = mpid_max_reducers
        # Default queues: one per tenant, equal weight, equal capacity.
        if queues is None:
            names = sorted({t.queue_name for t in self.tenants}) or ["default"]
            queues = [
                QueueConfig(name=n, capacity=1.0 / len(names)) for n in names
            ]
        self.queues = queues
        self._queue_names = {q.name for q in queues}
        for t in self.tenants:
            if t.queue_name not in self._queue_names:
                raise ValueError(
                    f"tenant {t.name!r} submits to unknown queue "
                    f"{t.queue_name!r}"
                )
        self._manual: list[tuple[float, str, JobSpec, str, int, Optional[MrMpiConfig]]] = []
        # -- run state (built in run()) ------------------------------------
        self.sim: Optional[Simulator] = None
        self.cluster: Optional[Cluster] = None
        self.scheduler: Optional[ClusterScheduler] = None
        self.injector: Optional[FaultInjector] = None
        self.records: list[JobRecord] = []
        self.dead_nodes: set[int] = set()
        self._backlog: dict[str, deque] = {}
        self._running_in_queue: dict[str, int] = {}
        self._live: dict[int, tuple[JobRecord, object, str]] = {}
        self._next_job_id = 0
        self._wake = None
        self._submit_done = False
        self._preempt_proc = None
        self.shed = {q.name: 0 for q in queues}

    # -- manual submission (tests, single-job determinism) -------------------
    def add_job(
        self,
        spec: JobSpec,
        runtime: str = "hadoop",
        at: float = 0.0,
        tenant: str = "default",
        seed: Optional[int] = None,
        mpid_config: Optional[MrMpiConfig] = None,
    ) -> None:
        """Queue one explicit job alongside (or instead of) the streams."""
        if runtime not in ("hadoop", "mpid"):
            raise ValueError(f"unknown runtime {runtime!r}")
        queue = tenant if tenant in self._queue_names else None
        if queue is None:
            if "default" not in self._queue_names:
                raise ValueError(
                    f"no queue for tenant {tenant!r} and no 'default' queue"
                )
            queue = "default"
        self._manual.append(
            (at, tenant, spec, runtime, self.seed if seed is None else seed, mpid_config)
        )

    # -- FaultHost: cluster-wide fan-out -------------------------------------
    def crash_node(self, node_id: int, now: float) -> None:
        self.dead_nodes.add(node_id)
        for record, job, _ in list(self._live.values()):
            job.crash_node(node_id, now)

    def restart_node(self, node_id: int, now: float) -> None:
        self.dead_nodes.discard(node_id)
        for record, job, _ in list(self._live.values()):
            job.restart_node(node_id, now)
        self._kick()  # a waiting gang may be placeable again

    # -- job construction ----------------------------------------------------
    def _spec_for(self, arrival: Arrival) -> JobSpec:
        entry = suite_by_name()[arrival.workload]
        num_maps = JobSpec(
            "probe", input_bytes=arrival.input_bytes, profile=entry.profile
        ).num_map_tasks(self.hadoop_config.block_size)
        reducers = max(1, math.ceil(entry.reducers_per_map * num_maps))
        return JobSpec(
            name=arrival.job_name,
            input_bytes=arrival.input_bytes,
            profile=entry.profile,
            num_reduce_tasks=reducers,
        )

    def _mpid_config_for(self, spec: JobSpec) -> MrMpiConfig:
        """Size the gang to the job: one rank per map task up to the cap."""
        num_maps = spec.num_map_tasks(self.hadoop_config.block_size)
        mappers = max(2, min(num_maps, self.mpid_max_mappers))
        reducers = max(
            1, min(spec.reduce_tasks(self.hadoop_config.block_size), self.mpid_max_reducers)
        )
        return MrMpiConfig(num_mappers=mappers, num_reducers=reducers)

    def _job_seed(self, tenant: str, index: int) -> int:
        return int(make_rng(self.seed, "job-seed", tenant, index).integers(2**31))

    # -- admission -----------------------------------------------------------
    def _admit(
        self,
        tenant: str,
        queue: str,
        spec: JobSpec,
        runtime: str,
        workload: str,
        seed: int,
        mpid_config: Optional[MrMpiConfig],
    ) -> None:
        sim = self.sim
        jid = self._next_job_id
        self._next_job_id += 1
        record = JobRecord(
            job_id=jid,
            tenant=tenant,
            queue=queue,
            name=spec.name,
            runtime=runtime,
            workload=workload,
            input_bytes=spec.input_bytes,
            submitted_at=sim.now,
            seed=seed,
        )
        self.records.append(record)
        obs = sim.obs
        if obs.enabled:
            obs.metrics.counter(f"tenants.{tenant}.submitted").add()
        qcfg = next(q for q in self.queues if q.name == queue)
        backlog = self._backlog[queue]
        if len(backlog) >= qcfg.max_queued:
            # Deterministic load shedding: reject before the job costs
            # anything.  The client sees it immediately (outcome=shed).
            record.outcome = "shed"
            record.finished_at = sim.now
            self.shed[queue] += 1
            if obs.enabled:
                obs.metrics.counter(f"tenants.{tenant}.shed").add()
                obs.tracer.instant(
                    "tenant.shed",
                    spec.name,
                    track=f"tenant:{tenant}",
                    tenant=tenant,
                    queue=queue,
                    job_id=jid,
                )
            return
        record._queue_sid = obs.tracer.begin(
            "tenant.queue",
            spec.name,
            track=f"tenant:{tenant}",
            tenant=tenant,
            queue=queue,
            job_id=jid,
            runtime=runtime,
        )
        backlog.append(_Pending(record=record, spec=spec, mpid_config=mpid_config))
        self._note_depth(queue)
        self._kick()

    def _note_depth(self, queue: str) -> None:
        """Per-queue backlog depth as a duration-weighted histogram."""
        obs = self.sim.obs
        if obs.enabled:
            obs.metrics.histogram(f"queues.{queue}.depth").set(
                len(self._backlog[queue])
            )

    # -- kernel processes ----------------------------------------------------
    def _submitter(self, arrivals: list[tuple[float, str, str, JobSpec, str, str, int, Optional[MrMpiConfig]]]):
        sim = self.sim
        for at, tenant, queue, spec, runtime, workload, seed, mcfg in arrivals:
            if at > sim.now:
                yield sim.timeout(at - sim.now)
            self._admit(tenant, queue, spec, runtime, workload, seed, mcfg)
        self._submit_done = True
        self._check_drain()

    def _dispatcher(self):
        sim = self.sim
        while True:
            ev = self._wake = sim.event()
            yield ev
            self._sched_tick()

    def _kick(self) -> None:
        ev = self._wake
        if ev is not None and not ev.triggered:
            self._wake = None
            ev.succeed(None)

    def _preempt_loop(self):
        sim = self.sim
        interval = self.sched_config.preemption_interval
        idle_sweeps = 0
        try:
            while True:
                # Pooled shared tick — same instant and dispatch order a
                # Timeout would get, but recycled through the tick arena.
                yield sim.tick(interval, shared=True)
                self._rebalance()
                self._sched_tick()
                # Stall safety valve: the cluster is empty, arrivals are
                # over, and queued jobs still cannot be placed (a gang's
                # rank host died for good).  Shed them after three idle
                # sweeps so open-ended churn cannot keep the run alive
                # forever — deterministic, and accounted per tenant.
                if self._submit_done and not self._live:
                    idle_sweeps += 1
                    if idle_sweeps >= 3 and any(self._backlog.values()):
                        self._shed_stalled()
                else:
                    idle_sweeps = 0
        except Interrupt:
            return

    def _shed_stalled(self) -> None:
        sim = self.sim
        for queue in sorted(self._backlog):
            backlog = self._backlog[queue]
            while backlog:
                pending = backlog.popleft()
                record = pending.record
                record.outcome = "shed"
                record.failure = "stalled: required nodes never restarted"
                record.finished_at = sim.now
                self.shed[queue] += 1
                sim.obs.tracer.end(record._queue_sid, outcome="shed")
            self._note_depth(queue)
        self._check_drain()

    # -- dispatch ------------------------------------------------------------
    def _sched_tick(self) -> None:
        for queue in sorted(self._backlog):
            qcfg = next(q for q in self.queues if q.name == queue)
            backlog = self._backlog[queue]
            while backlog and self._running_in_queue[queue] < qcfg.max_running:
                pending = backlog[0]
                if pending.record.runtime == "hadoop":
                    backlog.popleft()
                    self._note_depth(queue)
                    self._dispatch_hadoop(pending)
                else:
                    if not self._dispatch_mpid(pending):
                        break  # head-of-line gang waits for slots
                    backlog.popleft()
                    self._note_depth(queue)

    def _dispatch_hadoop(self, pending: _Pending) -> None:
        sim = self.sim
        record = pending.record
        slots = self.scheduler.register_job(record.job_id, record.queue)
        job = HadoopSimulation(
            spec=pending.spec,
            config=self.hadoop_config,
            seed=record.seed,
            sim=sim,
            cluster=self.cluster,
            sched=slots,
        )
        self._arm_faults(job)
        proc = job.start()
        self._note_dispatch(record, job, "hadoop", proc)

    def _dispatch_mpid(self, pending: _Pending) -> bool:
        sim = self.sim
        record = pending.record
        if pending.sim_job is None:
            cfg = pending.mpid_config or self._mpid_config_for(pending.spec)
            pending.sim_job = MrMpiSimulation(
                spec=pending.spec,
                config=cfg,
                seed=record.seed,
                sim=sim,
                cluster=self.cluster,
            )
        job = pending.sim_job
        needs = job.ranks_per_node()
        if any(node in self.dead_nodes for node in needs):
            return False  # a rank host is down; wait for its restart
        if not self.scheduler.gang_feasible(needs):
            # Could never fit even an idle cluster: shed instead of
            # blocking the queue forever.
            record.outcome = "shed"
            record.failure = "gang larger than cluster slot capacity"
            record.finished_at = sim.now
            self.shed[record.queue] += 1
            sim.obs.tracer.end(record._queue_sid, outcome="shed")
            self._check_drain()
            return True  # popped by caller
        self.scheduler.register_job(record.job_id, record.queue)
        if not self.scheduler.try_reserve(record.job_id, needs):
            if self.sched_config.preemption:
                self._preempt_for_gang(needs)
            if not self.scheduler.try_reserve(record.job_id, needs):
                self.scheduler.job_finished(record.job_id)
                return False
        self._arm_faults(job)
        proc = job.start()
        self._note_dispatch(record, job, "mpid", proc)
        return True

    def _preempt_for_gang(self, needs: dict[int, int]) -> None:
        """Make room for a gang by killing Hadoop map attempts on exactly
        the nodes where the reservation falls short (youngest victims
        first, via each job's own preemption path)."""
        shortfall = self.scheduler.gang_shortfall(needs)
        for node, missing in sorted(shortfall.items()):
            for jid in sorted(self._live, reverse=True):
                if missing <= 0:
                    break
                record, job, kind = self._live[jid]
                if kind != "hadoop":
                    continue
                lost_before = job.preempted_lost_seconds
                killed = job.preempt_slots("map", missing, nodes={node})
                if killed:
                    missing -= killed
                    record.maps_preempted += killed
                    self.scheduler.note_preempted("map", killed)
                    obs = self.sim.obs
                    if obs.enabled:
                        obs.tracer.instant(
                            "tenant.preempt",
                            f"{record.name} -{killed} map",
                            track=f"tenant:{record.tenant}",
                            tenant=record.tenant,
                            kind="map",
                            killed=killed,
                            reason="gang",
                            lost_s=job.preempted_lost_seconds - lost_before,
                        )

    def _arm_faults(self, job) -> None:
        """Point a freshly constructed job at the cluster-wide plan."""
        if self.fault_plan:
            job.fault_aware = True
            job.net_faults = self.fault_plan.has_network_faults()
            if isinstance(job, HadoopSimulation):
                job.dead_nodes |= set(self.dead_nodes)

    def _note_dispatch(self, record: JobRecord, job, kind: str, proc) -> None:
        sim = self.sim
        record.dispatched_at = sim.now
        self._live[record.job_id] = (record, job, kind)
        self._running_in_queue[record.queue] += 1
        obs = sim.obs
        obs.tracer.end(record._queue_sid, outcome="dispatched")
        record._run_sid = obs.tracer.begin(
            "tenant.job",
            record.name,
            track=f"tenant:{record.tenant}",
            runtime=kind,
            tenant=record.tenant,
            queue=record.queue,
            job_id=record.job_id,
            workload=record.workload,
        )
        if obs.enabled:
            obs.metrics.counter(f"tenants.{record.tenant}.dispatched").add()
            obs.metrics.histogram(f"tenants.{record.tenant}.running").add(1)
        sim.process(
            self._monitor(record, job, proc), name=f"monitor:{record.name}"
        )

    # -- completion ----------------------------------------------------------
    def _monitor(self, record: JobRecord, job, proc):
        sim = self.sim
        yield proc
        try:
            job.complete()
            record.outcome = "done"
        except (JobFailedError, MpiJobAborted) as exc:
            record.outcome = "failed"
            record.failure = str(exc)
        record.finished_at = sim.now
        metrics = job.metrics
        record.metrics = metrics
        record.elapsed = getattr(metrics, "elapsed", sim.now - record.submitted_at)
        record.maps_preempted = getattr(metrics, "maps_preempted", record.maps_preempted)
        record.reduces_preempted = getattr(metrics, "reduces_preempted", 0)
        self.scheduler.job_finished(record.job_id)
        self._live.pop(record.job_id, None)
        self._running_in_queue[record.queue] -= 1
        obs = sim.obs
        obs.tracer.end(record._run_sid, outcome=record.outcome)
        if obs.enabled:
            obs.metrics.counter(
                f"tenants.{record.tenant}.{record.outcome}"
            ).add()
            obs.metrics.histogram(f"tenants.{record.tenant}.running").add(-1)
        self._kick()
        self._check_drain()

    def _check_drain(self) -> None:
        """Stop the open-ended machinery once the offered load is spent."""
        if not self._submit_done or self._live:
            return
        if any(self._backlog.values()):
            return
        if self.injector is not None:
            self.injector.stop()
        if self._preempt_proc is not None and self._preempt_proc.is_alive:
            self._preempt_proc.interrupt("drained")

    # -- preemption sweep ----------------------------------------------------
    def _rebalance(self) -> None:
        """Kill over-entitlement Hadoop attempts when someone is starved."""
        sched = self.scheduler
        for kind in ("map", "reduce"):
            demands: dict[int, int] = {}
            for jid, (record, job, jkind) in self._live.items():
                if jkind != "hadoop":
                    continue
                jt = job.jobtracker
                entry = sched._jobs.get(jid)
                if entry is None:
                    continue
                running = entry.usage[kind]
                if kind == "map":
                    demands[jid] = max(
                        0, jt.total_maps - jt.maps_completed - running
                    )
                else:
                    want = jt.num_reduces - jt.reduces_completed - running
                    demands[jid] = max(0, want) if jt.reduces_may_start() else 0
            for jid, take in sched.overages(kind, demands):
                entry = self._live.get(jid)
                if entry is None:
                    continue
                record, job, jkind = entry
                if jkind != "hadoop":
                    continue
                lost_before = job.preempted_lost_seconds
                killed = job.preempt_slots(kind, take)
                if killed:
                    sched.note_preempted(kind, killed)
                    obs = self.sim.obs
                    if obs.enabled:
                        obs.tracer.instant(
                            "tenant.preempt",
                            f"{record.name} -{killed} {kind}",
                            track=f"tenant:{record.tenant}",
                            tenant=record.tenant,
                            kind=kind,
                            killed=killed,
                            reason="rebalance",
                            lost_s=job.preempted_lost_seconds - lost_before,
                        )

    # -- the run -------------------------------------------------------------
    def setup(self) -> Simulator:
        """Build the kernel, cluster, scheduler and observer without
        running anything yet.  Optional — :meth:`run` calls it — but
        calling it first lets tests and tools attach streaming trace
        stores to ``engine.sim.obs`` before the clock starts."""
        sim = Simulator()
        self.sim = sim
        self.obs = Observer.attach(sim) if self.observe else sim.obs
        self.cluster = Cluster(sim, self.cluster_spec)
        workers = list(range(1, self.cluster_spec.num_nodes))
        self.scheduler = ClusterScheduler(
            self.sched_config,
            self.queues,
            workers,
            self.hadoop_config.map_slots,
            self.hadoop_config.reduce_slots,
            clock=lambda: sim.now,
        )
        self._backlog = {q.name: deque() for q in self.queues}
        self._running_in_queue = {q.name: 0 for q in self.queues}
        return sim

    def run(self, until: Optional[float] = None) -> dict:
        """Execute the whole offered load; returns :meth:`report`."""
        if self.sim is None:
            self.setup()
        sim = self.sim
        workers = list(range(1, self.cluster_spec.num_nodes))
        # Materialize the offered load: streams + manual submissions.
        self.arrivals = build_arrivals(self.tenants, self.seed, self.horizon)
        queue_of = {t.name: t.queue_name for t in self.tenants}
        feed: list[tuple] = [
            (
                a.time,
                a.tenant,
                queue_of[a.tenant],
                self._spec_for(a),
                a.runtime,
                a.workload,
                self._job_seed(a.tenant, a.index),
                None,
            )
            for a in self.arrivals
        ]
        for at, tenant, spec, runtime, seed, mcfg in self._manual:
            queue = tenant if tenant in self._queue_names else "default"
            feed.append(
                (at, tenant, queue, spec, runtime, spec.profile.name, seed, mcfg)
            )
        feed.sort(key=lambda f: (f[0], f[1], f[3].name))
        if self.fault_plan:
            self.injector = FaultInjector(
                sim,
                self.cluster,
                self.fault_plan,
                host=self,
                default_nodes=tuple(workers),
            )
            self.injector.start()
        sim.process(self._dispatcher(), name="dispatcher")
        sim.process(self._submitter(feed), name="arrivals")
        if self.sched_config.preemption:
            self._preempt_proc = sim.process(
                self._preempt_loop(), name="preempt-sweep"
            )
        sim.run(until=until)
        self.scheduler.finalize()
        self.makespan = sim.now
        return self.report()

    # -- reporting -----------------------------------------------------------
    def report(self) -> dict:
        """Per-tenant SLO rollup + cluster headline numbers."""
        tenants: dict[str, dict] = {}
        names = sorted(
            {r.tenant for r in self.records} | {t.name for t in self.tenants}
        )
        for name in names:
            recs = [r for r in self.records if r.tenant == name]
            done = [r for r in recs if r.outcome == "done"]
            lat = [r.latency for r in done]
            waits = [r.queue_wait for r in recs if r.dispatched_at is not None]
            queue = (
                recs[0].queue
                if recs
                else next(
                    (t.queue_name for t in self.tenants if t.name == name), name
                )
            )
            tenants[name] = {
                "queue": queue,
                "submitted": len(recs),
                "completed": len(done),
                "failed": sum(1 for r in recs if r.outcome == "failed"),
                "shed": sum(1 for r in recs if r.outcome == "shed"),
                "unfinished": sum(1 for r in recs if r.outcome is None),
                "latency_p50": percentile(lat, 50),
                "latency_p95": percentile(lat, 95),
                "latency_p99": percentile(lat, 99),
                "queue_wait_p50": percentile(waits, 50),
                "queue_wait_p95": percentile(waits, 95),
                "queue_wait_p99": percentile(waits, 99),
                "maps_preempted": sum(r.maps_preempted for r in recs),
                "reduces_preempted": sum(r.reduces_preempted for r in recs),
                "slot_seconds": self.scheduler.slot_seconds.get(queue, 0.0),
                "utilization": (
                    self.scheduler.utilization(queue, self.makespan)
                    if self.makespan and queue in self.scheduler.slot_seconds
                    else 0.0
                ),
            }
        return {
            "policy": self.sched_config.policy,
            "preemption": self.sched_config.preemption,
            "seed": self.seed,
            "horizon": self.horizon,
            "makespan": self.makespan,
            "offered": offered_load_summary(self.arrivals),
            "jobs": len(self.records),
            "completed": sum(1 for r in self.records if r.outcome == "done"),
            "failed": sum(1 for r in self.records if r.outcome == "failed"),
            "shed": sum(1 for r in self.records if r.outcome == "shed"),
            "unfinished": sum(1 for r in self.records if r.outcome is None),
            "preemptions": dict(self.scheduler.preemptions),
            "tenants": tenants,
        }
