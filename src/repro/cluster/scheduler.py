"""Cluster-level slot scheduler: tenant queues, fair share, capacity.

One :class:`ClusterScheduler` arbitrates the task slots of a shared
simnet cluster between many concurrent jobs.  Each job sees the cluster
through a :class:`JobSlots` facade that its TaskTrackers consult on
every heartbeat (``map_budget`` / ``reduce_budget``) and report usage to
(``task_started`` / ``task_finished``).  The scheduler itself runs no
processes — it is pure bookkeeping driven by the engine's kernel events,
so a run stays deterministic.

Three policies, per Hadoop's contrib schedulers circa 0.20:

* ``fair`` — every queue gets slots in proportion to its weight, split
  evenly among its running jobs (the Fair Scheduler's "equal share
  within a pool").
* ``capacity`` — every queue owns a guaranteed fraction of the slots;
  spare capacity of idle queues is redistributed to busy ones up to each
  queue's ``max_capacity`` ceiling (the Capacity Scheduler's elasticity).
* ``fifo`` — no per-job cap at all: first job to ask gets the slots
  (0.20's default JobQueueTaskScheduler; measures head-of-line blocking).

Entitlements are fractional; grants round *up* (``ceil``) so any job
with a positive entitlement can always run at least one task — that, plus
slots only ever being waited on via the heartbeat poll (never a blocking
acquire), is why overload cannot deadlock: every queued task eventually
sees a slot, and admission control (per-queue ``max_queued``) bounds the
backlog itself.

MPI-D gangs reserve all their slots atomically (:meth:`try_reserve`):
a gang either gets every rank's slot or nothing, because a partially
scheduled MPICH2 job would just block in ``MPI_Init``.  Hadoop jobs
elastically fill whatever is left.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Optional


@dataclass(frozen=True)
class QueueConfig:
    """One tenant queue's scheduling contract."""

    name: str
    #: Fair-share weight (``fair``) and spare-redistribution weight
    #: (``capacity``).
    weight: float = 1.0
    #: Guaranteed slot fraction under the ``capacity`` policy.  Queues'
    #: capacities should sum to <= 1; the remainder is spare.
    capacity: float = 0.0
    #: Elasticity ceiling under ``capacity``: the queue may borrow spare
    #: slots up to this fraction of the cluster.
    max_capacity: float = 1.0
    #: Admission control: jobs arriving while this many are already
    #: waiting are shed (rejected immediately, deterministically).
    max_queued: int = 64
    #: Dispatch cap: at most this many of the queue's jobs run
    #: concurrently (bounds per-job JobTracker overhead under overload).
    max_running: int = 8

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"queue weight must be positive: {self.weight}")
        if not 0.0 <= self.capacity <= 1.0:
            raise ValueError(f"capacity must be in [0, 1]: {self.capacity}")
        if not self.capacity <= self.max_capacity <= 1.0:
            raise ValueError(
                f"need capacity <= max_capacity <= 1, got "
                f"{self.capacity}/{self.max_capacity}"
            )
        if self.max_queued < 0 or self.max_running < 1:
            raise ValueError(
                f"need max_queued >= 0 and max_running >= 1, got "
                f"{self.max_queued}/{self.max_running}"
            )


@dataclass(frozen=True)
class SchedulerConfig:
    """Cluster-wide scheduling policy knobs."""

    policy: str = "fair"  # fair | capacity | fifo
    #: Kill over-entitlement attempts to give starved jobs their share.
    #: Preempted work requeues without burning a retry (the Fair
    #: Scheduler's kill-and-requeue, not Hadoop 2's checkpointing).
    preemption: bool = True
    #: Seconds between preemption sweeps (the engine's rebalance tick).
    preemption_interval: float = 30.0
    #: A job may exceed its entitlement by this many slots before the
    #: sweep kills anything (hysteresis against thrashing).
    preemption_grace_slots: int = 1

    def __post_init__(self) -> None:
        if self.policy not in ("fair", "capacity", "fifo"):
            raise ValueError(f"unknown policy: {self.policy!r}")
        if self.preemption_interval <= 0:
            raise ValueError("preemption_interval must be positive")
        if self.preemption_grace_slots < 0:
            raise ValueError("preemption_grace_slots may not be negative")


_KINDS = ("map", "reduce")


@dataclass
class _JobEntry:
    """Scheduler-side state for one registered job."""

    job_id: int
    queue: str
    #: Cluster-wide running tasks, by kind.
    usage: dict[str, int] = field(default_factory=lambda: {k: 0 for k in _KINDS})
    #: Per-node running tasks, by kind (so a dead job's residue can be
    #: swept off the node ledgers exactly).
    node_usage: dict[tuple[int, str], int] = field(default_factory=dict)
    #: Gang reservation held (MPI-D), as ``{node: slots}`` or None.
    gang: Optional[dict[int, int]] = None


class JobSlots:
    """One job's view of the cluster scheduler.

    TaskTrackers call :meth:`map_budget`/:meth:`reduce_budget` when
    composing a heartbeat and :meth:`task_started`/:meth:`task_finished`
    as attempts come and go.  The facade pins the job identity so the
    job-side code never handles scheduler ids.
    """

    def __init__(self, scheduler: "ClusterScheduler", job_id: int):
        self._sched = scheduler
        self.job_id = job_id

    def map_budget(self, node_id: int, free: int) -> int:
        return self._sched.budget(self.job_id, node_id, "map", free)

    def reduce_budget(self, node_id: int, free: int) -> int:
        return self._sched.budget(self.job_id, node_id, "reduce", free)

    def task_started(self, node_id: int, kind: str) -> None:
        self._sched.task_started(self.job_id, node_id, kind)

    def task_finished(self, node_id: int, kind: str) -> None:
        self._sched.task_finished(self.job_id, node_id, kind)


class ClusterScheduler:
    """Slot arbitration across every job on one shared cluster."""

    def __init__(
        self,
        config: SchedulerConfig,
        queues: list[QueueConfig],
        worker_nodes: list[int],
        map_slots_per_node: int,
        reduce_slots_per_node: int,
        clock: Callable[[], float] = lambda: 0.0,
    ):
        if not queues:
            raise ValueError("need at least one queue")
        names = [q.name for q in queues]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate queue names: {names}")
        self.config = config
        self.queues = {q.name: q for q in queues}
        self.worker_nodes = list(worker_nodes)
        self.slots_per_node = {"map": map_slots_per_node, "reduce": reduce_slots_per_node}
        self.totals = {
            k: v * len(self.worker_nodes) for k, v in self.slots_per_node.items()
        }
        self.clock = clock
        self._jobs: dict[int, _JobEntry] = {}
        #: Cross-job per-node ledger: ``(node, kind) -> running tasks``.
        self._node_used: dict[tuple[int, str], int] = {}
        # -- per-queue accounting ------------------------------------------
        self._queue_usage: dict[str, dict[str, int]] = {
            q: {k: 0 for k in _KINDS} for q in self.queues
        }
        #: Slot-seconds consumed per queue (time-weighted usage integral).
        self.slot_seconds: dict[str, float] = {q: 0.0 for q in self.queues}
        self._last_tick: dict[str, float] = {q: 0.0 for q in self.queues}
        self.preemptions = {k: 0 for k in _KINDS}

    # -- registration ---------------------------------------------------------
    def register_job(self, job_id: int, queue: str) -> JobSlots:
        if queue not in self.queues:
            raise KeyError(f"unknown queue {queue!r}")
        if job_id in self._jobs:
            raise ValueError(f"job {job_id} already registered")
        self._jobs[job_id] = _JobEntry(job_id=job_id, queue=queue)
        return JobSlots(self, job_id)

    def job_finished(self, job_id: int) -> None:
        """Deregister and sweep any residue off the ledgers.

        Crashed nodes can orphan ``task_started`` entries (the tracker
        process died before reporting), so the sweep subtracts whatever
        the job still holds rather than trusting it reached zero.
        """
        entry = self._jobs.pop(job_id, None)
        if entry is None:
            return
        self._integrate(entry.queue)
        for (node, kind), n in entry.node_usage.items():
            if n:
                key = (node, kind)
                self._node_used[key] = max(0, self._node_used.get(key, 0) - n)
                self._queue_usage[entry.queue][kind] = max(
                    0, self._queue_usage[entry.queue][kind] - n
                )
        if entry.gang:
            entry.gang = None  # already swept via node_usage above

    # -- entitlements ---------------------------------------------------------
    def _active_weight(self) -> float:
        """Sum of weights over queues that currently have jobs."""
        active = {e.queue for e in self._jobs.values()}
        return sum(self.queues[q].weight for q in active) or 1.0

    def _queue_jobs(self, queue: str) -> int:
        return sum(1 for e in self._jobs.values() if e.queue == queue)

    def entitlement(self, job_id: int, kind: str) -> float:
        """This job's fair number of ``kind`` slots (fractional)."""
        entry = self._jobs[job_id]
        total = self.totals[kind]
        policy = self.config.policy
        if policy == "fifo":
            return float(total)
        njobs = self._queue_jobs(entry.queue)
        if policy == "fair":
            share = self.queues[entry.queue].weight / self._active_weight()
            return total * share / njobs
        # capacity: guaranteed fraction plus a weighted cut of the spare
        # left by queues that are idle or under their guarantee.
        q = self.queues[entry.queue]
        active = {e.queue for e in self._jobs.values()}
        guaranteed = sum(self.queues[a].capacity for a in active)
        spare = max(0.0, 1.0 - guaranteed)
        wsum = sum(self.queues[a].weight for a in active)
        bonus = spare * (q.weight / wsum) if wsum else 0.0
        frac = min(q.capacity + bonus, q.max_capacity)
        return total * frac / njobs

    # -- the heartbeat-path query --------------------------------------------
    def budget(self, job_id: int, node_id: int, kind: str, free: int) -> int:
        """How many ``kind`` tasks this job may start on ``node_id`` now.

        The grant is the tightest of (a) the tracker's own free slots,
        (b) the node's physical slots net of *other* jobs' usage, and
        (c) the job's cluster-wide entitlement net of what it already
        runs.  ``ceil`` on (c) guarantees progress: entitlement > 0
        always grants at least one slot once usage drains below it.
        """
        if free <= 0:
            return 0
        entry = self._jobs.get(job_id)
        if entry is None:
            return 0
        node_free = self.slots_per_node[kind] - self._node_used.get(
            (node_id, kind), 0
        )
        grant = min(free, node_free)
        if self.config.policy != "fifo":
            fair = math.ceil(self.entitlement(job_id, kind))
            grant = min(grant, fair - entry.usage[kind])
        return max(0, grant)

    # -- usage reporting -------------------------------------------------------
    def _integrate(self, queue: str) -> None:
        now = self.clock()
        used = sum(self._queue_usage[queue].values())
        self.slot_seconds[queue] += used * (now - self._last_tick[queue])
        self._last_tick[queue] = now

    def task_started(self, job_id: int, node_id: int, kind: str) -> None:
        entry = self._jobs[job_id]
        self._integrate(entry.queue)
        entry.usage[kind] += 1
        key = (node_id, kind)
        entry.node_usage[key] = entry.node_usage.get(key, 0) + 1
        self._node_used[key] = self._node_used.get(key, 0) + 1
        self._queue_usage[entry.queue][kind] += 1

    def task_finished(self, job_id: int, node_id: int, kind: str) -> None:
        entry = self._jobs.get(job_id)
        if entry is None:
            return  # job already finalized; residue was swept
        self._integrate(entry.queue)
        key = (node_id, kind)
        if entry.node_usage.get(key, 0) > 0:
            entry.node_usage[key] -= 1
            entry.usage[kind] -= 1
            self._node_used[key] = max(0, self._node_used.get(key, 0) - 1)
            self._queue_usage[entry.queue][kind] = max(
                0, self._queue_usage[entry.queue][kind] - 1
            )

    # -- MPI-D gang reservation -----------------------------------------------
    def gang_feasible(self, needs: dict[int, int]) -> bool:
        """Could ``needs`` ever fit an *empty* cluster?  Gangs that could
        not are shed at dispatch instead of blocking their queue forever."""
        cap = self.slots_per_node["map"]
        return all(n <= cap for n in needs.values()) and all(
            node in self.worker_nodes for node in needs
        )

    def gang_shortfall(self, needs: dict[int, int]) -> dict[int, int]:
        """Per-node slots missing for this reservation right now."""
        short: dict[int, int] = {}
        cap = self.slots_per_node["map"]
        for node, n in sorted(needs.items()):
            free = cap - self._node_used.get((node, "map"), 0)
            if free < n:
                short[node] = n - free
        return short

    def try_reserve(self, job_id: int, needs: dict[int, int]) -> bool:
        """All-or-nothing: book every rank's slot (as map slots) or none.

        MPI ranks occupy their slots for the job's whole life — the gang
        releases via :meth:`job_finished`'s residue sweep.
        """
        entry = self._jobs[job_id]
        if entry.gang is not None:
            raise ValueError(f"job {job_id} already holds a gang reservation")
        if self.gang_shortfall(needs):
            return False
        self._integrate(entry.queue)
        for node, n in sorted(needs.items()):
            key = (node, "map")
            self._node_used[key] = self._node_used.get(key, 0) + n
            entry.node_usage[key] = entry.node_usage.get(key, 0) + n
        entry.usage["map"] += sum(needs.values())
        self._queue_usage[entry.queue]["map"] += sum(needs.values())
        entry.gang = dict(needs)
        return True

    # -- preemption -----------------------------------------------------------
    def overages(
        self, kind: str, demands: dict[int, int]
    ) -> list[tuple[int, int]]:
        """Which jobs should lose how many ``kind`` slots right now.

        ``demands`` maps job_id -> tasks the job could start immediately
        if granted slots.  Preemption only fires when some job is both
        under its entitlement and actually starved (demand > 0) — then
        over-entitlement jobs give up their excess (beyond the grace),
        youngest-registered first, capped by the total deficit.  Gangs
        are never preempted: killing one rank kills the whole MPI job.
        """
        if self.config.policy == "fifo" or not self._jobs:
            return []
        deficit = 0
        for job_id, entry in self._jobs.items():
            want = demands.get(job_id, 0)
            if want <= 0:
                continue
            fair = math.floor(self.entitlement(job_id, kind))
            deficit += max(0, min(fair, entry.usage[kind] + want) - entry.usage[kind])
        if deficit <= 0:
            return []
        grace = self.config.preemption_grace_slots
        victims: list[tuple[int, int]] = []
        # Youngest-registered jobs first: least sunk work to destroy.
        for job_id in sorted(self._jobs, reverse=True):
            if deficit <= 0:
                break
            entry = self._jobs[job_id]
            if entry.gang is not None:
                continue
            over = entry.usage[kind] - math.ceil(self.entitlement(job_id, kind))
            take = min(max(0, over - grace), deficit)
            if take > 0:
                victims.append((job_id, take))
                deficit -= take
        return victims

    def note_preempted(self, kind: str, n: int) -> None:
        self.preemptions[kind] += n

    # -- reporting -------------------------------------------------------------
    def utilization(self, queue: str, makespan: float) -> float:
        """Queue's share of total slot-seconds over ``makespan``."""
        cap = sum(self.totals.values()) * makespan
        return self.slot_seconds[queue] / cap if cap > 0 else 0.0

    def finalize(self) -> None:
        """Close the usage integrals at the current clock."""
        for q in self.queues:
            self._integrate(q)
