"""Multi-tenant traffic + cluster scheduling on one shared simnet kernel.

``repro.cluster`` is the layer the ROADMAP's "millions of users" north
star asks for: seeded open-loop arrival streams (:mod:`~repro.cluster.
arrivals`), a fair-share/capacity/FIFO slot scheduler with preemption
and admission control (:mod:`~repro.cluster.scheduler`), and the engine
that runs tens-to-hundreds of concurrent Hadoop and MPI-D jobs on one
shared cluster with per-tenant SLO accounting (:mod:`~repro.cluster.
engine`).  See ``docs/SCHEDULER.md``.
"""

from repro.cluster.arrivals import (
    Arrival,
    TenantSpec,
    build_arrivals,
    offered_load_summary,
    tenant_arrivals,
)
from repro.cluster.engine import JobRecord, MultiTenantEngine, percentile
from repro.cluster.scheduler import (
    ClusterScheduler,
    JobSlots,
    QueueConfig,
    SchedulerConfig,
)

__all__ = [
    "Arrival",
    "ClusterScheduler",
    "JobRecord",
    "JobSlots",
    "MultiTenantEngine",
    "QueueConfig",
    "SchedulerConfig",
    "TenantSpec",
    "build_arrivals",
    "offered_load_summary",
    "percentile",
    "tenant_arrivals",
]
