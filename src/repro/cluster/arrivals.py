"""Seeded open-loop job arrival streams for multi-tenant runs.

Each tenant gets an independent arrival process — Poisson, diurnal
(inhomogeneous Poisson via thinning), or bursty (compound Poisson
batches) — and a workload mix drawn from the GridMix suite.  The whole
stream is materialized *before* the simulation starts from
``make_rng(seed, "arrivals", tenant)``, so a run's offered load is a
pure function of (seed, tenant specs, horizon): replays and the
double-run determinism CI job see byte-identical traffic.

Open-loop means arrivals do not slow down when the cluster is saturated
— exactly the regime where admission control and fair-share matter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.util.rng import make_rng
from repro.util.units import MiB
from repro.workloads.gridmix_suite import GRIDMIX_SUITE, suite_by_name

_PROFILES = ("poisson", "diurnal", "bursty")
_RUNTIMES = ("hadoop", "mpid", "mixed")


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's traffic contract."""

    name: str
    #: Mean arrival rate, jobs per simulated second.
    rate: float = 0.02
    #: Arrival process shape.
    profile: str = "poisson"
    #: Which queue the tenant submits to (defaults to its own name).
    queue: Optional[str] = None
    #: GridMix entries the tenant draws jobs from, uniformly.
    workloads: tuple[str, ...] = ("javaSort", "combiner", "webdataScan")
    #: Job input size range [lo, hi), sampled log-uniformly.
    min_input_bytes: int = 64 * MiB
    max_input_bytes: int = 512 * MiB
    #: Runtime: "hadoop", "mpid", or "mixed" (Bernoulli per job).
    runtime: str = "hadoop"
    mpid_fraction: float = 0.25
    # -- diurnal shape ------------------------------------------------------
    #: Peak-to-mean swing in [0, 1): rate(t) = rate * (1 + A sin(2πt/T)).
    diurnal_amplitude: float = 0.8
    diurnal_period: float = 3600.0
    # -- bursty shape -------------------------------------------------------
    #: Mean jobs per burst (geometric); burst events arrive Poisson at
    #: ``rate / burst_size`` so the long-run mean rate is preserved.
    burst_size: float = 5.0
    #: Gap between jobs inside one burst (seconds).
    burst_spacing: float = 1.0

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"arrival rate must be positive: {self.rate}")
        if self.profile not in _PROFILES:
            raise ValueError(f"unknown arrival profile: {self.profile!r}")
        if self.runtime not in _RUNTIMES:
            raise ValueError(f"unknown runtime: {self.runtime!r}")
        if not 0 < self.min_input_bytes <= self.max_input_bytes:
            raise ValueError("need 0 < min_input_bytes <= max_input_bytes")
        known = suite_by_name()
        for w in self.workloads:
            if w not in known:
                raise ValueError(
                    f"unknown GridMix workload {w!r}; "
                    f"have {sorted(known)}"
                )
        if not 0.0 <= self.mpid_fraction <= 1.0:
            raise ValueError("mpid_fraction must be in [0, 1]")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError("diurnal_amplitude must be in [0, 1)")
        if self.burst_size < 1.0 or self.burst_spacing < 0:
            raise ValueError("need burst_size >= 1 and burst_spacing >= 0")

    @property
    def queue_name(self) -> str:
        return self.queue if self.queue is not None else self.name


@dataclass(frozen=True)
class Arrival:
    """One materialized job submission."""

    time: float
    tenant: str
    #: Unique within the tenant's stream; job names derive from it.
    index: int
    runtime: str  # "hadoop" | "mpid"
    workload: str  # GridMix entry name
    input_bytes: int

    @property
    def job_name(self) -> str:
        return f"{self.tenant}-{self.index}-{self.workload}"


def _arrival_times(tenant: TenantSpec, rng: np.random.Generator, horizon: float):
    """The tenant's raw arrival instants within [0, horizon)."""
    times: list[float] = []
    if tenant.profile == "poisson":
        t = float(rng.exponential(1.0 / tenant.rate))
        while t < horizon:
            times.append(t)
            t += float(rng.exponential(1.0 / tenant.rate))
    elif tenant.profile == "diurnal":
        # Thinning (Lewis–Shedler): draw at the peak rate, keep each
        # point with probability rate(t)/peak.
        amp = tenant.diurnal_amplitude
        peak = tenant.rate * (1.0 + amp)
        two_pi = 2.0 * np.pi
        t = float(rng.exponential(1.0 / peak))
        while t < horizon:
            lam = tenant.rate * (1.0 + amp * np.sin(two_pi * t / tenant.diurnal_period))
            if rng.random() < lam / peak:
                times.append(t)
            t += float(rng.exponential(1.0 / peak))
    else:  # bursty
        burst_rate = tenant.rate / tenant.burst_size
        t = float(rng.exponential(1.0 / burst_rate))
        while t < horizon:
            count = int(rng.geometric(1.0 / tenant.burst_size))
            for i in range(count):
                at = t + i * tenant.burst_spacing
                if at < horizon:
                    times.append(at)
            t += float(rng.exponential(1.0 / burst_rate))
    return times


def tenant_arrivals(
    tenant: TenantSpec, seed: int, horizon: float
) -> list[Arrival]:
    """Materialize one tenant's whole stream (sorted by time)."""
    if horizon <= 0:
        raise ValueError(f"horizon must be positive: {horizon}")
    rng = make_rng(seed, "arrivals", tenant.name)
    times = sorted(_arrival_times(tenant, rng, horizon))
    # Per-job attribute draws come from a second stream so reshaping the
    # arrival process does not reshuffle workload choices.
    attr_rng = make_rng(seed, "arrivals-attrs", tenant.name)
    out: list[Arrival] = []
    lo = np.log(tenant.min_input_bytes)
    hi = np.log(tenant.max_input_bytes)
    for i, t in enumerate(times):
        workload = tenant.workloads[int(attr_rng.integers(len(tenant.workloads)))]
        nbytes = int(np.exp(lo + (hi - lo) * attr_rng.random()))
        if tenant.runtime == "mixed":
            runtime = "mpid" if attr_rng.random() < tenant.mpid_fraction else "hadoop"
        else:
            runtime = tenant.runtime
        out.append(
            Arrival(
                time=float(t),
                tenant=tenant.name,
                index=i,
                runtime=runtime,
                workload=workload,
                input_bytes=max(1, nbytes),
            )
        )
    return out


def merge_streams(streams: list[list[Arrival]]) -> list[Arrival]:
    """All tenants' arrivals in deterministic submission order: by time,
    ties broken by tenant name then index."""
    merged = [a for s in streams for a in s]
    merged.sort(key=lambda a: (a.time, a.tenant, a.index))
    return merged


def build_arrivals(
    tenants: list[TenantSpec], seed: int, horizon: float
) -> list[Arrival]:
    """The full offered load for one multi-tenant run."""
    names = [t.name for t in tenants]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate tenant names: {names}")
    return merge_streams([tenant_arrivals(t, seed, horizon) for t in tenants])


def offered_load_summary(arrivals: list[Arrival]) -> dict:
    """Quick headline numbers for reports and manifests."""
    by_tenant: dict[str, int] = {}
    total_bytes = 0
    for a in arrivals:
        by_tenant[a.tenant] = by_tenant.get(a.tenant, 0) + 1
        total_bytes += a.input_bytes
    return {
        "jobs": len(arrivals),
        "by_tenant": dict(sorted(by_tenant.items())),
        "total_input_bytes": total_bytes,
        "mpid_jobs": sum(1 for a in arrivals if a.runtime == "mpid"),
    }


__all__ = [
    "Arrival",
    "TenantSpec",
    "build_arrivals",
    "merge_streams",
    "offered_load_summary",
    "tenant_arrivals",
    "GRIDMIX_SUITE",
]
