"""The Table-II interface: ``MPI_D_Init / Send / Recv / Finalize``.

Two styles are offered:

* the **C-style module functions**, matching the paper's Table II — a
  thread-local current context makes them work naturally when each rank
  is a thread (exactly our runtime)::

      MPI_D_Init(comm, role="mapper", reducer_ranks=[3])
      MPI_D_Send("word", 1)
      MPI_D_Finalize()

* the **pythonic context object** (:class:`MpiDContext`), which the
  module functions delegate to and which supports ``with``.
"""

from __future__ import annotations

import threading
from typing import Any, Optional, Sequence

from repro.core.combiner import Combiner
from repro.core.config import MpiDConfig
from repro.core.engine import MapOutputEngine, ReduceInputEngine
from repro.core.partitioner import Partitioner
from repro.mplib.comm import Communicator

_ROLE_MAPPER = "mapper"
_ROLE_REDUCER = "reducer"


class MpiDContext:
    """One rank's MPI-D library state.

    A mapper context owns a :class:`MapOutputEngine` and exposes
    :meth:`send`; a reducer context owns a :class:`ReduceInputEngine`
    and exposes :meth:`recv`.  Calling the wrong side raises — the
    paper's interface is asymmetric by design (send for mappers, recv
    for reducers).
    """

    def __init__(
        self,
        comm: Communicator,
        role: str,
        reducer_ranks: Optional[Sequence[int]] = None,
        num_mappers: Optional[int] = None,
        partition: Optional[int] = None,
        config: Optional[MpiDConfig] = None,
        combiner: Combiner | Any = None,
        partitioner: Optional[Partitioner] = None,
    ):
        if role not in (_ROLE_MAPPER, _ROLE_REDUCER):
            raise ValueError(f"role must be 'mapper' or 'reducer', got {role!r}")
        self.comm = comm
        self.role = role
        self.config = config or MpiDConfig()
        self._mapper: Optional[MapOutputEngine] = None
        self._reducer: Optional[ReduceInputEngine] = None
        self._finalized = False
        if role == _ROLE_MAPPER:
            if not reducer_ranks:
                raise ValueError("a mapper context needs reducer_ranks")
            self._mapper = MapOutputEngine(
                comm,
                reducer_ranks,
                config=self.config,
                combiner=combiner,
                partitioner=partitioner,
            )
        else:
            if num_mappers is None or partition is None:
                raise ValueError(
                    "a reducer context needs num_mappers and its partition index"
                )
            self._reducer = ReduceInputEngine(
                comm,
                num_senders=num_mappers,
                partition=partition,
                config=self.config,
                combiner=combiner,
            )

    # -- the pair of calls ---------------------------------------------------
    def send(self, key: Any, value: Any) -> None:
        """``MPI_D_Send(key, value)`` — mapper side only."""
        if self._mapper is None:
            raise RuntimeError("MPI_D_Send called on a reducer context")
        if self._finalized:
            raise RuntimeError("MPI_D_Send after MPI_D_Finalize")
        self._mapper.send(key, value)

    def recv(self) -> Optional[tuple[Any, list]]:
        """``MPI_D_Recv()`` — reducer side only; ``(key, values)`` or None."""
        if self._reducer is None:
            raise RuntimeError("MPI_D_Recv called on a mapper context")
        return self._reducer.recv()

    # -- lifecycle -----------------------------------------------------------
    def finalize(self) -> None:
        """``MPI_D_Finalize()``: flush + end-of-stream (mapper), teardown."""
        if self._finalized:
            return
        if self._mapper is not None:
            self._mapper.finalize()
        self._finalized = True

    def __enter__(self) -> "MpiDContext":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # On error, still finalize so reducers unblock with whatever
        # arrived plus the end-of-stream, instead of deadlocking.
        self.finalize()

    # -- stats ------------------------------------------------------------------
    @property
    def stats(self) -> dict:
        """Engine counters for tests and experiment reporting."""
        if self._mapper is not None:
            return {
                "records_sent": self._mapper.records_sent,
                "bytes_sent": self._mapper.bytes_sent,
                "messages_sent": self._mapper.messages_sent,
                "spills": self._mapper.buffer.spills,
            }
        assert self._reducer is not None
        return {
            "arrays_received": self._reducer.arrays_received,
            "bytes_received": self._reducer.bytes_received,
            "senders_done": self._reducer.senders_done,
        }


_current = threading.local()


def _ctx() -> MpiDContext:
    ctx = getattr(_current, "ctx", None)
    if ctx is None:
        raise RuntimeError("MPI_D_Init has not been called on this rank")
    return ctx


def MPI_D_Init(comm: Communicator, **kwargs: Any) -> MpiDContext:
    """Initialize MPI-D on this rank; see :class:`MpiDContext` for kwargs."""
    if getattr(_current, "ctx", None) is not None:
        raise RuntimeError("MPI_D_Init called twice without MPI_D_Finalize")
    ctx = MpiDContext(comm, **kwargs)
    _current.ctx = ctx
    return ctx


def MPI_D_Send(key: Any, value: Any) -> None:
    """Send one intermediate key-value pair (paper Table II)."""
    _ctx().send(key, value)


def MPI_D_Recv() -> Optional[tuple[Any, list]]:
    """Collect the next intermediate ``(key, values)`` pair (paper Table II)."""
    return _ctx().recv()


def MPI_D_Finalize() -> None:
    """Flush, signal end-of-stream, and release this rank's context."""
    ctx = getattr(_current, "ctx", None)
    if ctx is None:
        raise RuntimeError("MPI_D_Finalize without MPI_D_Init")
    try:
        ctx.finalize()
    finally:
        _current.ctx = None
