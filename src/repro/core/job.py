"""The Section-IV simulation-system layout as a runnable job API.

"We use rank 0 process in the simulation system to simulate the master
process, like the jobtracker process in Hadoop.  Other processes are
used to simulate workers."

:class:`MapReduceJob` describes a job (map/reduce functions, combiner,
parallelism, MPI-D config); :func:`run_job` executes it on the
in-process runtime with the paper's process layout::

    rank 0                 master (distributes splits, gathers output)
    ranks 1..M             mappers
    ranks M+1..M+R         reducers

and returns the real computed output.  This is the functional plane —
answers are exact; the performance twin lives in :mod:`repro.mrmpi`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro.core.api import MpiDContext
from repro.core.combiner import Combiner
from repro.core.config import MpiDConfig
from repro.core.partitioner import Partitioner
from repro.mplib.runtime import Runtime

#: Job-plumbing tags (distinct from the reserved MPI-D data tag).
TAG_INPUT = 1001
TAG_OUTPUT = 1002

MapFn = Callable[[Any, Any, Callable[[Any, Any], None]], None]
ReduceFn = Callable[[Any, list, Callable[[Any, Any], None]], None]


class Emitter:
    """What user functions receive as ``emit``: callable, plus counters.

    Hadoop-style user counters: ``emit.count("bad-records")`` increments
    a named job counter; per-task counters are aggregated into
    :attr:`JobResult.counters`.  Being callable keeps the plain
    ``emit(key, value)`` signature every example uses.
    """

    __slots__ = ("_sink", "counters")

    def __init__(self, sink: Callable[[Any, Any], None]):
        self._sink = sink
        self.counters: Counter = Counter()

    def __call__(self, key: Any, value: Any) -> None:
        self._sink(key, value)

    def count(self, name: str, amount: int = 1) -> None:
        """Increment user counter ``name`` by ``amount``."""
        self.counters[name] += amount


@dataclass
class MapReduceJob:
    """A MapReduce job for the MPI-D simulation system.

    ``mapper(key, value, emit)`` is called once per input record;
    ``reducer(key, values, emit)`` once per intermediate key.  ``emit``
    feeds ``MPI_D_Send`` on the map side and the job output on the
    reduce side.  ``combiner`` may be a :class:`Combiner`, a binary
    callable ("always assigned as the reduce function" style), or None
    for plain grouping.
    """

    mapper: MapFn
    reducer: ReduceFn
    num_mappers: int = 4
    num_reducers: int = 1
    combiner: Combiner | Callable | None = None
    partitioner: Optional[Partitioner] = None
    config: MpiDConfig = field(default_factory=MpiDConfig)
    name: str = "mpid-job"

    def __post_init__(self) -> None:
        if self.num_mappers < 1:
            raise ValueError(f"need >= 1 mapper, got {self.num_mappers}")
        if self.num_reducers < 1:
            raise ValueError(f"need >= 1 reducer, got {self.num_reducers}")
        if not callable(self.mapper) or not callable(self.reducer):
            raise TypeError("mapper and reducer must be callables")

    @property
    def world_size(self) -> int:
        """Master + mappers + reducers, the paper's 1 + 49 + 1 shape."""
        return 1 + self.num_mappers + self.num_reducers

    @property
    def mapper_ranks(self) -> list[int]:
        return list(range(1, 1 + self.num_mappers))

    @property
    def reducer_ranks(self) -> list[int]:
        start = 1 + self.num_mappers
        return list(range(start, start + self.num_reducers))


@dataclass
class JobResult:
    """Everything a finished job produced."""

    output: list[tuple[Any, Any]]
    mapper_stats: list[dict]
    reducer_stats: list[dict]
    #: Aggregated user counters from every mapper and reducer.
    counters: dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> dict:
        """Output pairs as a dict (later duplicates of a key win)."""
        return dict(self.output)

    def __len__(self) -> int:
        return len(self.output)


def _normalize_records(inputs: Sequence[Any]) -> list[tuple[Any, Any]]:
    """Records may be bare values (key := record index) or (key, value)."""
    records = []
    for i, rec in enumerate(inputs):
        if isinstance(rec, tuple) and len(rec) == 2:
            records.append(rec)
        else:
            records.append((i, rec))
    return records


def _split_round_robin(records: list, n: int) -> list[list]:
    splits: list[list] = [[] for _ in range(n)]
    for i, rec in enumerate(records):
        splits[i % n].append(rec)
    return splits


def _worker_main(comm, job: MapReduceJob) -> Any:
    rank = comm.rank
    mapper_ranks = job.mapper_ranks
    reducer_ranks = job.reducer_ranks

    if rank == 0:
        # Master: nothing to compute; splits were scattered by run_job's
        # master closure via plain sends before workers ask for them.
        outputs: list[tuple[Any, Any]] = []
        reducer_stats: list[dict] = []
        counters: Counter = Counter()
        for r in reducer_ranks:
            pairs, stats, task_counters = comm.recv(source=r, tag=TAG_OUTPUT)
            outputs.extend(pairs)
            reducer_stats.append(stats)
            counters.update(task_counters)
        mapper_stats = []
        for m in mapper_ranks:
            stats, task_counters = comm.recv(source=m, tag=TAG_OUTPUT)
            mapper_stats.append(stats)
            counters.update(task_counters)
        if job.config.sort_keys:
            outputs.sort(key=lambda kv: _sort_token(kv[0]))
        return JobResult(outputs, mapper_stats, reducer_stats, dict(counters))

    if rank in mapper_ranks:
        split = comm.recv(source=0, tag=TAG_INPUT)
        ctx = MpiDContext(
            comm,
            role="mapper",
            reducer_ranks=reducer_ranks,
            config=job.config,
            combiner=job.combiner,
            partitioner=job.partitioner,
        )
        emitter = Emitter(ctx.send)
        with ctx:
            for key, value in split:
                job.mapper(key, value, emitter)
        comm.send((ctx.stats, dict(emitter.counters)), dest=0, tag=TAG_OUTPUT)
        return None

    # Reducer.
    partition = reducer_ranks.index(rank)
    ctx = MpiDContext(
        comm,
        role="reducer",
        num_mappers=job.num_mappers,
        partition=partition,
        config=job.config,
        combiner=job.combiner,
    )
    pairs: list[tuple[Any, Any]] = []
    emitter = Emitter(lambda key, value: pairs.append((key, value)))

    with ctx:
        while True:
            item = ctx.recv()
            if item is None:
                break
            key, values = item
            job.reducer(key, values, emitter)
    comm.send((pairs, ctx.stats, dict(emitter.counters)), dest=0, tag=TAG_OUTPUT)
    return None


def _sort_token(key: Any) -> tuple:
    """Total order across mixed key types (type name first, then value)."""
    return (type(key).__name__, key)


def run_job(
    job: MapReduceJob,
    inputs: Optional[Sequence[Any]] = None,
    splits: Optional[Sequence[Sequence[tuple[Any, Any]]]] = None,
    progress_timeout: float = 30.0,
) -> JobResult:
    """Execute ``job`` on the in-process runtime and return its output.

    Provide either ``inputs`` (records, split round-robin across mappers
    — "we distribute all input data across all nodes") or explicit
    per-mapper ``splits``.
    """
    if (inputs is None) == (splits is None):
        raise ValueError("provide exactly one of inputs= or splits=")
    if splits is not None:
        if len(splits) != job.num_mappers:
            raise ValueError(
                f"got {len(splits)} splits for {job.num_mappers} mappers"
            )
        prepared = [_normalize_records(s) for s in splits]
    else:
        prepared = _split_round_robin(
            _normalize_records(list(inputs or [])), job.num_mappers
        )

    def main(comm):
        if comm.rank == 0:
            for i, m in enumerate(job.mapper_ranks):
                comm.send(prepared[i], dest=m, tag=TAG_INPUT)
        return _worker_main(comm, job)

    results = Runtime(
        job.world_size, progress_timeout=progress_timeout, name=job.name
    ).run(main)
    result = results[0]
    assert isinstance(result, JobResult)
    return result
