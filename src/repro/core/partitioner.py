"""Partition selection: which reducer owns a key (paper §IV-A).

"The key and value list pairs in the hash table buffer will be moved to
partitions through a hash-mod selector.  The selector selects the pairs
according to their keys' hash values. ... Our implementation is similar
to the HashPartitioner in the Hadoop MapReduce framework."

:class:`HashPartitioner` uses :func:`repro.util.hashing.stable_hash`
(deterministic across processes — Python's built-in ``hash`` is not) and
is the default.  :class:`ModPartitioner` reproduces Hadoop's exact
``(key.hashCode() & Integer.MAX_VALUE) % numReduceTasks`` for string
keys, for users who need partition-compatible output with real Hadoop.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from bisect import bisect_right
from typing import Any, Sequence

from repro.util.hashing import java_string_hash, stable_hash


class Partitioner(ABC):
    """Maps a key to a partition index in ``[0, num_partitions)``."""

    @abstractmethod
    def partition(self, key: Any, num_partitions: int) -> int:
        """Select the partition for ``key``; must be deterministic."""

    @staticmethod
    def _check(num_partitions: int) -> None:
        if num_partitions < 1:
            raise ValueError(
                f"need at least one partition, got {num_partitions}"
            )


class HashPartitioner(Partitioner):
    """Hash-mod over a process-stable 64-bit hash: the MPI-D default."""

    def partition(self, key: Any, num_partitions: int) -> int:
        self._check(num_partitions)
        return stable_hash(key) % num_partitions


class RangePartitioner(Partitioner):
    """Order-preserving partitioning over sampled boundaries (TeraSort).

    Hash partitioning balances load but scatters the key order across
    reducers; a *sorted* output (the point of a sort benchmark) needs
    partition ``i`` to hold only keys below partition ``i+1``'s.  The
    classic recipe samples the input, picks ``n-1`` boundary keys, and
    routes by binary search — reducer outputs concatenate into a totally
    ordered result.
    """

    def __init__(self, boundaries: Sequence[Any]):
        bounds = list(boundaries)
        if sorted(bounds) != bounds:
            raise ValueError("range boundaries must be sorted")
        if len(set(map(repr, bounds))) != len(bounds):
            raise ValueError("range boundaries must be distinct")
        self.boundaries = bounds

    @classmethod
    def from_sample(cls, sample: Sequence[Any], num_partitions: int) -> "RangePartitioner":
        """Pick ``num_partitions - 1`` evenly spaced cut points from a
        sample of keys (duplicates collapsed, so skewed samples may
        yield fewer effective partitions)."""
        if num_partitions < 1:
            raise ValueError(f"need at least one partition, got {num_partitions}")
        ordered = sorted(set(sample))
        cuts = []
        for i in range(1, num_partitions):
            idx = (i * len(ordered)) // num_partitions
            if 0 < len(ordered) and ordered[min(idx, len(ordered) - 1)] not in cuts:
                cuts.append(ordered[min(idx, len(ordered) - 1)])
        return cls(cuts)

    def partition(self, key: Any, num_partitions: int) -> int:
        self._check(num_partitions)
        if len(self.boundaries) >= num_partitions:
            raise ValueError(
                f"{len(self.boundaries)} boundaries need at least "
                f"{len(self.boundaries) + 1} partitions, got {num_partitions}"
            )
        return bisect_right(self.boundaries, key)


class ModPartitioner(Partitioner):
    """Hadoop's HashPartitioner bit-for-bit (string keys use Java's
    ``String.hashCode``; other keys fall back to the stable hash)."""

    def partition(self, key: Any, num_partitions: int) -> int:
        self._check(num_partitions)
        if isinstance(key, str):
            h = java_string_hash(key) & 0x7FFFFFFF
        else:
            h = stable_hash(key) & 0x7FFFFFFF
        return h % num_partitions
