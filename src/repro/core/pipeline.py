"""Multi-stage job pipelines: the output of one MPI-D job feeds the next.

Real MapReduce workloads are rarely one job — the classic "top-k words"
is WordCount followed by a selection job.  A :class:`JobChain` runs a
sequence of :class:`~repro.core.job.MapReduceJob` stages on the
functional plane, with optional between-stage transforms (e.g. turning
``(word, count)`` into ``(count, word)`` for a sorting stage).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro.core.job import JobResult, MapReduceJob, run_job

Transform = Callable[[JobResult], Sequence[Any]]


@dataclass
class Stage:
    """One pipeline stage: a job plus the transform feeding the next stage."""

    job: MapReduceJob
    transform: Optional[Transform] = None

    def feed_next(self, result: JobResult) -> Sequence[Any]:
        if self.transform is not None:
            return self.transform(result)
        return result.output


@dataclass
class ChainResult:
    """Results of every stage, last one first-class."""

    stages: list[JobResult]

    @property
    def final(self) -> JobResult:
        return self.stages[-1]

    def __len__(self) -> int:
        return len(self.stages)


@dataclass
class JobChain:
    """An ordered sequence of MapReduce stages."""

    stages: list[Stage] = field(default_factory=list)
    name: str = "chain"

    def add(self, job: MapReduceJob, transform: Optional[Transform] = None) -> "JobChain":
        """Append a stage; returns self for chaining."""
        self.stages.append(Stage(job=job, transform=transform))
        return self

    def run(
        self, inputs: Sequence[Any], progress_timeout: float = 30.0
    ) -> ChainResult:
        """Run all stages; stage i+1 consumes stage i's (transformed) output."""
        if not self.stages:
            raise ValueError("pipeline has no stages")
        results: list[JobResult] = []
        current: Sequence[Any] = inputs
        for stage in self.stages:
            result = run_job(
                stage.job, inputs=current, progress_timeout=progress_timeout
            )
            results.append(result)
            current = stage.feed_next(result)
        return ChainResult(stages=results)


def top_k_chain(k: int, num_mappers: int = 4, num_reducers: int = 2) -> JobChain:
    """The canonical two-stage pipeline: WordCount, then global top-k.

    Stage 2 funnels everything to one reducer keyed by a constant — the
    textbook pattern for a global aggregate after a parallel count.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")

    def wc_map(key, line, emit):
        for word in line.split():
            emit(word, 1)

    def wc_reduce(word, counts, emit):
        emit(word, sum(counts))

    def select_map(word, count, emit):
        emit("top", (count, word))

    def select_reduce(_, pairs, emit):
        for count, word in sorted(pairs, reverse=True)[:k]:
            emit(word, count)

    chain = JobChain(name=f"top{k}-words")
    chain.add(
        MapReduceJob(
            mapper=wc_map,
            reducer=wc_reduce,
            combiner=lambda a, b: a + b,
            num_mappers=num_mappers,
            num_reducers=num_reducers,
            name="wordcount",
        )
    )
    chain.add(
        MapReduceJob(
            mapper=select_map,
            reducer=select_reduce,
            num_mappers=num_mappers,
            num_reducers=1,
            name="topk",
        )
    )
    return chain
