"""The in-library hash-table buffer behind ``MPI_D_Send`` (paper §IV-A).

"In the common case, MPI_D_Send routine will buffer the key-value pairs
in a hash table, and return the invocation procedure immediately, which
aims to achieve much more overlapping between computing and
communication."

The buffer tracks an estimate of its serialized size so the engine can
spill when it "exceeds a particular size".  Size accounting is exact for
grouping combiners (every value's encoded size is added once) and
conservative for reducing combiners (the combined state replaces the
previous one in the estimate).
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.core.combiner import Combiner, GroupingCombiner
from repro.util.serde import encoded_kv_size


class HashTableBuffer:
    """Per-mapper key -> combined-state table with byte-size accounting."""

    def __init__(self, combiner: Combiner | None = None):
        self.combiner = combiner or GroupingCombiner()
        self._table: dict[Any, Any] = {}
        self._bytes = 0
        self._key_bytes: dict[Any, int] = {}
        self._state_bytes: dict[Any, int] = {}
        self.pairs_added = 0
        self.spills = 0

    def __len__(self) -> int:
        return len(self._table)

    def __contains__(self, key: Any) -> bool:
        return key in self._table

    @property
    def approx_bytes(self) -> int:
        """Estimated serialized size of the table's contents."""
        return self._bytes

    def add(self, key: Any, value: Any) -> None:
        """Fold one emitted pair into the table (the MPI_D_Send hot path)."""
        self.pairs_added += 1
        combiner = self.combiner
        table = self._table
        if key in table:
            state = combiner.add(table[key], value)
            table[key] = state
            if isinstance(combiner, GroupingCombiner):
                # Exact accounting: appended one more value.
                self._bytes += encoded_kv_size(value)
                self._state_bytes[key] += encoded_kv_size(value)
            else:
                new_size = encoded_kv_size(state)
                self._bytes += new_size - self._state_bytes[key]
                self._state_bytes[key] = new_size
        else:
            state = combiner.unit(value)
            table[key] = state
            ksize = encoded_kv_size(key)
            ssize = encoded_kv_size(value) if isinstance(
                combiner, GroupingCombiner
            ) else encoded_kv_size(state)
            self._key_bytes[key] = ksize
            self._state_bytes[key] = ssize
            self._bytes += ksize + ssize

    def should_spill(self, threshold: int) -> bool:
        """True when the serialized-size estimate crossed ``threshold``."""
        return self._bytes >= threshold

    def drain(self) -> Iterator[tuple[Any, Any]]:
        """Yield and remove all (key, state) entries — the spill source.

        Entries come out in insertion order (Python dict order), matching
        the deterministic behaviour the tests rely on.
        """
        table = self._table
        self._table = {}
        self._key_bytes = {}
        self._state_bytes = {}
        self._bytes = 0
        self.spills += 1
        yield from table.items()

    def peek(self, key: Any) -> Any:
        """Current combined state for ``key`` (KeyError if absent)."""
        return self._table[key]
