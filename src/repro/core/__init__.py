"""MPI-D: the paper's minimal key-value extension to MPI (Section III-IV).

The exposed interface is one pair of calls (paper Table II) plus the two
environment calls::

    MPI_D_Init(comm, job)          # establish roles and library state
    MPI_D_Send(key, value)         # mapper side: emit one pair
    MPI_D_Recv()                   # reducer side: next (key, values) or None
    MPI_D_Finalize()               # flush, end-of-stream, teardown

Underneath, the library implements the Figure-4 pipeline: a hash-table
buffer with local combining (:mod:`repro.core.hashbuffer`,
:mod:`repro.core.combiner`), hash-mod partition selection
(:mod:`repro.core.partitioner`), data realignment into contiguous
fixed-size partitions (:mod:`repro.core.realign`), MPI point-to-point
transfer with wildcard reception, and reverse realignment plus merge on
the reducer (:mod:`repro.core.engine`).

:mod:`repro.core.job` wraps the whole thing into the Section-IV
simulation system layout (rank 0 master, worker ranks) with the
:func:`run_job` convenience entry point.
"""

from repro.core.config import MpiDConfig
from repro.core.combiner import (
    Combiner,
    GroupingCombiner,
    ReducingCombiner,
    SummingCombiner,
    make_combiner,
)
from repro.core.partitioner import (
    HashPartitioner,
    ModPartitioner,
    Partitioner,
    RangePartitioner,
)
from repro.core.hashbuffer import HashTableBuffer
from repro.core.realign import PartitionWriter, realign, reverse_realign
from repro.core.engine import MapOutputEngine, ReduceInputEngine
from repro.core.api import (
    MPI_D_Init,
    MPI_D_Send,
    MPI_D_Recv,
    MPI_D_Finalize,
    MpiDContext,
)
from repro.core.job import Emitter, JobResult, MapReduceJob, run_job
from repro.core.iterative import IterativeResult, l1_delta_below, run_iterative_job
from repro.core.pipeline import ChainResult, JobChain, Stage, top_k_chain

__all__ = [
    "MpiDConfig",
    "Combiner",
    "GroupingCombiner",
    "ReducingCombiner",
    "SummingCombiner",
    "make_combiner",
    "Partitioner",
    "HashPartitioner",
    "ModPartitioner",
    "RangePartitioner",
    "HashTableBuffer",
    "PartitionWriter",
    "realign",
    "reverse_realign",
    "MapOutputEngine",
    "ReduceInputEngine",
    "MPI_D_Init",
    "MPI_D_Send",
    "MPI_D_Recv",
    "MPI_D_Finalize",
    "MpiDContext",
    "MapReduceJob",
    "JobResult",
    "Emitter",
    "run_job",
    "IterativeResult",
    "run_iterative_job",
    "l1_delta_below",
    "JobChain",
    "Stage",
    "ChainResult",
    "top_k_chain",
]
