"""Data realignment (paper §IV-A): hash table -> contiguous partitions.

"The other important function is data realignment, which is reformatting
key and value list pairs from a discrete hash table to an
address-sequential and fix-sized partition."

This is the step that makes key-value data *MPI-shaped*: variable-sized,
non-contiguous dict entries become fixed-size contiguous byte arrays
that one ``MPI_Send`` can move, and the receiving side reconstructs
pairs with **reverse realignment** ("the sequential data stream will be
re-constructed as key-value pairs").

The optional per-key value sort ("it can also sort the value list for
each key on demand") happens here, at realignment time.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Optional

from repro.core.partitioner import Partitioner
from repro.util.serde import encode_record, iter_records


class PartitionWriter:
    """Fills fixed-capacity contiguous arrays for one destination.

    Records are appended back-to-back; when the current array cannot fit
    the next record a new one is started.  A record larger than the
    capacity gets an oversized array of its own (it must still travel —
    one array, one send).
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"partition capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._current = bytearray()
        self._full: list[bytes] = []
        self.records_written = 0
        self.bytes_written = 0

    def append(self, key: Any, state: Any) -> None:
        """Append one encoded (key, combined-state) record."""
        blob = encode_record(key, state)
        if self._current and len(self._current) + len(blob) > self.capacity:
            self._full.append(bytes(self._current))
            self._current = bytearray()
        self._current += blob
        self.records_written += 1
        self.bytes_written += len(blob)

    def close(self) -> list[bytes]:
        """Seal and return all arrays (the partial tail included)."""
        if self._current:
            self._full.append(bytes(self._current))
            self._current = bytearray()
        out, self._full = self._full, []
        return out


def realign(
    items: Iterable[tuple[Any, Any]],
    partitioner: Partitioner,
    num_partitions: int,
    partition_bytes: int,
    sort_values: bool = False,
    value_sort_key: Optional[Callable[[Any], Any]] = None,
) -> list[list[bytes]]:
    """Reformat (key, state) entries into per-destination contiguous arrays.

    Returns ``arrays[p]`` = list of byte buffers destined for partition
    ``p``.  With ``sort_values`` on, list-valued states are sorted before
    encoding (non-list states pass through untouched).
    """
    if num_partitions < 1:
        raise ValueError(f"need at least one partition, got {num_partitions}")
    writers = [PartitionWriter(partition_bytes) for _ in range(num_partitions)]
    for key, state in items:
        if sort_values and isinstance(state, list):
            state = sorted(state, key=value_sort_key)
        dest = partitioner.partition(key, num_partitions)
        if not 0 <= dest < num_partitions:
            raise ValueError(
                f"partitioner returned {dest} outside [0, {num_partitions})"
            )
        writers[dest].append(key, state)
    return [w.close() for w in writers]


def reverse_realign(buf: bytes) -> Iterator[tuple[Any, Any]]:
    """Reconstruct (key, state) pairs from one realigned array."""
    return iter_records(buf)
