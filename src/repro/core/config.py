"""MPI-D library configuration."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.util.units import KiB, MiB


@dataclass(frozen=True)
class MpiDConfig:
    """Tuning knobs of the MPI-D pipeline (paper §IV-A).

    ``spill_threshold``: "when the hash table buffer exceeds a particular
    size, a thread will be created to spill out the data from the hash
    table to partitions" — here the spill happens inline when the
    buffer's serialized size crosses this many bytes.

    ``partition_bytes``: partitions are "a set of continuous arrays with
    fixed size"; a spill fills as many fixed-size arrays per reducer as
    needed.

    ``sort_values``: "it can also sort the value list for each key on
    demand" (off by default, as in the paper's WordCount).

    ``sort_keys``: deliver keys to ``MPI_D_Recv`` in sorted order, the
    MapReduce contract Hadoop reducers rely on.
    """

    spill_threshold: int = 4 * MiB
    partition_bytes: int = 64 * KiB
    sort_values: bool = False
    sort_keys: bool = True
    #: Sort key for value sorting (the "secondary sort" pattern); None
    #: sorts by the values themselves.  Only meaningful with
    #: ``sort_values=True``.
    value_sort_key: Optional[Callable[[Any], Any]] = None
    #: Use synchronous sends (MPI_Ssend) for partition arrays instead of
    #: buffered standard sends.  The paper's prototype uses buffered
    #: MPI_Send for compute/communication overlap; this switch exists to
    #: ablate that choice (results must be identical, timing is not).
    synchronous_sends: bool = False
    #: Compress realigned partition arrays before they hit the wire —
    #: one of the realignment improvements §IV-A names ("like high
    #: performance sorting and compressing data").
    compress: bool = False

    def __post_init__(self) -> None:
        if self.spill_threshold < 1:
            raise ValueError(
                f"spill threshold must be >= 1 byte, got {self.spill_threshold}"
            )
        if self.partition_bytes < 64:
            raise ValueError(
                f"partition arrays must be >= 64 bytes, got {self.partition_bytes}"
            )
