"""The MPI-D engine: what happens between ``MPI_D_Send`` and ``MPI_D_Recv``.

Send path (one per mapper), per paper Figure 4:

1. ``MPI_D_Send(key, value)`` folds the pair into the hash-table buffer
   (local combine) and returns immediately;
2. when the buffer crosses the spill threshold it is drained through the
   hash-mod partitioner and realigned into fixed-size contiguous arrays;
3. each array goes out as one MPI message — "the destination will be
   assigned automatically according to the partition number";
4. ``finalize`` flushes the remainder and sends one end-of-stream marker
   to every reducer.

Receive path (one per reducer):

5. wildcard reception (``ANY_SOURCE``) of arrays from all mappers
   concurrently, reverse realignment, and in-memory merge of combined
   states per key;
6. once every mapper's end-of-stream arrived, ``MPI_D_Recv`` hands
   ``(key, value_list)`` pairs to the reduce function, in sorted key
   order by default.

MPI-D claims the tag :data:`MPID_TAG` for its traffic; applications
sharing the communicator must avoid it.
"""

from __future__ import annotations

import zlib
from typing import Any, Iterator, Optional, Sequence

from repro.core.combiner import Combiner, make_combiner
from repro.core.config import MpiDConfig
from repro.core.partitioner import HashPartitioner, Partitioner
from repro.core.hashbuffer import HashTableBuffer
from repro.core.realign import realign, reverse_realign
from repro.mplib.comm import Communicator
from repro.mplib.status import ANY_SOURCE

#: Tag reserved for MPI-D data and end-of-stream messages.
MPID_TAG = 1 << 20

_MSG_DATA = "data"
_MSG_ZDATA = "zdata"  # zlib-compressed realigned array
_MSG_EOS = "eos"


class MapOutputEngine:
    """Send side: buffer -> combine -> spill -> partition -> realign -> send."""

    def __init__(
        self,
        comm: Communicator,
        reducer_ranks: Sequence[int],
        config: MpiDConfig | None = None,
        combiner: Combiner | Any = None,
        partitioner: Partitioner | None = None,
    ):
        if not reducer_ranks:
            raise ValueError("need at least one reducer rank")
        if len(set(reducer_ranks)) != len(reducer_ranks):
            raise ValueError(f"duplicate reducer ranks: {reducer_ranks}")
        self.comm = comm
        self.reducer_ranks = list(reducer_ranks)
        self.config = config or MpiDConfig()
        self.combiner = make_combiner(combiner)
        self.partitioner = partitioner or HashPartitioner()
        self.buffer = HashTableBuffer(self.combiner)
        self.records_sent = 0
        self.bytes_sent = 0
        self.messages_sent = 0
        self._finalized = False

    def send(self, key: Any, value: Any) -> None:
        """The ``MPI_D_Send`` entry: fold the pair, maybe spill."""
        if self._finalized:
            raise RuntimeError("MPI_D_Send after MPI_D_Finalize")
        self.records_sent += 1
        self.buffer.add(key, value)
        if self.buffer.should_spill(self.config.spill_threshold):
            self.spill()

    def spill(self) -> int:
        """Drain the buffer to the wire; returns messages sent."""
        if not len(self.buffer):
            return 0
        arrays_per_dest = realign(
            self.buffer.drain(),
            self.partitioner,
            num_partitions=len(self.reducer_ranks),
            partition_bytes=self.config.partition_bytes,
            sort_values=self.config.sort_values,
            value_sort_key=self.config.value_sort_key,
        )
        send = (
            self.comm.ssend if self.config.synchronous_sends else self.comm.send
        )
        sent = 0
        for partition, arrays in enumerate(arrays_per_dest):
            dest = self.reducer_ranks[partition]
            for array in arrays:
                if self.config.compress:
                    payload = zlib.compress(array)
                    send((_MSG_ZDATA, partition, payload), dest, MPID_TAG)
                    self.bytes_sent += len(payload)
                else:
                    send((_MSG_DATA, partition, array), dest, MPID_TAG)
                    self.bytes_sent += len(array)
                sent += 1
        self.messages_sent += sent
        return sent

    def finalize(self) -> None:
        """Final spill plus end-of-stream to every reducer (idempotent)."""
        if self._finalized:
            return
        self.spill()
        for dest in self.reducer_ranks:
            self.comm.send((_MSG_EOS, self.comm.rank), dest, MPID_TAG)
            self.messages_sent += 1
        self._finalized = True


class ReduceInputEngine:
    """Receive side: wildcard recv -> reverse realign -> merge -> iterate."""

    def __init__(
        self,
        comm: Communicator,
        num_senders: int,
        partition: int,
        config: MpiDConfig | None = None,
        combiner: Combiner | Any = None,
    ):
        if num_senders < 1:
            raise ValueError(f"need at least one sender, got {num_senders}")
        self.comm = comm
        self.num_senders = num_senders
        self.partition = partition
        self.config = config or MpiDConfig()
        self.combiner = make_combiner(combiner)
        self._table: dict[Any, Any] = {}
        self._collected = False
        self._iter: Optional[Iterator[tuple[Any, list]]] = None
        self.arrays_received = 0
        self.bytes_received = 0
        self.senders_done = 0

    def collect(self) -> None:
        """Receive until every mapper signalled end-of-stream.

        "Each reducer adopts the MPI_Recv primitive in the wildcard
        reception style to receive messages from any source.  Multiple
        data flows in mappers' partitions are sent to the corresponding
        reducer concurrently, while reducers receive and combine them in
        memory."
        """
        if self._collected:
            return
        merge = self.combiner.merge
        table = self._table
        while self.senders_done < self.num_senders:
            msg = self.comm.recv(source=ANY_SOURCE, tag=MPID_TAG)
            kind = msg[0]
            if kind == _MSG_EOS:
                self.senders_done += 1
            elif kind in (_MSG_DATA, _MSG_ZDATA):
                _, partition, array = msg
                if partition != self.partition:
                    raise RuntimeError(
                        f"partition {partition} array delivered to reducer "
                        f"partition {self.partition}: partitioner/rank map skew"
                    )
                self.arrays_received += 1
                self.bytes_received += len(array)  # wire size (maybe compressed)
                if kind == _MSG_ZDATA:
                    array = zlib.decompress(array)
                for key, state in reverse_realign(array):
                    if key in table:
                        table[key] = merge(table[key], state)
                    else:
                        table[key] = state
            else:
                raise RuntimeError(f"unknown MPI-D message kind {kind!r}")
        self._collected = True

    def _items(self) -> Iterator[tuple[Any, list]]:
        keys = self._table.keys()
        ordered = sorted(keys) if self.config.sort_keys else list(keys)
        for key in ordered:
            values = self.combiner.finalize(self._table[key])
            if self.config.sort_values and isinstance(values, list):
                # Mapper-side realignment sorted each spill; restore the
                # global order across merged spills/mappers.
                values = sorted(values, key=self.config.value_sort_key)
            yield key, values

    def recv(self) -> Optional[tuple[Any, list]]:
        """The ``MPI_D_Recv`` entry: next ``(key, values)``, or None at end.

        The first call blocks until all mappers finished (grouping all of
        a key's values requires the full stream).
        """
        self.collect()
        if self._iter is None:
            self._iter = self._items()
        return next(self._iter, None)

    def __iter__(self) -> Iterator[tuple[Any, list]]:
        while True:
            item = self.recv()
            if item is None:
                return
            yield item
