"""Local combining of same-key values (paper §IV-A).

"In the MPI_D_Send routine, the key-value pair will be local combined by
a combiner ... The combiner commonly gathers pairs of the same key
together, and constructs a key and value list pair.  For instance, the
key-value pairs <K1, V1>, <K1, V1'> will be combined as <K1, {V1, V1'}>.
The aim of combining is to reduce the memory consuming and the
transmission quantity.  Similar to Hadoop ... the combine function can
be user defined and is always assigned as the reduce function."

A combiner is an online fold: per-key *state* accumulates values on the
mapper, states from different mappers *merge* on the reducer, and
``finalize`` produces the value list handed to the user's reduce
function.  The algebra must be associative for the result to be
independent of spill timing and message arrival order — property-tested
in ``tests/core/test_combiner.py``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, Optional, Union


class Combiner(ABC):
    """The fold algebra MPI-D applies between ``MPI_D_Send`` and the wire."""

    @abstractmethod
    def unit(self, value: Any) -> Any:
        """Lift one emitted value into combiner state."""

    @abstractmethod
    def add(self, state: Any, value: Any) -> Any:
        """Fold one more emitted value into existing state."""

    @abstractmethod
    def merge(self, left: Any, right: Any) -> Any:
        """Merge two states (reducer side, across mappers/spills)."""

    @abstractmethod
    def finalize(self, state: Any) -> list:
        """State -> the value list the user's reduce function receives."""


class GroupingCombiner(Combiner):
    """The default: gather values of one key into a list (no data loss).

    ``<K,V>, <K,V'>  ->  <K, [V, V']>`` — exactly the paper's example.
    """

    def unit(self, value: Any) -> list:
        return [value]

    def add(self, state: list, value: Any) -> list:
        state.append(value)
        return state

    def merge(self, left: list, right: list) -> list:
        if not isinstance(left, list) or not isinstance(right, list):
            raise TypeError(
                "grouping combiner received non-list state — the reducer "
                "context must be configured with the same combiner as the "
                "mappers (both sides of an MPI-D job share one combiner)"
            )
        left.extend(right)
        return left

    def finalize(self, state: list) -> list:
        return state


class ReducingCombiner(Combiner):
    """Fold with a user's associative binary function ("always assigned
    as the reduce function"): state is a single combined value and the
    reducer receives a one-element list."""

    def __init__(self, fn: Callable[[Any, Any], Any]):
        if not callable(fn):
            raise TypeError(f"combiner function must be callable, got {fn!r}")
        self.fn = fn

    def unit(self, value: Any) -> Any:
        return value

    def add(self, state: Any, value: Any) -> Any:
        return self.fn(state, value)

    def merge(self, left: Any, right: Any) -> Any:
        return self.fn(left, right)

    def finalize(self, state: Any) -> list:
        return [state]


class SummingCombiner(ReducingCombiner):
    """The WordCount combiner: per-key partial sums."""

    def __init__(self) -> None:
        super().__init__(lambda a, b: a + b)


def make_combiner(
    spec: Optional[Union[Combiner, Callable[[Any, Any], Any]]],
) -> Combiner:
    """Normalize a user combiner spec.

    ``None`` -> grouping (Hadoop's no-combiner behaviour), a callable ->
    :class:`ReducingCombiner`, a :class:`Combiner` -> itself.
    """
    if spec is None:
        return GroupingCombiner()
    if isinstance(spec, Combiner):
        return spec
    if callable(spec):
        return ReducingCombiner(spec)
    raise TypeError(f"cannot make a combiner from {spec!r}")
