"""Iterative MapReduce on MPI-D.

The paper's related work singles out Twister, "a runtime for iterative
MapReduce", as the other direction data-intensive runtimes were taking
in 2011.  MPI-D composes naturally into iteration: each round is one
``run_job`` whose output becomes the next round's input.  This module
provides the driver loop with a convergence predicate — the pattern
PageRank/k-means examples use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

from repro.core.job import JobResult, MapReduceJob, run_job

NextInputs = Callable[[JobResult], Sequence[Any]]
Converged = Callable[[JobResult, Optional[JobResult]], bool]


@dataclass
class IterativeResult:
    """Outcome of an iterative run."""

    final: JobResult
    rounds: int
    converged: bool
    history: list[JobResult]


def run_iterative_job(
    job: MapReduceJob,
    inputs: Sequence[Any],
    max_rounds: int = 20,
    next_inputs: Optional[NextInputs] = None,
    converged: Optional[Converged] = None,
    keep_history: bool = False,
    progress_timeout: float = 30.0,
) -> IterativeResult:
    """Run ``job`` repeatedly, feeding each round's output forward.

    ``next_inputs(result)`` maps a finished round to the next round's
    records (default: the output pairs as-is).  ``converged(result,
    previous)`` stops the loop early; with none given, all
    ``max_rounds`` run.  ``keep_history`` retains every round's
    :class:`JobResult` (memory-proportional to rounds).
    """
    if max_rounds < 1:
        raise ValueError(f"need at least one round, got {max_rounds}")
    current: Sequence[Any] = inputs
    previous: Optional[JobResult] = None
    history: list[JobResult] = []
    result: Optional[JobResult] = None
    rounds = 0
    was_converged = False
    for _ in range(max_rounds):
        result = run_job(job, inputs=current, progress_timeout=progress_timeout)
        rounds += 1
        if keep_history:
            history.append(result)
        if converged is not None and converged(result, previous):
            was_converged = True
            break
        previous = result
        current = next_inputs(result) if next_inputs is not None else result.output
    assert result is not None
    return IterativeResult(
        final=result, rounds=rounds, converged=was_converged, history=history
    )


def l1_delta_below(
    tolerance: float, value_of: Callable[[Any], float] = float
) -> Converged:
    """A convergence predicate: sum |v - v_prev| over shared keys < tol.

    Keys present in only one round count their full magnitude — a
    changing key set is not convergence.
    """
    if tolerance <= 0:
        raise ValueError(f"tolerance must be positive, got {tolerance}")

    def check(result: JobResult, previous: Optional[JobResult]) -> bool:
        if previous is None:
            return False
        now = {k: value_of(v) for k, v in result.output}
        before = {k: value_of(v) for k, v in previous.output}
        delta = 0.0
        for key in now.keys() | before.keys():
            delta += abs(now.get(key, 0.0) - before.get(key, 0.0))
        return delta < tolerance

    return check
