"""Input splitting helpers (the FileInputFormat analogue for lists)."""

from __future__ import annotations

from typing import Any, Callable, Sequence


def split_evenly(records: Sequence[Any], n_splits: int) -> list[list[Any]]:
    """Round-robin split preserving per-split order."""
    if n_splits < 1:
        raise ValueError(f"need at least one split, got {n_splits}")
    splits: list[list[Any]] = [[] for _ in range(n_splits)]
    for i, rec in enumerate(records):
        splits[i % n_splits].append(rec)
    return splits


def split_by_bytes(
    records: Sequence[Any],
    split_bytes: int,
    size_of: Callable[[Any], int] = lambda r: len(r),
) -> list[list[Any]]:
    """Greedy contiguous splits of at most ``split_bytes`` each (a record
    larger than the budget still gets its own split — splits never break
    records, like HDFS never breaks lines across record readers)."""
    if split_bytes < 1:
        raise ValueError(f"split size must be >= 1 byte, got {split_bytes}")
    splits: list[list[Any]] = []
    current: list[Any] = []
    used = 0
    for rec in records:
        size = size_of(rec)
        if current and used + size > split_bytes:
            splits.append(current)
            current, used = [], 0
        current.append(rec)
        used += size
    if current:
        splits.append(current)
    return splits
