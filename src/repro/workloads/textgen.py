"""Zipf-distributed synthetic text for WordCount-style jobs.

Real text has Zipfian word frequencies; that skew is what makes
WordCount's combiner collapse map output by orders of magnitude (the
paper's WordCount profile assumes it), so the generator must reproduce
it rather than emit uniform random words.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import make_rng

_CONSONANTS = "bcdfghjklmnpqrstvwz"
_VOWELS = "aeiou"


def _synth_word(index: int) -> str:
    """Deterministic pronounceable word for vocabulary slot ``index``."""
    chars = []
    n = index + 1
    alphabet = (_CONSONANTS, _VOWELS)
    pos = 0
    while n > 0:
        alpha = alphabet[pos % 2]
        n, rem = divmod(n, len(alpha))
        chars.append(alpha[rem])
        pos += 1
    return "".join(chars)


@dataclass
class ZipfTextGenerator:
    """Lines of space-separated words with Zipf(s) frequencies.

    ``s`` is the Zipf exponent (~1.1 for natural language).  The
    generator is deterministic given ``seed`` and streams lines without
    materializing the whole corpus.
    """

    vocab_size: int = 10_000
    words_per_line: int = 12
    zipf_s: float = 1.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.vocab_size < 1:
            raise ValueError(f"vocab must be >= 1, got {self.vocab_size}")
        if self.words_per_line < 1:
            raise ValueError(
                f"words per line must be >= 1, got {self.words_per_line}"
            )
        if self.zipf_s <= 0:
            raise ValueError(f"Zipf exponent must be positive, got {self.zipf_s}")
        self._vocab = [_synth_word(i) for i in range(self.vocab_size)]
        ranks = np.arange(1, self.vocab_size + 1, dtype=np.float64)
        weights = ranks ** (-self.zipf_s)
        self._probs = weights / weights.sum()
        self._rng = make_rng(self.seed, "zipf-text")

    @property
    def vocabulary(self) -> list[str]:
        return list(self._vocab)

    def line(self) -> str:
        """One line of ``words_per_line`` words."""
        idx = self._rng.choice(self.vocab_size, size=self.words_per_line, p=self._probs)
        return " ".join(self._vocab[i] for i in idx)

    def lines(self, n: int) -> list[str]:
        if n < 0:
            raise ValueError(f"line count may not be negative: {n}")
        return [self.line() for _ in range(n)]

    def approx_bytes_per_line(self) -> float:
        """Expected encoded size of one line (for sizing corpora)."""
        mean_word = float(
            np.dot(self._probs, np.array([len(w) for w in self._vocab]))
        )
        return self.words_per_line * (mean_word + 1.0)


def generate_corpus(
    total_bytes: int,
    vocab_size: int = 10_000,
    words_per_line: int = 12,
    seed: int = 0,
) -> list[str]:
    """A corpus of roughly ``total_bytes`` of text (at least one line)."""
    if total_bytes < 0:
        raise ValueError(f"corpus size may not be negative: {total_bytes}")
    gen = ZipfTextGenerator(
        vocab_size=vocab_size, words_per_line=words_per_line, seed=seed
    )
    out: list[str] = []
    size = 0
    per_line = gen.approx_bytes_per_line()
    n_estimate = max(1, int(total_bytes / per_line))
    for _ in range(n_estimate):
        line = gen.line()
        out.append(line)
        size += len(line) + 1
        if size >= total_bytes:
            break
    return out
