"""The GridMix workload suite as workload profiles.

The paper measures with "the JavaSort benchmark in GridMix"; GridMix is
really a *mix* — the stock suite stresses different parts of the stack:

* **streamSort / javaSort** — identity map/reduce, pure data movement;
* **combiner** — WordCount-like aggregation with heavy map-side combine;
* **monsterQuery** — a three-stage pipeline with shrinking data volumes;
* **webdataScan** — filter: map keeps ~0.2% of its input, trivial reduce;
* **webdataSort** — sort over larger records.

Each entry gives a calibrated :class:`~repro.hadoop.job.WorkloadProfile`
(JVM rates, as elsewhere) so the whole mix runs on both the simulated
Hadoop and the MPI-D system; ``repro.experiments.gridmix`` reports the
suite-wide comparison Figure 6 made for WordCount alone.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hadoop.job import WorkloadProfile
from repro.util.units import MiB


@dataclass(frozen=True)
class GridmixEntry:
    """One suite member: profile + the reducer scaling GridMix uses."""

    name: str
    profile: WorkloadProfile
    #: reduce tasks per map task (GridMix sizes reducers off input splits).
    reducers_per_map: float
    description: str


GRIDMIX_SUITE: tuple[GridmixEntry, ...] = (
    GridmixEntry(
        name="streamSort",
        profile=WorkloadProfile(
            name="streamSort",
            map_cpu_per_byte=1.0 / (18 * MiB),  # streaming adds pipe copies
            map_selectivity=1.0,
            reduce_cpu_per_byte=1.0 / (40 * MiB),
            reduce_selectivity=1.0,
        ),
        reducers_per_map=1.0,
        description="sort via Hadoop streaming (extra pipe/codec cost)",
    ),
    GridmixEntry(
        name="javaSort",
        profile=WorkloadProfile(
            name="javaSort",
            map_cpu_per_byte=1.0 / (25 * MiB),
            map_selectivity=1.0,
            reduce_cpu_per_byte=1.0 / (50 * MiB),
            reduce_selectivity=1.0,
        ),
        reducers_per_map=1.0,
        description="the paper's benchmark: identity map/reduce in Java",
    ),
    GridmixEntry(
        name="combiner",
        profile=WorkloadProfile(
            name="combiner",
            map_cpu_per_byte=1.0 / (4 * MiB),
            map_selectivity=1.2,
            reduce_cpu_per_byte=1.0 / (25 * MiB),
            reduce_selectivity=0.8,
            combiner_reduction=0.05,
        ),
        reducers_per_map=0.25,
        description="WordCount-class aggregation, combiner collapses output",
    ),
    GridmixEntry(
        name="monsterQuery",
        profile=WorkloadProfile(
            name="monsterQuery",
            map_cpu_per_byte=1.0 / (8 * MiB),
            map_selectivity=0.3,
            reduce_cpu_per_byte=1.0 / (15 * MiB),
            reduce_selectivity=0.3,
        ),
        reducers_per_map=0.5,
        description="query pipeline stage: selective map, shrinking data",
    ),
    GridmixEntry(
        name="webdataScan",
        profile=WorkloadProfile(
            name="webdataScan",
            map_cpu_per_byte=1.0 / (30 * MiB),
            map_selectivity=0.002,
            reduce_cpu_per_byte=1.0 / (30 * MiB),
            reduce_selectivity=1.0,
        ),
        reducers_per_map=0.1,
        description="filter: keep ~0.2% of the input",
    ),
    GridmixEntry(
        name="webdataSort",
        profile=WorkloadProfile(
            name="webdataSort",
            map_cpu_per_byte=1.0 / (20 * MiB),
            map_selectivity=1.0,
            reduce_cpu_per_byte=1.0 / (40 * MiB),
            reduce_selectivity=1.0,
        ),
        reducers_per_map=1.0,
        description="sort over large web-data records",
    ),
)


def suite_by_name() -> dict[str, GridmixEntry]:
    return {entry.name: entry for entry in GRIDMIX_SUITE}
