"""GridMix JavaSort-style records.

GridMix's sort benchmark processes fixed-layout binary records — a
random key and an opaque value (the classic 10/90 byte TeraSort shape).
Keys are uniform random bytes, so a hash partitioner balances reducers
and a sort benchmark exercises the full shuffle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.util.rng import make_rng


@dataclass
class SortRecordGenerator:
    """Deterministic stream of ``(key, value)`` byte records."""

    key_bytes: int = 10
    value_bytes: int = 90
    seed: int = 0

    def __post_init__(self) -> None:
        if self.key_bytes < 1:
            raise ValueError(f"key size must be >= 1, got {self.key_bytes}")
        if self.value_bytes < 0:
            raise ValueError(f"value size may not be negative: {self.value_bytes}")
        self._rng = make_rng(self.seed, "gridmix")

    @property
    def record_bytes(self) -> int:
        return self.key_bytes + self.value_bytes

    def records(self, n: int) -> Iterator[tuple[bytes, bytes]]:
        """Yield ``n`` records."""
        if n < 0:
            raise ValueError(f"record count may not be negative: {n}")
        for _ in range(n):
            blob = self._rng.integers(
                0, 256, size=self.record_bytes, dtype="uint8"
            ).tobytes()
            yield blob[: self.key_bytes], blob[self.key_bytes :]

    def records_for_bytes(self, total_bytes: int) -> Iterator[tuple[bytes, bytes]]:
        """Records summing to at least ``total_bytes`` (ceil division)."""
        if total_bytes < 0:
            raise ValueError(f"size may not be negative: {total_bytes}")
        n = -(-total_bytes // self.record_bytes)
        return self.records(n)


def generate_sort_records(
    n: int, key_bytes: int = 10, value_bytes: int = 90, seed: int = 0
) -> list[tuple[bytes, bytes]]:
    """Materialize ``n`` sort records."""
    gen = SortRecordGenerator(key_bytes=key_bytes, value_bytes=value_bytes, seed=seed)
    return list(gen.records(n))
