"""Workload generators: synthetic corpora and GridMix-style records.

The paper's experiments consume two inputs we cannot download: GridMix's
JavaSort records and bulk text for WordCount.  These generators produce
deterministic synthetic equivalents: Zipf-distributed text (word
frequencies in real corpora are Zipfian, which drives combiner
effectiveness) and fixed-layout sort records.
"""

from repro.workloads.textgen import ZipfTextGenerator, generate_corpus
from repro.workloads.gridmix import SortRecordGenerator, generate_sort_records
from repro.workloads.gridmix_suite import GRIDMIX_SUITE, GridmixEntry, suite_by_name
from repro.workloads.splits import split_evenly, split_by_bytes

__all__ = [
    "ZipfTextGenerator",
    "generate_corpus",
    "SortRecordGenerator",
    "generate_sort_records",
    "GRIDMIX_SUITE",
    "GridmixEntry",
    "suite_by_name",
    "split_evenly",
    "split_by_bytes",
]
