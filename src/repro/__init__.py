"""Reproduction of *Can MPI Benefit Hadoop and MapReduce Applications?* (ICPP 2011).

The package is organised in two execution planes:

* the **functional plane** — :mod:`repro.mplib` (an in-process MPI-like
  message-passing runtime) and :mod:`repro.core` (the paper's MPI-D
  key-value extension) execute real MapReduce jobs and produce real
  answers;
* the **performance plane** — :mod:`repro.simnet` (a discrete-event
  simulation kernel plus a GigE cluster model), :mod:`repro.transports`
  (calibrated cost models of Hadoop RPC, HTTP-over-Jetty and MPICH2),
  :mod:`repro.hadoop` (a simulated Hadoop 0.20.2) and :mod:`repro.mrmpi`
  (the paper's MapReduce-on-MPI-D simulation system) regenerate every
  table and figure in the paper's evaluation.

Quickstart::

    from repro.core import MapReduceJob, run_job

    job = MapReduceJob(
        mapper=lambda k, v, emit: [emit(w, 1) for w in v.split()],
        reducer=lambda k, vs, emit: emit(k, sum(vs)),
        num_mappers=4, num_reducers=2,
    )
    counts = run_job(job, inputs=["a b a", "b c"]).as_dict()
    # {'a': 2, 'b': 2, 'c': 1}

Run ``python -m repro`` for the full experiment index.
"""

from repro._version import __version__

__all__ = ["__version__"]
