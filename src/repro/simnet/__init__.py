"""Discrete-event simulation substrate: kernel, resources, network, cluster.

This package replaces the paper's physical testbed (8 nodes, dual
quad-core Xeon E5620, Gigabit Ethernet switch) with a simulated one:

* :mod:`repro.simnet.kernel` — a from-scratch generator-based DES kernel
  (events, processes, timeouts, composition);
* :mod:`repro.simnet.resources` — slot pools, token-rate devices (disks),
  stores;
* :mod:`repro.simnet.network` — links with fair-share bandwidth and a
  store-and-forward switch;
* :mod:`repro.simnet.cluster` — node/cluster builders, including
  :func:`paper_cluster`, the paper's testbed as the default.
"""

from repro.simnet.kernel import (
    Simulator,
    Process,
    Event,
    Timeout,
    AllOf,
    AnyOf,
    Interrupt,
    SimError,
)
from repro.simnet.profiler import SelfProfiler, deterministic_view
from repro.simnet.resources import SlotPool, RateDevice, Store
from repro.simnet.network import Link, Network, Flow, FlowFailed, use_solver
from repro.simnet.cluster import Node, Cluster, ClusterSpec, paper_cluster
from repro.simnet.faults import (
    FaultPlan,
    FaultInjector,
    NodeCrash,
    CrashRate,
    DiskDegradation,
    LinkDegradation,
    Straggler,
    LinkFlap,
    NetworkPartition,
    FlowLossRate,
)

__all__ = [
    "Simulator",
    "Process",
    "Event",
    "Timeout",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimError",
    "SelfProfiler",
    "deterministic_view",
    "SlotPool",
    "RateDevice",
    "Store",
    "Link",
    "Network",
    "Flow",
    "FlowFailed",
    "use_solver",
    "Node",
    "Cluster",
    "ClusterSpec",
    "paper_cluster",
    "FaultPlan",
    "FaultInjector",
    "NodeCrash",
    "CrashRate",
    "DiskDegradation",
    "LinkDegradation",
    "Straggler",
    "LinkFlap",
    "NetworkPartition",
    "FlowLossRate",
]
