"""Wall-clock self-profiler for the simulation kernel.

``BENCH_scalability`` showed heartbeat dispatch dominating the 1000-node
runs, but only as a guess from event counts — nothing attributed *host*
time to event categories.  :class:`SelfProfiler` closes that gap: when
attached to a :class:`~repro.simnet.kernel.Simulator` it bins the wall
time of every dispatched event by what the event was for (heartbeat,
flow, scheduler, task, timer-wheel bookkeeping, everything-else kernel
work), so "heartbeats dominate" becomes a measured breakdown future
perf PRs can gate on.

Two properties the bench harness depends on:

* **zero cost when off** — the profiler is a single ``is not None``
  test at the top of ``Simulator.run()``; with no profiler attached the
  kernel's hot loops are byte-for-byte the pre-profiler code paths, so
  timed bench legs are unpolluted.
* **deterministic event counts** — the per-bin ``events`` counters
  depend only on the simulation (same seed → same counts);
  ``deterministic_view`` strips the wall-clock fields so same-seed
  double runs diff byte-identical.

The clock is injectable (tests pass a fake counter) and defaults to
:func:`time.perf_counter`.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

#: Attribution bins, in report order.  ``timer-wheel`` is pop/peek
#: bookkeeping (only nonzero when the slotted wheel is configured);
#: ``kernel`` is pure-heap pop overhead plus anything unclassified.
BINS = ("heartbeat", "flow", "scheduler", "task", "timer-wheel", "kernel")

#: Ordered substring rules mapping an event label to a bin.  First hit
#: wins, so the specific task/tracker names come before the broad
#: class-name rules.  Labels are derived by the kernel from the event's
#: first callback: ``ClassName.method`` for bound methods, the process
#: name for process resumptions, ``__qualname__`` for plain functions.
_RULES: tuple[tuple[str, str], ...] = (
    # Heartbeat machinery: tasktracker heartbeat loops + expiry sweeps.
    ("tracker", "heartbeat"),
    ("heartbeat", "heartbeat"),
    ("expiry", "heartbeat"),
    # Task execution: map/reduce attempt processes ("map3", "red0").
    ("map", "task"),
    ("red", "task"),
    ("merge", "task"),
    ("spill", "task"),
    # Scheduler: dispatch loops, arrivals, preemption, job monitors.
    ("sched", "scheduler"),
    ("dispatch", "scheduler"),
    ("arrival", "scheduler"),
    ("submit", "scheduler"),
    ("rebalance", "scheduler"),
    ("preempt", "scheduler"),
    ("monitor", "scheduler"),
    ("sweep", "scheduler"),
    ("job", "scheduler"),
    ("engine", "scheduler"),
    # Flow/transport: the network fluid solver and rate devices.
    ("network", "flow"),
    ("flow", "flow"),
    ("link", "flow"),
    ("ratedevice", "flow"),
    ("slotpool", "flow"),
    ("store", "flow"),
    ("flush", "flow"),
    ("jetty", "flow"),
    ("fetch", "flow"),
    ("stream", "flow"),
    ("transport", "flow"),
)


def categorize(label: str) -> str:
    """Map an event label to one of :data:`BINS` (default ``kernel``)."""
    low = label.lower()
    for needle, bin_name in _RULES:
        if needle in low:
            return bin_name
    return "kernel"


class SelfProfiler:
    """Accumulates per-bin event counts and wall seconds.

    Attach with :meth:`Simulator.attach_profiler`; read back with
    :meth:`snapshot`.  One profiler may span several ``run()`` calls
    (and several simulators sequentially) — bins accumulate.
    """

    __slots__ = ("clock", "leg", "bins", "_label_cache")

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        leg: str = "",
    ) -> None:
        self.clock: Callable[[], float] = clock or time.perf_counter
        #: Free-form tag for which engine/solver leg this run used
        #: (e.g. ``"reference"`` / ``"vectorized"``); carried into the
        #: snapshot so bench exports can group breakdowns per leg.
        self.leg = leg
        #: bin -> [events, wall_seconds]
        self.bins: dict[str, list] = {b: [0, 0.0] for b in BINS}
        #: label -> bin memo; dispatch labels repeat heavily.
        self._label_cache: dict[str, str] = {}

    def record(self, label: str, seconds: float) -> None:
        bin_name = self._label_cache.get(label)
        if bin_name is None:
            bin_name = categorize(label)
            self._label_cache[label] = bin_name
        cell = self.bins[bin_name]
        cell[0] += 1
        cell[1] += seconds

    def record_overhead(self, bin_name: str, seconds: float) -> None:
        """Pop/peek bookkeeping time (no event dispatched)."""
        self.bins[bin_name][1] += seconds

    def snapshot(self) -> dict:
        """Full breakdown, wall-clock fields included."""
        bins = {
            name: {"events": cell[0], "wall_seconds": cell[1]}
            for name, cell in self.bins.items()
        }
        total_events = sum(cell[0] for cell in self.bins.values())
        total_wall = sum(cell[1] for cell in self.bins.values())
        return {
            "leg": self.leg,
            "bins": bins,
            "total": {"events": total_events, "wall_seconds": total_wall},
        }


def deterministic_view(profile: dict) -> dict:
    """A snapshot with every wall-clock field stripped.

    Event counts per bin depend only on the simulation, so this view is
    byte-identical across same-seed runs — it is what CI diffs.
    Accepts either a single :meth:`SelfProfiler.snapshot` dict or any
    nested structure of them (dicts/lists are walked recursively and
    keys ending in ``wall_seconds`` are dropped).
    """
    if isinstance(profile, dict):
        return {
            k: deterministic_view(v)
            for k, v in profile.items()
            if not k.endswith("wall_seconds")
        }
    if isinstance(profile, list):
        return [deterministic_view(v) for v in profile]
    return profile
