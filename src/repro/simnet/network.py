"""Flow-level network model with max-min fair bandwidth sharing.

The paper's testbed is 8 nodes on one Gigabit Ethernet switch.  We model
it at *flow* granularity (the standard flow-level abstraction used by
SimGrid-style simulators): a :class:`Flow` is a transfer of N bytes from
one node to another, its path is the sender's uplink plus the receiver's
downlink, and whenever the set of active flows changes the
:class:`Network` recomputes a **max-min fair** allocation by progressive
filling over all links.  This captures exactly the contention pattern
that makes Hadoop's copy stage slow in Figure 1: many reducers pulling
from many mappers saturate node downlinks.

Latency is charged once per flow (propagation + protocol setup, supplied
by the caller) before the bytes begin to flow.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.simnet.kernel import Event, Simulator


class FlowFailed(RuntimeError):
    """Raised in processes waiting on a flow that was killed in flight.

    Carries the :class:`Flow` and a short reason string (``"loss:..."``,
    ``"link-down:..."``, ``"partitioned"``, ``"fetch-timeout"`` ...) so
    retry layers can distinguish loss from cancellation they requested.
    """

    def __init__(self, flow: "Flow", reason: str):
        super().__init__(f"flow #{flow.seq} failed: {reason}")
        self.flow = flow
        self.reason = reason


class Link:
    """A unidirectional link with a fixed capacity in bytes/second."""

    __slots__ = ("name", "capacity", "_flows", "bytes_carried", "busy_time", "up")

    def __init__(self, name: str, capacity: float):
        if capacity <= 0:
            raise ValueError(f"link capacity must be positive, got {capacity}")
        self.name = name
        self.capacity = float(capacity)
        self._flows: set["Flow"] = set()
        self.bytes_carried = 0.0
        self.busy_time = 0.0
        self.up = True

    @property
    def active_flows(self) -> int:
        return len(self._flows)

    def utilization(self, elapsed: float) -> float:
        """Carried bytes over what the link could have carried in ``elapsed``."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.bytes_carried / (self.capacity * elapsed))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Link {self.name} {self.capacity:.3g} B/s, {len(self._flows)} flows>"


class Flow:
    """One transfer in flight: remaining bytes, current fair rate, done event."""

    __slots__ = (
        "network",
        "path",
        "remaining",
        "rate",
        "rate_cap",
        "done",
        "nbytes",
        "started_at",
        "seq",
        "sid",
    )

    def __init__(
        self,
        network: "Network",
        path: tuple[Link, ...],
        nbytes: float,
        rate_cap: float = float("inf"),
    ):
        self.network = network
        self.path = path
        self.nbytes = float(nbytes)
        self.remaining = float(nbytes)
        self.rate = 0.0
        self.rate_cap = float(rate_cap)
        self.done: Event = network.sim.event()
        self.started_at = network.sim.now
        self.seq = network._next_seq()
        self.sid = 0  # tracer span id once the flow starts (0 = untraced)


class Network:
    """The set of links plus the active-flow bookkeeping.

    ``transfer(path, nbytes, latency)`` returns an event that fires when
    the last byte arrives.  Rates are recomputed on every flow arrival and
    departure with the progressive-filling algorithm:

    1. all flows unfrozen, all link capacities residual;
    2. the link with the smallest ``residual / unfrozen_flow_count`` is the
       bottleneck — freeze its flows at that share;
    3. subtract, repeat until every flow is frozen.
    """

    _EPS = 1e-9

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._links: dict[str, Link] = {}
        self._flows: set[Flow] = set()
        self._last_t = 0.0
        self._timer_token = 0
        self._flow_seq = 0
        self.bytes_delivered = 0.0
        #: Partition map: link -> group id.  Links in different groups
        #: cannot appear on the same path; empty dict = no partition.
        self._link_group: dict[Link, int] = {}
        self.flows_failed = 0
        self.flows_cancelled = 0
        self.first_flow_failure_at: Optional[float] = None

    def _next_seq(self) -> int:
        self._flow_seq += 1
        return self._flow_seq

    # -- topology -------------------------------------------------------------
    def add_link(self, name: str, capacity: float) -> Link:
        if name in self._links:
            raise ValueError(f"duplicate link name {name!r}")
        link = Link(name, capacity)
        self._links[name] = link
        return link

    def link(self, name: str) -> Link:
        return self._links[name]

    def set_link_capacity(self, link: Link, capacity: float) -> None:
        """Change one link's capacity mid-simulation (fault injection).

        In-flight flows keep the bytes they have already moved; the
        max-min allocation is recomputed at the new capacity and stale
        completion timers are superseded by the token bump.
        """
        if capacity <= 0:
            raise ValueError(f"link capacity must be positive, got {capacity}")
        self._advance()
        link.capacity = float(capacity)
        self._reallocate()

    # -- transfers --------------------------------------------------------------
    def transfer(
        self,
        path: Iterable[Link],
        nbytes: float,
        latency: float = 0.0,
        rate_cap: float = float("inf"),
    ) -> Event:
        """Move ``nbytes`` along ``path`` after ``latency``; returns the done event.

        A zero-byte transfer still pays the latency (a ping is not free).
        An empty path models a node-local transfer: only latency is
        charged.  ``rate_cap`` bounds this flow below link speed — the
        knob protocol-bound transports (Hadoop RPC) use.
        """
        return self.transfer_flow(path, nbytes, latency=latency, rate_cap=rate_cap).done

    def transfer_flow(
        self,
        path: Iterable[Link],
        nbytes: float,
        latency: float = 0.0,
        rate_cap: float = float("inf"),
    ) -> Flow:
        """Like :meth:`transfer` but returns the :class:`Flow` itself.

        Callers that need the handle — to :meth:`cancel_flow` on a fetch
        timeout, or to be a fault injector's victim — use this; everyone
        else keeps the event-only :meth:`transfer`.
        """
        path_t = tuple(path)
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        if latency < 0:
            raise ValueError(f"negative latency: {latency}")
        if rate_cap <= 0:
            raise ValueError(f"rate cap must be positive: {rate_cap}")
        flow = Flow(self, path_t, nbytes, rate_cap=rate_cap)
        if latency > 0:
            start = self.sim.timeout(latency)
            start.callbacks.append(lambda ev: self._start_flow(flow))
        else:
            self._start_flow(flow)
        return flow

    # -- failing flows -----------------------------------------------------------
    def fail_flow(self, flow: Flow, reason: str = "lost") -> bool:
        """Kill an in-flight flow: waiters get :class:`FlowFailed`.

        The flow leaves every link it occupied and the max-min shares
        recompute immediately.  Returns False (no-op) when the flow had
        already finished — fault injection racing a completion is not an
        error.  The failure is pre-defused: a killed flow nobody waits on
        must not crash ``run()``, the *waiters* are who must cope.
        """
        return self._kill_flow(flow, reason, cancelled=False)

    def cancel_flow(self, flow: Flow, reason: str = "cancelled") -> bool:
        """Same mechanics as :meth:`fail_flow` but requested by the caller
        (fetch timeout, task abort) rather than inflicted by a fault —
        kept out of the loss counters."""
        return self._kill_flow(flow, reason, cancelled=True)

    def _kill_flow(self, flow: Flow, reason: str, cancelled: bool) -> bool:
        if flow.done.triggered:
            return False
        started = flow in self._flows
        if started:
            self._advance()
            self._flows.discard(flow)
            for link in flow.path:
                link._flows.discard(flow)
        if cancelled:
            self.flows_cancelled += 1
        else:
            self.flows_failed += 1
            if self.first_flow_failure_at is None:
                self.first_flow_failure_at = self.sim.now
        if flow.sid:
            obs = self.sim.obs
            obs.tracer.abort(flow.sid, outcome=f"failed:{reason}")
            obs.metrics.counter(
                "net.flows_cancelled" if cancelled else "net.flows_failed"
            ).add()
            for link in flow.path:
                obs.metrics.histogram(f"net.link.{link.name}.flows").add(-1)
            flow.sid = 0
        flow.done.fail(FlowFailed(flow, reason))
        flow.done.defuse()
        if started:
            self._reallocate()
        return True

    # -- link state / partitions ---------------------------------------------------
    def set_link_down(self, link: Link) -> None:
        """Take a link down: every flow crossing it dies (FlowFailed) and
        new flows over it fail at start until :meth:`set_link_up`."""
        if not link.up:
            return
        link.up = False
        for flow in sorted(link._flows, key=lambda f: f.seq):
            self._kill_flow(flow, f"link-down:{link.name}", cancelled=False)

    def set_link_up(self, link: Link) -> None:
        link.up = True

    def set_partition(self, groups: dict[Link, int]) -> None:
        """Install a network partition described as a link -> group map.

        Flows whose path spans two groups die immediately; new cross-group
        flows fail at start.  A later call replaces the whole map (the
        model supports one partition at a time); :meth:`clear_partition`
        heals it.
        """
        self._link_group = dict(groups)
        for flow in sorted(self._flows, key=lambda f: f.seq):
            if self._spans_partition(flow.path):
                self._kill_flow(flow, "partitioned", cancelled=False)

    def clear_partition(self) -> None:
        self._link_group = {}

    def flows_on(self, link: Link) -> list[Flow]:
        """Active flows crossing ``link`` in deterministic (start) order."""
        return sorted(link._flows, key=lambda f: f.seq)

    def _spans_partition(self, path: tuple[Link, ...]) -> bool:
        if not self._link_group:
            return False
        seen: set[int] = set()
        for link in path:
            group = self._link_group.get(link)
            if group is not None:
                seen.add(group)
        return len(seen) > 1

    def _blocked(self, path: tuple[Link, ...]) -> Optional[str]:
        for link in path:
            if not link.up:
                return f"link-down:{link.name}"
        if self._spans_partition(path):
            return "partitioned"
        return None

    # -- internals ----------------------------------------------------------------
    def _start_flow(self, flow: Flow) -> None:
        if flow.done.triggered:
            # Killed while paying latency (link flap, cancel): nothing to start.
            return
        if flow.path:
            reason = self._blocked(flow.path)
            if reason is not None:
                self._kill_flow(flow, reason, cancelled=False)
                return
        if flow.remaining <= self._EPS:
            self.bytes_delivered += flow.nbytes
            flow.done.succeed(flow.nbytes)
            return
        if not flow.path:
            # Node-local: no shared links, but a finite protocol cap
            # still takes time.
            if flow.rate_cap == float("inf"):
                self.bytes_delivered += flow.nbytes
                flow.done.succeed(flow.nbytes)
            else:
                timer = self.sim.timeout(flow.remaining / flow.rate_cap)

                def finish_local(ev, flow=flow):
                    self.bytes_delivered += flow.nbytes
                    flow.done.succeed(flow.nbytes)

                timer.callbacks.append(finish_local)
            return
        self._advance()
        self._flows.add(flow)
        for link in flow.path:
            link._flows.add(flow)
        obs = self.sim.obs
        if obs.enabled:
            route = "->".join(link.name for link in flow.path)
            flow.sid = obs.tracer.begin(
                "net", f"xfer {route}", nbytes=flow.nbytes
            )
            for link in flow.path:
                obs.metrics.histogram(f"net.link.{link.name}.flows").add(1)
        self._reallocate()

    def _advance(self) -> None:
        now = self.sim.now
        dt = now - self._last_t
        self._last_t = now
        if dt <= 0:
            return
        busy: set[Link] = set()
        for flow in self._flows:
            moved = flow.rate * dt
            flow.remaining -= moved
            for link in flow.path:
                link.bytes_carried += moved
                busy.add(link)
        for link in busy:
            link.busy_time += dt

    def _finish(self, flow: Flow) -> None:
        self._flows.discard(flow)
        for link in flow.path:
            link._flows.discard(flow)
        self.bytes_delivered += flow.nbytes
        if flow.sid:
            obs = self.sim.obs
            obs.tracer.end(flow.sid)
            obs.metrics.counter("net.bytes_delivered").add(flow.nbytes)
            for link in flow.path:
                obs.metrics.histogram(f"net.link.{link.name}.flows").add(-1)
                obs.metrics.counter(f"net.link.{link.name}.bytes").add(flow.nbytes)
        flow.done.succeed(flow.nbytes)

    def _reallocate(self) -> None:
        self._timer_token += 1
        token = self._timer_token

        # Deterministic completion order for simultaneous finishes: flows
        # complete in start order, never in set-iteration order.
        finished = sorted(
            (f for f in self._flows if f.remaining <= self._EPS),
            key=lambda f: f.seq,
        )
        for flow in finished:
            self._finish(flow)
        if not self._flows:
            return

        self._maxmin_rates()

        next_done = min(
            (f.remaining / f.rate for f in self._flows if f.rate > 0),
            default=None,
        )
        if next_done is None:
            # No flow can make progress: every active flow crosses a link with
            # zero residual capacity, which progressive filling cannot produce
            # with positive link capacities.  Guard anyway.
            raise RuntimeError("network allocation produced starved flows")
        # Pin the flows this timer finishes: float rounding can leave a
        # residual below the clock's resolution, which would otherwise
        # respawn zero-length timers forever.
        targets = [
            f
            for f in self._flows
            if f.rate > 0 and f.remaining / f.rate <= next_done * (1 + 1e-9)
        ]
        timer = self.sim.timeout(next_done)
        timer.callbacks.append(lambda ev: self._on_timer(token, targets))

    def _on_timer(self, token: int, targets: list[Flow]) -> None:
        if token != self._timer_token:
            return
        self._advance()
        for flow in targets:
            flow.remaining = 0.0
        self._reallocate()

    def _maxmin_rates(self) -> None:
        """Progressive filling over all links touched by active flows.

        Per-flow rate caps participate as virtual bottlenecks: whenever
        the smallest unfrozen cap is tighter than the tightest link
        share, that flow freezes at its cap (releasing link capacity to
        the others) — the standard capped max-min extension.
        """
        unfrozen: set[Flow] = set(self._flows)
        residual: dict[Link, float] = {}
        for flow in self._flows:
            flow.rate = 0.0
            for link in flow.path:
                residual.setdefault(link, link.capacity)

        while unfrozen:
            # Bottleneck link: smallest per-flow fair share among links that
            # still carry unfrozen flows.
            best_link: Optional[Link] = None
            best_share = float("inf")
            # Sort by name so epsilon-ties resolve the same way every run.
            for link in sorted(residual, key=lambda l: l.name):
                n = sum(1 for f in link._flows if f in unfrozen)
                if n == 0:
                    continue
                share = residual[link] / n
                if share < best_share - self._EPS:
                    best_share = share
                    best_link = link
            # Tightest protocol cap among unfrozen flows.
            capped = min(unfrozen, key=lambda f: (f.rate_cap, f.seq))
            if capped.rate_cap < best_share:
                rate = capped.rate_cap
                capped.rate = rate
                unfrozen.discard(capped)
                for link in capped.path:
                    residual[link] = max(0.0, residual[link] - rate)
                continue
            if best_link is None:
                # Remaining flows traverse no constrained link (shouldn't
                # happen for non-empty paths); cap-bound or effectively
                # infinite.
                for flow in unfrozen:
                    flow.rate = min(flow.rate_cap, 1e18)
                break
            froze = [f for f in best_link._flows if f in unfrozen]
            for flow in froze:
                flow.rate = best_share
                unfrozen.discard(flow)
                for link in flow.path:
                    residual[link] = max(0.0, residual[link] - best_share)
