"""Flow-level network model with max-min fair bandwidth sharing.

The paper's testbed is 8 nodes on one Gigabit Ethernet switch.  We model
it at *flow* granularity (the standard flow-level abstraction used by
SimGrid-style simulators): a :class:`Flow` is a transfer of N bytes from
one node to another, its path is the sender's uplink plus the receiver's
downlink, and whenever the set of active flows changes the
:class:`Network` recomputes a **max-min fair** allocation by progressive
filling over all links.  This captures exactly the contention pattern
that makes Hadoop's copy stage slow in Figure 1: many reducers pulling
from many mappers saturate node downlinks.

Latency is charged once per flow (propagation + protocol setup, supplied
by the caller) before the bytes begin to flow.

Two solvers produce the allocation:

* ``reference`` — the original full progressive-filling pass over every
  link on every flow arrival/departure (O(links × flows) per event).
* ``fast`` (the default) — an incremental solver that tracks *dirty*
  links, re-solves only the connected component of flows reachable from
  a change, short-circuits the single-bottleneck star case, and batches
  equal-cap freezes.  Progressive filling decomposes over connected
  components (freezing a flow only alters residuals on its own path), so
  the fast path reproduces the reference shares **bit-for-bit** — an
  equivalence pinned by the property/differential tests in
  ``tests/simnet/test_maxmin_differential.py`` and the golden-export
  tests in ``tests/experiments/test_golden_fastpath.py``.

Pick the solver per network (``Network(sim, solver="reference")``), per
process (the ``REPRO_MAXMIN_SOLVER`` environment variable), or lexically
(:func:`use_solver`).

Orthogonally to the solver, two *engines* advance the flow population
between solves (see :mod:`repro.simnet.engine`):

* ``reference`` — the original scalar loop: per-flow remaining-bytes
  updates and per-flow/per-link byte accounting on every advance.
* ``vectorized`` (default) — horizon batching: remaining/rate vectors
  live in dense numpy arrays; one array op advances every flow to the
  next rate-change epoch, one array scan finds that epoch and the flows
  it finishes, and completion timers come from the kernel's pooled tick
  arena.  Per-link byte/busy accounting is settled lazily (piecewise-
  constant rate sums), which is float-equivalent but not bit-identical —
  link utilization is reporting, not part of the simulated timeline.
  Everything timeline-visible (rates, completion instants, delivered
  bytes, event order) is bit-for-bit identical to the reference engine.

Select with ``Network(sim, engine=...)``, the ``REPRO_FLOW_ENGINE``
environment variable, or :func:`repro.simnet.engine.use_engine`.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from operator import attrgetter
from typing import Iterable, Optional

from repro.simnet import engine as _engine_mod
from repro.simnet.engine import validate_engine
from repro.simnet.kernel import Event, Simulator, Timeout

try:  # pragma: no cover - numpy is part of the baked toolchain
    import numpy as np
except ImportError:  # pragma: no cover - reference engine works without it
    np = None

_SOLVERS = ("fast", "reference")

#: Active-flow count at which the vectorized engine's slot operations
#: switch from plain float loops to whole-array numpy expressions.  The
#: two paths compute the identical elementwise IEEE arithmetic — the
#: threshold only trades numpy's fixed per-call cost against the Python
#: loop's per-element cost, so results are bit-identical wherever it
#: lands (tests pin it to 1 to force the bulk path at small n).
_BULK_N = 64

# Sort keys for the fast solver, hoisted: attrgetter beats a lambda in
# the per-solve sorts and matches the reference's ordering exactly
# (links by name; flows by (rate_cap, seq)).
_LINK_NAME = attrgetter("name")
_CAP_SEQ = attrgetter("rate_cap", "seq")

#: Process-wide default for :class:`Network` instances constructed without
#: an explicit ``solver``.  Overridable via the environment for whole-run
#: A/B comparisons without touching code.
DEFAULT_SOLVER = os.environ.get("REPRO_MAXMIN_SOLVER", "fast")


@contextmanager
def use_solver(solver: str):
    """Run a block with a different default max-min solver.

    The bench harness and the golden differential tests use this to
    re-run whole experiments under the reference solver::

        with use_solver("reference"):
            result = fig6_wordcount.run()
    """
    global DEFAULT_SOLVER
    if solver not in _SOLVERS:
        raise ValueError(f"unknown max-min solver {solver!r} (want one of {_SOLVERS})")
    prev, DEFAULT_SOLVER = DEFAULT_SOLVER, solver
    try:
        yield
    finally:
        DEFAULT_SOLVER = prev


class FlowFailed(RuntimeError):
    """Raised in processes waiting on a flow that was killed in flight.

    Carries the :class:`Flow` and a short reason string (``"loss:..."``,
    ``"link-down:..."``, ``"partitioned"``, ``"fetch-timeout"`` ...) so
    retry layers can distinguish loss from cancellation they requested.
    """

    def __init__(self, flow: "Flow", reason: str):
        super().__init__(f"flow #{flow.seq} failed: {reason}")
        self.flow = flow
        self.reason = reason


class Link:
    """A unidirectional link with a fixed capacity in bytes/second."""

    __slots__ = (
        "name",
        "capacity",
        "_flows",
        "bytes_carried",
        "busy_time",
        "up",
        "_rate_sum",
        "_last_t",
    )

    def __init__(self, name: str, capacity: float):
        if capacity <= 0:
            raise ValueError(f"link capacity must be positive, got {capacity}")
        self.name = name
        self.capacity = float(capacity)
        self._flows: set["Flow"] = set()
        self.bytes_carried = 0.0
        self.busy_time = 0.0
        self.up = True
        # Vectorized-engine lazy accounting: the instant the byte/busy
        # counters were last settled to.  Flow rates are piecewise
        # constant between solves, so the counters only need touching
        # right before a membership or rate change — at which point the
        # aggregate rate is summed on demand from the (still-old) flow
        # rates.
        self._last_t = 0.0

    def _settle(self, now: float) -> None:
        """Bring byte/busy counters up to ``now`` (vectorized engine).

        Must run *before* any of this link's flows change rate or leave:
        the elapsed interval is integrated under the rates still in
        force.
        """
        dt = now - self._last_t
        self._last_t = now
        if dt > 0.0 and self._flows:
            self.busy_time += dt
            self.bytes_carried += sum(f.rate for f in self._flows) * dt

    @property
    def active_flows(self) -> int:
        return len(self._flows)

    def utilization(self, elapsed: float) -> float:
        """Carried bytes over what the link could have carried in ``elapsed``."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.bytes_carried / (self.capacity * elapsed))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Link {self.name} {self.capacity:.3g} B/s, {len(self._flows)} flows>"


class Flow:
    """One transfer in flight: remaining bytes, current fair rate, done event."""

    __slots__ = (
        "network",
        "path",
        "remaining",
        "rate",
        "rate_cap",
        "done",
        "nbytes",
        "started_at",
        "seq",
        "sid",
        "waiter_sid",
        "_local_timer",
        "slot",
    )

    def __init__(
        self,
        network: "Network",
        path: tuple[Link, ...],
        nbytes: float,
        rate_cap: float = float("inf"),
        waiter_sid: int = 0,
    ):
        self.network = network
        self.path = path
        self.nbytes = float(nbytes)
        self.remaining = float(nbytes)
        self.rate = 0.0
        self.rate_cap = float(rate_cap)
        self.done: Event = network.sim.event()
        self.started_at = network.sim.now
        self.seq = network._next_seq()
        self.sid = 0  # tracer span id once the flow starts (0 = untraced)
        #: Span that waits on this flow (0 = unknown); when both sids are
        #: live the tracer records a happens-before edge flow -> waiter.
        self.waiter_sid = waiter_sid
        self._local_timer: Optional[Event] = None  # node-local drain timer
        self.slot = -1  # dense-array slot index (vectorized engine only)


class Network:
    """The set of links plus the active-flow bookkeeping.

    ``transfer(path, nbytes, latency)`` returns an event that fires when
    the last byte arrives.  Rates are recomputed on every flow arrival and
    departure with the progressive-filling algorithm:

    1. all flows unfrozen, all link capacities residual;
    2. the link with the smallest ``residual / unfrozen_flow_count`` is the
       bottleneck — freeze its flows at that share;
    3. subtract, repeat until every flow is frozen.
    """

    _EPS = 1e-9

    def __init__(
        self,
        sim: Simulator,
        solver: Optional[str] = None,
        engine: Optional[str] = None,
    ):
        solver = DEFAULT_SOLVER if solver is None else solver
        if solver not in _SOLVERS:
            raise ValueError(
                f"unknown max-min solver {solver!r} (want one of {_SOLVERS})"
            )
        engine = _engine_mod.DEFAULT_ENGINE if engine is None else engine
        validate_engine(engine)
        self.sim = sim
        self.solver = solver
        self.engine = engine
        self._links: dict[str, Link] = {}
        self._flows: set[Flow] = set()
        self._last_t = 0.0
        self._timer_token = 0
        self._flow_seq = 0
        self.bytes_delivered = 0.0
        #: Partition map: link -> group id.  Links in different groups
        #: cannot appear on the same path; empty dict = no partition.
        self._link_group: dict[Link, int] = {}
        self.flows_failed = 0
        self.flows_cancelled = 0
        self.first_flow_failure_at: Optional[float] = None
        # -- fast-path state ----------------------------------------------------
        #: Links whose flow set or capacity changed since the last solve;
        #: the incremental solver only revisits their connected component.
        self._dirty: set[Link] = set()
        #: The currently pending completion timer; superseded timers are
        #: tombstoned so the kernel skips their dispatch entirely.
        self._pending_timer: Optional[Timeout] = None
        # -- solver effort counters (plain ints: free when obs is off) ----------
        self.rate_recomputes = 0  #: solver invocations that did real work
        self.rate_recompute_flows = 0  #: flows whose rate was re-derived
        self.rate_skips = 0  #: solves skipped because nothing was dirty
        # -- vectorized-engine state (horizon batching) -------------------------
        # Active flows live in dense slots 0..n-1 of the remaining/rate
        # lists; a departing flow is swap-removed (the last slot moves
        # into the hole and its flow's ``slot`` is patched).  Below
        # ``_BULK_N`` active flows the slot ops run as plain float loops
        # (numpy's fixed per-call cost loses at small n); above it they
        # switch to whole-array numpy expressions.  Both paths perform
        # the identical elementwise IEEE arithmetic, so the trajectories
        # are bit-for-bit the same wherever the threshold lands.  The
        # slots are private to this Network — a fresh Network never
        # inherits another's, so arena reuse cannot leak across runs.
        self._vec = engine == "vectorized"
        if self._vec:
            self._vrem: list[float] = []
            self._vrate: list[float] = []
            self._vflows: list[Flow] = []
            # Solve flush: reallocations are deferred to one pooled tick
            # per *instant*, so a burst of same-time joins/leaves (the
            # lockstep-mapper spill storm) costs a single solve.  The
            # intermediate allocations a per-change solve would compute
            # are never observable — no simulated time passes between
            # the changes — and superseded completion timers are
            # tombstoned eagerly by the token bump.
            self._flush_tick: Optional[Event] = None
            self._flush_when = -1.0

    def _next_seq(self) -> int:
        self._flow_seq += 1
        return self._flow_seq

    # -- topology -------------------------------------------------------------
    def add_link(self, name: str, capacity: float) -> Link:
        if name in self._links:
            raise ValueError(f"duplicate link name {name!r}")
        link = Link(name, capacity)
        self._links[name] = link
        return link

    def link(self, name: str) -> Link:
        return self._links[name]

    def set_link_capacity(self, link: Link, capacity: float) -> None:
        """Change one link's capacity mid-simulation (fault injection).

        In-flight flows keep the bytes they have already moved; the
        max-min allocation is recomputed at the new capacity and stale
        completion timers are superseded by the token bump.
        """
        if capacity <= 0:
            raise ValueError(f"link capacity must be positive, got {capacity}")
        self._advance()
        link.capacity = float(capacity)
        self._dirty.add(link)
        self._reallocate()

    # -- transfers --------------------------------------------------------------
    def transfer(
        self,
        path: Iterable[Link],
        nbytes: float,
        latency: float = 0.0,
        rate_cap: float = float("inf"),
        waiter_sid: int = 0,
    ) -> Event:
        """Move ``nbytes`` along ``path`` after ``latency``; returns the done event.

        A zero-byte transfer still pays the latency (a ping is not free).
        An empty path models a node-local transfer: only latency is
        charged.  ``rate_cap`` bounds this flow below link speed — the
        knob protocol-bound transports (Hadoop RPC) use.  ``waiter_sid``
        names the span that will wait on this transfer; the tracer then
        records a flow -> waiter happens-before edge for the DAG builder.
        """
        return self.transfer_flow(
            path, nbytes, latency=latency, rate_cap=rate_cap, waiter_sid=waiter_sid
        ).done

    def transfer_flow(
        self,
        path: Iterable[Link],
        nbytes: float,
        latency: float = 0.0,
        rate_cap: float = float("inf"),
        waiter_sid: int = 0,
    ) -> Flow:
        """Like :meth:`transfer` but returns the :class:`Flow` itself.

        Callers that need the handle — to :meth:`cancel_flow` on a fetch
        timeout, or to be a fault injector's victim — use this; everyone
        else keeps the event-only :meth:`transfer`.
        """
        path_t = tuple(path)
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        if latency < 0:
            raise ValueError(f"negative latency: {latency}")
        if rate_cap <= 0:
            raise ValueError(f"rate cap must be positive: {rate_cap}")
        flow = Flow(self, path_t, nbytes, rate_cap=rate_cap, waiter_sid=waiter_sid)
        if latency > 0:
            if self._vec:
                self.sim.tick(latency, lambda ev: self._start_flow(flow))
            else:
                start = self.sim.timeout(latency)
                start.callbacks.append(lambda ev: self._start_flow(flow))
        else:
            self._start_flow(flow)
        return flow

    # -- failing flows -----------------------------------------------------------
    def fail_flow(self, flow: Flow, reason: str = "lost") -> bool:
        """Kill an in-flight flow: waiters get :class:`FlowFailed`.

        The flow leaves every link it occupied and the max-min shares
        recompute immediately.  Returns False (no-op) when the flow had
        already finished — fault injection racing a completion is not an
        error.  The failure is pre-defused: a killed flow nobody waits on
        must not crash ``run()``, the *waiters* are who must cope.
        """
        return self._kill_flow(flow, reason, cancelled=False)

    def cancel_flow(self, flow: Flow, reason: str = "cancelled") -> bool:
        """Same mechanics as :meth:`fail_flow` but requested by the caller
        (fetch timeout, task abort) rather than inflicted by a fault —
        kept out of the loss counters."""
        return self._kill_flow(flow, reason, cancelled=True)

    def _kill_flow(self, flow: Flow, reason: str, cancelled: bool) -> bool:
        if flow.done.triggered:
            return False
        started = flow in self._flows
        if started:
            self._advance()
            self._flows.discard(flow)
            self._leave_links(flow)
        if flow._local_timer is not None:
            # A node-local drain killed mid-flight: tombstone its timer so
            # it can neither re-trigger the settled done event nor cost a
            # dispatch when its expiry is reached.
            flow._local_timer.cancel()
            flow._local_timer = None
        if cancelled:
            self.flows_cancelled += 1
        else:
            self.flows_failed += 1
            if self.first_flow_failure_at is None:
                self.first_flow_failure_at = self.sim.now
        if flow.sid:
            obs = self.sim.obs
            obs.tracer.abort(flow.sid, outcome=f"failed:{reason}")
            obs.metrics.counter(
                "net.flows_cancelled" if cancelled else "net.flows_failed"
            ).add()
            for link in flow.path:
                obs.metrics.histogram(f"net.link.{link.name}.flows").add(-1)
            flow.sid = 0
        flow.done.fail(FlowFailed(flow, reason))
        flow.done.defuse()
        if started:
            self._reallocate()
        return True

    # -- link state / partitions ---------------------------------------------------
    def set_link_down(self, link: Link) -> None:
        """Take a link down: every flow crossing it dies (FlowFailed) and
        new flows over it fail at start until :meth:`set_link_up`."""
        if not link.up:
            return
        link.up = False
        for flow in sorted(link._flows, key=lambda f: f.seq):
            self._kill_flow(flow, f"link-down:{link.name}", cancelled=False)

    def set_link_up(self, link: Link) -> None:
        link.up = True

    def set_partition(self, groups: dict[Link, int]) -> None:
        """Install a network partition described as a link -> group map.

        Flows whose path spans two groups die immediately; new cross-group
        flows fail at start.  A later call replaces the whole map (the
        model supports one partition at a time); :meth:`clear_partition`
        heals it.
        """
        self._link_group = dict(groups)
        for flow in sorted(self._flows, key=lambda f: f.seq):
            if self._spans_partition(flow.path):
                self._kill_flow(flow, "partitioned", cancelled=False)

    def clear_partition(self) -> None:
        self._link_group = {}

    def flows_on(self, link: Link) -> list[Flow]:
        """Active flows crossing ``link`` in deterministic (start) order."""
        return sorted(link._flows, key=lambda f: f.seq)

    def _spans_partition(self, path: tuple[Link, ...]) -> bool:
        if not self._link_group:
            return False
        seen: set[int] = set()
        for link in path:
            group = self._link_group.get(link)
            if group is not None:
                seen.add(group)
        return len(seen) > 1

    def _blocked(self, path: tuple[Link, ...]) -> Optional[str]:
        for link in path:
            if not link.up:
                return f"link-down:{link.name}"
        if self._spans_partition(path):
            return "partitioned"
        return None

    # -- internals ----------------------------------------------------------------
    def _start_flow(self, flow: Flow) -> None:
        if flow.done.triggered:
            # Killed while paying latency (link flap, cancel): nothing to start.
            return
        if flow.path:
            reason = self._blocked(flow.path)
            if reason is not None:
                self._kill_flow(flow, reason, cancelled=False)
                return
        if flow.remaining <= self._EPS:
            self.bytes_delivered += flow.nbytes
            flow.done.succeed(flow.nbytes)
            return
        if not flow.path:
            # Node-local: no shared links, but a finite protocol cap
            # still takes time.
            if flow.rate_cap == float("inf"):
                self.bytes_delivered += flow.nbytes
                flow.done.succeed(flow.nbytes)
            else:

                def finish_local(ev, flow=flow):
                    if flow.done.triggered:
                        return  # killed mid-drain; the kill settled the event
                    flow._local_timer = None
                    self.bytes_delivered += flow.nbytes
                    flow.done.succeed(flow.nbytes)

                delay = flow.remaining / flow.rate_cap
                if self._vec:
                    flow._local_timer = self.sim.tick(delay, finish_local)
                else:
                    timer = self.sim.timeout(delay)
                    timer.callbacks.append(finish_local)
                    flow._local_timer = timer
            return
        self._advance()
        self._flows.add(flow)
        if self._vec:
            flow.slot = len(self._vflows)
            self._vrem.append(flow.remaining)
            self._vrate.append(0.0)
            self._vflows.append(flow)
            now = self.sim.now
            for link in flow.path:
                if link._last_t != now:
                    link._settle(now)
                link._flows.add(flow)
                self._dirty.add(link)
        else:
            for link in flow.path:
                link._flows.add(flow)
                self._dirty.add(link)
        obs = self.sim.obs
        if obs.enabled:
            route = "->".join(link.name for link in flow.path)
            flow.sid = obs.tracer.begin(
                "net", f"xfer {route}", nbytes=flow.nbytes
            )
            obs.tracer.edge(flow.sid, flow.waiter_sid, "flow")
            for link in flow.path:
                obs.metrics.histogram(f"net.link.{link.name}.flows").add(1)
        self._reallocate()

    def _advance(self) -> None:
        now = self.sim.now
        dt = now - self._last_t
        self._last_t = now
        if dt <= 0:
            return
        if self._vec:
            # Horizon batching: every active flow advances in one pass.
            # ``rem[i] -= rate[i]*dt`` is the same IEEE multiply/subtract
            # whether the pass is the small-n float loop or the bulk
            # numpy expression, so the remaining-bytes trajectories are
            # bit-identical.  Link byte accounting settles lazily at the
            # next rate change.
            rem = self._vrem
            n = len(rem)
            if n:
                if n < _BULK_N or np is None:
                    rate = self._vrate
                    for i in range(n):
                        rem[i] -= rate[i] * dt
                else:
                    r = np.fromiter(rem, dtype=float, count=n)
                    r -= np.fromiter(self._vrate, dtype=float, count=n) * dt
                    self._vrem = r.tolist()
            return
        busy: set[Link] = set()
        for flow in self._flows:
            moved = flow.rate * dt
            flow.remaining -= moved
            for link in flow.path:
                link.bytes_carried += moved
                busy.add(link)
        for link in busy:
            link.busy_time += dt

    # -- vectorized-engine slot bookkeeping ------------------------------------
    def _vec_remove(self, flow: Flow) -> None:
        """Swap-remove ``flow`` from the dense slots, syncing its scalar
        ``remaining`` (observable through the flow handle) on the way out."""
        slot = flow.slot
        rem = self._vrem
        rate = self._vrate
        flows = self._vflows
        last = len(flows) - 1
        flow.remaining = rem[slot]
        if slot != last:
            moved = flows[last]
            rem[slot] = rem[last]
            rate[slot] = rate[last]
            flows[slot] = moved
            moved.slot = slot
        rem.pop()
        rate.pop()
        flows.pop()
        flow.slot = -1

    def _leave_links(self, flow: Flow) -> None:
        """Detach a departing flow from its links (both engines).

        The vectorized path settles each link's lazy byte/busy counters
        before the membership change (the departing flow's rate must
        still be in the sum for the interval it was flowing).
        """
        if self._vec:
            self._vec_remove(flow)
            now = self.sim.now
            for link in flow.path:
                if link._last_t != now:
                    link._settle(now)
                link._flows.discard(flow)
                self._dirty.add(link)
        else:
            for link in flow.path:
                link._flows.discard(flow)
                self._dirty.add(link)

    def _finish(self, flow: Flow) -> None:
        self._flows.discard(flow)
        self._leave_links(flow)
        self.bytes_delivered += flow.nbytes
        if flow.sid:
            obs = self.sim.obs
            obs.tracer.end(flow.sid)
            obs.metrics.counter("net.bytes_delivered").add(flow.nbytes)
            for link in flow.path:
                obs.metrics.histogram(f"net.link.{link.name}.flows").add(-1)
                obs.metrics.counter(f"net.link.{link.name}.bytes").add(flow.nbytes)
        flow.done.succeed(flow.nbytes)

    def _reallocate(self) -> None:
        self._timer_token += 1
        token = self._timer_token
        if self._pending_timer is not None:
            # The pending completion timer is superseded by whatever change
            # brought us here; tombstone it (the token check still guards
            # correctness, the cancel merely spares the kernel a dispatch).
            self._pending_timer.cancel()
            self._pending_timer = None

        if self._vec:
            now = self.sim.now
            ft = self._flush_tick
            if (
                ft is not None
                and self._flush_when == now
                and ft.callbacks is not None
            ):
                return  # a flush is already queued for this instant
            self._flush_when = now
            self._flush_tick = self.sim.tick(0.0, self._flush)
            return

        # Deterministic completion order for simultaneous finishes: flows
        # complete in start order, never in set-iteration order.
        finished = sorted(
            (f for f in self._flows if f.remaining <= self._EPS),
            key=lambda f: f.seq,
        )
        for flow in finished:
            self._finish(flow)
        if not self._flows:
            self._dirty.clear()
            return

        self._maxmin_rates()

        # Single fused pass for the next completion *and* the flows it
        # finishes (same arithmetic as the old min()-then-filter pair).
        next_done = float("inf")
        for f in self._flows:
            if f.rate > 0:
                t = f.remaining / f.rate
                if t < next_done:
                    next_done = t
        if next_done == float("inf"):
            # No flow can make progress: every active flow crosses a link with
            # zero residual capacity, which progressive filling cannot produce
            # with positive link capacities.  Guard anyway.
            raise RuntimeError("network allocation produced starved flows")
        # Pin the flows this timer finishes: float rounding can leave a
        # residual below the clock's resolution, which would otherwise
        # respawn zero-length timers forever.
        limit = next_done * (1 + 1e-9)
        targets = [
            f for f in self._flows if f.rate > 0 and f.remaining / f.rate <= limit
        ]
        timer = self.sim.timeout(next_done)
        timer.callbacks.append(lambda ev: self._on_timer(token, targets))
        self._pending_timer = timer

    def _flush(self, ev: Event) -> None:
        self._flush_tick = None
        self._reallocate_vec(self._timer_token)

    def _settle_pending(self) -> None:
        """Run a queued same-instant solve-flush immediately (test hook).

        The vectorized engine defers the max-min solve to a 0-delay tick
        so same-instant membership churn costs one solve.  Differential
        tests that inspect rates *synchronously* after each op call this
        first: it cancels the pending flush and solves now — the same
        solve the tick would have run later this instant, so timelines
        are unaffected.  No-op on the reference engine and when nothing
        is queued.
        """
        if not self._vec:
            return
        ft = self._flush_tick
        if ft is None or ft.callbacks is None:
            return
        ft.cancel()
        # Clear the handle *before* solving so a follow-up `_reallocate`
        # never dedups against the cancelled tick.
        self._flush_tick = None
        self._reallocate_vec(self._timer_token)

    def _reallocate_vec(self, token: int) -> None:
        """Vectorized half of :meth:`_reallocate`: the finished scan, the
        next-completion horizon and its target set all come from array ops.

        Equivalence with the scalar path: the finished scan compares the
        same remaining values against the same epsilon and completes in
        the same seq order; ``rem/rate`` per slot is the identical IEEE
        division, and min-reduction over the same multiset of floats
        returns the same value, so the completion timer lands on the same
        instant with the same target flows.
        """
        rem = self._vrem
        n = len(rem)
        if n:
            eps = self._EPS
            if n < _BULK_N or np is None:
                finished = [
                    self._vflows[i] for i in range(n) if rem[i] <= eps
                ]
            else:
                done = np.nonzero(
                    np.fromiter(rem, dtype=float, count=n) <= eps
                )[0]
                finished = [self._vflows[i] for i in done]
            if finished:
                if len(finished) > 1:
                    finished.sort(key=lambda f: f.seq)
                for flow in finished:
                    self._finish(flow)
        if not self._flows:
            self._dirty.clear()
            return

        self._maxmin_rates()

        rem = self._vrem
        rate = self._vrate
        n = len(rem)
        inf = float("inf")
        if n < _BULK_N or np is None:
            next_done = inf
            for i in range(n):
                r = rate[i]
                if r > 0.0:
                    t = rem[i] / r
                    if t < next_done:
                        next_done = t
            if next_done == inf:
                raise RuntimeError(
                    "network allocation produced starved flows"
                )
            limit = next_done * (1 + 1e-9)
            target_slots = [
                i
                for i in range(n)
                if rate[i] > 0.0 and rem[i] / rate[i] <= limit
            ]
        else:
            # Rate-0 slots divide to inf and drop out of the min,
            # mirroring the scalar ``if rate > 0`` guard (a finished
            # scan just ran, so every remaining slot has rem > eps — no
            # 0/0 can occur).
            with np.errstate(divide="ignore"):
                q = np.fromiter(rem, dtype=float, count=n) / np.fromiter(
                    rate, dtype=float, count=n
                )
            next_done = float(q.min())
            if next_done == inf:
                raise RuntimeError(
                    "network allocation produced starved flows"
                )
            limit = next_done * (1 + 1e-9)
            target_slots = np.nonzero(q <= limit)[0]
        self._pending_timer = self.sim.tick(
            next_done, lambda ev: self._on_timer_vec(token, target_slots)
        )

    def _on_timer_vec(self, token: int, target_slots) -> None:
        if token != self._timer_token:
            return
        self._pending_timer = None
        self._advance()
        # The token match proves no reallocation ran since this timer was
        # scheduled, so the captured slot indices are still the same flows.
        rem = self._vrem
        for i in target_slots:
            rem[i] = 0.0
        self._reallocate()

    def _on_timer(self, token: int, targets: list[Flow]) -> None:
        if token != self._timer_token:
            return
        self._pending_timer = None
        self._advance()
        for flow in targets:
            flow.remaining = 0.0
        self._reallocate()

    def _sync_rates(self) -> None:
        """Mirror solver-assigned rates into the dense array (vectorized
        engine).  One batch write: flows outside the solved component
        kept their old rate, so rewriting every active slot from the
        authoritative ``flow.rate`` attributes is always correct.
        """
        self._vrate = [f.rate for f in self._vflows]

    def _settle_component(self, flows: Iterable[Flow]) -> None:
        """Settle every link the solver is about to re-rate (vectorized
        engine).  Must run before the solver zeroes any component flow's
        rate — the byte integral needs the rates still in force."""
        now = self.sim.now
        for f in flows:
            for link in f.path:
                if link._last_t != now:
                    link._settle(now)

    def settle_accounting(self) -> None:
        """Bring every link's lazy byte/busy counters up to ``sim.now``.

        No-op on the reference engine (which settles eagerly).  Call
        before reading :attr:`Link.bytes_carried` / :attr:`Link.busy_time`
        or :meth:`Link.utilization` mid-run.
        """
        if self._vec:
            now = self.sim.now
            for link in self._links.values():
                if link._last_t != now:
                    link._settle(now)

    def _maxmin_rates(self) -> None:
        """Recompute the max-min fair allocation with the configured solver."""
        if self.solver == "fast":
            self._maxmin_rates_fast()
        else:
            self._dirty.clear()
            if self._flows:
                self.rate_recomputes += 1
                self.rate_recompute_flows += len(self._flows)
            if self._vec and self._flows:
                self._settle_component(self._flows)
                self._maxmin_rates_reference()
                self._sync_rates()
            else:
                self._maxmin_rates_reference()

    def _maxmin_rates_reference(self) -> None:
        """Progressive filling over all links touched by active flows.

        Per-flow rate caps participate as virtual bottlenecks: whenever
        the smallest unfrozen cap is tighter than the tightest link
        share, that flow freezes at its cap (releasing link capacity to
        the others) — the standard capped max-min extension.

        This is the slow reference the fast path is pinned against; it
        recomputes every flow from scratch on every call.
        """
        unfrozen: set[Flow] = set(self._flows)
        residual: dict[Link, float] = {}
        for flow in self._flows:
            flow.rate = 0.0
            for link in flow.path:
                residual.setdefault(link, link.capacity)

        while unfrozen:
            # Bottleneck link: smallest per-flow fair share among links that
            # still carry unfrozen flows.
            best_link: Optional[Link] = None
            best_share = float("inf")
            # Sort by name so epsilon-ties resolve the same way every run.
            for link in sorted(residual, key=lambda l: l.name):
                n = sum(1 for f in link._flows if f in unfrozen)
                if n == 0:
                    continue
                share = residual[link] / n
                if share < best_share - self._EPS:
                    best_share = share
                    best_link = link
            # Tightest protocol cap among unfrozen flows.
            capped = min(unfrozen, key=lambda f: (f.rate_cap, f.seq))
            if capped.rate_cap < best_share:
                rate = capped.rate_cap
                capped.rate = rate
                unfrozen.discard(capped)
                for link in capped.path:
                    residual[link] = max(0.0, residual[link] - rate)
                continue
            if best_link is None:
                # Remaining flows traverse no constrained link (shouldn't
                # happen for non-empty paths); cap-bound or effectively
                # infinite.
                for flow in unfrozen:
                    flow.rate = min(flow.rate_cap, 1e18)
                break
            froze = [f for f in best_link._flows if f in unfrozen]
            for flow in froze:
                flow.rate = best_share
                unfrozen.discard(flow)
                for link in flow.path:
                    residual[link] = max(0.0, residual[link] - best_share)

    def _maxmin_rates_fast(self) -> None:
        """Incremental max-min: re-solve only the dirty connected component.

        Progressive filling decomposes over connected components of the
        flow/link sharing graph — freezing a flow only changes residuals
        on its own path, so a component's final shares are a pure
        function of its own links, flows and caps.  A join/leave/kill
        therefore invalidates exactly the component(s) reachable from
        the touched links; everything else keeps its converged rate.
        """
        dirty = self._dirty
        if not dirty:
            self.rate_skips += 1
            return
        # Small populations (the paper's 8-node cluster tops out around
        # 40 concurrent flows): finding the dirty component costs more
        # than re-solving everything with the fast kernel, and solving
        # the full flow set IS the reference semantics — trivially exact.
        if len(self._flows) <= 48:
            dirty.clear()
            self.rate_recomputes += 1
            self.rate_recompute_flows += len(self._flows)
            obs = self.sim.obs
            if obs.enabled:
                obs.metrics.counter("net.rate_recomputes").add()
                obs.metrics.counter("net.rate_recompute_flows").add(len(self._flows))
            if self._vec:
                self._settle_component(self._flows)
                self._solve_component(self._flows)
                self._sync_rates()
            else:
                self._solve_component(self._flows)
            return
        # Closure: every flow sharing a link (transitively) with a dirty
        # link.  A dirty link with no flows contributes nothing — its old
        # flows' components are reachable through the links they still use.
        stack = [link for link in dirty if link._flows]
        dirty.clear()
        flows: set[Flow] = set()
        seen: set[Link] = set(stack)
        add_flow = flows.add
        add_seen = seen.add
        push = stack.append
        while stack:
            link = stack.pop()
            for f in link._flows:
                if f not in flows:
                    add_flow(f)
                    for other in f.path:
                        if other not in seen:
                            add_seen(other)
                            push(other)
        if not flows:
            return
        self.rate_recomputes += 1
        self.rate_recompute_flows += len(flows)
        obs = self.sim.obs
        if obs.enabled:
            obs.metrics.counter("net.rate_recomputes").add()
            obs.metrics.counter("net.rate_recompute_flows").add(len(flows))
        if self._vec:
            self._settle_component(flows)
            self._solve_component(flows)
            self._sync_rates()
        else:
            self._solve_component(flows)

    def _solve_component(self, flows: set[Flow]) -> None:
        """Progressive filling restricted to one closed component.

        Bit-for-bit equal to :meth:`_maxmin_rates_reference` on the same
        flows: identical divisions, subtraction order and epsilon-tie
        resolution — only the bookkeeping is cheaper.  The measured shape
        of Figure-6 components (a few flows over 2–8 links, ~96 % of them
        with no rate caps at all) drives the structure: the uncapped case
        skips the cap machinery entirely, links are sorted once per solve
        instead of once per round, and per-link unfrozen counts are
        maintained instead of recounted.  The residual clamp uses a
        conditional instead of ``max(0.0, r)`` — identical for every
        float including ``-0.0`` (``max`` returns its first argument on
        ties), but without a builtin call in the innermost loop.
        """
        eps = self._EPS
        inf = float("inf")
        residual: dict[Link, float] = {}
        capped_flows: list[Flow] = []
        for flow in flows:
            flow.rate = 0.0
            if flow.rate_cap != inf:
                capped_flows.append(flow)
            for link in flow.path:
                if link not in residual:
                    residual[link] = link.capacity

        if not capped_flows:
            n_flows = len(flows)
            # Single-bottleneck short-circuit (the GigE star's all-to-one
            # case): one link, no caps — everyone gets the same division
            # the reference's sole iteration would compute.
            if len(residual) == 1:
                share = next(iter(residual.values())) / n_flows
                for f in flows:
                    f.rate = share
                return
            # Uniform short-circuit: every link carries every flow (one
            # mapper bursting to a set of peers).  The reference's first
            # round then freezes the whole component at the bottleneck
            # share — compute exactly that scan, skip the bookkeeping.
            if all(len(link._flows) == n_flows for link in residual):
                best_share = inf
                for link in sorted(residual, key=_LINK_NAME):
                    share = residual[link] / n_flows
                    if share < best_share - eps:
                        best_share = share
                for f in flows:
                    f.rate = best_share
                return
            # Closure property: every flow of every component link is in
            # ``flows``, so unfrozen counts start at len(link._flows).
            link_order = sorted(residual, key=_LINK_NAME)
            counts = {link: len(link._flows) for link in link_order}
            unfrozen: set[Flow] = set(flows)
            while unfrozen:
                best_link: Optional[Link] = None
                best_share = inf
                for link in link_order:
                    n = counts[link]
                    if n:
                        share = residual[link] / n
                        if share < best_share - eps:
                            best_share = share
                            best_link = link
                if best_link is None:
                    # Mirrors the reference fallback for unconstrained flows.
                    for flow in unfrozen:
                        flow.rate = min(flow.rate_cap, 1e18)
                    break
                if counts[best_link] == len(unfrozen):
                    # Final round: every remaining flow is on the
                    # bottleneck, so all freeze at this share and the
                    # residual/count updates would never be read again.
                    for flow in unfrozen:
                        flow.rate = best_share
                    return
                # Direct iteration over the same set object the reference
                # builds its ``froze`` list from: same element order, and
                # discarding a flow never changes another's membership test.
                for flow in best_link._flows:
                    if flow in unfrozen:
                        flow.rate = best_share
                        unfrozen.discard(flow)
                        for link in flow.path:
                            r = residual[link] - best_share
                            residual[link] = r if r > 0.0 else 0.0
                            counts[link] -= 1
            return

        link_order = sorted(residual, key=_LINK_NAME)
        counts = {link: len(link._flows) for link in link_order}
        # Only capped flows can win the reference's min-cap scan; once the
        # cursor exhausts them the remaining caps are all infinite.
        cap_order = sorted(capped_flows, key=_CAP_SEQ)
        cap_i = 0
        n_caps = len(cap_order)
        unfrozen = set(flows)
        while unfrozen:
            best_link = None
            best_share = inf
            for link in link_order:
                n = counts[link]
                if n:
                    share = residual[link] / n
                    if share < best_share - eps:
                        best_share = share
                        best_link = link
            while cap_i < n_caps and cap_order[cap_i] not in unfrozen:
                cap_i += 1
            if cap_i < n_caps and cap_order[cap_i].rate_cap < best_share:
                # Freeze the tightest-capped flow, exactly as the
                # reference would.  Freezing at a rate below every
                # remaining share can only *raise* shares, so while the
                # next cap stays below a safety margin under the share
                # we just scanned, the reference's rescan is provably
                # redundant — batch those freezes without it.  ``guard``
                # retreats 2·eps per freeze to absorb the epsilon slop
                # the scan's tie-breaking permits; caps inside the slop
                # fall back to an honest rescan.
                guard = best_share
                while True:
                    capped = cap_order[cap_i]
                    rate = capped.rate_cap
                    capped.rate = rate
                    unfrozen.discard(capped)
                    for link in capped.path:
                        r = residual[link] - rate
                        residual[link] = r if r > 0.0 else 0.0
                        counts[link] -= 1
                    guard -= 2.0 * eps
                    cap_i += 1
                    while cap_i < n_caps and cap_order[cap_i] not in unfrozen:
                        cap_i += 1
                    if cap_i >= n_caps or not cap_order[cap_i].rate_cap < guard:
                        break
                continue
            if best_link is None:
                # Remaining flows traverse no constrained link (shouldn't
                # happen for non-empty paths); cap-bound or effectively
                # infinite.  Mirrors the reference fallback.
                for flow in unfrozen:
                    flow.rate = min(flow.rate_cap, 1e18)
                break
            if counts[best_link] == len(unfrozen):
                # Final round (the cap check above already passed): all
                # remaining flows freeze here; skip the dead bookkeeping.
                for flow in unfrozen:
                    flow.rate = best_share
                return
            for flow in best_link._flows:
                if flow in unfrozen:
                    flow.rate = best_share
                    unfrozen.discard(flow)
                    for link in flow.path:
                        r = residual[link] - best_share
                        residual[link] = r if r > 0.0 else 0.0
                        counts[link] -= 1
