"""Back-compat tracing facade over :mod:`repro.obs.tracer`.

Historically this module was a standalone ``(time, category, label)``
log whose :meth:`Tracer.spans` paired ``<label>:start`` / ``<label>:end``
records by string matching.  That pairing had two real bugs: an ``:end``
with no ``:start`` was silently dropped, and re-entrant labels (two
attempts of ``map3``) clobbered each other.

The log now feeds a :class:`repro.obs.tracer.SpanTracer` under the hood:

* every ``<label>:start`` opens a real span (one per occurrence — two
  retries of a label are two spans, paired LIFO);
* an unmatched ``:end`` is surfaced in :attr:`Tracer.unmatched_ends`
  instead of vanishing;
* :meth:`spans` keeps its old last-wins ``dict`` shape for existing
  callers; :meth:`span_list` returns *every* completed span.

New code should use ``sim.obs.tracer`` (explicit span IDs) directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from repro.obs.tracer import SpanTracer
from repro.simnet.kernel import Simulator


@dataclass(frozen=True)
class TraceEvent:
    time: float
    category: str
    label: str
    payload: Any = None


class Tracer:
    """Append-only event log keyed by category (span-backed)."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.events: list[TraceEvent] = []
        self.enabled = True
        #: ``(time, category, label)`` of every ``:end`` with no open span.
        self.unmatched_ends: list[tuple[float, str, str]] = []
        self._spans = SpanTracer(lambda: sim.now)
        # Open sids per (category, base label), LIFO for re-entrant labels.
        self._open: dict[tuple[str, str], list[int]] = {}

    def record(self, category: str, label: str, payload: Any = None) -> None:
        if not self.enabled:
            return
        self.events.append(TraceEvent(self.sim.now, category, label, payload))
        if label.endswith(":start"):
            base = label[: -len(":start")]
            sid = self._spans.begin(category, base)
            self._open.setdefault((category, base), []).append(sid)
        elif label.endswith(":end"):
            base = label[: -len(":end")]
            stack = self._open.get((category, base))
            if stack:
                self._spans.end(stack.pop())
            else:
                self.unmatched_ends.append((self.sim.now, category, base))

    def by_category(self, category: str) -> Iterator[TraceEvent]:
        return (ev for ev in self.events if ev.category == category)

    def spans(self, category: str) -> dict[str, tuple[float, float]]:
        """Completed ``label -> (t0, t1)`` spans (last occurrence wins).

        The historical shape; use :meth:`span_list` when a label repeats
        and every occurrence matters.
        """
        return {
            s.name: (s.t0, s.t1)
            for s in self._spans.by_category(category)
            if s.t1 is not None
        }

    def span_list(self, category: str) -> list[tuple[str, float, float]]:
        """Every completed ``(label, t0, t1)`` span, in begin order."""
        return [
            (s.name, s.t0, s.t1)
            for s in self._spans.by_category(category)
            if s.t1 is not None
        ]
