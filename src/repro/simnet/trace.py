"""Lightweight tracing of simulation activity.

A :class:`Tracer` collects ``(time, category, label, payload)`` tuples;
experiments use it to extract per-task phase timings (the data behind
Figure 1) without threading measurement code through the models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from repro.simnet.kernel import Simulator


@dataclass(frozen=True)
class TraceEvent:
    time: float
    category: str
    label: str
    payload: Any = None


class Tracer:
    """Append-only event log keyed by category."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.events: list[TraceEvent] = []
        self.enabled = True

    def record(self, category: str, label: str, payload: Any = None) -> None:
        if self.enabled:
            self.events.append(TraceEvent(self.sim.now, category, label, payload))

    def by_category(self, category: str) -> Iterator[TraceEvent]:
        return (ev for ev in self.events if ev.category == category)

    def spans(self, category: str) -> dict[str, tuple[float, float]]:
        """Pair ``<label>:start`` / ``<label>:end`` records into (t0, t1) spans."""
        start: dict[str, float] = {}
        out: dict[str, tuple[float, float]] = {}
        for ev in self.by_category(category):
            if ev.label.endswith(":start"):
                start[ev.label[: -len(":start")]] = ev.time
            elif ev.label.endswith(":end"):
                base = ev.label[: -len(":end")]
                if base in start:
                    out[base] = (start[base], ev.time)
        return out
