"""A from-scratch generator-based discrete-event simulation kernel.

The design follows the classic process-interaction style (as in SimPy,
reimplemented here because the environment is offline): a *process* is a
Python generator that ``yield``\\ s :class:`Event` objects; the kernel
suspends the process until the event fires and resumes it with the
event's value (or throws the event's exception into it).

Invariants the kernel maintains (property-tested in
``tests/simnet/test_kernel.py``):

* simulated time never decreases;
* events scheduled at equal times fire in FIFO scheduling order;
* an event fires at most once; triggering a fired event raises;
* a failed event that is never yielded-on raises at ``run()`` end
  (no silently swallowed simulation errors).

Two fast paths keep the hot loop cheap at scale (benchmarked by
``python -m repro bench``):

* **lazy cancellation** — :meth:`Event.cancel` tombstones a scheduled
  event instead of rebuilding the heap; the popped tombstone still
  advances the clock (so drain semantics are unchanged) but dispatches
  nothing.  The network's superseded completion timers and the shuffle's
  resolved fetch-deadline timers use this.
* an optional **slotted timer wheel** (``Simulator(timer_slot=...)``)
  that buckets timeout entries by expiry slot and sorts each bucket
  lazily on first pop — O(1) amortized scheduling for the retry/backoff
  timer clouds, while preserving the heap's exact (time, seq) total
  order (property-tested in ``tests/simnet/test_kernel_fastpath.py``).
"""

from __future__ import annotations

import heapq
from bisect import insort
from typing import Any, Callable, Generator, Iterable, Optional

from repro.obs.observer import NULL_OBS


class SimError(RuntimeError):
    """Base class for kernel errors (double trigger, deadlock, etc.)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence in simulated time.

    An event is *pending* until :meth:`succeed` or :meth:`fail` is called,
    after which it is *triggered* and its callbacks run at the current
    simulation time.  Processes wait on events by yielding them.
    """

    __slots__ = (
        "sim",
        "callbacks",
        "_value",
        "_ok",
        "_triggered",
        "_defused",
        "_cancelled",
    )

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: Optional[bool] = None
        self._triggered = False
        self._defused = False
        self._cancelled = False

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def processed(self) -> bool:
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if self._ok is None:
            raise SimError("event has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimError("event has not been triggered yet")
        return self._value

    # -- triggering ---------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._triggered:
            raise SimError("event already triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        self.sim._schedule(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception is re-raised in every process waiting on the event.
        If nothing ever waits, :meth:`Simulator.run` raises it at the end —
        failures never disappear.
        """
        if not isinstance(exc, BaseException):
            raise TypeError(f"fail() needs an exception, got {exc!r}")
        if self._triggered:
            raise SimError("event already triggered")
        self._triggered = True
        self._ok = False
        self._value = exc
        self.sim._schedule(self)
        self.sim._failed_events.append(self)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so ``run()`` won't re-raise it."""
        self._defused = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def cancel(self) -> None:
        """Tombstone a scheduled event: its callbacks will never run.

        Lazy cancellation — the heap entry stays where it is and still
        advances the clock when popped, but nothing is dispatched, so
        cancelling is O(1) instead of a heap rebuild.  Only the event's
        *exclusive owner* may cancel: a process yielding on a cancelled
        event is a programming error (the kernel raises).  Cancelling an
        event that already ran is a harmless no-op.
        """
        if self.callbacks is None:
            return  # already dispatched (or already cancelled)
        self._cancelled = True
        self.callbacks = None
        self.sim.events_cancelled += 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "pending"
        if self._triggered:
            state = "ok" if self._ok else "failed"
        return f"<{type(self).__name__} {state} at t={self.sim.now:.6f}>"


class Timeout(Event):
    """An event that fires ``delay`` seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = float(delay)
        self._triggered = True
        self._ok = True
        self._value = value
        sim._schedule(self, delay=self.delay)


class Tick(Event):
    """A pooled internal timer event (the kernel's event arena).

    Ticks are pre-triggered like :class:`Timeout` but come from a
    per-simulator free list and return to it when their heap entry pops
    — the allocation cost of the network/device completion timers and
    the periodic heartbeat timers is paid once, not per event.  *Shared*
    ticks additionally coalesce: consecutive requests for the same
    expiry instant with no other event scheduled in between merge into
    one heap entry whose callbacks run in append order — provably the
    same dispatch order the separate entries would have had, since any
    interleaving entry would need a sequence number strictly between two
    consecutive integers.

    Discipline (enforced by convention, not the kernel): a tick may only
    be scheduled through :meth:`Simulator.tick` / :meth:`Simulator.tick_at`,
    must not be stored past its expiry, must not be passed to
    ``all_of``/``any_of``, and a *shared* tick must never be cancelled
    (cancel would silence the merged siblings too).
    """

    __slots__ = ()


class _Condition(Event):
    """Base for AllOf/AnyOf: waits on several events at once."""

    __slots__ = ("events", "_n_done")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        self._n_done = 0
        for ev in self.events:
            if ev.sim is not sim:
                raise SimError("cannot mix events from different simulators")
            if ev._cancelled:
                raise SimError("cannot wait on a cancelled event")
            if ev.callbacks is None:  # already processed
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _check(self, ev: Event) -> None:
        raise NotImplementedError

    def _collect(self) -> list[Any]:
        return [ev._value for ev in self.events if ev._triggered and ev._ok]


class AllOf(_Condition):
    """Fires when every child event has fired; value is the list of values.

    A child that fails *after* the condition resolved (a second lost
    flow, a timeout loser) is absorbed: the condition already delivered
    its outcome, so the late failure is defused rather than left to
    raise at ``run()`` end with nobody waiting on it.
    """

    __slots__ = ()

    def _check(self, ev: Event) -> None:
        if not ev._ok:
            ev.defuse()
            if not self._triggered:
                self.fail(ev._value)
            return
        if self._triggered:
            return
        self._n_done += 1
        if self._n_done == len(self.events):
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Fires when the first child event fires; value is that event's value.

    Losers that fail after the race resolved are defused (see
    :class:`AllOf`) — racing a transfer against a timeout must not turn
    the abandoned transfer's failure into a simulation error.
    """

    __slots__ = ()

    def _check(self, ev: Event) -> None:
        if not ev._ok:
            ev.defuse()
            if not self._triggered:
                self.fail(ev._value)
            return
        if self._triggered:
            return
        self.succeed(ev._value)


class _TimerWheel:
    """A slotted calendar queue for timeout entries.

    Entries are ``(when, seq, event)`` tuples bucketed by
    ``int(when / width)``.  Buckets are kept unsorted until their slot
    becomes the head, then sorted once — so pushing N timers into the
    same slot costs O(N) + one sort instead of N heap sifts.  Pops come
    out in exact ``(when, seq)`` order, byte-identical to the heap's:

    * the head bucket is consumed through a cursor; entries pushed into
      the head slot *after* it was sorted are insorted — monotonic time
      and sequence numbers guarantee they land at or after the cursor;
    * a push into an *earlier* slot than the current head (a short timer
      scheduled while a long-range bucket is head) demotes the head
      bucket back into the calendar before the earlier one is loaded.
    """

    __slots__ = ("width", "_buckets", "_slots", "_head_slot", "_head", "_idx", "size")

    def __init__(self, width: float):
        if width <= 0:
            raise ValueError(f"timer slot width must be positive: {width}")
        self.width = float(width)
        self._buckets: dict[int, list[tuple[float, int, "Event"]]] = {}
        self._slots: list[int] = []  # min-heap of bucket indices (may hold stales)
        self._head_slot: Optional[int] = None
        self._head: list[tuple[float, int, "Event"]] = []
        self._idx = 0
        self.size = 0

    def push(self, when: float, seq: int, ev: "Event") -> None:
        slot = int(when / self.width)
        if slot == self._head_slot:
            insort(self._head, (when, seq, ev))
        else:
            bucket = self._buckets.get(slot)
            if bucket is None:
                self._buckets[slot] = [(when, seq, ev)]
                heapq.heappush(self._slots, slot)
            else:
                bucket.append((when, seq, ev))
        self.size += 1

    def _load_head(self) -> bool:
        """Make the earliest pending bucket the head; False when empty."""
        while True:
            if self._head_slot is not None and self._idx < len(self._head):
                if self._slots and self._slots[0] < self._head_slot:
                    # An earlier slot appeared: demote the head remainder.
                    rest = self._head[self._idx :]
                    bucket = self._buckets.get(self._head_slot)
                    if bucket is None:
                        self._buckets[self._head_slot] = rest
                        heapq.heappush(self._slots, self._head_slot)
                    else:  # pragma: no cover - defensive; pushes go to head
                        bucket.extend(rest)
                    self._head_slot, self._head, self._idx = None, [], 0
                    continue
                return True
            if not self._slots:
                self._head_slot, self._head, self._idx = None, [], 0
                return False
            slot = heapq.heappop(self._slots)
            bucket = self._buckets.pop(slot, None)
            if not bucket:
                continue  # stale slot entry (bucket already drained)
            bucket.sort()
            self._head_slot, self._head, self._idx = slot, bucket, 0

    def peek(self) -> Optional[tuple[float, int, "Event"]]:
        if not self._load_head():
            return None
        return self._head[self._idx]

    def pop(self) -> tuple[float, int, "Event"]:
        entry = self.peek()
        assert entry is not None, "pop from an empty timer wheel"
        self._idx += 1
        self.size -= 1
        return entry


ProcessGen = Generator[Event, Any, Any]


class Process(Event):
    """A running simulation process wrapping a generator.

    The process-as-event pattern: a Process *is* an event that fires when
    the generator returns (value = return value) or raises (failure), so
    processes can wait on each other by yielding a Process.
    """

    __slots__ = ("gen", "name", "_waiting_on")

    def __init__(self, sim: "Simulator", gen: ProcessGen, name: str = ""):
        if not hasattr(gen, "send"):
            raise TypeError(
                f"Process needs a generator (did you forget to call the "
                f"function?): got {type(gen).__name__}"
            )
        super().__init__(sim)
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        # Bootstrap: resume once at the current time.
        boot = Event(sim)
        boot.callbacks.append(self._resume)
        boot.succeed()

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a process
        that is waiting detaches it from the event it was waiting on (the
        event may still fire later — the process simply no longer cares).
        """
        if self._triggered:
            raise SimError(f"cannot interrupt finished process {self.name!r}")
        target = self._waiting_on
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._waiting_on = None
        kick = Event(self.sim)
        kick.callbacks.append(lambda ev: self._step(throw=Interrupt(cause)))
        kick.succeed()

    # -- internal -----------------------------------------------------------
    def _resume(self, ev: Event) -> None:
        self._waiting_on = None
        if ev._ok:
            self._step(send=ev._value)
        else:
            ev.defuse()
            self._step(throw=ev._value)

    def _step(self, send: Any = None, throw: Optional[BaseException] = None) -> None:
        if self._triggered:
            return
        try:
            if throw is not None:
                target = self.gen.throw(throw)
            else:
                target = self.gen.send(send)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.fail(exc)
            return
        if not isinstance(target, Event):
            exc = SimError(
                f"process {self.name!r} yielded {target!r}; processes may "
                f"only yield Event instances"
            )
            try:
                self.gen.throw(exc)
            except StopIteration as stop:
                self.succeed(stop.value)
            except BaseException as err:
                self.fail(err)
            return
        if target.sim is not self.sim:
            self.fail(SimError("yielded an event from a different simulator"))
            return
        if target._cancelled:
            self.fail(
                SimError(
                    f"process {self.name!r} yielded a cancelled event; only "
                    f"an event's exclusive owner may cancel it"
                )
            )
            return
        self._waiting_on = target
        if target.callbacks is None:
            # Already processed: resume immediately (at the current time).
            kick = Event(self.sim)
            kick.callbacks.append(lambda ev: self._resume(target))
            kick.succeed()
        else:
            target.callbacks.append(self._resume)


class Simulator:
    """The event loop: a time-ordered heap of triggered events.

    Typical use::

        sim = Simulator()

        def worker(sim):
            yield sim.timeout(1.5)
            return "done"

        proc = sim.process(worker(sim))
        sim.run()
        assert sim.now == 1.5 and proc.value == "done"
    """

    def __init__(self, timer_slot: Optional[float] = None) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0
        self._failed_events: list[Event] = []
        #: Optional slotted timer wheel: delayed events (timeouts) are
        #: bucketed by ``timer_slot`` seconds instead of heap-pushed.
        #: Fire order is identical either way; None keeps the pure heap.
        self._wheel: Optional[_TimerWheel] = (
            _TimerWheel(timer_slot) if timer_slot is not None else None
        )
        #: Dispatch volume counters (plain ints — free when obs is off);
        #: the bench harness derives events/sec from these.
        self.events_dispatched = 0
        self.events_cancelled = 0
        # -- tick arena ------------------------------------------------------
        #: Free list of recycled :class:`Tick` objects; ticks return here
        #: when their heap entry pops (dispatched or tombstoned).
        self._tick_pool: list[Tick] = []
        #: Coalescing state: the most recent *shared* tick, its expiry,
        #: and the sequence number it was scheduled with.  A new shared
        #: tick merges into it iff nothing else was scheduled since and
        #: the expiry instant is bit-identical.
        self._last_shared: Optional[Tick] = None
        self._last_shared_when = 0.0
        self._last_shared_seq = -1
        #: Observability hook; :meth:`repro.obs.Observer.attach` replaces
        #: the null default.  Models read ``sim.obs`` — never store it.
        self.obs = NULL_OBS
        #: Wall-clock self-profiler (:mod:`repro.simnet.profiler`), or
        #: None.  Checked exactly once per ``run()`` call — with no
        #: profiler attached the hot loops below are byte-identical to
        #: the pre-profiler kernel.
        self._profiler = None

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- factories ----------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def tick(
        self,
        delay: float,
        cb: Optional[Callable[[Event], None]] = None,
        *,
        shared: bool = False,
    ) -> Tick:
        """A pooled timer firing ``delay`` seconds from now (see :class:`Tick`).

        Fires at exactly the instant ``timeout(delay)`` would — the
        expiry is computed as ``now + delay``, the same float expression.
        """
        if delay < 0:
            raise ValueError(f"negative tick delay: {delay}")
        return self.tick_at(self._now + delay, cb, shared=shared)

    def tick_at(
        self,
        when: float,
        cb: Optional[Callable[[Event], None]] = None,
        *,
        shared: bool = False,
    ) -> Tick:
        """A pooled timer firing at the *absolute* instant ``when``.

        Unlike ``timeout(when - now)`` this schedules the given float
        directly, so a caller accumulating a chain of delays
        ``((t + d1) + d2)`` reproduces the kernel clock's association
        bit-for-bit.  With ``shared=True`` the tick may coalesce with the
        immediately-preceding shared tick for the same instant.
        """
        if when < self._now:
            raise ValueError(f"tick in the past: {when} < {self._now}")
        if shared and (
            self._last_shared is not None
            and self._last_shared_when == when
            and self._last_shared_seq == self._seq - 1
        ):
            cbs = self._last_shared.callbacks
            if cbs is not None:  # not yet dispatched/cancelled: mergeable
                if cb is not None:
                    cbs.append(cb)
                return self._last_shared
        pool = self._tick_pool
        if pool:
            ev = pool.pop()
            ev._value = None
            ev._cancelled = False
            ev._defused = False
            ev.callbacks = [] if cb is None else [cb]
        else:
            ev = Tick(self)
            if cb is not None:
                ev.callbacks.append(cb)
        ev._triggered = True
        ev._ok = True
        if when > self._now and self._wheel is not None:
            self._wheel.push(when, self._seq, ev)
        else:
            heapq.heappush(self._heap, (when, self._seq, ev))
        if shared:
            self._last_shared = ev
            self._last_shared_when = when
            self._last_shared_seq = self._seq
        self._seq += 1
        return ev

    def process(self, gen: ProcessGen, name: str = "") -> Process:
        proc = Process(self, gen, name=name)
        obs = self.obs
        if obs.enabled:
            # One kernel-category span per process lifetime.  The extra
            # completion callback appends after any existing ones, so it
            # never reorders simulation callbacks; with obs disabled this
            # branch is a single attribute test.
            sid = obs.tracer.begin("kernel", proc.name)
            proc.callbacks.append(lambda ev, s=sid, t=obs.tracer: t.end(s))
            obs.metrics.counter("kernel.processes").add()
        return proc

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def _schedule(self, ev: Event, delay: float = 0.0) -> None:
        if delay > 0.0 and self._wheel is not None:
            self._wheel.push(self._now + delay, self._seq, ev)
        else:
            heapq.heappush(self._heap, (self._now + delay, self._seq, ev))
        self._seq += 1

    def _next_entry(self) -> Optional[tuple[float, int, Event]]:
        """The globally-earliest pending entry across heap and wheel."""
        head = self._heap[0] if self._heap else None
        wheel = self._wheel
        if wheel is None or wheel.size == 0:
            return head
        wtop = wheel.peek()
        if head is None or (wtop[0], wtop[1]) < (head[0], head[1]):
            return wtop
        return head

    def _pop(self) -> None:
        wheel = self._wheel
        if wheel is not None and wheel.size:
            wtop = wheel.peek()
            head = self._heap[0] if self._heap else None
            if head is None or (wtop[0], wtop[1]) < (head[0], head[1]):
                when, _seq, ev = wheel.pop()
            else:
                when, _seq, ev = heapq.heappop(self._heap)
        else:
            when, _seq, ev = heapq.heappop(self._heap)
        if when < self._now - 1e-15:
            raise SimError(f"time went backwards: {when} < {self._now}")
        self._now = when if when > self._now else self._now
        # A cancelled event is a tombstone: it advanced the clock exactly
        # as it would have, but dispatches nothing (callbacks is None).
        callbacks, ev.callbacks = ev.callbacks, None
        if callbacks:
            self.events_dispatched += 1
            for cb in callbacks:
                cb(ev)
        if type(ev) is Tick:
            self._tick_pool.append(ev)

    # -- self-profiling ------------------------------------------------------
    def attach_profiler(self, profiler) -> None:
        """Attach a :class:`repro.simnet.profiler.SelfProfiler`.

        Subsequent ``run()`` calls take the instrumented loop; pass the
        profiler's accumulated bins on via ``profiler.snapshot()``.
        """
        self._profiler = profiler

    def detach_profiler(self):
        """Detach and return the current profiler (restores fast loops)."""
        profiler, self._profiler = self._profiler, None
        return profiler

    @staticmethod
    def _event_label(callbacks: list) -> str:
        """Attribution label for a dispatched event's first callback.

        Bound methods label as ``ClassName.method`` — except process
        resumptions, which label as the process *name* (``tracker3``,
        ``map12``) so the profiler can tell heartbeats from task work.
        """
        cb = callbacks[0]
        owner = getattr(cb, "__self__", None)
        if owner is not None:
            if isinstance(owner, Process):
                return owner.name
            return f"{type(owner).__name__}.{getattr(cb, '__name__', 'call')}"
        return getattr(cb, "__qualname__", None) or getattr(
            cb, "__name__", "callback"
        )

    def _run_profiled(self, until: Optional[float]) -> float:
        """``run()`` with wall-clock attribution (see :mod:`..profiler`).

        Same semantics as the fast loops — same pop order, same counter
        updates — plus two timers per event: pop/peek bookkeeping goes
        to the ``timer-wheel`` bin (``kernel`` when no wheel is
        configured), dispatch time to the event's category bin.
        """
        profiler = self._profiler
        clock = profiler.clock
        wheel = self._wheel
        pop_bin = "kernel" if wheel is None else "timer-wheel"
        heap = self._heap
        while True:
            t0 = clock()
            entry = self._next_entry()
            if entry is None:
                profiler.record_overhead(pop_bin, clock() - t0)
                break
            if until is not None and entry[0] > until:
                self._now = until
                profiler.record_overhead(pop_bin, clock() - t0)
                break
            if wheel is not None and wheel.size:
                wtop = wheel.peek()
                head = heap[0] if heap else None
                if head is None or (wtop[0], wtop[1]) < (head[0], head[1]):
                    when, _seq, ev = wheel.pop()
                else:
                    when, _seq, ev = heapq.heappop(heap)
            else:
                when, _seq, ev = heapq.heappop(heap)
            if when < self._now - 1e-15:
                raise SimError(f"time went backwards: {when} < {self._now}")
            if when > self._now:
                self._now = when
            callbacks, ev.callbacks = ev.callbacks, None
            t1 = clock()
            profiler.record_overhead(pop_bin, t1 - t0)
            if callbacks:
                self.events_dispatched += 1
                label = self._event_label(callbacks)
                for cb in callbacks:
                    cb(ev)
                profiler.record(label, clock() - t1)
            if type(ev) is Tick:
                self._tick_pool.append(ev)
        return self._finish_run()

    def run(self, until: Optional[float] = None) -> float:
        """Run until the event heap drains or ``until`` (exclusive of later events).

        Raises the exception of any failed event that no process handled.
        Returns the final simulated time.
        """
        if self._profiler is not None:
            return self._run_profiled(until)
        if self._wheel is None:
            # Hot loop for the default configuration: pure heap, pop
            # inlined (no per-event wheel checks).  ``heap`` stays a
            # valid alias because _schedule mutates the list in place.
            heap = self._heap
            heappop = heapq.heappop
            tick_pool = self._tick_pool
            while heap:
                if until is not None and heap[0][0] > until:
                    self._now = until
                    return self._finish_run()
                when, _seq, ev = heappop(heap)
                if when < self._now - 1e-15:
                    raise SimError(f"time went backwards: {when} < {self._now}")
                if when > self._now:
                    self._now = when
                callbacks, ev.callbacks = ev.callbacks, None
                if callbacks:
                    self.events_dispatched += 1
                    for cb in callbacks:
                        cb(ev)
                if type(ev) is Tick:
                    tick_pool.append(ev)
            return self._finish_run()
        while True:
            entry = self._next_entry()
            if entry is None:
                break
            if until is not None and entry[0] > until:
                self._now = until
                break
            self._pop()
        return self._finish_run()

    def _finish_run(self) -> float:
        for ev in self._failed_events:
            if not ev._defused:
                exc = ev._value
                raise exc
        return self._now

    def step(self) -> bool:
        """Process a single event; returns False when the heap is empty."""
        if self._next_entry() is None:
            return False
        self._pop()
        return True

    def peek(self) -> Optional[float]:
        """Time of the next scheduled event, or None when drained."""
        entry = self._next_entry()
        return entry[0] if entry is not None else None
