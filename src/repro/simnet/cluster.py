"""Cluster model: nodes with CPUs/disk/NICs around one switch.

:func:`paper_cluster` builds the paper's testbed: 8 nodes, each with two
quad-core Xeon E5620s (8 cores), 16 GB RAM, one SATA disk, all ports on a
single Gigabit Ethernet switch.  Every node gets a full-duplex pair of
links (uplink to the switch, downlink from it); a flow from node A to
node B traverses ``A.uplink`` then ``B.downlink``, so fan-in congestion
at a busy reducer shows up exactly where it does on real hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.simnet.kernel import Event, Simulator
from repro.simnet.network import Flow, Link, Network
from repro.simnet.resources import RateDevice, SlotPool
from repro.util.units import GiB, MiB


@dataclass(frozen=True)
class ClusterSpec:
    """Hardware parameters for a homogeneous cluster."""

    num_nodes: int = 8
    cores_per_node: int = 8
    memory_bytes: int = 16 * GiB
    # Effective GigE goodput.  The wire rate is 125 MB/s; TCP/IP framing
    # leaves ~117 MiB/s, consistent with the paper's measured MPICH2 peak
    # of ~111 MB/s once library overheads are charged by the transports.
    link_bandwidth: float = 117.0 * MiB
    link_latency: float = 50e-6  # one-way propagation + switch cut-through
    # Single 7.2k SATA disk, circa 2010: ~90 MB/s sequential.
    disk_bandwidth: float = 90.0 * MiB
    disk_seek: float = 8e-3

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError(f"need at least one node, got {self.num_nodes}")
        if self.cores_per_node < 1:
            raise ValueError(f"need at least one core, got {self.cores_per_node}")
        if min(self.link_bandwidth, self.disk_bandwidth) <= 0:
            raise ValueError("bandwidths must be positive")
        if min(self.link_latency, self.disk_seek) < 0:
            raise ValueError("latencies may not be negative")


@dataclass
class Node:
    """One simulated machine."""

    node_id: int
    name: str
    cpus: SlotPool
    disk: RateDevice
    uplink: Link
    downlink: Link
    memory_bytes: int
    spec: ClusterSpec = field(repr=False, default=None)  # type: ignore[assignment]

    def disk_read(self, nbytes: float, sequential: bool = True) -> Event:
        """Read from the local disk; one seek is charged per request."""
        return self._disk_io(nbytes, sequential)

    def disk_write(self, nbytes: float, sequential: bool = True) -> Event:
        """Write to the local disk (same service model as reads)."""
        return self._disk_io(nbytes, sequential)

    def _disk_io(self, nbytes: float, sequential: bool) -> Event:
        seek_bytes = 0.0 if sequential else self.spec.disk_seek * self.disk.rate
        return self.disk.transfer(nbytes + seek_bytes)


class Cluster:
    """A set of :class:`Node` objects sharing one :class:`Network`.

    ``send(src, dst, nbytes, latency)`` is the raw fabric primitive the
    transport models build on: it prices only propagation and max-min
    shared bandwidth — protocol costs (RPC serialization, HTTP framing,
    MPI eager/rendezvous) belong to :mod:`repro.transports`.
    """

    def __init__(self, sim: Simulator, spec: ClusterSpec):
        self.sim = sim
        self.spec = spec
        self.network = Network(sim)
        self.nodes: list[Node] = []
        for i in range(spec.num_nodes):
            name = f"node{i}"
            up = self.network.add_link(f"{name}.up", spec.link_bandwidth)
            down = self.network.add_link(f"{name}.down", spec.link_bandwidth)
            node = Node(
                node_id=i,
                name=name,
                cpus=SlotPool(sim, spec.cores_per_node, name=f"{name}.cpus"),
                disk=RateDevice(sim, spec.disk_bandwidth, name=f"{name}.disk"),
                uplink=up,
                downlink=down,
                memory_bytes=spec.memory_bytes,
                spec=spec,
            )
            self.nodes.append(node)

    def __len__(self) -> int:
        return len(self.nodes)

    def node(self, node_id: int) -> Node:
        return self.nodes[node_id]

    def send(
        self,
        src: int,
        dst: int,
        nbytes: float,
        extra_latency: float = 0.0,
        rate_cap: float = float("inf"),
        waiter_sid: int = 0,
    ) -> Event:
        """Move ``nbytes`` from ``src`` to ``dst``; returns the completion event.

        A node-local transfer (``src == dst``) bypasses the switch and is
        charged only ``extra_latency`` (plus ``rate_cap`` drain time when
        the protocol, not the wire, is the bottleneck — loopback doesn't
        make Hadoop RPC fast).  ``waiter_sid`` optionally names the span
        that waits on this transfer so the tracer can record a
        happens-before edge (see :meth:`Network.transfer`).
        """
        return self.send_flow(
            src, dst, nbytes, extra_latency, rate_cap, waiter_sid=waiter_sid
        ).done

    def send_flow(
        self,
        src: int,
        dst: int,
        nbytes: float,
        extra_latency: float = 0.0,
        rate_cap: float = float("inf"),
        waiter_sid: int = 0,
    ) -> Flow:
        """:meth:`send` returning the :class:`Flow` handle instead of the
        event — for callers that may need to cancel it (fetch timeouts)
        or that retry on :class:`~repro.simnet.network.FlowFailed`."""
        if src == dst:
            return self.network.transfer_flow(
                (),
                nbytes,
                latency=extra_latency,
                rate_cap=rate_cap,
                waiter_sid=waiter_sid,
            )
        path = (self.nodes[src].uplink, self.nodes[dst].downlink)
        return self.network.transfer_flow(
            path,
            nbytes,
            latency=self.spec.link_latency + extra_latency,
            rate_cap=rate_cap,
            waiter_sid=waiter_sid,
        )

    def utilization_report(self, elapsed: float) -> dict:
        """Per-node resource utilization over ``elapsed`` simulated seconds.

        The bottleneck-analysis view: which disks and links were busy,
        and how many bytes each moved.
        """
        # The vectorized engine settles link byte counters lazily; bring
        # them up to now before reading (no-op on the reference engine).
        self.network.settle_accounting()
        report: dict = {}
        for node in self.nodes:
            report[node.name] = {
                "disk": node.disk.utilization(elapsed),
                "disk_bytes": node.disk.bytes_served,
                "uplink": node.uplink.utilization(elapsed),
                "downlink": node.downlink.utilization(elapsed),
            }
        return report


def paper_cluster(sim: Simulator, num_nodes: int = 8) -> Cluster:
    """The ICPP-2011 testbed: ``num_nodes`` Xeon E5620 boxes on one GigE switch."""
    return Cluster(sim, ClusterSpec(num_nodes=num_nodes))
