"""Resources for the DES: slot pools, processor-sharing rate devices, stores.

* :class:`SlotPool` — a counting semaphore with a FIFO wait queue; models
  the map/reduce slots of a TaskTracker and the CPU slots of a node.
* :class:`RateDevice` — a device with a fixed service rate (bytes/s)
  shared equally among concurrent jobs (processor sharing); models a
  node's disk, where concurrent spills and reads divide the bandwidth.
* :class:`Store` — an unbounded FIFO channel of items with blocking get;
  models mailbox-style handoff between simulated processes.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Optional

from repro.simnet import engine as _engine_mod
from repro.simnet.kernel import Event, SimError, Simulator


class SlotPool:
    """``capacity`` identical slots acquired/released FIFO.

    ``acquire()`` returns an event that fires when a slot is granted; the
    holder must call ``release()`` exactly once.
    """

    def __init__(self, sim: Simulator, capacity: int, name: str = "slots"):
        if capacity < 1:
            raise ValueError(f"slot pool needs capacity >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: deque[Event] = deque()
        # Bound at construction: attach the Observer before building models.
        self._metrics_on = sim.obs.enabled
        self._occupancy = sim.obs.metrics.histogram(f"slots.{name}.in_use")
        self._queued = sim.obs.metrics.histogram(f"slots.{name}.queued")

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def available(self) -> int:
        return self.capacity - self._in_use

    def acquire(self) -> Event:
        ev = self.sim.event()
        if self._in_use < self.capacity:
            self._in_use += 1
            if self._metrics_on:
                self._occupancy.set(self._in_use)
            ev.succeed(self)
        else:
            self._waiters.append(ev)
            if self._metrics_on:
                self._queued.set(len(self._waiters))
        return ev

    def try_acquire(self) -> bool:
        """Grab a slot synchronously when one is free; never queues.

        The event-free companion to :meth:`acquire` for hot loops that
        can pair it with a direct :meth:`release` (no grant event, no
        dispatch).  Returns False when the pool is full — callers then
        fall back to the queued ``acquire()`` path.
        """
        if self._in_use < self.capacity:
            self._in_use += 1
            if self._metrics_on:
                self._occupancy.set(self._in_use)
            return True
        return False

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimError(f"release() on empty pool {self.name!r}")
        if self._waiters:
            # Hand the slot straight to the next waiter; in_use unchanged.
            self._waiters.popleft().succeed(self)
            if self._metrics_on:
                self._queued.set(len(self._waiters))
        else:
            self._in_use -= 1
            if self._metrics_on:
                self._occupancy.set(self._in_use)

    def cancel(self, request: Event) -> None:
        """End one ``acquire()`` request, whatever state it reached.

        A queued request is withdrawn; a granted one is released.  This
        is the safe companion to ``acquire()`` for interruptible holders
        (fault injection): calling it exactly once per request — in a
        ``finally`` — never leaks a slot and never double-releases.
        """
        try:
            self._waiters.remove(request)
            if self._metrics_on:
                self._queued.set(len(self._waiters))
            return  # withdrawn before a slot was ever granted
        except ValueError:
            pass
        if request.triggered:
            self.release()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SlotPool {self.name} {self._in_use}/{self.capacity}>"


class _PSJob:
    __slots__ = ("remaining", "event")

    def __init__(self, remaining: float, event: Event):
        self.remaining = remaining
        self.event = event


class RateDevice:
    """A fixed-rate device with egalitarian processor sharing.

    ``transfer(nbytes)`` returns an event that fires once ``nbytes`` have
    been served; while ``n`` jobs are active each receives ``rate / n``.
    Completion order equals the order implied by remaining work — the
    classic PS queue, recomputed at every arrival/departure.
    """

    _EPS = 1e-9

    def __init__(self, sim: Simulator, rate: float, name: str = "device"):
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.sim = sim
        self.rate = float(rate)
        self.name = name
        self._jobs: list[_PSJob] = []
        self._last_t = 0.0
        self._timer_token = 0
        self._pending: Optional[Event] = None
        #: Horizon batching (vectorized engine): same-instant arrivals /
        #: departures collapse into one PS recomputation via a 0-delay
        #: pooled tick.  The reference engine keeps the fully synchronous
        #: path — it is the oracle the batched mode is diffed against.
        self._defer = _engine_mod.DEFAULT_ENGINE == "vectorized"
        self._flush_tick: Optional[Event] = None
        self.bytes_served = 0.0
        self.busy_time = 0.0
        self.jobs_completed = 0
        # Bound at construction like SlotPool's gauges; the enabled flag
        # lets the hot paths skip even the null-object dispatch.
        self._metrics_on = sim.obs.enabled
        self._depth = sim.obs.metrics.histogram(f"device.{name}.jobs")
        self._served = sim.obs.metrics.counter(f"device.{name}.bytes")

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` the device spent with work queued."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)

    @property
    def active_jobs(self) -> int:
        return len(self._jobs)

    def set_rate(self, rate: float) -> None:
        """Change the service rate mid-simulation (fault injection).

        Work already served stays served: the device is advanced to the
        current time at the old rate, then in-flight jobs are re-timed at
        the new one (the token bump supersedes the stale timer).
        """
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self._advance()
        self.rate = float(rate)
        self._reschedule()

    def transfer(self, nbytes: float) -> Event:
        """Serve ``nbytes``; the returned event's value is the nbytes served."""
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        ev = self.sim.event()
        if nbytes == 0:
            ev.succeed(0.0)
            return ev
        self._advance()
        self._jobs.append(_PSJob(float(nbytes), ev))
        if self._metrics_on:
            self._depth.set(len(self._jobs))
            self._served.add(nbytes)
        self._reschedule()
        return ev

    # -- internals ----------------------------------------------------------
    def _advance(self) -> None:
        now = self.sim.now
        dt = now - self._last_t
        self._last_t = now
        if dt <= 0 or not self._jobs:
            return
        self.busy_time += dt
        share = self.rate / len(self._jobs)
        served = share * dt
        for job in self._jobs:
            before = job.remaining
            job.remaining -= served
            self.bytes_served += min(served, max(before, 0.0))

    def _reschedule(self) -> None:
        self._timer_token += 1
        if self._pending is not None:
            # Tombstone the superseded timer so the kernel never pays a
            # dispatch for it (the token check still guards correctness;
            # cancelled entries advance the clock identically).
            self._pending.cancel()
            self._pending = None
        if self._defer:
            # Work is already integrated (_advance ran at the mutation),
            # so the recomputation can wait until every same-instant
            # arrival/departure is in: one solve per instant instead of
            # one per job.  Intermediate shares are unobservable (dt=0);
            # completions shift only in intra-instant dispatch order.
            ft = self._flush_tick
            if ft is not None and ft.callbacks is not None:
                return  # a flush for this instant is already queued
            self._flush_tick = self.sim.tick(0.0, self._flush)
            return
        self._reschedule_now()

    def _flush(self, ev: Event) -> None:
        self._flush_tick = None
        self._reschedule_now()

    def _reschedule_now(self) -> None:
        token = self._timer_token
        # Complete anything already done.
        done = [j for j in self._jobs if j.remaining <= self._EPS]
        if done:
            self._jobs = [j for j in self._jobs if j.remaining > self._EPS]
            self.jobs_completed += len(done)
            if self._metrics_on:
                self._depth.set(len(self._jobs))
            for job in done:
                job.event.succeed(None)
        if not self._jobs:
            return
        share = self.rate / len(self._jobs)
        min_rem = min(j.remaining for j in self._jobs)
        delay = min_rem / share
        # Pin the jobs this timer is meant to finish: float rounding can
        # leave a residual smaller than the clock's resolution, which
        # would otherwise respawn zero-length timers forever.
        targets = [j for j in self._jobs if j.remaining <= min_rem * (1 + 1e-9)]
        # Pooled tick: fires at the same (instant, seq) a timeout(delay)
        # would, but the event object comes from the kernel's arena.
        self._pending = self.sim.tick(
            delay, lambda ev: self._on_timer(token, targets)
        )

    def _on_timer(self, token: int, targets: list[_PSJob]) -> None:
        if token != self._timer_token:
            return  # superseded by a later arrival/departure
        self._pending = None
        self._advance()
        for job in targets:
            job.remaining = 0.0
        ft = self._flush_tick
        if ft is not None and ft.callbacks is not None:
            # An arrival already queued a flush for this instant — fold
            # the completion into it rather than double-solving.
            self._timer_token += 1
            return
        # Isolated completions recompute synchronously even in deferred
        # mode: there is nothing to coalesce with, and the extra flush
        # tick would make sparse traffic strictly more expensive.
        self._timer_token += 1
        self._reschedule_now()


class Store:
    """An unbounded FIFO channel: ``put`` never blocks, ``get`` waits for an item."""

    def __init__(self, sim: Simulator, name: str = "store"):
        self.sim = sim
        self.name = name
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        ev = self.sim.event()
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> Optional[Any]:
        """Non-blocking get; None when empty."""
        return self._items.popleft() if self._items else None
