"""Declarative, seed-deterministic fault injection for the simulators.

A :class:`FaultPlan` is a frozen description of everything that goes
wrong during a run — node crashes (one-shot at time *t*, or Poisson
churn at rate λ per node), disk and link degradation, whole-node
straggler slowdown.  The plan itself is pure data: the same plan and
seed always produce the same fault timeline, so a faulty run is exactly
as reproducible as a clean one.

Two consumers exist:

* :class:`FaultInjector` turns the plan into kernel processes on a
  :class:`~repro.simnet.cluster.Cluster`.  Crash specs call back into a
  *host* (``crash_node``/``restart_node``), which interrupts the victim
  processes via the kernel's :class:`~repro.simnet.kernel.Interrupt`
  machinery; degradation specs rescale the victim's disk and links in
  place.
* :meth:`FaultPlan.crash_times` materializes the same crash timeline as
  a plain sorted list of times — the analytic form the MPI-D restart
  model consumes, guaranteeing both systems in a comparison see the
  *identical* failure sequence.

Validation is eager (mirroring ``HadoopConfig.validate``): malformed
specs raise at construction, topology mismatches (crash of a
nonexistent node) raise from :meth:`FaultPlan.validate` before any
simulated time passes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Optional, Protocol, Union

from repro.simnet.cluster import Cluster, Node
from repro.simnet.kernel import Interrupt, Process, Simulator
from repro.util.rng import make_rng


# -- fault specifications ----------------------------------------------------
@dataclass(frozen=True)
class NodeCrash:
    """Node ``node`` fails at time ``at``; optionally restarts later.

    ``restart_after=None`` is a permanent loss; otherwise the node comes
    back ``restart_after`` seconds after the crash with empty local
    state (task processes are gone, disk contents survive — the Hadoop
    DataNode model).
    """

    node: int
    at: float
    restart_after: Optional[float] = None

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ValueError(f"crash of negative node id: {self.node}")
        if self.at < 0:
            raise ValueError(f"crash time may not be negative: {self.at}")
        if self.restart_after is not None and self.restart_after <= 0:
            raise ValueError(
                f"restart_after must be positive (or None): {self.restart_after}"
            )


@dataclass(frozen=True)
class CrashRate:
    """Poisson crash/restart churn: each node fails at rate λ (per second).

    Inter-failure gaps are exponential with mean ``1/rate``, sampled per
    node from a stream derived from the plan seed — so two runs with the
    same plan see the same crash times, and adding node 5's stream never
    perturbs node 3's.  After each crash the node is down for
    ``restart_after`` seconds, then rejoins; the next failure gap starts
    after the restart.  ``nodes=None`` targets the host's default
    injectable set (the worker nodes, for the Hadoop simulation).
    """

    rate: float
    nodes: Optional[tuple[int, ...]] = None
    restart_after: float = 30.0
    start: float = 0.0

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"crash rate must be positive: {self.rate}")
        if self.restart_after <= 0:
            raise ValueError(f"restart_after must be positive: {self.restart_after}")
        if self.start < 0:
            raise ValueError(f"start time may not be negative: {self.start}")
        if self.nodes is not None:
            if not self.nodes:
                raise ValueError("empty node tuple (use None for the default set)")
            for node in self.nodes:
                if node < 0:
                    raise ValueError(f"negative node id in crash set: {node}")


@dataclass(frozen=True)
class _Degradation:
    """Common shape of the slowdown specs."""

    node: int
    at: float
    factor: float
    duration: Optional[float] = None

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ValueError(f"degradation of negative node id: {self.node}")
        if self.at < 0:
            raise ValueError(f"degradation time may not be negative: {self.at}")
        if self.factor < 1.0:
            raise ValueError(
                f"slowdown factor must be >= 1 (got {self.factor}); a fault "
                f"never makes hardware faster"
            )
        if self.duration is not None and self.duration <= 0:
            raise ValueError(
                f"duration must be positive (or None for permanent): {self.duration}"
            )


class DiskDegradation(_Degradation):
    """Disk service rate divided by ``factor`` (a dying SATA drive)."""


class LinkDegradation(_Degradation):
    """Both NIC links' capacity divided by ``factor`` (a flaky port)."""


class Straggler(_Degradation):
    """Whole-node slowdown: disk *and* links divided by ``factor``."""


@dataclass(frozen=True)
class LinkFlap:
    """Node ``node``'s NIC goes dark at ``at`` for ``duration`` seconds.

    Both directions drop: in-flight flows over either link die with
    :class:`~repro.simnet.network.FlowFailed` and new flows fail at
    start until the link comes back.  ``flaps > 1`` repeats the outage
    every ``period`` seconds (a wedged switch port cycling), so
    ``period`` must exceed ``duration``.
    """

    node: int
    at: float
    duration: float
    flaps: int = 1
    period: Optional[float] = None

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ValueError(f"link flap of negative node id: {self.node}")
        if self.at < 0:
            raise ValueError(f"flap time may not be negative: {self.at}")
        if self.duration <= 0:
            raise ValueError(f"flap duration must be positive: {self.duration}")
        if self.flaps < 1:
            raise ValueError(f"flap count must be >= 1: {self.flaps}")
        if self.flaps > 1:
            if self.period is None:
                raise ValueError("repeated flaps need a period")
            if self.period <= self.duration:
                raise ValueError(
                    f"flap period ({self.period}) must exceed the outage "
                    f"duration ({self.duration})"
                )


@dataclass(frozen=True)
class NetworkPartition:
    """The cluster splits in two at ``at`` for ``duration`` seconds.

    ``nodes`` is one side of the cut (the other side is everyone else);
    flows crossing the cut die and new cross-cut flows fail at start
    until the partition heals.  Traffic *within* either side is
    untouched — that asymmetry is the whole point of modeling a
    partition rather than N link flaps.
    """

    nodes: tuple[int, ...]
    at: float
    duration: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "nodes", tuple(sorted(set(self.nodes))))
        if not self.nodes:
            raise ValueError("partition needs at least one node on the cut side")
        if self.nodes[0] < 0:
            raise ValueError(f"negative node id in partition: {self.nodes[0]}")
        if self.at < 0:
            raise ValueError(f"partition time may not be negative: {self.at}")
        if self.duration <= 0:
            raise ValueError(f"partition duration must be positive: {self.duration}")


@dataclass(frozen=True)
class FlowLossRate:
    """Kill in-flight flows at a seeded Poisson rate (a lossy network).

    ``rate`` is expected kills per *link*-second on each of the targeted
    nodes' links (``nodes=None`` = every node); each kill picks a
    uniformly random victim among the flows crossing that link at that
    instant (idle links lose nothing).  Victims' waiters see
    :class:`~repro.simnet.network.FlowFailed` — this is the fault that
    exercises shuffle fetch retries and MPI retransmission.  The loss
    window is ``[start, start + duration)``; ``duration=None`` is
    open-ended.
    """

    rate: float
    nodes: Optional[tuple[int, ...]] = None
    start: float = 0.0
    duration: Optional[float] = None

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"loss rate must be positive: {self.rate}")
        if self.start < 0:
            raise ValueError(f"start time may not be negative: {self.start}")
        if self.duration is not None and self.duration <= 0:
            raise ValueError(
                f"duration must be positive (or None for open-ended): {self.duration}"
            )
        if self.nodes is not None:
            if not self.nodes:
                raise ValueError("empty node tuple (use None for all nodes)")
            for node in self.nodes:
                if node < 0:
                    raise ValueError(f"negative node id in loss set: {node}")


@dataclass(frozen=True)
class DiskFailure:
    """A datanode's disk dies at a seeded Poisson rate (per second).

    Each failure destroys every HDFS replica the node currently holds
    (the drive is swapped for an empty one; the node itself keeps
    computing — this is a storage fault, not a crash).  Gaps are
    exponential with mean ``1/rate``, sampled per node from a stream
    derived from the plan seed, so adding node 5's stream never perturbs
    node 3's.  ``nodes=None`` targets the host's default storage set
    (the datanodes).  The failure window is ``[start, start + duration)``;
    ``duration=None`` is open-ended.
    """

    rate: float
    nodes: Optional[tuple[int, ...]] = None
    start: float = 0.0
    duration: Optional[float] = None

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"disk failure rate must be positive: {self.rate}")
        if self.start < 0:
            raise ValueError(f"start time may not be negative: {self.start}")
        if self.duration is not None and self.duration <= 0:
            raise ValueError(
                f"duration must be positive (or None for open-ended): {self.duration}"
            )
        if self.nodes is not None:
            if not self.nodes:
                raise ValueError("empty node tuple (use None for the default set)")
            for node in self.nodes:
                if node < 0:
                    raise ValueError(f"negative node id in disk-failure set: {node}")


@dataclass(frozen=True)
class BlockCorruption:
    """Silent replica corruption at a seeded Poisson rate (per second).

    Each event picks one replica currently stored on the node (uniform,
    from the spec's own stream) and flips its bits; a node holding no
    blocks absorbs the event, like :class:`FlowLossRate` kills on an
    idle link.  Corruption is *latent*: nothing happens until a reader's
    checksum verification catches it, fails over, and reports the bad
    replica for re-replication — the HDFS client protocol.
    """

    rate: float
    nodes: Optional[tuple[int, ...]] = None
    start: float = 0.0
    duration: Optional[float] = None

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"corruption rate must be positive: {self.rate}")
        if self.start < 0:
            raise ValueError(f"start time may not be negative: {self.start}")
        if self.duration is not None and self.duration <= 0:
            raise ValueError(
                f"duration must be positive (or None for open-ended): {self.duration}"
            )
        if self.nodes is not None:
            if not self.nodes:
                raise ValueError("empty node tuple (use None for the default set)")
            for node in self.nodes:
                if node < 0:
                    raise ValueError(f"negative node id in corruption set: {node}")


@dataclass(frozen=True)
class Decommission:
    """Administrative datanode decommission at time ``at``.

    The node leaves the placement pool immediately (no new replicas land
    there) and its blocks are drained by the repair pipeline; existing
    replicas stay *readable* until each has been copied elsewhere —
    exactly HDFS's graceful decommission, and deliberately gentler than
    :class:`DiskFailure`.
    """

    node: int
    at: float = 0.0

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ValueError(f"decommission of negative node id: {self.node}")
        if self.at < 0:
            raise ValueError(f"decommission time may not be negative: {self.at}")


FaultSpec = Union[
    NodeCrash,
    CrashRate,
    DiskDegradation,
    LinkDegradation,
    Straggler,
    LinkFlap,
    NetworkPartition,
    FlowLossRate,
    DiskFailure,
    BlockCorruption,
    Decommission,
]

#: Specs consumed by the network layer (vs. node/disk faults).  Plans
#: containing any of these switch the Hadoop shuffle into its
#: retry/backoff pipeline and make MPI sends fallible.
NETWORK_FAULT_SPECS = (LinkFlap, NetworkPartition, FlowLossRate)

#: Specs consumed by the storage layer.  Plans containing any of these
#: make the simulations build a live replica map (StorageManager) with
#: read-path failover and, for Hadoop, the re-replication pipeline.
STORAGE_FAULT_SPECS = (DiskFailure, BlockCorruption, Decommission)


# -- the plan ----------------------------------------------------------------
@dataclass(frozen=True)
class FaultPlan:
    """An immutable collection of fault specs plus the injection seed."""

    specs: tuple[FaultSpec, ...] = ()
    seed: int = 2011

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))
        for spec in self.specs:
            if not isinstance(
                spec,
                (
                    NodeCrash,
                    CrashRate,
                    DiskDegradation,
                    LinkDegradation,
                    Straggler,
                    LinkFlap,
                    NetworkPartition,
                    FlowLossRate,
                    DiskFailure,
                    BlockCorruption,
                    Decommission,
                ),
            ):
                raise TypeError(f"not a fault spec: {spec!r}")

    def __bool__(self) -> bool:
        return bool(self.specs)

    def has_network_faults(self) -> bool:
        """True when any spec can fail flows (the consumers' mode switch)."""
        return any(isinstance(spec, NETWORK_FAULT_SPECS) for spec in self.specs)

    def has_storage_faults(self) -> bool:
        """True when any spec touches stored replicas (storage mode switch)."""
        return any(isinstance(spec, STORAGE_FAULT_SPECS) for spec in self.specs)

    def _spec_targets(self, spec: FaultSpec) -> tuple[int, ...]:
        """The node ids a spec names explicitly (empty = default set)."""
        if isinstance(spec, (CrashRate, FlowLossRate, DiskFailure, BlockCorruption)):
            return spec.nodes or ()
        if isinstance(spec, NetworkPartition):
            return spec.nodes
        # NodeCrash, the degradations, LinkFlap, and Decommission name one node.
        return (spec.node,)

    def validate(self, num_nodes: int) -> None:
        """Check every spec against the target topology; raises ValueError.

        Uniformly eager: *every* spec type's node references are checked
        (value-range errors like negative factors already raised at spec
        construction), so a bad plan fails before any simulated time
        passes regardless of which fault kind carries the mistake.
        """
        if num_nodes < 1:
            raise ValueError(f"cluster must have at least one node: {num_nodes}")
        for spec in self.specs:
            name = type(spec).__name__
            for node in self._spec_targets(spec):
                if node >= num_nodes:
                    raise ValueError(
                        f"{name} targets node {node}, but the cluster "
                        f"has only nodes 0..{num_nodes - 1}"
                    )
            if isinstance(spec, NetworkPartition) and len(spec.nodes) >= num_nodes:
                raise ValueError(
                    f"{name} puts all {num_nodes} nodes on one side; a "
                    f"partition needs nodes on both sides of the cut"
                )

    def shifted(self, offset: float) -> "FaultPlan":
        """The plan as seen by a run starting ``offset`` seconds into the
        fault timeline.

        A resubmitted job does not reset the world: a partition scheduled
        at t=40 hits a job restarted at t=30 ten seconds in, and one that
        already healed never recurs.  One-shot specs move earlier (and
        are dropped once fully in the past), in-progress outages keep
        only their remainder, and rate specs keep running with their
        window clipped.
        """
        if offset < 0:
            raise ValueError(f"offset may not be negative: {offset}")
        if offset == 0:
            return self
        specs: list[FaultSpec] = []
        for spec in self.specs:
            if isinstance(spec, NodeCrash):
                at = spec.at - offset
                if at >= 0:  # a crash in the past does not recur
                    specs.append(replace(spec, at=at))
            elif isinstance(spec, CrashRate):
                specs.append(replace(spec, start=max(0.0, spec.start - offset)))
            elif isinstance(spec, (FlowLossRate, DiskFailure, BlockCorruption)):
                start = max(0.0, spec.start - offset)
                if spec.duration is None:
                    specs.append(replace(spec, start=start))
                else:
                    end = spec.start + spec.duration - offset
                    if end > start:
                        specs.append(
                            replace(spec, start=start, duration=end - start)
                        )
            elif isinstance(spec, Decommission):
                # A decommission in the past does not un-happen: the node
                # is still out of the pool when the job restarts.
                specs.append(replace(spec, at=max(0.0, spec.at - offset)))
            elif isinstance(spec, NetworkPartition):
                at = spec.at - offset
                if at >= 0:
                    specs.append(replace(spec, at=at))
                elif spec.duration + at > 0:  # mid-outage: the remainder
                    specs.append(replace(spec, at=0.0, duration=spec.duration + at))
            elif isinstance(spec, LinkFlap):
                at = spec.at - offset
                flaps = spec.flaps
                while flaps > 1 and at + spec.duration <= 0:
                    assert spec.period is not None
                    at += spec.period
                    flaps -= 1
                if at >= 0:
                    specs.append(replace(spec, at=at, flaps=flaps))
                elif spec.duration + at > 0:
                    # Mid-outage: the remainder now, later flaps unchanged.
                    specs.append(
                        LinkFlap(spec.node, 0.0, spec.duration + at)
                    )
                    if flaps > 1:
                        assert spec.period is not None
                        specs.append(
                            replace(
                                spec, at=at + spec.period, flaps=flaps - 1
                            )
                        )
            else:  # the degradations
                at = spec.at - offset
                if at >= 0:
                    specs.append(replace(spec, at=at))
                elif spec.duration is None:
                    specs.append(replace(spec, at=0.0))
                elif spec.duration + at > 0:
                    specs.append(
                        replace(spec, at=0.0, duration=spec.duration + at)
                    )
        return FaultPlan(specs=tuple(specs), seed=self.seed)

    # -- the analytic view ----------------------------------------------------
    def crash_times(
        self, nodes: Iterable[int], horizon: float
    ) -> list[float]:
        """All crash instants hitting ``nodes`` within ``[0, horizon]``.

        Deterministic in (plan, seed): the per-node Poisson streams here
        are byte-identical to the ones :class:`FaultInjector` plays out
        on the DES, and extending ``horizon`` only appends later times —
        prefixes never change.
        """
        if horizon < 0:
            raise ValueError(f"horizon may not be negative: {horizon}")
        targets = set(nodes)
        times: list[float] = []
        for spec in self.specs:
            if isinstance(spec, NodeCrash):
                if spec.node in targets and spec.at <= horizon:
                    times.append(spec.at)
            elif isinstance(spec, CrashRate):
                churn = spec.nodes if spec.nodes is not None else tuple(sorted(targets))
                for node in churn:
                    if node not in targets:
                        continue
                    rng = make_rng(self.seed, "faults", "crash-rate", node)
                    t = spec.start
                    while True:
                        t += float(rng.exponential(1.0 / spec.rate))
                        if t > horizon:
                            break
                        times.append(t)
                        t += spec.restart_after  # down while restarting
        return sorted(times)

    def disk_failure_times(
        self, nodes: Iterable[int], horizon: float
    ) -> list[tuple[float, int]]:
        """All ``(time, node)`` disk failures within ``[0, horizon]``.

        The analytic twin of the injector's :class:`DiskFailure`
        processes: identical per-node streams (seeded by the plan seed
        and the node id), and extending ``horizon`` only appends —
        prefixes never change.
        """
        if horizon < 0:
            raise ValueError(f"horizon may not be negative: {horizon}")
        targets = set(nodes)
        times: list[tuple[float, int]] = []
        for spec in self.specs:
            if not isinstance(spec, DiskFailure):
                continue
            hit = spec.nodes if spec.nodes is not None else tuple(sorted(targets))
            end = None if spec.duration is None else spec.start + spec.duration
            for node in hit:
                if node not in targets:
                    continue
                rng = make_rng(self.seed, "faults", "disk-failure", node)
                t = spec.start
                while True:
                    t += float(rng.exponential(1.0 / spec.rate))
                    if t > horizon or (end is not None and t > end):
                        break
                    times.append((t, node))
        return sorted(times)


class FaultHost(Protocol):
    """What the injector needs from the simulation driving it."""

    def crash_node(self, node_id: int, now: float) -> None: ...

    def restart_node(self, node_id: int, now: float) -> None: ...


class StorageFaultHost(Protocol):
    """What storage specs need: a live replica map to damage.

    Implemented by :class:`repro.hadoop.storage.StorageManager`; passed
    to the injector only when the plan has storage specs.
    """

    def disk_failed(self, node_id: int, now: float) -> None: ...

    def corrupt_replica(self, node_id: int, now: float, rng) -> bool: ...

    def decommission(self, node_id: int, now: float) -> None: ...


class FaultInjector:
    """Plays a :class:`FaultPlan` out as processes on one simulator.

    Crash specs call ``host.crash_node`` / ``host.restart_node`` (the
    host interrupts its victim processes); degradations rescale the
    node's disk rate and link capacities directly.  ``stop()`` tears the
    injector down once the observed job is over, so open-ended churn
    processes never keep the event heap alive.
    """

    def __init__(
        self,
        sim: Simulator,
        cluster: Cluster,
        plan: FaultPlan,
        host: FaultHost,
        default_nodes: Optional[Iterable[int]] = None,
        storage: Optional[StorageFaultHost] = None,
        default_storage_nodes: Optional[Iterable[int]] = None,
    ):
        plan.validate(len(cluster))
        if plan.has_storage_faults() and storage is None:
            raise ValueError(
                "plan has storage fault specs but no storage host was given"
            )
        self.sim = sim
        self.cluster = cluster
        self.plan = plan
        self.host = host
        self.storage = storage
        self.default_nodes = (
            tuple(default_nodes)
            if default_nodes is not None
            else tuple(range(len(cluster)))
        )
        # Storage specs default to the datanode set, which may differ
        # from the crash/loss default (e.g. MPI-D injects flow loss on
        # every node but only workers hold HDFS blocks).
        self.default_storage_nodes = (
            tuple(default_storage_nodes)
            if default_storage_nodes is not None
            else self.default_nodes
        )
        self._procs: list[Process] = []
        self._started = False
        self.crashes_injected = 0
        self.restarts_injected = 0
        self.degradations_applied = 0
        self.flows_killed = 0
        self.link_flaps = 0
        self.partitions = 0
        self.disk_failures_injected = 0
        self.corruptions_injected = 0
        self.decommissions_injected = 0

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> None:
        """Spawn one kernel process per fault spec (idempotent)."""
        if self._started:
            return
        self._started = True
        for i, spec in enumerate(self.plan.specs):
            if isinstance(spec, NodeCrash):
                self._spawn(self._crash_proc(spec), f"fault-crash-n{spec.node}")
            elif isinstance(spec, CrashRate):
                for node in spec.nodes or self.default_nodes:
                    self._spawn(self._churn_proc(spec, node), f"fault-churn-n{node}")
            elif isinstance(spec, LinkFlap):
                self._spawn(self._flap_proc(spec), f"fault-flap-n{spec.node}")
            elif isinstance(spec, NetworkPartition):
                self._spawn(self._partition_proc(spec), f"fault-partition{i}")
            elif isinstance(spec, FlowLossRate):
                for node in spec.nodes or self.default_nodes:
                    n = self.cluster.node(node)
                    for link in (n.uplink, n.downlink):
                        self._spawn(
                            self._flow_loss_proc(spec, node, link),
                            f"fault-loss-{link.name}",
                        )
            elif isinstance(spec, DiskFailure):
                for node in spec.nodes or self.default_storage_nodes:
                    self._spawn(
                        self._disk_failure_proc(spec, node), f"fault-disk-n{node}"
                    )
            elif isinstance(spec, BlockCorruption):
                for node in spec.nodes or self.default_storage_nodes:
                    self._spawn(
                        self._corruption_proc(spec, node), f"fault-corrupt-n{node}"
                    )
            elif isinstance(spec, Decommission):
                self._spawn(
                    self._decommission_proc(spec), f"fault-decom-n{spec.node}"
                )
            else:
                self._spawn(self._degrade_proc(spec), f"fault-degrade{i}-n{spec.node}")

    def stop(self) -> None:
        """Interrupt every live fault process (job over; churn must die)."""
        for proc in self._procs:
            if proc.is_alive:
                proc.interrupt("fault injection stopped")

    def _spawn(self, gen, name: str) -> None:
        self._procs.append(self.sim.process(gen, name=name))

    # -- processes --------------------------------------------------------------
    def _record(self, kind: str, node: int) -> None:
        """Fault instants + counters on the simulator's observer."""
        obs = self.sim.obs
        if obs.enabled:
            obs.tracer.instant(
                "fault", f"{kind} node{node}", track=f"faults:n{node}", node=node
            )
            obs.metrics.counter(f"faults.{kind}").add()

    def _crash_proc(self, spec: NodeCrash):
        sim = self.sim
        try:
            yield sim.timeout(spec.at)
            self.crashes_injected += 1
            self._record("crash", spec.node)
            self.host.crash_node(spec.node, sim.now)
            if spec.restart_after is not None:
                yield sim.timeout(spec.restart_after)
                self.restarts_injected += 1
                self._record("restart", spec.node)
                self.host.restart_node(spec.node, sim.now)
        except Interrupt:
            return

    def _churn_proc(self, spec: CrashRate, node: int):
        sim = self.sim
        rng = make_rng(self.plan.seed, "faults", "crash-rate", node)
        try:
            yield sim.timeout(spec.start)
            while True:
                yield sim.timeout(float(rng.exponential(1.0 / spec.rate)))
                self.crashes_injected += 1
                self._record("crash", node)
                self.host.crash_node(node, sim.now)
                yield sim.timeout(spec.restart_after)
                self.restarts_injected += 1
                self._record("restart", node)
                self.host.restart_node(node, sim.now)
        except Interrupt:
            return

    def _degrade_proc(self, spec: _Degradation):
        sim = self.sim
        node = self.cluster.node(spec.node)
        kind = type(spec).__name__
        try:
            yield sim.timeout(spec.at)
            self._scale_node(node, spec, 1.0 / spec.factor)
            self.degradations_applied += 1
            sid = sim.obs.tracer.begin(
                "fault",
                f"{kind} node{spec.node} /{spec.factor:g}",
                track=f"faults:n{spec.node}",
                factor=spec.factor,
            )
            sim.obs.metrics.counter("faults.degradation").add()
            if spec.duration is None:
                sim.obs.tracer.end(sid, permanent=True)
                return
            yield sim.timeout(spec.duration)
            sim.obs.tracer.end(sid)
            self._scale_node(node, spec, spec.factor)
        except Interrupt:
            return

    def _record_net(self, kind: str, detail: str) -> None:
        """Network-fault instants live on one shared track."""
        obs = self.sim.obs
        if obs.enabled:
            obs.tracer.instant("fault", f"{kind} {detail}", track="faults:net")
            obs.metrics.counter(f"faults.{kind}").add()

    def _flap_proc(self, spec: LinkFlap):
        sim = self.sim
        net = self.cluster.network
        node = self.cluster.node(spec.node)
        try:
            yield sim.timeout(spec.at)
            for i in range(spec.flaps):
                if i:
                    yield sim.timeout(spec.period - spec.duration)
                self.link_flaps += 1
                self._record_net("link-down", f"node{spec.node}")
                net.set_link_down(node.uplink)
                net.set_link_down(node.downlink)
                yield sim.timeout(spec.duration)
                self._record_net("link-up", f"node{spec.node}")
                net.set_link_up(node.uplink)
                net.set_link_up(node.downlink)
        except Interrupt:
            # Stopped mid-outage: never strand the links down.
            net.set_link_up(node.uplink)
            net.set_link_up(node.downlink)
            return

    def _partition_proc(self, spec: NetworkPartition):
        sim = self.sim
        net = self.cluster.network
        cut = set(spec.nodes)
        groups: dict = {}
        for node in self.cluster.nodes:
            side = 1 if node.node_id in cut else 0
            groups[node.uplink] = side
            groups[node.downlink] = side
        try:
            yield sim.timeout(spec.at)
            self.partitions += 1
            self._record_net("partition", f"nodes{list(spec.nodes)}")
            net.set_partition(groups)
            yield sim.timeout(spec.duration)
            self._record_net("partition-heal", f"nodes{list(spec.nodes)}")
            net.clear_partition()
        except Interrupt:
            net.clear_partition()
            return

    def _flow_loss_proc(self, spec: FlowLossRate, node_id: int, link):
        """One Poisson kill stream per targeted link.

        The stream's gaps are fixed by (seed, link name) alone, so a kill
        landing on an idle link is simply absorbed — loss does not shift
        to a later, busier instant, and two runs draw identical
        timelines regardless of traffic.
        """
        sim = self.sim
        net = self.cluster.network
        rng = make_rng(self.plan.seed, "faults", "flow-loss", link.name)
        end = None if spec.duration is None else spec.start + spec.duration
        try:
            yield sim.timeout(spec.start)
            while True:
                gap = float(rng.exponential(1.0 / spec.rate))
                if end is not None and sim.now + gap > end:
                    return
                yield sim.timeout(gap)
                flows = net.flows_on(link)
                if not flows:
                    continue
                victim = flows[int(rng.integers(len(flows)))]
                self.flows_killed += 1
                self._record_net("flow-loss", link.name)
                net.fail_flow(victim, reason=f"loss:{link.name}")
        except Interrupt:
            return

    def _disk_failure_proc(self, spec: DiskFailure, node: int):
        """One Poisson disk-death stream per targeted datanode.

        Gaps are fixed by (seed, node) alone — the same discipline as
        flow loss, and byte-identical to the analytic
        :meth:`FaultPlan.disk_failure_times` stream.
        """
        sim = self.sim
        rng = make_rng(self.plan.seed, "faults", "disk-failure", node)
        end = None if spec.duration is None else spec.start + spec.duration
        try:
            yield sim.timeout(spec.start)
            while True:
                gap = float(rng.exponential(1.0 / spec.rate))
                if end is not None and sim.now + gap > end:
                    return
                yield sim.timeout(gap)
                self.disk_failures_injected += 1
                self._record("disk-failure", node)
                assert self.storage is not None
                self.storage.disk_failed(node, sim.now)
        except Interrupt:
            return

    def _corruption_proc(self, spec: BlockCorruption, node: int):
        """Poisson latent-corruption stream; empty disks absorb events."""
        sim = self.sim
        rng = make_rng(self.plan.seed, "faults", "block-corruption", node)
        end = None if spec.duration is None else spec.start + spec.duration
        try:
            yield sim.timeout(spec.start)
            while True:
                gap = float(rng.exponential(1.0 / spec.rate))
                if end is not None and sim.now + gap > end:
                    return
                yield sim.timeout(gap)
                assert self.storage is not None
                if self.storage.corrupt_replica(node, sim.now, rng):
                    self.corruptions_injected += 1
                    self._record("block-corruption", node)
        except Interrupt:
            return

    def _decommission_proc(self, spec: Decommission):
        sim = self.sim
        try:
            yield sim.timeout(spec.at)
            self.decommissions_injected += 1
            self._record("decommission", spec.node)
            assert self.storage is not None
            self.storage.decommission(spec.node, sim.now)
        except Interrupt:
            return

    def _scale_node(self, node: Node, spec: _Degradation, scale: float) -> None:
        if isinstance(spec, (DiskDegradation, Straggler)):
            node.disk.set_rate(node.disk.rate * scale)
        if isinstance(spec, (LinkDegradation, Straggler)):
            network = self.cluster.network
            network.set_link_capacity(node.uplink, node.uplink.capacity * scale)
            network.set_link_capacity(node.downlink, node.downlink.capacity * scale)
