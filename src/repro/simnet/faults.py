"""Declarative, seed-deterministic fault injection for the simulators.

A :class:`FaultPlan` is a frozen description of everything that goes
wrong during a run — node crashes (one-shot at time *t*, or Poisson
churn at rate λ per node), disk and link degradation, whole-node
straggler slowdown.  The plan itself is pure data: the same plan and
seed always produce the same fault timeline, so a faulty run is exactly
as reproducible as a clean one.

Two consumers exist:

* :class:`FaultInjector` turns the plan into kernel processes on a
  :class:`~repro.simnet.cluster.Cluster`.  Crash specs call back into a
  *host* (``crash_node``/``restart_node``), which interrupts the victim
  processes via the kernel's :class:`~repro.simnet.kernel.Interrupt`
  machinery; degradation specs rescale the victim's disk and links in
  place.
* :meth:`FaultPlan.crash_times` materializes the same crash timeline as
  a plain sorted list of times — the analytic form the MPI-D restart
  model consumes, guaranteeing both systems in a comparison see the
  *identical* failure sequence.

Validation is eager (mirroring ``HadoopConfig.validate``): malformed
specs raise at construction, topology mismatches (crash of a
nonexistent node) raise from :meth:`FaultPlan.validate` before any
simulated time passes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Protocol, Union

from repro.simnet.cluster import Cluster, Node
from repro.simnet.kernel import Interrupt, Process, Simulator
from repro.util.rng import make_rng


# -- fault specifications ----------------------------------------------------
@dataclass(frozen=True)
class NodeCrash:
    """Node ``node`` fails at time ``at``; optionally restarts later.

    ``restart_after=None`` is a permanent loss; otherwise the node comes
    back ``restart_after`` seconds after the crash with empty local
    state (task processes are gone, disk contents survive — the Hadoop
    DataNode model).
    """

    node: int
    at: float
    restart_after: Optional[float] = None

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ValueError(f"crash of negative node id: {self.node}")
        if self.at < 0:
            raise ValueError(f"crash time may not be negative: {self.at}")
        if self.restart_after is not None and self.restart_after <= 0:
            raise ValueError(
                f"restart_after must be positive (or None): {self.restart_after}"
            )


@dataclass(frozen=True)
class CrashRate:
    """Poisson crash/restart churn: each node fails at rate λ (per second).

    Inter-failure gaps are exponential with mean ``1/rate``, sampled per
    node from a stream derived from the plan seed — so two runs with the
    same plan see the same crash times, and adding node 5's stream never
    perturbs node 3's.  After each crash the node is down for
    ``restart_after`` seconds, then rejoins; the next failure gap starts
    after the restart.  ``nodes=None`` targets the host's default
    injectable set (the worker nodes, for the Hadoop simulation).
    """

    rate: float
    nodes: Optional[tuple[int, ...]] = None
    restart_after: float = 30.0
    start: float = 0.0

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"crash rate must be positive: {self.rate}")
        if self.restart_after <= 0:
            raise ValueError(f"restart_after must be positive: {self.restart_after}")
        if self.start < 0:
            raise ValueError(f"start time may not be negative: {self.start}")
        if self.nodes is not None:
            if not self.nodes:
                raise ValueError("empty node tuple (use None for the default set)")
            for node in self.nodes:
                if node < 0:
                    raise ValueError(f"negative node id in crash set: {node}")


@dataclass(frozen=True)
class _Degradation:
    """Common shape of the slowdown specs."""

    node: int
    at: float
    factor: float
    duration: Optional[float] = None

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ValueError(f"degradation of negative node id: {self.node}")
        if self.at < 0:
            raise ValueError(f"degradation time may not be negative: {self.at}")
        if self.factor < 1.0:
            raise ValueError(
                f"slowdown factor must be >= 1 (got {self.factor}); a fault "
                f"never makes hardware faster"
            )
        if self.duration is not None and self.duration <= 0:
            raise ValueError(
                f"duration must be positive (or None for permanent): {self.duration}"
            )


class DiskDegradation(_Degradation):
    """Disk service rate divided by ``factor`` (a dying SATA drive)."""


class LinkDegradation(_Degradation):
    """Both NIC links' capacity divided by ``factor`` (a flaky port)."""


class Straggler(_Degradation):
    """Whole-node slowdown: disk *and* links divided by ``factor``."""


FaultSpec = Union[NodeCrash, CrashRate, DiskDegradation, LinkDegradation, Straggler]


# -- the plan ----------------------------------------------------------------
@dataclass(frozen=True)
class FaultPlan:
    """An immutable collection of fault specs plus the injection seed."""

    specs: tuple[FaultSpec, ...] = ()
    seed: int = 2011

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))
        for spec in self.specs:
            if not isinstance(
                spec, (NodeCrash, CrashRate, DiskDegradation, LinkDegradation, Straggler)
            ):
                raise TypeError(f"not a fault spec: {spec!r}")

    def __bool__(self) -> bool:
        return bool(self.specs)

    def validate(self, num_nodes: int) -> None:
        """Check every spec against the target topology; raises ValueError."""
        if num_nodes < 1:
            raise ValueError(f"cluster must have at least one node: {num_nodes}")
        for spec in self.specs:
            if isinstance(spec, CrashRate):
                for node in spec.nodes or ():
                    if node >= num_nodes:
                        raise ValueError(
                            f"crash-rate targets node {node}, but the cluster "
                            f"has only nodes 0..{num_nodes - 1}"
                        )
            elif spec.node >= num_nodes:
                raise ValueError(
                    f"{type(spec).__name__} targets node {spec.node}, but the "
                    f"cluster has only nodes 0..{num_nodes - 1}"
                )

    # -- the analytic view ----------------------------------------------------
    def crash_times(
        self, nodes: Iterable[int], horizon: float
    ) -> list[float]:
        """All crash instants hitting ``nodes`` within ``[0, horizon]``.

        Deterministic in (plan, seed): the per-node Poisson streams here
        are byte-identical to the ones :class:`FaultInjector` plays out
        on the DES, and extending ``horizon`` only appends later times —
        prefixes never change.
        """
        if horizon < 0:
            raise ValueError(f"horizon may not be negative: {horizon}")
        targets = set(nodes)
        times: list[float] = []
        for spec in self.specs:
            if isinstance(spec, NodeCrash):
                if spec.node in targets and spec.at <= horizon:
                    times.append(spec.at)
            elif isinstance(spec, CrashRate):
                churn = spec.nodes if spec.nodes is not None else tuple(sorted(targets))
                for node in churn:
                    if node not in targets:
                        continue
                    rng = make_rng(self.seed, "faults", "crash-rate", node)
                    t = spec.start
                    while True:
                        t += float(rng.exponential(1.0 / spec.rate))
                        if t > horizon:
                            break
                        times.append(t)
                        t += spec.restart_after  # down while restarting
        return sorted(times)


class FaultHost(Protocol):
    """What the injector needs from the simulation driving it."""

    def crash_node(self, node_id: int, now: float) -> None: ...

    def restart_node(self, node_id: int, now: float) -> None: ...


class FaultInjector:
    """Plays a :class:`FaultPlan` out as processes on one simulator.

    Crash specs call ``host.crash_node`` / ``host.restart_node`` (the
    host interrupts its victim processes); degradations rescale the
    node's disk rate and link capacities directly.  ``stop()`` tears the
    injector down once the observed job is over, so open-ended churn
    processes never keep the event heap alive.
    """

    def __init__(
        self,
        sim: Simulator,
        cluster: Cluster,
        plan: FaultPlan,
        host: FaultHost,
        default_nodes: Optional[Iterable[int]] = None,
    ):
        plan.validate(len(cluster))
        self.sim = sim
        self.cluster = cluster
        self.plan = plan
        self.host = host
        self.default_nodes = (
            tuple(default_nodes)
            if default_nodes is not None
            else tuple(range(len(cluster)))
        )
        self._procs: list[Process] = []
        self._started = False
        self.crashes_injected = 0
        self.restarts_injected = 0
        self.degradations_applied = 0

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> None:
        """Spawn one kernel process per fault spec (idempotent)."""
        if self._started:
            return
        self._started = True
        for i, spec in enumerate(self.plan.specs):
            if isinstance(spec, NodeCrash):
                self._spawn(self._crash_proc(spec), f"fault-crash-n{spec.node}")
            elif isinstance(spec, CrashRate):
                for node in spec.nodes or self.default_nodes:
                    self._spawn(self._churn_proc(spec, node), f"fault-churn-n{node}")
            else:
                self._spawn(self._degrade_proc(spec), f"fault-degrade{i}-n{spec.node}")

    def stop(self) -> None:
        """Interrupt every live fault process (job over; churn must die)."""
        for proc in self._procs:
            if proc.is_alive:
                proc.interrupt("fault injection stopped")

    def _spawn(self, gen, name: str) -> None:
        self._procs.append(self.sim.process(gen, name=name))

    # -- processes --------------------------------------------------------------
    def _record(self, kind: str, node: int) -> None:
        """Fault instants + counters on the simulator's observer."""
        obs = self.sim.obs
        if obs.enabled:
            obs.tracer.instant(
                "fault", f"{kind} node{node}", track=f"faults:n{node}", node=node
            )
            obs.metrics.counter(f"faults.{kind}").add()

    def _crash_proc(self, spec: NodeCrash):
        sim = self.sim
        try:
            yield sim.timeout(spec.at)
            self.crashes_injected += 1
            self._record("crash", spec.node)
            self.host.crash_node(spec.node, sim.now)
            if spec.restart_after is not None:
                yield sim.timeout(spec.restart_after)
                self.restarts_injected += 1
                self._record("restart", spec.node)
                self.host.restart_node(spec.node, sim.now)
        except Interrupt:
            return

    def _churn_proc(self, spec: CrashRate, node: int):
        sim = self.sim
        rng = make_rng(self.plan.seed, "faults", "crash-rate", node)
        try:
            yield sim.timeout(spec.start)
            while True:
                yield sim.timeout(float(rng.exponential(1.0 / spec.rate)))
                self.crashes_injected += 1
                self._record("crash", node)
                self.host.crash_node(node, sim.now)
                yield sim.timeout(spec.restart_after)
                self.restarts_injected += 1
                self._record("restart", node)
                self.host.restart_node(node, sim.now)
        except Interrupt:
            return

    def _degrade_proc(self, spec: _Degradation):
        sim = self.sim
        node = self.cluster.node(spec.node)
        kind = type(spec).__name__
        try:
            yield sim.timeout(spec.at)
            self._scale_node(node, spec, 1.0 / spec.factor)
            self.degradations_applied += 1
            sid = sim.obs.tracer.begin(
                "fault",
                f"{kind} node{spec.node} /{spec.factor:g}",
                track=f"faults:n{spec.node}",
                factor=spec.factor,
            )
            sim.obs.metrics.counter("faults.degradation").add()
            if spec.duration is None:
                sim.obs.tracer.end(sid, permanent=True)
                return
            yield sim.timeout(spec.duration)
            sim.obs.tracer.end(sid)
            self._scale_node(node, spec, spec.factor)
        except Interrupt:
            return

    def _scale_node(self, node: Node, spec: _Degradation, scale: float) -> None:
        if isinstance(spec, (DiskDegradation, Straggler)):
            node.disk.set_rate(node.disk.rate * scale)
        if isinstance(spec, (LinkDegradation, Straggler)):
            network = self.cluster.network
            network.set_link_capacity(node.uplink, node.uplink.capacity * scale)
            network.set_link_capacity(node.downlink, node.downlink.capacity * scale)
