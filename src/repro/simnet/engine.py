"""Flow-advancement engine selection for :mod:`repro.simnet`.

Two engines advance the flow population between max-min re-solves:

* ``reference`` — the original scalar path: one Python loop over the
  flow set per advance, per-flow link accounting, plain ``Timeout``
  completion timers.  Retained verbatim as the correctness oracle.
* ``vectorized`` (the default when numpy is available) — "horizon
  batching": remaining-bytes and rate vectors live in dense numpy
  arrays, the next rate-change epoch is found with array ops, and every
  flow advances to that horizon in one vector step.  Completion timers
  come from the kernel's pooled tick arena, and periodic timers
  (heartbeats, lockstep spill chains) coalesce into shared ticks when
  they land on the same instant.  Exports are bit-for-bit identical to
  the reference engine — pinned by the differential tests in
  ``tests/simnet/test_maxmin_differential.py`` and self-checked by every
  ``repro bench`` macro.

Pick the engine per network (``Network(sim, engine="reference")``), per
process (the ``REPRO_FLOW_ENGINE`` environment variable), or lexically
(:func:`use_engine`) — the same three knobs the max-min solver exposes
via ``REPRO_MAXMIN_SOLVER`` / ``Network(solver=)`` / ``use_solver``.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

try:  # pragma: no cover - numpy is part of the baked toolchain
    import numpy as _np
except ImportError:  # pragma: no cover - vectorized engine needs numpy
    _np = None

#: True when the vectorized engine can actually run in this interpreter.
HAVE_NUMPY = _np is not None

_ENGINES = ("vectorized", "reference")

#: Process-wide default for :class:`~repro.simnet.network.Network`
#: instances constructed without an explicit ``engine``.  Falls back to
#: the reference engine when numpy is missing so the simulator never
#: hard-requires it.
DEFAULT_ENGINE = os.environ.get(
    "REPRO_FLOW_ENGINE", "vectorized" if HAVE_NUMPY else "reference"
)


def validate_engine(engine: str) -> str:
    if engine not in _ENGINES:
        raise ValueError(f"unknown flow engine {engine!r} (want one of {_ENGINES})")
    if engine == "vectorized" and not HAVE_NUMPY:
        raise ValueError("the vectorized flow engine requires numpy")
    return engine


@contextmanager
def use_engine(engine: str):
    """Run a block with a different default flow engine.

    The bench harness and the golden differential tests use this to
    re-run whole experiments under the reference engine::

        with use_engine("reference"):
            result = fig6_wordcount.run()
    """
    global DEFAULT_ENGINE
    validate_engine(engine)
    prev, DEFAULT_ENGINE = DEFAULT_ENGINE, engine
    try:
        yield
    finally:
        DEFAULT_ENGINE = prev
