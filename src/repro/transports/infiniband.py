"""MPI-over-InfiniBand cost model (paper future work (4)).

"(4) to utilize high performance interconnects such as the Infiniband
and datacenter networks" — and the paper's Related Work leans on Sur et
al.'s result that IB already helps HDFS.  This transport models MVAPICH-
class MPI on 2010-era DDR InfiniBand: ~2 µs small-message latency
(user-level communication, no kernel TCP stack — the "order of
magnitude" win of [11]), ~1.5 GB/s saturated bandwidth, RDMA rendezvous
for large messages.

Used by :mod:`repro.experiments.interconnect_whatif` to answer: how much
more would MPI-D gain if the cluster had IB instead of GigE?
"""

from __future__ import annotations

from repro.transports.base import Transport, WireCosts
from repro.util.units import KiB, MiB

#: DDR IB 4x, 2010: 16 Gbit/s signal, ~1.5 GB/s MPI payload bandwidth.
IB_BANDWIDTH = 1.5e9
IB_LATENCY_0 = 2e-6
IB_EAGER_LIMIT = 12 * KiB  # MVAPICH default
IB_RNDV_HANDSHAKE = 4e-6
IB_STREAM_PER_MSG = 0.6e-6


class InfinibandTransport(Transport):
    """``MPI_Send``/``MPI_Recv`` over RDMA-capable DDR InfiniBand."""

    name = "MPI/InfiniBand"
    jitter_sigma = 0.01

    def __init__(
        self,
        latency_0: float = IB_LATENCY_0,
        peak_bandwidth: float = IB_BANDWIDTH,
        eager_limit: int = IB_EAGER_LIMIT,
        rndv_handshake: float = IB_RNDV_HANDSHAKE,
        stream_per_msg: float = IB_STREAM_PER_MSG,
    ):
        if latency_0 <= 0 or peak_bandwidth <= 0:
            raise ValueError("IB model constants must be positive")
        self.latency_0 = latency_0
        self.peak_bandwidth = peak_bandwidth
        self.eager_limit = int(eager_limit)
        self.rndv_handshake = rndv_handshake
        self.stream_per_msg = stream_per_msg

    def latency(self, nbytes: int) -> float:
        self._check_size(nbytes)
        if nbytes <= self.eager_limit:
            return self.latency_0 + nbytes / self.peak_bandwidth
        return self.latency_0 + self.rndv_handshake + nbytes / self.peak_bandwidth

    def packet_stream_cost(self, packet_bytes: int) -> float:
        if packet_bytes <= 0:
            raise ValueError(f"packet size must be positive, got {packet_bytes}")
        return max(self.stream_per_msg, packet_bytes / self.peak_bandwidth)

    def wire_costs(self, nbytes: int) -> WireCosts:
        self._check_size(nbytes)
        setup = self.latency_0 + (
            self.rndv_handshake if nbytes > self.eager_limit else 0.0
        )
        return WireCosts(
            setup_time=setup, wire_bytes=float(nbytes), rate_cap=self.peak_bandwidth
        )
