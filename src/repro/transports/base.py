"""Transport abstraction: what one message costs, three different ways.

A transport answers three questions about moving ``n`` payload bytes
point-to-point on an otherwise idle network:

* :meth:`Transport.latency` — one-way time of a single message (half the
  ping-pong), the quantity in the paper's Figure 2;
* :meth:`Transport.stream_time` — time to push a large volume in
  back-to-back packets, where pipelined transports (MPI, HTTP chunks)
  overlap per-message CPU with the wire while request/response
  transports (Hadoop RPC) cannot — the methodology of Figure 3;
* :meth:`Transport.wire_costs` — the decomposition the DES needs to
  price a message *under contention*: non-overlapped setup time plus
  actual bytes on the wire, so the network model charges shared links
  correctly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class WireCosts:
    """DES-facing cost decomposition of one message.

    ``setup_time`` is charged before any byte moves (and does not occupy
    the link); ``wire_bytes`` (payload + framing) then flow through the
    shared network at whatever rate contention allows; ``rate_cap``
    bounds the flow below link speed when the protocol itself is the
    bottleneck (Hadoop RPC never exceeds ~1.4 MB/s no matter how idle
    the wire is).
    """

    setup_time: float
    wire_bytes: float
    rate_cap: float

    def __post_init__(self) -> None:
        if self.setup_time < 0 or self.wire_bytes < 0 or self.rate_cap <= 0:
            raise ValueError(f"invalid wire costs: {self}")


class Transport(ABC):
    """Cost model of one point-to-point communication primitive."""

    #: Short name used in experiment tables ("MPICH2", "Hadoop RPC", ...).
    name: str = "transport"

    # -- latency (Figure 2 methodology) -------------------------------------
    @abstractmethod
    def latency(self, nbytes: int) -> float:
        """One-way time in seconds for a single ``nbytes`` message, idle net."""

    def ping_pong(self, nbytes: int) -> float:
        """Echo round-trip: the paper reports ``ping_pong / 2`` as latency."""
        self._check_size(nbytes)
        return 2.0 * self.latency(nbytes)

    # -- streaming (Figure 3 methodology) ------------------------------------
    @abstractmethod
    def packet_stream_cost(self, packet_bytes: int) -> float:
        """Steady-state time consumed per ``packet_bytes`` packet when
        sending many back-to-back."""

    def stream_time(self, total_bytes: int, packet_bytes: int) -> float:
        """Time to move ``total_bytes`` split into ``packet_bytes`` packets.

        The last partial packet is charged like a full one, as a real
        loop would.
        """
        self._check_size(total_bytes)
        if packet_bytes <= 0:
            raise ValueError(f"packet size must be positive, got {packet_bytes}")
        n_full, rem = divmod(int(total_bytes), int(packet_bytes))
        t = n_full * self.packet_stream_cost(packet_bytes)
        if rem:
            t += self.packet_stream_cost(rem)
        return t

    def bandwidth(self, total_bytes: int, packet_bytes: int) -> float:
        """Achieved bandwidth (bytes/s) of :meth:`stream_time`."""
        t = self.stream_time(total_bytes, packet_bytes)
        if t <= 0:
            return float("inf")
        return total_bytes / t

    # -- DES integration -----------------------------------------------------
    def wire_costs(self, nbytes: int) -> WireCosts:
        """Default decomposition: non-wire part of latency as setup, payload
        as wire bytes at full link rate.  Subclasses refine."""
        self._check_size(nbytes)
        from repro.transports.calibration import WIRE_BANDWIDTH

        wire = nbytes / WIRE_BANDWIDTH
        setup = max(0.0, self.latency(nbytes) - wire)
        return WireCosts(setup_time=setup, wire_bytes=float(nbytes), rate_cap=WIRE_BANDWIDTH)

    # -- microbench hooks -----------------------------------------------------
    def trial_latency(self, nbytes: int, trial: int, rng: np.random.Generator) -> float:
        """One measured ping-pong/2 sample: model value plus trial noise.

        Base transports have no warmup; JVM-hosted ones override to model
        class loading on early trials (the paper drops the first five).
        """
        base = self.latency(nbytes)
        return base * float(rng.lognormal(mean=0.0, sigma=self.jitter_sigma))

    #: Multiplicative measurement noise (sigma of a lognormal).
    jitter_sigma: float = 0.03

    @staticmethod
    def _check_size(nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError(f"message size may not be negative: {nbytes}")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name!r}>"
