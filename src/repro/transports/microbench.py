"""The paper's micro-benchmark methodology, re-run against the models.

Section II-B: "Each test result in the following experiments is an
average value of 100 tests. In order to avoid the overhead caused by
class loading and object instantiation, we drop the first 5 test values
of Hadoop, which is implemented by Java."

:class:`LatencyBench` reproduces the ping-pong latency sweep of Figure 2
(latency = ping-pong time / 2), :class:`BandwidthBench` the fixed-volume
(128 MB) variable-packet bandwidth sweep of Figure 3.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.transports.base import Transport
from repro.transports.calibration import HADOOP_WARMUP_TRIALS
from repro.util.rng import make_rng
from repro.util.units import MiB


@dataclass(frozen=True)
class PingPongResult:
    """Averaged ping-pong/2 latency at one message size."""

    transport: str
    nbytes: int
    latency: float
    trials: int
    dropped: int
    samples_std: float


@dataclass(frozen=True)
class BandwidthResult:
    """Achieved bandwidth moving ``total_bytes`` in ``packet_bytes`` packets."""

    transport: str
    packet_bytes: int
    total_bytes: int
    bandwidth: float  # bytes/s
    elapsed: float


def default_latency_sizes() -> list[int]:
    """The paper's Figure 2 x-axis: powers of two, 1 B .. 64 MB."""
    return [2**i for i in range(0, 27)]


def default_bandwidth_packets() -> list[int]:
    """The paper's Figure 3 x-axis: packet sizes 1 B .. 64 MB."""
    return [2**i for i in range(0, 27)]


@dataclass
class LatencyBench:
    """Ping-pong latency sweep over one transport.

    ``drop_first`` defaults to the paper's rule: drop 5 warmup trials for
    JVM transports (those that define a warmup penalty), 0 otherwise.
    """

    transport: Transport
    trials: int = 100
    drop_first: int | None = None
    seed: int = 20110913  # ICPP 2011 opened Sep 13

    def _n_drop(self) -> int:
        if self.drop_first is not None:
            return self.drop_first
        is_jvm = getattr(self.transport, "warmup_trials", 0) > 0
        return HADOOP_WARMUP_TRIALS if is_jvm else 0

    def measure(self, nbytes: int) -> PingPongResult:
        """Average of ``trials`` ping-pong/2 samples at one size."""
        if self.trials < 1:
            raise ValueError(f"need at least one trial, got {self.trials}")
        rng = make_rng(self.seed, self.transport.name, "latency", nbytes)
        samples = np.array(
            [
                self.transport.trial_latency(nbytes, trial, rng)
                for trial in range(self.trials)
            ]
        )
        drop = min(self._n_drop(), self.trials - 1)
        kept = samples[drop:]
        return PingPongResult(
            transport=self.transport.name,
            nbytes=nbytes,
            latency=float(kept.mean()),
            trials=self.trials,
            dropped=drop,
            samples_std=float(kept.std()),
        )

    def sweep(self, sizes: list[int] | None = None) -> list[PingPongResult]:
        return [self.measure(n) for n in (sizes or default_latency_sizes())]


@dataclass
class BandwidthBench:
    """Fixed-volume variable-packet bandwidth sweep (Figure 3 methodology)."""

    transport: Transport
    total_bytes: int = 128 * MiB
    jitter: bool = True
    seed: int = 20110913

    def measure(self, packet_bytes: int) -> BandwidthResult:
        elapsed = self.transport.stream_time(self.total_bytes, packet_bytes)
        if self.jitter:
            rng = make_rng(self.seed, self.transport.name, "bw", packet_bytes)
            elapsed *= float(rng.lognormal(0.0, self.transport.jitter_sigma))
        return BandwidthResult(
            transport=self.transport.name,
            packet_bytes=packet_bytes,
            total_bytes=self.total_bytes,
            bandwidth=self.total_bytes / elapsed,
            elapsed=elapsed,
        )

    def sweep(self, packets: list[int] | None = None) -> list[BandwidthResult]:
        return [self.measure(p) for p in (packets or default_bandwidth_packets())]
