"""Socket-over-Java-NIO cost model (paper future-work item (1)).

The paper's conclusion lists "compare the primitives between MPI and
Socket over Java NIO, which is mainly used to transfer data blocks
between datanodes in Hadoop" as future work.  This model implements that
comparison point: direct NIO channels carry no HTTP framing and no RPC
envelope, but still pay JVM buffer management per read/write, landing
between Jetty and MPICH2.  Used by the HDFS replication pipeline in the
simulated Hadoop and by the ``fig3`` ablation bench.
"""

from __future__ import annotations

from repro.transports import calibration as cal
from repro.transports.base import Transport, WireCosts


class NioSocketTransport(Transport):
    """One write+read of ``nbytes`` over a direct ``SocketChannel``."""

    name = "Socket/NIO"
    jitter_sigma = 0.04

    def __init__(
        self,
        request_setup: float = cal.NIO_REQUEST_SETUP,
        stream_per_msg: float = cal.NIO_STREAM_PER_MSG,
        stream_peak: float = cal.NIO_STREAM_PEAK,
        wire_bandwidth: float = cal.WIRE_BANDWIDTH,
    ):
        if request_setup <= 0 or stream_peak <= 0:
            raise ValueError("NIO model constants must be positive")
        self.request_setup = request_setup
        self.stream_per_msg = stream_per_msg
        self.stream_peak = stream_peak
        self.wire_bandwidth = wire_bandwidth

    def latency(self, nbytes: int) -> float:
        self._check_size(nbytes)
        return self.request_setup + max(
            nbytes / self.wire_bandwidth, nbytes / self.stream_peak
        )

    def packet_stream_cost(self, packet_bytes: int) -> float:
        if packet_bytes <= 0:
            raise ValueError(f"packet size must be positive, got {packet_bytes}")
        cpu = self.stream_per_msg
        wire = packet_bytes / min(self.stream_peak, self.wire_bandwidth)
        return max(cpu, wire)

    def wire_costs(self, nbytes: int) -> WireCosts:
        self._check_size(nbytes)
        return WireCosts(
            setup_time=self.request_setup,
            wire_bytes=float(nbytes),
            rate_cap=self.stream_peak,
        )
