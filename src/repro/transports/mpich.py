"""MPICH2 point-to-point cost model (eager/rendezvous over TCP on GigE).

Structure (MPICH2 1.3, ch3:nemesis over TCP):

* messages up to the eager limit (64 KiB) are sent **eagerly** — one
  message on the wire, received into an intermediate buffer and copied
  out, so latency is ``L0 + n * (1/wire + eager_per_byte)``;
* larger messages use **rendezvous** — an RTS/CTS handshake (one extra
  small-message round) followed by a zero-copy payload transfer at the
  saturated rate.

Constants come from :mod:`repro.transports.calibration`, fit to the
paper's MPICH2 anchors (~0.52 ms at 1 B, ~0.59 ms at 1 KB, 10.3 ms at
1 MB, 572 ms at 64 MB, ~111 MB/s streaming peak).
"""

from __future__ import annotations

from repro.transports import calibration as cal
from repro.transports.base import Transport, WireCosts
from repro.transports.retry import RetryPolicy


class MpichTransport(Transport):
    """``MPI_Send``/``MPI_Recv`` between two ranks on different nodes."""

    name = "MPICH2"
    jitter_sigma = 0.02  # the paper notes MPICH2's curve is "much smoother"

    def __init__(
        self,
        latency_0: float = cal.MPICH_LATENCY_0,
        eager_limit: int = cal.MPICH_EAGER_LIMIT,
        eager_per_byte: float = cal.MPICH_EAGER_PER_BYTE,
        rndv_handshake: float = cal.MPICH_RNDV_HANDSHAKE,
        rndv_bandwidth: float = cal.MPICH_RNDV_BANDWIDTH,
        stream_per_msg: float = cal.MPICH_STREAM_PER_MSG,
        stream_peak: float = cal.MPICH_STREAM_PEAK,
        wire_bandwidth: float = cal.WIRE_BANDWIDTH,
    ):
        if latency_0 <= 0 or rndv_bandwidth <= 0 or stream_peak <= 0:
            raise ValueError("MPICH model constants must be positive")
        if eager_limit < 0:
            raise ValueError(f"eager limit may not be negative: {eager_limit}")
        self.latency_0 = latency_0
        self.eager_limit = int(eager_limit)
        self.eager_per_byte = eager_per_byte
        self.rndv_handshake = rndv_handshake
        self.rndv_bandwidth = rndv_bandwidth
        self.stream_per_msg = stream_per_msg
        self.stream_peak = stream_peak
        self.wire_bandwidth = wire_bandwidth

    # -- latency ---------------------------------------------------------------
    def latency(self, nbytes: int) -> float:
        self._check_size(nbytes)
        if nbytes <= self.eager_limit:
            return self.latency_0 + nbytes * (
                1.0 / self.wire_bandwidth + self.eager_per_byte
            )
        return self.latency_0 + self.rndv_handshake + nbytes / self.rndv_bandwidth

    # -- streaming -----------------------------------------------------------------
    def packet_stream_cost(self, packet_bytes: int) -> float:
        """Back-to-back sends overlap CPU and wire; the slower of the two
        paces the pipeline.  Large packets saturate at the streaming peak
        (slightly below wire speed — library copies and flow control)."""
        if packet_bytes <= 0:
            raise ValueError(f"packet size must be positive, got {packet_bytes}")
        cpu = self.stream_per_msg
        if packet_bytes > self.eager_limit:
            # The rendezvous handshake per message is not pipelined away.
            cpu += self.rndv_handshake
        wire = packet_bytes / min(self.stream_peak, self.wire_bandwidth)
        return max(cpu, wire)

    # -- reliability ---------------------------------------------------------------
    def reliable_policy(self) -> RetryPolicy:
        """Retransmission schedule for the reliable-transport mode.

        Transport-level recovery works on RTT scales, not human ones:
        detection starts around a TCP RTO (~50 ms on this LAN, far above
        the 50 µs RTT), doubles per loss, and gives a send ~30 tries
        before the library declares the link dead and aborts the job —
        at which point the whole-job-restart model takes over, exactly
        like baseline MPI but much later on the loss-rate axis.
        """
        return RetryPolicy(
            base=0.05, factor=2.0, max_delay=2.0, retries=30, jitter=0.25
        )

    # -- DES decomposition -----------------------------------------------------------
    def wire_costs(self, nbytes: int) -> WireCosts:
        self._check_size(nbytes)
        if nbytes <= self.eager_limit:
            setup = self.latency_0 + nbytes * self.eager_per_byte
        else:
            setup = self.latency_0 + self.rndv_handshake
        return WireCosts(
            setup_time=setup,
            wire_bytes=float(nbytes),
            rate_cap=self.rndv_bandwidth,
        )
