"""HTTP-over-Jetty cost model (the shuffle copy-stage servlet path).

Structure of one map-output fetch, as extracted by the paper's authors
from the TaskTracker's ``MapOutputServlet``:

* TCP connect (or keep-alive reuse) + HTTP request/response headers +
  servlet dispatch — a per-request setup cost;
* the body streams in chunks through the servlet's output stream —
  per-chunk CPU overlapped with the wire, so throughput approaches the
  link rate for packets beyond a few hundred bytes ("Jetty ... can use
  the bandwidth effectively since the message size exceeding 256
  bytes").

The paper measured only Jetty's bandwidth (Figure 3), not its latency;
the latency model here is the structural sum, used by the simulated
shuffle where per-fetch setup dominates small transfers.
"""

from __future__ import annotations

from repro.transports import calibration as cal
from repro.transports.base import Transport, WireCosts


class JettyHttpTransport(Transport):
    """One HTTP GET of ``nbytes`` from an embedded Jetty server."""

    name = "HTTP/Jetty"
    jitter_sigma = 0.06  # "the peak bandwidth of MPICH2 is much smoother than Jetty"

    def __init__(
        self,
        request_setup: float = cal.JETTY_REQUEST_SETUP,
        header_bytes: int = cal.JETTY_HEADER_BYTES,
        stream_per_msg: float = cal.JETTY_STREAM_PER_MSG,
        stream_peak: float = cal.JETTY_STREAM_PEAK,
        wire_bandwidth: float = cal.WIRE_BANDWIDTH,
    ):
        if request_setup <= 0 or stream_peak <= 0 or wire_bandwidth <= 0:
            raise ValueError("Jetty model constants must be positive")
        self.request_setup = request_setup
        self.header_bytes = int(header_bytes)
        self.stream_per_msg = stream_per_msg
        self.stream_peak = stream_peak
        self.wire_bandwidth = wire_bandwidth

    # -- latency -----------------------------------------------------------------
    def latency(self, nbytes: int) -> float:
        self._check_size(nbytes)
        wire = (nbytes + self.header_bytes) / self.wire_bandwidth
        body = nbytes / self.stream_peak
        return self.request_setup + max(wire, body)

    # -- streaming -----------------------------------------------------------------
    def packet_stream_cost(self, packet_bytes: int) -> float:
        """Chunked transfer encoding on a kept-alive connection: per-chunk
        CPU overlapped with the wire.  The connection setup is paid once
        and amortizes to nothing over a 128 MB transfer, so it is not
        charged per packet (matching the paper's measurement, which
        reuses one connection)."""
        if packet_bytes <= 0:
            raise ValueError(f"packet size must be positive, got {packet_bytes}")
        cpu = self.stream_per_msg
        wire = packet_bytes / min(self.stream_peak, self.wire_bandwidth)
        return max(cpu, wire)

    # -- DES decomposition --------------------------------------------------------------
    def wire_costs(self, nbytes: int) -> WireCosts:
        self._check_size(nbytes)
        return WireCosts(
            setup_time=self.request_setup,
            wire_bytes=float(nbytes + self.header_bytes),
            rate_cap=self.stream_peak,
        )
