"""Published anchor measurements and the interpolator that fits them.

Every constant in this module is traceable to a sentence in the paper
(Section II-B unless noted).  The transport models are *structural*
(per-call setup, serialization, framing, wire time) but their constants
are calibrated here so the reproduced curves pass through the published
points — the paper's testbed is gone, its measurements are not.

Paper anchors used:

* Hadoop RPC ping-pong latency: ~1.3 ms for 1 B–16 B; 2.49x MPICH2 at
  1 B; 15.1x at 1 KB (=> 8.9 ms); 1259 ms at 1 MB (123x MPICH2's
  10.2 ms); 56827 ms at 64 MB (MPICH2: 572 ms).
* MPICH2 latency: <1 ms for 1 B–1 KB; 0.6 ms at 1 KB rising to 10.3 ms
  at 1 MB; 572 ms at 64 MB.
* Bandwidth moving 128 MB: Hadoop RPC peaks at ~1.4 MB/s; Jetty ~80 MB/s
  at 256 B packets rising to ~108 MB/s average peak; MPICH2 ~60 MB/s at
  small packets rising to ~111 MB/s average peak (2-3% above Jetty).

The paper prints bandwidth in "MB per second" — we read those as decimal
megabytes (1e6 B), the convention of netperf-style reporting.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Sequence

from repro.util.units import KiB, MiB, MS

# --- wire ------------------------------------------------------------------
#: Effective GigE TCP goodput on the testbed (bytes/s).  125 MB/s wire rate
#: minus Ethernet/IP/TCP framing.
WIRE_BANDWIDTH = 117.0 * MiB

# --- MPICH2 ----------------------------------------------------------------
#: Half ping-pong time of a 1-byte message.  Derived from the paper:
#: Hadoop RPC is 1.3 ms at 1 B and "2.49 times of that in MPICH2".
MPICH_LATENCY_0 = 1.3 * MS / 2.49  # ~0.522 ms

#: MPICH2 eager/rendezvous switch (MPICH2 1.3 default for nemesis/tcp).
MPICH_EAGER_LIMIT = 64 * KiB

#: The rendezvous handshake costs one extra small-message round:
#: RTS/CTS before the payload moves.
MPICH_RNDV_HANDSHAKE = MPICH_LATENCY_0

#: Saturation bandwidth of the rendezvous path, fit to "572 ms at 64 MB":
#: (0.572 s - setup) for 64 MiB.
MPICH_RNDV_BANDWIDTH = (64 * MiB) / (0.572 - MPICH_LATENCY_0 - MPICH_RNDV_HANDSHAKE)

#: Per-byte overhead on the eager path beyond wire time (intermediate
#: copies on the receive side).  Pinned so the eager curve meets the
#: rendezvous curve exactly at the 64 KiB protocol switch — the measured
#: curve is monotone, and with this value the 1 KB latency lands at
#: ~0.53 ms, consistent with the paper's "does not exceed 1 ms" and its
#: ~15x RPC/MPI ratio at 1 KB.
MPICH_EAGER_PER_BYTE = (
    MPICH_RNDV_HANDSHAKE / MPICH_EAGER_LIMIT
    + 1.0 / MPICH_RNDV_BANDWIDTH
    - 1.0 / WIRE_BANDWIDTH
)

#: Streaming (back-to-back MPI_Send) per-message CPU cost, fit to the
#: bandwidth figure's ~60 MB/s at 256 B packets.
MPICH_STREAM_PER_MSG = 256 / 60e6  # ~4.3 us

#: Streaming saturation rate: "average peak ~111 MB per second".
MPICH_STREAM_PEAK = 111e6

# --- HTTP over Jetty --------------------------------------------------------
#: Connection + servlet dispatch cost of one HTTP GET on the testbed.
#: Not measured in the paper (only bandwidth is); typical embedded-Jetty
#: service time on 2010-era hardware.
JETTY_REQUEST_SETUP = 1.5 * MS

#: HTTP header bytes per request/response pair.
JETTY_HEADER_BYTES = 300

#: Per-chunk CPU cost while streaming, fit to ~80 MB/s at 256 B packets.
JETTY_STREAM_PER_MSG = 256 / 80e6  # ~3.2 us

#: Streaming saturation rate: "Jetty is about 108 MB per second",
#: 2-3% below MPICH2.
JETTY_STREAM_PEAK = 108e6

# --- Hadoop RPC --------------------------------------------------------------
#: Ping-pong *half* latency anchors (bytes -> seconds): the published curve.
#: 256 KiB is pinned at 100x the MPICH2 model ("when the message size
#: exceeds 256 KB, the Hadoop RPC latency is 100 times higher").
HADOOP_RPC_LATENCY_ANCHORS: tuple[tuple[float, float], ...] = (
    (1, 1.3 * MS),
    (16, 1.3 * MS),
    (1 * KiB, 8.9 * MS),
    (256 * KiB, 0.350),  # ~100x MPICH2's ~3.5 ms at 256 KiB
    (1 * MiB, 1.259),
    (64 * MiB, 56.827),
)

#: Per-call fixed cost (connection reuse, method dispatch, Writable
#: envelope): the measured small-message floor.
HADOOP_RPC_CALL_SETUP = 1.3 * MS

#: Java warmup: the paper drops the first 5 trials "to avoid the overhead
#: caused by class loading and object instantiation".  Penalty multiplier
#: applied to trial i < HADOOP_WARMUP_TRIALS in the microbench.
HADOOP_WARMUP_TRIALS = 5
HADOOP_WARMUP_FACTOR = 4.0

# --- Socket over Java NIO (paper future-work item (1)) -----------------------
#: NIO direct sockets sit between Jetty and raw TCP: no HTTP framing, but
#: JVM buffer management on each read/write.  Used by HDFS data transfer.
NIO_REQUEST_SETUP = 0.7 * MS
NIO_STREAM_PER_MSG = 1.5e-6
NIO_STREAM_PEAK = 112e6


class LogLogInterpolator:
    """Piecewise power-law interpolation through (size, value) anchors.

    Between anchors the curve is linear in (log size, log value) — the
    natural interpolation for latency/bandwidth curves, which are straight
    segments on the paper's log-log plots.  Outside the anchor range the
    nearest segment's slope is extended.
    """

    def __init__(self, anchors: Sequence[tuple[float, float]]):
        pts = sorted(anchors)
        if len(pts) < 2:
            raise ValueError("need at least two anchors")
        for size, value in pts:
            if size <= 0 or value <= 0:
                raise ValueError(f"anchors must be positive, got {(size, value)}")
        for (s0, _), (s1, _) in zip(pts, pts[1:]):
            if s0 == s1:
                raise ValueError(f"duplicate anchor size {s0}")
        self._xs = [math.log(s) for s, _ in pts]
        self._ys = [math.log(v) for _, v in pts]

    def __call__(self, size: float) -> float:
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        x = math.log(size)
        xs, ys = self._xs, self._ys
        # Segment index: clamp to the end segments for extrapolation.
        i = bisect_right(xs, x) - 1
        i = max(0, min(i, len(xs) - 2))
        x0, x1 = xs[i], xs[i + 1]
        y0, y1 = ys[i], ys[i + 1]
        t = (x - x0) / (x1 - x0)
        return math.exp(y0 + t * (y1 - y0))
