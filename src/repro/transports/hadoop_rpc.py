"""Hadoop RPC cost model (the ``VersionedProtocol`` proxy path, 0.20.2).

Why Hadoop RPC is slow for bulk data, structurally:

* every call pays connection/dispatch/envelope overhead (~1.3 ms floor —
  the measured 1 B–16 B plateau);
* the parameter is marshalled through ``ObjectWritable`` +
  ``DataOutputStream`` — byte-at-a-time serialization, repeated buffer
  growth and copies on both sides;
* the call is synchronous request/response: nothing pipelines, so a
  stream of calls can never hide any of the above (the ~1.4 MB/s
  bandwidth ceiling of Figure 3).

The latency curve is a piecewise power law through the paper's published
anchors (:data:`repro.transports.calibration.HADOOP_RPC_LATENCY_ANCHORS`),
which encodes exactly the gaps the paper reports: 2.49x MPICH2 at 1 B,
15.1x at 1 KB, >100x beyond 256 KB, 123x at 1 MB.
"""

from __future__ import annotations

import numpy as np

from repro.transports import calibration as cal
from repro.transports.base import Transport, WireCosts
from repro.transports.calibration import LogLogInterpolator


class HadoopRpcTransport(Transport):
    """One ``proxy.method(param)`` invocation carrying ``nbytes`` of payload."""

    name = "Hadoop RPC"
    jitter_sigma = 0.08  # JVM: GC pauses make the curve noisy

    def __init__(
        self,
        anchors=cal.HADOOP_RPC_LATENCY_ANCHORS,
        call_setup: float = cal.HADOOP_RPC_CALL_SETUP,
        warmup_trials: int = cal.HADOOP_WARMUP_TRIALS,
        warmup_factor: float = cal.HADOOP_WARMUP_FACTOR,
    ):
        if call_setup <= 0:
            raise ValueError(f"call setup must be positive, got {call_setup}")
        if warmup_factor < 1.0:
            raise ValueError(f"warmup factor must be >= 1, got {warmup_factor}")
        self._curve = LogLogInterpolator(anchors)
        self.call_setup = call_setup
        self.warmup_trials = warmup_trials
        self.warmup_factor = warmup_factor

    # -- latency ----------------------------------------------------------------
    def latency(self, nbytes: int) -> float:
        self._check_size(nbytes)
        # The interpolator needs a positive size; a 0-byte call is an RPC
        # with an empty parameter — same floor as 1 byte.
        return self._curve(max(1, nbytes))

    # -- streaming ---------------------------------------------------------------
    def packet_stream_cost(self, packet_bytes: int) -> float:
        """Synchronous request/response: each packet costs a full call
        round — request marshalling, server handling, and the (small)
        response — with zero overlap between consecutive calls."""
        if packet_bytes <= 0:
            raise ValueError(f"packet size must be positive, got {packet_bytes}")
        # Full call latency for the request + the return path of an
        # empty acknowledgement (half a minimal ping-pong).
        return self.latency(packet_bytes) + self.latency(1)

    # -- DES decomposition -----------------------------------------------------------
    def wire_costs(self, nbytes: int) -> WireCosts:
        self._check_size(nbytes)
        wire_bytes = float(nbytes) + 120.0  # Writable envelope + headers
        total = self.latency(nbytes)
        # The serialization path caps throughput far below the link rate:
        # charge the cap so that even an idle network cannot make the RPC
        # fast in the DES.
        rate_cap = max(1.0, wire_bytes / max(total - self.call_setup, 1e-9))
        return WireCosts(
            setup_time=self.call_setup, wire_bytes=wire_bytes, rate_cap=rate_cap
        )

    # -- measurement model -------------------------------------------------------------
    def trial_latency(self, nbytes: int, trial: int, rng: np.random.Generator) -> float:
        """JVM warmup: class loading + JIT make the first trials slower;
        the paper's methodology drops the first five."""
        base = super().trial_latency(nbytes, trial, rng)
        if trial < self.warmup_trials:
            # Decaying penalty: trial 0 is worst.
            decay = (self.warmup_trials - trial) / self.warmup_trials
            base *= 1.0 + (self.warmup_factor - 1.0) * decay
        return base
