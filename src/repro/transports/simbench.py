"""Cross-validation: transport models inside the simulated cluster.

The analytic models (:mod:`repro.transports.microbench`) answer "what
does one message cost on an idle network"; the DES consumes the same
models through :meth:`~repro.transports.base.Transport.wire_costs` plus
the shared-network flow machinery.  This module runs the ping-pong
*through the simulated cluster* and checks the two planes agree — the
glue test that justifies pricing the Hadoop shuffle with these models.

Also provides :func:`contended_transfer_time`, which the ablation and
teaching examples use to show how contention bends each transport.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simnet.cluster import Cluster, ClusterSpec
from repro.simnet.kernel import Simulator
from repro.transports.base import Transport


@dataclass(frozen=True)
class SimPingPong:
    """One simulated ping-pong measurement."""

    transport: str
    nbytes: int
    sim_latency: float  # half round-trip, simulated cluster
    model_latency: float  # transport.latency(nbytes), analytic


def sim_ping_pong(
    transport: Transport,
    nbytes: int,
    cluster_spec: ClusterSpec | None = None,
) -> SimPingPong:
    """Half round-trip of one message between two idle cluster nodes.

    The simulated time decomposes the transport's ``wire_costs`` onto the
    cluster fabric: setup before the bytes, payload through the shared
    links capped at the protocol rate.
    """
    spec = cluster_spec or ClusterSpec(num_nodes=2)
    sim = Simulator()
    cluster = Cluster(sim, spec)
    done_at = {}

    def one_way(src: int, dst: int):
        wc = transport.wire_costs(nbytes)
        yield cluster.send(
            src, dst, wc.wire_bytes, extra_latency=wc.setup_time, rate_cap=wc.rate_cap
        )

    def pingpong(sim_):
        yield sim.process(one_way(0, 1))
        yield sim.process(one_way(1, 0))
        done_at["t"] = sim.now

    sim.process(pingpong(sim))
    sim.run()
    return SimPingPong(
        transport=transport.name,
        nbytes=nbytes,
        sim_latency=done_at["t"] / 2.0,
        model_latency=transport.latency(nbytes),
    )


def contended_transfer_time(
    transport: Transport,
    nbytes: int,
    concurrent_senders: int,
    cluster_spec: ClusterSpec | None = None,
) -> float:
    """Makespan of ``concurrent_senders`` nodes each pushing ``nbytes``
    to one receiver — the fan-in pattern of a shuffle fetch wave."""
    if concurrent_senders < 1:
        raise ValueError(f"need at least one sender, got {concurrent_senders}")
    spec = cluster_spec or ClusterSpec(num_nodes=concurrent_senders + 1)
    if spec.num_nodes < concurrent_senders + 1:
        raise ValueError("cluster too small for the requested senders")
    sim = Simulator()
    cluster = Cluster(sim, spec)
    wc = transport.wire_costs(nbytes)

    def sender(src: int):
        yield cluster.send(
            src, 0, wc.wire_bytes, extra_latency=wc.setup_time, rate_cap=wc.rate_cap
        )

    procs = [
        sim.process(sender(src), name=f"tx{src}")
        for src in range(1, concurrent_senders + 1)
    ]

    def waiter(sim_):
        yield sim.all_of(procs)

    sim.process(waiter(sim))
    return sim.run()
