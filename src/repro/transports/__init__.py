"""Point-to-point communication cost models.

The paper's Section II-B compares three primitives on the same GigE
testbed:

* **Hadoop RPC** — request/response over a ``VersionedProtocol`` proxy
  with Writable serialization (:mod:`repro.transports.hadoop_rpc`);
* **HTTP over Jetty** — the servlet path used by the shuffle copy stage
  (:mod:`repro.transports.jetty`);
* **MPICH2** — ``MPI_Send``/``MPI_Recv`` with the eager/rendezvous
  protocol switch (:mod:`repro.transports.mpich`).

Each model decomposes one message of ``n`` bytes into a fixed per-call
cost, serialization/copy costs, framing bytes and wire time, with
constants calibrated against the paper's published anchor measurements
(:mod:`repro.transports.calibration`).  :mod:`repro.transports.microbench`
re-runs the paper's ping-pong latency and fixed-volume bandwidth
methodology on top of the models.
"""

from repro.transports.base import Transport, WireCosts
from repro.transports.retry import RetryPolicy
from repro.transports.mpich import MpichTransport
from repro.transports.hadoop_rpc import HadoopRpcTransport
from repro.transports.jetty import JettyHttpTransport
from repro.transports.nio import NioSocketTransport
from repro.transports.microbench import (
    LatencyBench,
    BandwidthBench,
    PingPongResult,
    BandwidthResult,
)
from repro.transports.simbench import (
    SimPingPong,
    contended_transfer_time,
    sim_ping_pong,
)

__all__ = [
    "Transport",
    "WireCosts",
    "RetryPolicy",
    "MpichTransport",
    "HadoopRpcTransport",
    "JettyHttpTransport",
    "NioSocketTransport",
    "LatencyBench",
    "BandwidthBench",
    "PingPongResult",
    "BandwidthResult",
    "SimPingPong",
    "sim_ping_pong",
    "contended_transfer_time",
]
