"""Shared retry/backoff policy for fallible transfers.

Both recovery layers built in this repo — the Hadoop shuffle's fetch
retries (0.20's ``ShuffleScheduler`` semantics) and the optional
reliable-transport mode of the MPI-D simulator — follow the same
textbook scheme: capped exponential backoff with multiplicative jitter
drawn from the run's seeded RNG.  :class:`RetryPolicy` is that scheme as
frozen data, so a policy can live on a config object and two subsystems
can be compared under identical retry behavior.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff: ``min(max_delay, base * factor**(k-1))``.

    ``retries`` counts the attempts *after* the first (so a policy with
    ``retries=4`` allows five tries total).  ``jitter`` spreads each
    delay uniformly over ``[1-jitter, 1+jitter]`` times the nominal
    value when an RNG is supplied — deterministic runs pass the run's
    derived stream, analytic callers pass None for the nominal delay.
    """

    base: float = 1.0
    factor: float = 2.0
    max_delay: float = 30.0
    retries: int = 4
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.base <= 0:
            raise ValueError(f"backoff base must be positive: {self.base}")
        if self.factor < 1.0:
            raise ValueError(f"backoff factor must be >= 1: {self.factor}")
        if self.max_delay < self.base:
            raise ValueError(
                f"max delay ({self.max_delay}) below the base delay ({self.base})"
            )
        if self.retries < 0:
            raise ValueError(f"retry count may not be negative: {self.retries}")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1): {self.jitter}")

    def delay(self, attempt: int, rng: Optional[object] = None) -> float:
        """Backoff before retry ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError(f"retry attempts are 1-based: {attempt}")
        nominal = min(self.max_delay, self.base * self.factor ** (attempt - 1))
        if rng is not None and self.jitter > 0.0:
            nominal *= 1.0 + self.jitter * (2.0 * float(rng.random()) - 1.0)
        return nominal

    def total_delay(self, rng: Optional[object] = None) -> float:
        """Sum of every backoff a fully exhausted retry loop would wait."""
        return sum(self.delay(k, rng) for k in range(1, self.retries + 1))
