"""Command index: ``python -m repro`` lists every runnable experiment.

``python -m repro trace <experiment>`` runs one observed experiment and
writes a Perfetto trace (see :mod:`repro.obs.cli`).

``python -m repro bench`` runs the engine perf harness and writes
``BENCH_engine.json`` (see :mod:`repro.bench.cli`).

``python -m repro replay <trace-or-experiment>`` folds a run into
playback frames and writes a self-contained HTML dashboard (see
:mod:`repro.obs.replay_cli`).
"""

from __future__ import annotations

import sys

COMMANDS = [
    ("repro.experiments.fig1_shuffle", "Figure 1: per-reducer copy/sort/reduce"),
    ("repro.experiments.table1_copy_pct", "Table I: copy-stage share grid"),
    ("repro.experiments.fig2_latency", "Figure 2: RPC vs MPICH2 latency"),
    ("repro.experiments.fig3_bandwidth", "Figure 3: RPC/Jetty/MPICH2 bandwidth"),
    ("repro.experiments.fig6_wordcount", "Figure 6: Hadoop vs MPI-D WordCount"),
    ("repro.experiments.ablation_combiner", "ablation: local combining"),
    ("repro.experiments.ablation_partition", "ablation: partition-array size"),
    ("repro.experiments.ablation_compression", "ablation: realignment compression"),
    ("repro.experiments.ablation_scheduling", "ablation: heartbeat scheduling"),
    ("repro.experiments.gridmix", "GridMix suite: Hadoop vs MPI-D"),
    ("repro.experiments.skew", "partition skew / hot-reducer pathology"),
    ("repro.experiments.stragglers", "stragglers & speculative execution"),
    ("repro.experiments.scalability", "scalability sweep (future work 3)"),
    ("repro.experiments.interconnect_whatif", "IB/SSD what-if (future work 4)"),
    ("repro.experiments.robustness", "seed-robustness of the headline results"),
    ("repro.experiments.fault_tolerance", "node churn: Hadoop recovery vs MPI-D rerun"),
    ("repro.experiments.network_faults", "lossy links: shuffle retries vs abort-and-rerun"),
    ("repro.experiments.durability", "dying disks: HDFS re-replication vs static input"),
    ("repro.experiments.critical_path", "critical-path blame + causal what-if validation"),
    ("repro.experiments.multi_tenant", "multi-tenant load x scheduler policy x chaos"),
    ("repro.experiments.capacity", "capacity planning: validated scheduler what-ifs"),
    ("repro.experiments.export", "write per-figure CSVs/JSONs (--out results/)"),
    ("repro.experiments.all", "everything above, back to back"),
]


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] == "trace":
        from repro.obs.cli import main as trace_main

        return trace_main(argv[1:])
    if argv and argv[0] == "analyze":
        from repro.obs.analyze_cli import main as analyze_main

        return analyze_main(argv[1:])
    if argv and argv[0] == "replay":
        from repro.obs.replay_cli import main as replay_main

        return replay_main(argv[1:])
    if argv and argv[0] == "bench":
        from repro.bench.cli import main as bench_main

        return bench_main(argv[1:])
    if argv and argv[0] == "tenants":
        from repro.experiments.multi_tenant import main as tenants_main

        return tenants_main(argv[1:])
    if argv and argv[0] == "capacity":
        from repro.experiments.capacity import main as capacity_main

        return capacity_main(argv[1:])
    from repro import __version__

    print(f"repro {__version__} — Can MPI Benefit Hadoop and MapReduce Applications? (ICPP 2011)\n")
    print("experiments (run with `python -m <module> [--full]`):\n")
    width = max(len(mod) for mod, _ in COMMANDS)
    for mod, desc in COMMANDS:
        print(f"  {mod:<{width}}  {desc}")
    print("\ntracing: python -m repro trace {fig6,fig1,fault} --size 1GB --trace-out trace.json")
    print("multi-tenant: python -m repro tenants [--quick] [--out results/] [--trace-out trace.json]")
    print("capacity: python -m repro capacity [--quick] [--out results/] [--store-out stores/]")
    print("analysis: python -m repro analyze {trace.json,store.jsonl} [--tenants] [--validate] [--json report.json]")
    print("replay:  python -m repro replay {fig6,fig1,fault,sweep,fleet <dir>,<store.jsonl>,<trace.json>} [--out dashboard.html]")
    print("engine bench: python -m repro bench [--quick] [--compare] [--out BENCH_engine.json]")
    print("examples: see examples/*.py; tests: pytest tests/;")
    print("benchmarks: pytest benchmarks/ --benchmark-only")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
