"""Fault tolerance: where does Hadoop's recovery beat MPI-D's rerun?

The paper's Section V names fault tolerance as the open problem of the
MPI-D approach: Hadoop re-executes the tasks of a lost node and keeps
going, while an MPI job aborts wholesale when any rank dies and must be
resubmitted.  This experiment quantifies that trade on the Figure-6
WordCount comparison: both systems face the *identical* seed-derived
Poisson node-crash timeline (crash, down ``restart_after`` seconds,
rejoin), swept over per-node failure rates.

At low rates MPI-D keeps its clean-run advantage — a rerun of a short
job is cheap.  As the rate climbs, the chance that a 7-worker MPI job
sees no crash for a full makespan decays exponentially and reruns pile
up, while Hadoop pays for each crash only the heartbeat-expiry detection
plus the lost attempts.  The report finds the **crossover failure
rate** where the Hadoop line dips below the MPI-D line.

Calibration note: Hadoop 0.20.2's default tasktracker expiry (600 s) is
longer than these whole jobs; like any sane operator of short jobs we
lower it (default 60 s) so detection isn't the entire story, and say so
in the report.

Run: ``python -m repro.experiments.fault_tolerance [--gb N] [--seeds a,b]
[--rates r1,r2,...] [--checkpoint SECS] [--full]``
"""

from __future__ import annotations

import argparse
import math
import re
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.experiments.reporting import Table, banner
from repro.hadoop import (
    HadoopConfig,
    JobFailedError,
    JobSpec,
    WORDCOUNT_PROFILE,
    run_hadoop_job,
)
from repro.mrmpi import MrMpiConfig, run_mpid_job, run_mpid_job_under_faults
from repro.simnet.cluster import ClusterSpec
from repro.simnet.faults import CrashRate, FaultPlan
from repro.util.units import GiB

#: Per-node crash rates, in crashes per node-hour.
DEFAULT_RATES = (2.0, 5.0, 10.0, 20.0, 40.0, 80.0, 160.0)
FULL_RATES = (1.0, 2.0, 5.0, 10.0, 20.0, 40.0, 80.0, 160.0, 320.0)
DEFAULT_SEEDS = (2011, 2012, 2013)


@dataclass
class FaultToleranceResult:
    """Mean elapsed per failure rate for both systems, plus recovery cost."""

    input_gb: int
    rates_per_hour: tuple[float, ...]
    seeds: tuple[int, ...]
    expiry_interval: float
    restart_after: float
    checkpoint_interval: Optional[float]
    hadoop_clean: float = 0.0
    mpid_clean: float = 0.0
    hadoop: dict[float, float] = field(default_factory=dict)
    mpid: dict[float, float] = field(default_factory=dict)
    #: How many of the seeds' Hadoop runs died outright (out of attempts /
    #: master lost) at each rate; a rate where all died reports inf above.
    hadoop_dnf: dict[float, int] = field(default_factory=dict)
    mpid_dnf: dict[float, int] = field(default_factory=dict)
    hadoop_faults: dict[float, dict] = field(default_factory=dict)
    mpid_restarts: dict[float, float] = field(default_factory=dict)
    #: Mean MPI-D wasted seconds per rate (lost work + downtime +
    #: checkpoint tax) — symmetric with Hadoop's ``wasted_task_seconds``.
    mpid_wasted: dict[float, float] = field(default_factory=dict)
    #: Mean MPI-D fault counters per rate (``fault_summary`` records).
    mpid_faults: dict[float, dict] = field(default_factory=dict)
    #: Full per-task records when ``keep_task_records=True``:
    #: rate -> [JobMetrics.to_dict() per seed] (rate 0.0 = clean runs).
    hadoop_task_records: dict[float, list[dict]] = field(default_factory=dict)
    #: Why each Hadoop DNF died: rate -> one record per failed seed with
    #: the seed, the reason string, and the structured (node, task, time)
    #: triple behind it — a DNF cell stops being a mystery number.
    hadoop_failures: dict[float, list[dict]] = field(default_factory=dict)

    def crossover_rate(self) -> Optional[float]:
        """Lowest rate where Hadoop's mean time beats MPI-D's, linearly
        interpolated between the bracketing sweep points; None if the
        lines never cross in the swept range."""
        prev_rate: Optional[float] = None
        prev_diff: Optional[float] = None
        for rate in self.rates_per_hour:
            h, m = self.hadoop[rate], self.mpid[rate]
            if math.isinf(h):
                prev_rate, prev_diff = None, None  # Hadoop DNF: no win here
                continue
            diff = m - h  # positive once Hadoop is faster
            if diff > 0:
                if prev_diff is None or prev_rate is None:
                    return rate
                if math.isinf(diff):
                    return rate
                span = diff - prev_diff
                frac = -prev_diff / span if span > 0 else 0.0
                return prev_rate + (rate - prev_rate) * frac
            prev_rate, prev_diff = rate, diff
        return None


def classify_failure(reason: Optional[str]) -> str:
    """Compress a ``JobMetrics.failure_reason`` string into a stable kind.

    Storage-loss reasons (``block_lost:<file>:<block>``) pass through
    verbatim — the lost block *is* the diagnosis.  The free-text reasons
    the JobTracker writes become compact machine-readable tags, so sweep
    exports can group DNFs by cause instead of by prose.
    """
    if not reason:
        return "unknown"
    if reason.startswith("block_lost:"):
        return reason
    m = re.match(r"(map|reduce) (\d+) failed (\d+) attempts", reason)
    if m:
        return f"{m.group(1)}_attempts:{m.group(3)}"
    if reason.startswith("master node 0 lost"):
        return "master_lost"
    if reason.startswith("all tasktrackers lost"):
        return "all_trackers_lost"
    return "other"


def _failure_record(seed: int, hm) -> dict:
    return {
        "seed": seed,
        "reason": hm.failure_reason,
        "kind": classify_failure(hm.failure_reason),
        "node": hm.failure_node,
        "task": hm.failure_task,
        "time": hm.failure_time,
    }


def _spec(gb: int) -> JobSpec:
    return JobSpec(
        name=f"wordcount-{gb}g",
        input_bytes=gb * GiB,
        profile=WORDCOUNT_PROFILE,
        num_reduce_tasks=1,
    )


def run(
    input_gb: int = 10,
    seeds: tuple[int, ...] = DEFAULT_SEEDS,
    rates_per_hour: tuple[float, ...] = DEFAULT_RATES,
    restart_after: float = 30.0,
    expiry_interval: float = 60.0,
    checkpoint_interval: Optional[float] = None,
    keep_task_records: bool = False,
) -> FaultToleranceResult:
    cluster_spec = ClusterSpec()
    workers = tuple(range(1, cluster_spec.num_nodes))
    hadoop_cfg = HadoopConfig(
        map_slots=7, reduce_slots=7, tasktracker_expiry_interval=expiry_interval
    )
    mpid_cfg = MrMpiConfig(
        num_mappers=49,
        num_reducers=1,
        checkpoint_interval=checkpoint_interval,
    )
    spec = _spec(input_gb)
    result = FaultToleranceResult(
        input_gb=input_gb,
        rates_per_hour=tuple(rates_per_hour),
        seeds=tuple(seeds),
        expiry_interval=expiry_interval,
        restart_after=restart_after,
        checkpoint_interval=checkpoint_interval,
    )
    clean_metrics = [run_hadoop_job(spec, config=hadoop_cfg, seed=s) for s in seeds]
    result.hadoop_clean = float(np.mean([m.elapsed for m in clean_metrics]))
    if keep_task_records:
        result.hadoop_task_records[0.0] = [m.to_dict() for m in clean_metrics]
    # MPI-D has no placement randomness: one clean run, reused everywhere.
    result.mpid_clean = run_mpid_job(
        spec, config=mpid_cfg, cluster_spec=cluster_spec
    ).elapsed

    for rate in result.rates_per_hour:
        h_times, m_times, m_restarts, m_wasted = [], [], [], []
        h_dnf = m_dnf = 0
        fault_acc: dict[str, float] = {
            "lost_trackers": 0.0,
            "maps_reexecuted": 0.0,
            "wasted_task_seconds": 0.0,
        }
        m_fault_acc: dict[str, float] = {}
        rate_records: list[dict] = []
        for seed in seeds:
            plan = FaultPlan(
                specs=(
                    CrashRate(
                        rate=rate / 3600.0,
                        nodes=workers,
                        restart_after=restart_after,
                    ),
                ),
                seed=seed,
            )
            try:
                hm = run_hadoop_job(
                    spec, config=hadoop_cfg, seed=seed, fault_plan=plan
                )
                h_times.append(hm.elapsed)
            except JobFailedError as err:
                hm = err.metrics
                h_times.append(float("inf"))
                h_dnf += 1
                result.hadoop_failures.setdefault(rate, []).append(
                    _failure_record(seed, hm)
                )
            for key in fault_acc:
                fault_acc[key] += getattr(hm, key)
            if keep_task_records:
                rate_records.append(hm.to_dict())
            mm = run_mpid_job_under_faults(
                spec,
                plan,
                config=mpid_cfg,
                cluster_spec=cluster_spec,
                nodes=workers,
                clean_elapsed=result.mpid_clean,
            )
            m_times.append(mm.elapsed)
            m_restarts.append(mm.restarts)
            m_wasted.append(mm.wasted_task_seconds)
            for key, value in mm.fault_summary().items():
                m_fault_acc[key] = m_fault_acc.get(key, 0.0) + value
            if not mm.completed:
                m_dnf += 1
        result.hadoop[rate] = float(np.mean(h_times))
        result.mpid[rate] = float(np.mean(m_times))
        result.hadoop_dnf[rate] = h_dnf
        result.mpid_dnf[rate] = m_dnf
        result.hadoop_faults[rate] = {
            k: v / len(seeds) for k, v in fault_acc.items()
        }
        result.mpid_restarts[rate] = float(np.mean(m_restarts))
        result.mpid_wasted[rate] = float(np.mean(m_wasted))
        result.mpid_faults[rate] = {
            k: v / len(seeds) for k, v in m_fault_acc.items()
        }
        if keep_task_records:
            result.hadoop_task_records[rate] = rate_records
    return result


def _fmt_time(seconds: float, dnf: int, total: int) -> str:
    if math.isinf(seconds):
        return f"DNF ({dnf}/{total})"
    if dnf:
        return f"{seconds:.1f}*"
    return f"{seconds:.1f}"


def format_report(result: FaultToleranceResult) -> str:
    n = len(result.seeds)
    table = Table(
        headers=(
            "crashes/node-hr",
            "Hadoop (s)",
            "MPI-D (s)",
            "lost trackers",
            "maps re-run",
            "wasted task-s",
            "MPI-D restarts",
            "MPI-D wasted-s",
        ),
        title=(
            f"WordCount {result.input_gb} GB under Poisson node churn "
            f"(mean of {n} seeds; down {result.restart_after:.0f}s per crash)"
        ),
    )
    table.add_row(
        "0 (clean)", f"{result.hadoop_clean:.1f}", f"{result.mpid_clean:.1f}",
        0.0, 0.0, 0.0, 0.0, 0.0,
    )
    for rate in result.rates_per_hour:
        f = result.hadoop_faults[rate]
        table.add_row(
            f"{rate:g}",
            _fmt_time(result.hadoop[rate], result.hadoop_dnf[rate], n),
            _fmt_time(result.mpid[rate], result.mpid_dnf[rate], n),
            f["lost_trackers"],
            f["maps_reexecuted"],
            f["wasted_task_seconds"],
            result.mpid_restarts[rate],
            result.mpid_wasted.get(rate, 0.0),
        )
    notes = [
        f"tasktracker expiry lowered to {result.expiry_interval:.0f}s "
        f"(0.20.2 default 600s dwarfs these short jobs); "
        f"both systems replay the identical per-seed crash timeline",
    ]
    if result.checkpoint_interval is not None:
        notes.append(
            f"MPI-D checkpointing every {result.checkpoint_interval:.0f}s of progress"
        )
    cross = result.crossover_rate()
    if cross is not None:
        headline = (
            f"crossover ≈ {cross:.1f} crashes/node-hour: below it MPI-D's "
            f"clean-run speed wins despite whole-job reruns; above it "
            f"Hadoop's task-level recovery wins — the Section-V trade, "
            f"quantified"
        )
    else:
        headline = (
            "no crossover in the swept range: MPI-D's rerun cost never "
            "exceeded Hadoop's recovery cost here (sweep higher rates or "
            "larger inputs)"
        )
    return "\n\n".join(
        [
            banner("Fault tolerance: recovery (Hadoop) vs rerun (MPI-D)"),
            table.render(),
            "; ".join(notes),
            headline,
        ]
    )


def write_traced_run(
    trace_out,
    input_gb: int = 1,
    seed: int = 2011,
    rate_per_hour: float = 40.0,
    restart_after: float = 30.0,
    expiry_interval: float = 60.0,
):
    """One observed faulted Hadoop run; writes trace + manifest sidecar.

    The trace shows the fault instants, the killed task attempts
    (aborted spans) and the re-executions — the recovery story of one
    churned run, loadable in Perfetto.
    """
    import time as _time

    from pathlib import Path

    from repro.hadoop.simulation import HadoopSimulation
    from repro.obs import build_manifest, write_trace

    plan = FaultPlan(
        specs=(
            CrashRate(
                rate=rate_per_hour / 3600.0,
                nodes=tuple(range(1, ClusterSpec().num_nodes)),
                restart_after=restart_after,
            ),
        ),
        seed=seed,
    )
    sim = HadoopSimulation(
        spec=_spec(input_gb),
        config=HadoopConfig(
            map_slots=7, reduce_slots=7, tasktracker_expiry_interval=expiry_interval
        ),
        seed=seed,
        fault_plan=plan,
        observe=True,
    )
    t0 = _time.perf_counter()
    try:
        metrics = sim.run()
    except JobFailedError as err:
        metrics = err.metrics
    observers = [(f"hadoop-faulted-{input_gb}g", sim.obs)]
    manifest = build_manifest(
        experiment="fault_tolerance",
        config={
            "input_gb": input_gb,
            "rate_per_hour": rate_per_hour,
            "restart_after": restart_after,
            "expiry_interval": expiry_interval,
        },
        seed=seed,
        observers=observers,
        wall_seconds=_time.perf_counter() - t0,
        sim_elapsed={"hadoop": metrics.elapsed},
    )
    write_trace(observers, trace_out, manifest=manifest)
    manifest.write(Path(f"{trace_out}.manifest.json"))
    return metrics


def _parse_floats(text: str) -> tuple[float, ...]:
    return tuple(float(tok) for tok in text.split(",") if tok.strip())


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--gb", type=int, default=10, help="WordCount input size")
    parser.add_argument(
        "--seeds",
        type=str,
        default=None,
        help="comma-separated fault/placement seeds (default 2011,2012,2013)",
    )
    parser.add_argument(
        "--rates",
        type=str,
        default=None,
        help="comma-separated crash rates per node-hour",
    )
    parser.add_argument(
        "--checkpoint",
        type=float,
        default=None,
        help="enable MPI-D checkpointing with this progress interval (s)",
    )
    parser.add_argument(
        "--full", action="store_true", help="wider rate sweep (slower)"
    )
    parser.add_argument(
        "--trace-out",
        type=str,
        default=None,
        help="also run one traced faulted 1 GB job; write Perfetto JSON here",
    )
    args = parser.parse_args(argv)
    seeds = (
        tuple(int(t) for t in args.seeds.split(",") if t.strip())
        if args.seeds
        else DEFAULT_SEEDS
    )
    rates = (
        _parse_floats(args.rates)
        if args.rates
        else (FULL_RATES if args.full else DEFAULT_RATES)
    )
    print(
        format_report(
            run(
                input_gb=args.gb,
                seeds=seeds,
                rates_per_hour=rates,
                checkpoint_interval=args.checkpoint,
            )
        )
    )
    if args.trace_out is not None:
        write_traced_run(args.trace_out)
        print(f"\nwrote {args.trace_out} (+ {args.trace_out}.manifest.json)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
