"""Stragglers and speculative execution: the story behind Figure 1's outliers.

The paper deletes 56 reducer points "as their time reaches 4000 s" —
an entire scheduling wave of stragglers.  This experiment injects a
slow-disk node into the simulated cluster (a failing drive, the classic
production straggler) and measures the job three ways:

* healthy cluster,
* one straggler node, speculation off (0.20.2 with
  ``mapred.map.tasks.speculative.execution=false``),
* one straggler node, speculation on — duplicate attempts of slow maps
  race on healthy nodes.

Run: ``python -m repro.experiments.stragglers``
"""

from __future__ import annotations

import argparse
import csv
import json
from dataclasses import dataclass
from pathlib import Path

from repro.experiments.reporting import Table, banner
from repro.hadoop import HadoopConfig, JAVASORT_PROFILE, JobMetrics, JobSpec, run_hadoop_job
from repro.util.units import GiB

DEFAULT_SEEDS = (2011, 2012, 2013)


@dataclass
class StragglerResult:
    healthy: JobMetrics
    degraded: JobMetrics
    speculative: JobMetrics

    @property
    def degradation(self) -> float:
        return self.degraded.elapsed / self.healthy.elapsed

    @property
    def recovered(self) -> float:
        """Fraction of the straggler-induced slowdown speculation removed."""
        lost = self.degraded.elapsed - self.healthy.elapsed
        if lost <= 0:
            return 0.0
        won_back = self.degraded.elapsed - self.speculative.elapsed
        return won_back / lost


def run(
    input_gb: int = 4,
    slow_node: int = 3,
    slowdown: float = 6.0,
    seed: int = 2011,
) -> StragglerResult:
    spec = JobSpec(
        name=f"sort-{input_gb}g",
        input_bytes=input_gb * GiB,
        profile=JAVASORT_PROFILE,
    )
    base_cfg = HadoopConfig()
    spec_cfg = HadoopConfig(speculative_execution=True)
    return StragglerResult(
        healthy=run_hadoop_job(spec, config=base_cfg, seed=seed),
        degraded=run_hadoop_job(
            spec, config=base_cfg, seed=seed, disk_slowdown={slow_node: slowdown}
        ),
        speculative=run_hadoop_job(
            spec, config=spec_cfg, seed=seed, disk_slowdown={slow_node: slowdown}
        ),
    )


def sweep(
    input_gb: int = 4,
    slow_node: int = 3,
    slowdown: float = 6.0,
    seeds: tuple[int, ...] = DEFAULT_SEEDS,
) -> dict[int, StragglerResult]:
    """The three-scenario comparison across placement seeds."""
    return {
        seed: run(
            input_gb=input_gb, slow_node=slow_node, slowdown=slowdown, seed=seed
        )
        for seed in seeds
    }


def to_rows(results: dict[int, StragglerResult]) -> tuple[list[str], list[list]]:
    """One CSV row per (seed, scenario) with the speculation counters."""
    header = [
        "seed",
        "scenario",
        "elapsed_s",
        "avg_copy_s",
        "spec_map_attempts",
        "spec_map_wins",
        "spec_reduce_attempts",
        "spec_reduce_wins",
        "degradation_x",
        "recovered_frac",
    ]
    rows: list[list] = []
    for seed in sorted(results):
        r = results[seed]
        for label, m in (
            ("healthy", r.healthy),
            ("degraded", r.degraded),
            ("speculative", r.speculative),
        ):
            rows.append(
                [
                    seed,
                    label,
                    m.elapsed,
                    float(m.copy_times().mean()),
                    m.speculative_attempts,
                    m.speculative_wins,
                    m.speculative_reduce_attempts,
                    m.speculative_reduce_wins,
                    r.degradation,
                    r.recovered,
                ]
            )
    return header, rows


def to_json(results: dict[int, StragglerResult]) -> dict:
    """Per-seed full job histories of all three scenarios."""
    return {
        "experiment": "stragglers",
        "seeds": sorted(results),
        "runs": {
            str(seed): {
                "healthy": r.healthy.to_dict(),
                "degraded": r.degraded.to_dict(),
                "speculative": r.speculative.to_dict(),
                "degradation_x": r.degradation,
                "recovered_frac": r.recovered,
            }
            for seed, r in results.items()
        },
    }


def export(results: dict[int, StragglerResult], out_dir: Path) -> list[Path]:
    """Write stragglers.csv / stragglers.json into ``out_dir``."""
    out_dir.mkdir(parents=True, exist_ok=True)
    csv_path = out_dir / "stragglers.csv"
    header, rows = to_rows(results)
    with csv_path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(header)
        writer.writerows(rows)
    json_path = out_dir / "stragglers.json"
    with json_path.open("w") as fh:
        json.dump(to_json(results), fh, indent=2, sort_keys=True)
        fh.write("\n")
    return [csv_path, json_path]


def write_traced_run(
    trace_out,
    input_gb: int = 1,
    slow_node: int = 3,
    slowdown: float = 6.0,
    seed: int = 2011,
) -> JobMetrics:
    """One observed straggler run with speculation on; trace + manifest.

    The trace shows the duplicate ``map<N>.spec`` attempts racing their
    originals on healthy nodes while the slow disk drags its own lane.
    """
    import time as _time

    from repro.hadoop import HadoopSimulation
    from repro.obs import build_manifest, write_trace

    sim = HadoopSimulation(
        spec=JobSpec(
            name=f"sort-{input_gb}g",
            input_bytes=input_gb * GiB,
            profile=JAVASORT_PROFILE,
        ),
        config=HadoopConfig(speculative_execution=True),
        seed=seed,
        disk_slowdown={slow_node: slowdown},
        observe=True,
    )
    t0 = _time.perf_counter()
    metrics = sim.run()
    observers = [(f"stragglers-{input_gb}g", sim.obs)]
    manifest = build_manifest(
        experiment="stragglers",
        config={
            "input_gb": input_gb,
            "slow_node": slow_node,
            "slowdown": slowdown,
            "speculative_execution": True,
        },
        seed=seed,
        observers=observers,
        wall_seconds=_time.perf_counter() - t0,
        sim_elapsed={"hadoop": metrics.elapsed},
    )
    write_trace(observers, trace_out, manifest=manifest)
    manifest.write(Path(f"{trace_out}.manifest.json"))
    return metrics


def format_report(result: StragglerResult) -> str:
    table = Table(
        headers=("scenario", "job time (s)", "avg copy (s)", "spec attempts", "spec wins"),
    )
    for label, m in (
        ("healthy cluster", result.healthy),
        ("1 slow disk, no speculation", result.degraded),
        ("1 slow disk, speculation on", result.speculative),
    ):
        table.add_row(
            label,
            m.elapsed,
            float(m.copy_times().mean()),
            m.speculative_attempts,
            m.speculative_wins,
        )
    summary = (
        f"straggler cost: {result.degradation:.2f}x; speculation recovered "
        f"{result.recovered * 100:.0f}% of the lost time"
    )
    return "\n\n".join(
        [banner("Stragglers & speculative execution"), table.render(), summary]
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--gb", type=int, default=4)
    parser.add_argument("--slowdown", type=float, default=6.0)
    parser.add_argument(
        "--seeds",
        type=str,
        default=None,
        help="comma-separated placement seeds (default 2011,2012,2013)",
    )
    parser.add_argument(
        "--out", type=Path, default=None,
        help="also write stragglers.csv / stragglers.json here",
    )
    parser.add_argument(
        "--trace-out",
        type=str,
        default=None,
        help="also run one observed 1 GB speculative run; "
        "write Perfetto JSON here",
    )
    args = parser.parse_args(argv)
    seeds = (
        tuple(int(t) for t in args.seeds.split(",") if t.strip())
        if args.seeds
        else DEFAULT_SEEDS
    )
    results = sweep(input_gb=args.gb, slowdown=args.slowdown, seeds=seeds)
    print(format_report(results[seeds[0]]))
    if len(seeds) > 1:
        recs = [results[s].recovered for s in seeds]
        print(
            f"\nacross seeds {','.join(map(str, seeds))}: speculation "
            f"recovered {min(recs) * 100:.0f}%–{max(recs) * 100:.0f}% "
            f"of the lost time"
        )
    if args.out is not None:
        for path in export(results, args.out):
            print(f"wrote {path}")
    if args.trace_out is not None:
        write_traced_run(args.trace_out, slowdown=args.slowdown)
        print(f"wrote {args.trace_out} (+ {args.trace_out}.manifest.json)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
