"""Stragglers and speculative execution: the story behind Figure 1's outliers.

The paper deletes 56 reducer points "as their time reaches 4000 s" —
an entire scheduling wave of stragglers.  This experiment injects a
slow-disk node into the simulated cluster (a failing drive, the classic
production straggler) and measures the job three ways:

* healthy cluster,
* one straggler node, speculation off (0.20.2 with
  ``mapred.map.tasks.speculative.execution=false``),
* one straggler node, speculation on — duplicate attempts of slow maps
  race on healthy nodes.

Run: ``python -m repro.experiments.stragglers``
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

from repro.experiments.reporting import Table, banner
from repro.hadoop import HadoopConfig, JAVASORT_PROFILE, JobMetrics, JobSpec, run_hadoop_job
from repro.util.units import GiB


@dataclass
class StragglerResult:
    healthy: JobMetrics
    degraded: JobMetrics
    speculative: JobMetrics

    @property
    def degradation(self) -> float:
        return self.degraded.elapsed / self.healthy.elapsed

    @property
    def recovered(self) -> float:
        """Fraction of the straggler-induced slowdown speculation removed."""
        lost = self.degraded.elapsed - self.healthy.elapsed
        if lost <= 0:
            return 0.0
        won_back = self.degraded.elapsed - self.speculative.elapsed
        return won_back / lost


def run(
    input_gb: int = 4,
    slow_node: int = 3,
    slowdown: float = 6.0,
    seed: int = 2011,
) -> StragglerResult:
    spec = JobSpec(
        name=f"sort-{input_gb}g",
        input_bytes=input_gb * GiB,
        profile=JAVASORT_PROFILE,
    )
    base_cfg = HadoopConfig()
    spec_cfg = HadoopConfig(speculative_execution=True)
    return StragglerResult(
        healthy=run_hadoop_job(spec, config=base_cfg, seed=seed),
        degraded=run_hadoop_job(
            spec, config=base_cfg, seed=seed, disk_slowdown={slow_node: slowdown}
        ),
        speculative=run_hadoop_job(
            spec, config=spec_cfg, seed=seed, disk_slowdown={slow_node: slowdown}
        ),
    )


def format_report(result: StragglerResult) -> str:
    table = Table(
        headers=("scenario", "job time (s)", "avg copy (s)", "spec attempts", "spec wins"),
    )
    for label, m in (
        ("healthy cluster", result.healthy),
        ("1 slow disk, no speculation", result.degraded),
        ("1 slow disk, speculation on", result.speculative),
    ):
        table.add_row(
            label,
            m.elapsed,
            float(m.copy_times().mean()),
            m.speculative_attempts,
            m.speculative_wins,
        )
    summary = (
        f"straggler cost: {result.degradation:.2f}x; speculation recovered "
        f"{result.recovered * 100:.0f}% of the lost time"
    )
    return "\n\n".join(
        [banner("Stragglers & speculative execution"), table.render(), summary]
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--gb", type=int, default=4)
    parser.add_argument("--slowdown", type=float, default=6.0)
    args = parser.parse_args(argv)
    print(format_report(run(input_gb=args.gb, slowdown=args.slowdown)))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
