"""Capacity planning: validated scheduler-knob what-ifs per tenant.

PR 5 validated Coz-style *stage* what-ifs ("make copy 25% faster") by
re-running the simulator with the knob actually turned.  This
experiment does the same for *scheduler* knobs on multi-tenant traces
(:mod:`repro.obs.tenant_analysis`): from one observed run it projects

* ``queue_capacity`` — raise a queue's ``max_running`` dispatch cap;
* ``drop_tenant``    — preempt one tenant's offered load entirely;
* ``add_nodes``      — give each job more map slots (fewer map waves);

and then *closes the loop*: each scenario is re-run with the knob
really turned and the projection is scored against the measured
makespan.  The scenarios are controlled ``add_job`` submissions (no
arrival randomness), so the FIFO replay model's assumptions are met by
construction and the projection error isolates model error — the
acceptance bar is <= 10% on the capacity and drop-tenant knobs.

``--store-out`` additionally produces seeded multi-tenant streamed
trace stores whose footers carry the engine's per-tenant SLO summary
and blame mix — the corpus :mod:`repro.obs.fleet` aggregates and the
CI fleet-smoke job byte-diffs across same-seed double runs.
"""

from __future__ import annotations

import argparse
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.cluster import (
    MultiTenantEngine,
    QueueConfig,
    SchedulerConfig,
)
from repro.experiments.reporting import Table, banner
from repro.hadoop import WORDCOUNT_PROFILE, HadoopConfig, JobSpec
from repro.obs.tenant_analysis import (
    CapacityProjection,
    jobs_from_tracer,
    project_add_nodes,
    project_drop_tenant,
    project_queue_capacity,
)

MiB = 1 << 20

#: Validation target for the replay-exact knobs (queue capacity, drop
#: tenant).  ``add_nodes`` rides a first-order wave model and is scored
#: but not gated.
ERROR_TARGET = 0.10


@dataclass(frozen=True)
class KnobValidation:
    """One projection scored against a real re-run with the knob turned."""

    knob: str
    detail: dict
    tenant: str
    metric: str
    baseline_observed: float
    baseline_replayed: float
    predicted: float
    actual: float
    gated: bool  #: counts toward the <=10% acceptance bar

    @property
    def error(self) -> float:
        if self.actual <= 0:
            return 0.0
        return abs(self.predicted - self.actual) / self.actual

    def to_dict(self) -> dict:
        return {
            "knob": self.knob,
            "detail": self.detail,
            "tenant": self.tenant,
            "metric": self.metric,
            "baseline_observed": self.baseline_observed,
            "baseline_replayed": self.baseline_replayed,
            "predicted": self.predicted,
            "actual": self.actual,
            "error": self.error,
            "gated": self.gated,
            "target": ERROR_TARGET,
        }


def _measured_makespan(records, tenant: str = "", queue: str = "") -> float:
    """First submit to last finish over completed records, like the
    analyzer's :func:`~repro.obs.tenant_analysis._tenant_makespan`."""
    done = [
        r
        for r in records
        if r.outcome == "done"
        and (not tenant or r.tenant == tenant)
        and (not queue or r.queue == queue)
    ]
    if not done:
        return 0.0
    return max(r.finished_at for r in done) - min(r.submitted_at for r in done)


def _engine(
    queues: list[QueueConfig],
    seed: int,
    observe: bool = False,
    hadoop_config: Optional[HadoopConfig] = None,
) -> MultiTenantEngine:
    """A bare engine: no arrival streams, FIFO policy, manual jobs only."""
    return MultiTenantEngine(
        [],
        scheduler=SchedulerConfig(policy="fifo"),
        queues=queues,
        hadoop_config=hadoop_config or HadoopConfig(map_slots=4, reduce_slots=4),
        seed=seed,
        horizon=600.0,
        observe=observe,
    )


def _submit_batch(
    engine: MultiTenantEngine,
    tenant: str,
    count: int,
    size: int,
    seed: int,
    prefix: str,
    spacing: float = 1.0,
) -> None:
    for i in range(count):
        spec = JobSpec(
            f"{prefix}-{i}", input_bytes=size, profile=WORDCOUNT_PROFILE
        )
        engine.add_job(spec, at=i * spacing, tenant=tenant, seed=seed + i)


# -- scenario 1: queue capacity ------------------------------------------------


def scenario_queue_capacity(
    seed: int = 2011, jobs: int = 5, size: int = 96 * MiB
) -> tuple[CapacityProjection, KnobValidation]:
    """K identical jobs through ``max_running`` 1, projected (and then
    really re-run) at 3.  Sequential baseline service times are exactly
    what the FIFO replay assumes, so this knob should validate tightly.
    """
    base_q = [QueueConfig(name="batch", capacity=1.0, max_running=1)]
    engine = _engine(base_q, seed, observe=True)
    _submit_batch(engine, "batch", jobs, size, seed, "cap")
    engine.run()

    traced = jobs_from_tracer(engine.sim.obs.tracer)
    projection = project_queue_capacity(
        traced, queue="batch", max_running=1, new_max_running=3
    )

    rerun = _engine(
        [QueueConfig(name="batch", capacity=1.0, max_running=3)], seed
    )
    _submit_batch(rerun, "batch", jobs, size, seed, "cap")
    rerun.run()
    actual = _measured_makespan(rerun.records, queue="batch")
    return projection, KnobValidation(
        knob=projection.knob,
        detail=projection.detail,
        tenant=projection.tenant,
        metric=projection.metric,
        baseline_observed=projection.baseline_observed,
        baseline_replayed=projection.baseline_replayed,
        predicted=projection.predicted,
        actual=actual,
        gated=True,
    )


# -- scenario 2: drop a tenant -------------------------------------------------


def scenario_drop_tenant(
    seed: int = 2011, jobs: int = 4, size: int = 96 * MiB
) -> tuple[CapacityProjection, KnobValidation]:
    """Two tenants interleaved in one FIFO queue; what does removing the
    noisy one buy the other?  Validated by re-running without the
    victim's submissions."""
    queues = [QueueConfig(name="default", capacity=1.0, max_running=1)]
    engine = _engine(queues, seed, observe=True)
    _submit_batch(engine, "alice", jobs, size, seed, "alice", spacing=2.0)
    _submit_batch(engine, "bob", jobs - 1, size, seed + 100, "bob", spacing=2.0)
    engine.run()

    traced = jobs_from_tracer(engine.sim.obs.tracer)
    projection = project_drop_tenant(
        traced, queue="default", victim="bob", beneficiary="alice",
        max_running=1,
    )

    rerun = _engine(queues, seed)
    _submit_batch(rerun, "alice", jobs, size, seed, "alice", spacing=2.0)
    rerun.run()
    actual = _measured_makespan(rerun.records, tenant="alice")
    return projection, KnobValidation(
        knob=projection.knob,
        detail=projection.detail,
        tenant=projection.tenant,
        metric=projection.metric,
        baseline_observed=projection.baseline_observed,
        baseline_replayed=projection.baseline_replayed,
        predicted=projection.predicted,
        actual=actual,
        gated=True,
    )


# -- scenario 3: add nodes (map slots) -----------------------------------------


def scenario_add_nodes(
    seed: int = 2011, size: int = 512 * MiB
) -> tuple[CapacityProjection, KnobValidation]:
    """One multi-wave job, projected (and re-run) with doubled map
    slots.  The wave model is first-order (map/shuffle overlap is not
    modeled), so this validation is reported but not gated."""
    workers = 7  # default ClusterSpec(num_nodes=8) minus the master
    base_slots, new_slots = 1, 4
    queues = [QueueConfig(name="batch", capacity=1.0, max_running=1)]
    engine = _engine(
        queues, seed,
        observe=True,
        hadoop_config=HadoopConfig(map_slots=base_slots, reduce_slots=4),
    )
    _submit_batch(engine, "batch", 1, size, seed, "waves")
    engine.run()

    tracer = engine.sim.obs.tracer
    traced = jobs_from_tracer(tracer)
    projection = project_add_nodes(
        tracer, traced, queue="batch", max_running=1,
        map_slots=base_slots * workers, new_map_slots=new_slots * workers,
    )

    rerun = _engine(
        queues, seed,
        hadoop_config=HadoopConfig(map_slots=new_slots, reduce_slots=4),
    )
    _submit_batch(rerun, "batch", 1, size, seed, "waves")
    rerun.run()
    actual = _measured_makespan(rerun.records, queue="batch")
    return projection, KnobValidation(
        knob=projection.knob,
        detail=projection.detail,
        tenant=projection.tenant,
        metric=projection.metric,
        baseline_observed=projection.baseline_observed,
        baseline_replayed=projection.baseline_replayed,
        predicted=projection.predicted,
        actual=actual,
        gated=False,
    )


# -- fleet store producer ------------------------------------------------------


def produce_stores(
    out_dir: Path,
    seeds: tuple[int, ...] = (2011, 2012),
    load: float = 1.0,
    policy: str = "fair",
    horizon: float = 240.0,
) -> list[Path]:
    """Seeded multi-tenant streamed trace stores, one per seed.

    Each store's footer carries the engine's per-tenant SLO report plus
    the blame mix in ``summary`` — everything :func:`repro.obs.fleet.
    fleet_summary` needs without reading the event stream.  Nothing in
    the stream or summary is wall-clock, so same-seed runs write
    byte-identical files (the CI fleet-smoke contract).
    """
    from repro.experiments.multi_tenant import make_queues, make_tenants
    from repro.obs.store import TraceStoreWriter
    from repro.obs.tenant_analysis import tenant_blame

    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    paths: list[Path] = []
    for seed in sorted(seeds):
        engine = MultiTenantEngine(
            make_tenants(load),
            scheduler=SchedulerConfig(policy=policy),
            queues=make_queues(),
            hadoop_config=HadoopConfig(map_slots=4, reduce_slots=4),
            seed=seed,
            horizon=horizon,
            observe=True,
        )
        engine.setup()
        path = out_dir / f"tenants-{policy}-seed{seed}.jsonl"
        with TraceStoreWriter(path, system=f"tenants-{policy}") as writer:
            writer.attach(engine.sim.obs)
            report = engine.run()
            report["blame"] = {
                tenant: entry["blame_pct"]
                for tenant, entry in sorted(
                    tenant_blame(engine.sim.obs.tracer).items()
                )
            }
            writer.summary = report
        paths.append(path)
    return paths


# -- reporting -----------------------------------------------------------------


def run(seed: int = 2011, quick: bool = False) -> dict:
    """All scenarios; returns the JSON-ready report."""
    jobs = 4 if quick else 5
    size = (64 if quick else 96) * MiB
    scenarios = [
        scenario_queue_capacity(seed=seed, jobs=jobs, size=size),
        scenario_drop_tenant(seed=seed, jobs=jobs, size=size),
    ]
    if not quick:
        scenarios.append(scenario_add_nodes(seed=seed))
    validations = [v for _, v in scenarios]
    met = sum(1 for v in validations if v.gated and v.error <= ERROR_TARGET)
    return {
        "experiment": "capacity",
        "seed": seed,
        "error_target": ERROR_TARGET,
        "validations": [v.to_dict() for v in validations],
        "gated_within_target": met,
        "gated_total": sum(1 for v in validations if v.gated),
    }


def format_report(report: dict) -> str:
    table = Table(
        headers=(
            "knob",
            "tenant",
            "observed",
            "replayed",
            "predicted",
            "actual",
            "error",
            "gate",
        ),
        title="scheduler-knob what-ifs, validated by re-run",
    )
    for v in report["validations"]:
        gate = "-"
        if v["gated"]:
            gate = "PASS" if v["error"] <= report["error_target"] else "FAIL"
        table.add_row(
            v["knob"],
            v["tenant"] or "all",
            v["baseline_observed"],
            v["baseline_replayed"],
            v["predicted"],
            v["actual"],
            f"{v['error']:.1%}",
            gate,
        )
    tail = (
        f"{report['gated_within_target']}/{report['gated_total']} gated "
        f"projections within {report['error_target']:.0%} of the re-run.  "
        "The FIFO replay is exact when jobs hold their traced service "
        "times; the residual error is cluster contention the queue model "
        "does not see."
    )
    return "\n\n".join(
        [banner("Capacity planning: what-if projections vs reality"),
         table.render(), tail]
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=2011)
    parser.add_argument(
        "--quick", action="store_true",
        help="fewer/smaller jobs, skip the add-nodes scenario (CI smoke)",
    )
    parser.add_argument(
        "--out", type=Path, default=None,
        help="also write capacity.json here (a directory)",
    )
    parser.add_argument(
        "--store-out", type=Path, default=None,
        help="also produce seeded multi-tenant .jsonl stores for the "
        "fleet view in this directory",
    )
    parser.add_argument(
        "--store-seeds", type=str, default="2011,2012",
        help="comma-separated seeds for --store-out (default 2011,2012)",
    )
    parser.add_argument(
        "--store-horizon", type=float, default=240.0,
        help="arrival horizon for --store-out runs (default 240)",
    )
    args = parser.parse_args(argv)

    report = run(seed=args.seed, quick=args.quick)
    print(format_report(report))
    status = 0
    if report["gated_within_target"] < min(2, report["gated_total"]):
        print("\nFAIL: fewer than 2 gated projections met the error target")
        status = 1
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
        path = args.out / "capacity.json"
        with path.open("w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {path}")
    if args.store_out is not None:
        seeds = tuple(
            int(t) for t in args.store_seeds.split(",") if t.strip()
        )
        for path in produce_stores(
            args.store_out, seeds=seeds, horizon=args.store_horizon
        ):
            print(f"wrote {path}")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
