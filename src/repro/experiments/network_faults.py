"""Lossy networks: shuffle retries (Hadoop) vs abort-and-rerun (MPI).

The fault-tolerance experiment crashes *nodes*; this one degrades the
*network* — seeded Poisson kills of in-flight flows at a swept rate, and
one-shot network partitions of swept duration — over the same fixed-size
sort job on both simulators.

Hadoop rides it out: the 0.20-era shuffle re-fetches each killed segment
after an exponential backoff (re-executing source maps only past the
fetch-failure strike threshold), so its curve degrades smoothly with the
loss rate.  Baseline MPI-D treats a lost stream as fatal — MPICH2 aborts
the whole job, which is resubmitted from scratch — so its curve is a
cliff: fine while an attempt dodges every kill, unbounded once it
can't.  The optional reliable-transport mode retransmits killed arrays
instead, showing how much of the gap is the *transport contract* rather
than the programming model.  The report finds the **crossover loss
rate** where Hadoop's mean time dips below baseline MPI-D's.

Run: ``python -m repro.experiments.network_faults [--gb N]
[--seeds a,b] [--rates r1,r2,...] [--partitions d1,d2,...] [--full]``
"""

from __future__ import annotations

import argparse
import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.experiments.reporting import Table, banner
from repro.hadoop import (
    JAVASORT_PROFILE,
    JobFailedError,
    JobSpec,
    run_hadoop_job,
)
from repro.mrmpi import MrMpiConfig, run_mpid_job, run_mpid_job_under_net_faults
from repro.simnet.cluster import ClusterSpec
from repro.simnet.faults import FaultPlan, FlowLossRate, NetworkPartition
from repro.util.units import GiB

#: Flow-kill rates, in expected kills per link-hour.
DEFAULT_RATES = (30.0, 120.0, 360.0, 900.0, 1800.0)
FULL_RATES = (15.0, 30.0, 60.0, 120.0, 360.0, 900.0, 1800.0, 3600.0)
#: One-shot partition durations (seconds); the cut isolates three workers.
DEFAULT_PARTITIONS = (2.0, 5.0, 10.0, 20.0)
DEFAULT_SEEDS = (2011, 2012)
PARTITION_NODES = (5, 6, 7)
#: When the partition drops, as a fraction of the clean Hadoop makespan —
#: mid-job, when the shuffle is in flight.
PARTITION_AT_FRACTION = 0.4


@dataclass
class NetworkFaultsResult:
    """Mean elapsed per fault level for both systems, plus retry counters."""

    input_gb: float
    rates_per_link_hour: tuple[float, ...]
    partition_durations: tuple[float, ...]
    seeds: tuple[int, ...]
    partition_at: float = 0.0
    hadoop_clean: float = 0.0
    mpid_clean: float = 0.0
    # -- the loss-rate sweep ---------------------------------------------------
    hadoop: dict[float, float] = field(default_factory=dict)
    mpid: dict[float, float] = field(default_factory=dict)
    mpid_reliable: dict[float, float] = field(default_factory=dict)
    hadoop_dnf: dict[float, int] = field(default_factory=dict)
    mpid_dnf: dict[float, int] = field(default_factory=dict)
    #: Mean Hadoop shuffle counters per rate (fetch_retries,
    #: fetch_failures, maps_reexecuted_for_fetch).
    hadoop_shuffle: dict[float, dict] = field(default_factory=dict)
    mpid_restarts: dict[float, float] = field(default_factory=dict)
    mpid_retransmits: dict[float, float] = field(default_factory=dict)
    # -- the partition sweep -----------------------------------------------------
    hadoop_partition: dict[float, float] = field(default_factory=dict)
    mpid_partition: dict[float, float] = field(default_factory=dict)
    hadoop_partition_retries: dict[float, float] = field(default_factory=dict)
    mpid_partition_restarts: dict[float, float] = field(default_factory=dict)

    def hadoop_degradation(self, rate: float) -> float:
        return self.hadoop[rate] / self.hadoop_clean

    def mpid_degradation(self, rate: float) -> float:
        return self.mpid[rate] / self.mpid_clean

    def crossover_rate(self) -> Optional[float]:
        """Lowest loss rate where Hadoop's mean time beats baseline
        MPI-D's, linearly interpolated between the bracketing sweep
        points; None if the lines never cross in the swept range."""
        prev_rate: Optional[float] = None
        prev_diff: Optional[float] = None
        for rate in self.rates_per_link_hour:
            h, m = self.hadoop[rate], self.mpid[rate]
            if math.isinf(h):
                prev_rate, prev_diff = None, None
                continue
            diff = m - h  # positive once Hadoop is faster
            if diff > 0:
                if prev_diff is None or prev_rate is None or math.isinf(diff):
                    return rate
                span = diff - prev_diff
                frac = -prev_diff / span if span > 0 else 0.0
                return prev_rate + (rate - prev_rate) * frac
            prev_rate, prev_diff = rate, diff
        return None


def _spec(gb: float) -> JobSpec:
    return JobSpec(
        name=f"sort-{gb:g}g",
        input_bytes=int(gb * GiB),
        profile=JAVASORT_PROFILE,
    )


def run(
    input_gb: float = 1.0,
    seeds: tuple[int, ...] = DEFAULT_SEEDS,
    rates_per_link_hour: tuple[float, ...] = DEFAULT_RATES,
    partition_durations: tuple[float, ...] = DEFAULT_PARTITIONS,
) -> NetworkFaultsResult:
    cluster_spec = ClusterSpec()
    #: Resubmission storms get expensive; 25 reruns is already a DNF story.
    mpid_cfg = MrMpiConfig(max_restarts=25)
    mpid_rel_cfg = MrMpiConfig(max_restarts=25, reliable_transport=True)
    spec = _spec(input_gb)
    result = NetworkFaultsResult(
        input_gb=input_gb,
        rates_per_link_hour=tuple(rates_per_link_hour),
        partition_durations=tuple(partition_durations),
        seeds=tuple(seeds),
    )
    clean = [run_hadoop_job(spec, seed=s) for s in seeds]
    result.hadoop_clean = float(np.mean([m.elapsed for m in clean]))
    result.mpid_clean = run_mpid_job(spec, cluster_spec=cluster_spec).elapsed
    result.partition_at = round(PARTITION_AT_FRACTION * result.hadoop_clean, 1)

    def mean_or_inf(xs: list[float]) -> float:
        return float(np.mean(xs))  # inf propagates, as it should

    for rate in result.rates_per_link_hour:
        h_times, m_times, r_times, m_restarts, m_retx = [], [], [], [], []
        h_dnf = m_dnf = 0
        shuffle_acc = {
            "fetch_retries": 0.0,
            "fetch_failures": 0.0,
            "maps_reexecuted_for_fetch": 0.0,
        }
        for seed in seeds:
            plan = FaultPlan(
                specs=(FlowLossRate(rate=rate / 3600.0),), seed=seed
            )
            try:
                hm = run_hadoop_job(spec, seed=seed, fault_plan=plan)
                h_times.append(hm.elapsed)
            except JobFailedError as err:
                hm = err.metrics
                h_times.append(float("inf"))
                h_dnf += 1
            for key in shuffle_acc:
                shuffle_acc[key] += getattr(hm, key)
            mm = run_mpid_job_under_net_faults(
                spec, plan, config=mpid_cfg, cluster_spec=cluster_spec
            )
            m_times.append(mm.elapsed)
            m_restarts.append(mm.restarts)
            if not mm.completed:
                m_dnf += 1
            rm = run_mpid_job_under_net_faults(
                spec, plan, config=mpid_rel_cfg, cluster_spec=cluster_spec
            )
            r_times.append(rm.elapsed)
            m_retx.append(rm.retransmits)
        result.hadoop[rate] = mean_or_inf(h_times)
        result.mpid[rate] = mean_or_inf(m_times)
        result.mpid_reliable[rate] = mean_or_inf(r_times)
        result.hadoop_dnf[rate] = h_dnf
        result.mpid_dnf[rate] = m_dnf
        result.hadoop_shuffle[rate] = {
            k: v / len(seeds) for k, v in shuffle_acc.items()
        }
        result.mpid_restarts[rate] = float(np.mean(m_restarts))
        result.mpid_retransmits[rate] = float(np.mean(m_retx))

    for duration in result.partition_durations:
        h_times, retries, m_times, m_restarts = [], [], [], []
        for seed in seeds:
            plan = FaultPlan(
                specs=(
                    NetworkPartition(
                        nodes=PARTITION_NODES,
                        at=result.partition_at,
                        duration=duration,
                    ),
                ),
                seed=seed,
            )
            try:
                hm = run_hadoop_job(spec, seed=seed, fault_plan=plan)
                h_times.append(hm.elapsed)
                retries.append(hm.fetch_retries)
            except JobFailedError:
                h_times.append(float("inf"))
            mm = run_mpid_job_under_net_faults(
                spec, plan, config=mpid_cfg, cluster_spec=cluster_spec
            )
            m_times.append(mm.elapsed)
            m_restarts.append(mm.restarts)
        result.hadoop_partition[duration] = mean_or_inf(h_times)
        result.mpid_partition[duration] = mean_or_inf(m_times)
        result.hadoop_partition_retries[duration] = float(np.mean(retries or [0.0]))
        result.mpid_partition_restarts[duration] = float(np.mean(m_restarts))
    return result


def _fmt(seconds: float, dnf: int = 0, total: int = 0) -> str:
    if math.isinf(seconds):
        return f"DNF ({dnf}/{total})" if total else "DNF"
    return f"{seconds:.1f}" + ("*" if dnf else "")


def format_report(result: NetworkFaultsResult) -> str:
    n = len(result.seeds)
    loss = Table(
        headers=(
            "kills/link-hr",
            "Hadoop (s)",
            "MPI-D (s)",
            "MPI-D rel. (s)",
            "fetch retries",
            "strikes",
            "maps re-run",
            "MPI-D restarts",
            "retransmits",
        ),
        title=(
            f"Sort {result.input_gb:g} GB on a lossy network "
            f"(mean of {n} seeds; Poisson flow kills per link)"
        ),
    )
    loss.add_row(
        "0 (clean)", f"{result.hadoop_clean:.1f}", f"{result.mpid_clean:.1f}",
        f"{result.mpid_clean:.1f}", 0.0, 0.0, 0.0, 0.0, 0.0,
    )
    for rate in result.rates_per_link_hour:
        s = result.hadoop_shuffle[rate]
        loss.add_row(
            f"{rate:g}",
            _fmt(result.hadoop[rate], result.hadoop_dnf[rate], n),
            _fmt(result.mpid[rate], result.mpid_dnf[rate], n),
            _fmt(result.mpid_reliable[rate]),
            s["fetch_retries"],
            s["fetch_failures"],
            s["maps_reexecuted_for_fetch"],
            result.mpid_restarts[rate],
            result.mpid_retransmits[rate],
        )
    part = Table(
        headers=(
            "partition (s)",
            "Hadoop (s)",
            "MPI-D (s)",
            "fetch retries",
            "MPI-D restarts",
        ),
        title=(
            f"One-shot partition of nodes {list(PARTITION_NODES)} at "
            f"t={result.partition_at:g}s"
        ),
    )
    for duration in result.partition_durations:
        part.add_row(
            f"{duration:g}",
            _fmt(result.hadoop_partition[duration]),
            _fmt(result.mpid_partition[duration]),
            result.hadoop_partition_retries[duration],
            result.mpid_partition_restarts[duration],
        )
    cross = result.crossover_rate()
    if cross is not None:
        headline = (
            f"crossover ≈ {cross:.0f} kills/link-hour: below it MPI-D's "
            f"clean-run speed absorbs the occasional rerun; above it "
            f"Hadoop's per-fetch retries win — the Section-V fault-"
            f"tolerance critique, restated for the network itself"
        )
    else:
        headline = (
            "no crossover in the swept range: MPI-D's rerun cost never "
            "exceeded Hadoop's retry cost here (sweep higher loss rates)"
        )
    notes = (
        "both systems face the identical per-seed kill timeline; the "
        "MPI-D baseline aborts on the first lost stream (whole-job "
        "resubmission), the reliable variant retransmits with "
        "TCP-RTO-style backoff.  A partition that shows MPI-D at zero "
        "restarts is not a bug: MPI-D's eager push drains its cross-node "
        "traffic in the first seconds of the map phase, so a mid-job cut "
        "lands on compute, while Hadoop's pull-based shuffle is still "
        "fetching and must ride it out"
    )
    return "\n\n".join(
        [
            banner("Network faults: retry (Hadoop) vs abort-and-rerun (MPI-D)"),
            loss.render(),
            part.render(),
            notes,
            headline,
        ]
    )


def _parse_floats(text: str) -> tuple[float, ...]:
    return tuple(float(tok) for tok in text.split(",") if tok.strip())


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--gb", type=float, default=1.0, help="sort input size")
    parser.add_argument(
        "--seeds",
        type=str,
        default=None,
        help="comma-separated fault seeds (default 2011,2012)",
    )
    parser.add_argument(
        "--rates",
        type=str,
        default=None,
        help="comma-separated flow-kill rates per link-hour",
    )
    parser.add_argument(
        "--partitions",
        type=str,
        default=None,
        help="comma-separated partition durations (seconds)",
    )
    parser.add_argument(
        "--full", action="store_true", help="wider rate sweep (slower)"
    )
    args = parser.parse_args(argv)
    seeds = (
        tuple(int(t) for t in args.seeds.split(",") if t.strip())
        if args.seeds
        else DEFAULT_SEEDS
    )
    rates = (
        _parse_floats(args.rates)
        if args.rates
        else (FULL_RATES if args.full else DEFAULT_RATES)
    )
    partitions = (
        _parse_floats(args.partitions) if args.partitions else DEFAULT_PARTITIONS
    )
    print(
        format_report(
            run(
                input_gb=args.gb,
                seeds=seeds,
                rates_per_link_hour=rates,
                partition_durations=partitions,
            )
        )
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
