"""What-if: InfiniBand and SSDs under MPI-D (paper future work (4)).

The paper's future work points at "high performance interconnects such
as the Infiniband", and its Related Work cites Sur et al., who found IB
helps HDFS "with or without Solid State Drives" — storage and fabric
are coupled bottlenecks.  This experiment re-prices a shuffle-heavy
JavaSort on the MPI-D system across a fabric × storage grid (GigE /
10 GigE / IB DDR × one 2010 SATA disk / SSD), holding CPUs fixed.

The measured structure is instructive: SSDs halve the job (the disk
was the bottleneck), but the fabric upgrade moves almost nothing even
then — MPI-D's buffered sends overlap communication with computation,
so once MPI-grade communication is in place, GigE already keeps up.
The fabric that matters is the one Hadoop RPC *wastes*; after MPI-D,
future-work item (4) buys headroom, not speedup, at this scale.

Run: ``python -m repro.experiments.interconnect_whatif``
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field, replace

from repro.experiments.reporting import Table, banner
from repro.hadoop.job import JAVASORT_PROFILE, JobSpec
from repro.mrmpi import MrMpiConfig, run_mpid_job
from repro.simnet.cluster import ClusterSpec
from repro.util.units import GiB, MiB

#: fabric name -> (link bandwidth B/s, one-way latency s)
FABRICS: dict[str, tuple[float, float]] = {
    "GigE (paper)": (117.0 * MiB, 50e-6),
    "10 GigE": (1.1e9, 20e-6),
    "IB DDR": (1.5e9, 2e-6),
}

#: storage name -> sequential bandwidth B/s
STORAGE: dict[str, float] = {
    "SATA HDD (paper)": 90.0 * MiB,
    "SSD": 500.0 * MiB,
}


@dataclass
class WhatIfResult:
    input_gb: int
    #: (fabric, storage) -> job seconds
    times: dict[tuple[str, str], float] = field(default_factory=dict)

    def speedup_vs_paper(self) -> dict[tuple[str, str], float]:
        base = self.times[("GigE (paper)", "SATA HDD (paper)")]
        return {cell: base / t for cell, t in self.times.items()}


def run(
    input_gb: int = 8,
    fabrics: dict[str, tuple[float, float]] | None = None,
    storage: dict[str, float] | None = None,
) -> WhatIfResult:
    fabrics = fabrics or FABRICS
    storage = storage or STORAGE
    result = WhatIfResult(input_gb=input_gb)
    spec = JobSpec(
        "sort",
        input_bytes=input_gb * GiB,
        profile=JAVASORT_PROFILE,
        num_reduce_tasks=14,
    )
    cfg = MrMpiConfig(num_mappers=35, num_reducers=14)
    for fabric, (bandwidth, latency) in fabrics.items():
        for disk_name, disk_bw in storage.items():
            cluster = replace(
                ClusterSpec(),
                link_bandwidth=bandwidth,
                link_latency=latency,
                disk_bandwidth=disk_bw,
            )
            result.times[(fabric, disk_name)] = run_mpid_job(
                spec, config=cfg, cluster_spec=cluster
            ).elapsed
    return result


def format_report(result: WhatIfResult) -> str:
    storages = sorted({s for _, s in result.times})
    fabrics = [f for f in FABRICS if any((f, s) in result.times for s in storages)]
    speedups = result.speedup_vs_paper()
    table = Table(
        headers=("fabric", *[f"{s} (s)" for s in storages], *[f"{s} speedup" for s in storages]),
        title=f"JavaSort {result.input_gb} GB on the MPI-D system",
    )
    for fabric in fabrics:
        table.add_row(
            fabric,
            *[result.times[(fabric, s)] for s in storages],
            *[f"{speedups[(fabric, s)]:.2f}x" for s in storages],
        )
    note = (
        "SSDs halve the job (the disk was the bottleneck); the fabric "
        "upgrade moves <2% even then, because MPI-D's buffered sends "
        "already overlap communication with computation — after MPI-grade "
        "communication, GigE keeps up and IB buys headroom, not speedup."
    )
    return "\n\n".join(
        [banner("What-if: interconnect x storage under MPI-D"), table.render(), note]
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--gb", type=int, default=8)
    args = parser.parse_args(argv)
    print(format_report(run(input_gb=args.gb)))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
