"""Figure 3: bandwidth moving 128 MB, packet size 1 B - 64 MB.

Three transports as in the paper (Hadoop RPC, HTTP over Jetty, MPICH2),
plus the Socket-over-NIO model the paper's future-work item (1) asks
for, as an optional fourth series (``--nio``).

Run: ``python -m repro.experiments.fig3_bandwidth``
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field

from repro.experiments import paper
from repro.experiments.reporting import Table, banner, compare_to_paper
from repro.transports import (
    BandwidthBench,
    HadoopRpcTransport,
    JettyHttpTransport,
    MpichTransport,
    NioSocketTransport,
)
from repro.util.units import MiB, fmt_bytes


@dataclass
class Fig3Result:
    """packet size -> transport name -> bytes/s."""

    packets: list[int]
    series: dict[str, dict[int, float]] = field(default_factory=dict)

    def peak(self, name: str) -> float:
        return max(self.series[name].values())


def default_packets() -> list[int]:
    return [2**i for i in range(0, 27)]


def run(
    total_bytes: int = paper.FIG3_TOTAL_BYTES,
    include_nio: bool = False,
    jitter: bool = True,
    seed: int = 20110913,
) -> Fig3Result:
    transports = [HadoopRpcTransport(), JettyHttpTransport(), MpichTransport()]
    if include_nio:
        transports.append(NioSocketTransport())
    packets = default_packets()
    result = Fig3Result(packets=packets)
    for transport in transports:
        bench = BandwidthBench(
            transport, total_bytes=total_bytes, jitter=jitter, seed=seed
        )
        result.series[transport.name] = {
            p: bench.measure(p).bandwidth for p in packets
        }
    return result


def format_report(result: Fig3Result) -> str:
    names = list(result.series)
    table = Table(
        headers=("packet", *[f"{n} (MB/s)" for n in names]),
        title="Bandwidth transferring 128 MB",
    )
    for p in result.packets:
        table.add_row(
            fmt_bytes(p), *[result.series[n][p] / 1e6 for n in names]
        )
    comparisons = [
        ("Hadoop RPC peak (MB/s)", result.peak("Hadoop RPC") / 1e6, paper.FIG3_RPC_PEAK / 1e6),
        ("Jetty peak (MB/s)", result.peak("HTTP/Jetty") / 1e6, paper.FIG3_JETTY_PEAK / 1e6),
        ("MPICH2 peak (MB/s)", result.peak("MPICH2") / 1e6, paper.FIG3_MPICH_PEAK / 1e6),
        (
            "Jetty @ 256 B (MB/s)",
            result.series["HTTP/Jetty"][256] / 1e6,
            paper.FIG3_JETTY_AT_256B / 1e6,
        ),
        (
            "MPICH2 @ 256 B (MB/s)",
            result.series["MPICH2"][256] / 1e6,
            paper.FIG3_MPICH_AT_256B / 1e6,
        ),
        (
            "MPICH2/RPC peak ratio",
            result.peak("MPICH2") / result.peak("Hadoop RPC"),
            paper.FIG3_MPICH_PEAK / paper.FIG3_RPC_PEAK,
        ),
        (
            "MPICH2/Jetty peak ratio",
            result.peak("MPICH2") / result.peak("HTTP/Jetty"),
            paper.FIG3_MPICH_PEAK / paper.FIG3_JETTY_PEAK,
        ),
    ]
    return "\n\n".join(
        [
            banner("Figure 3: bandwidth, Hadoop RPC vs Jetty vs MPICH2"),
            table.render(),
            compare_to_paper(comparisons),
        ]
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nio", action="store_true", help="add the Socket/NIO series")
    parser.add_argument("--no-jitter", action="store_true")
    parser.add_argument("--seed", type=int, default=20110913)
    args = parser.parse_args(argv)
    print(
        format_report(
            run(include_nio=args.nio, jitter=not args.no_jitter, seed=args.seed)
        )
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
