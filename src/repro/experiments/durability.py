"""Durability: replication + re-replication vs dying disks.

The fault-tolerance experiment kills *nodes* and measures recovery of
**computation**; this one kills *disks* and measures recovery of
**data** — the other half of the paper's Section-V asymmetry.  Hadoop
sits on HDFS: every block is written ``dfs.replication`` times, the
NameNode notices lost replicas and re-replicates them (bandwidth-capped
repair traffic competing with the shuffle), and a reader that hits a
dead or corrupt replica silently fails over to another copy.  The MPI-D
prototype reads its pre-distributed input from the local FS: there is no
daemon healing it, so a destroyed replica stays destroyed across
restarts, and when the last copy of any split-covering block dies the
job can never finish, no matter how many times it is resubmitted.

Both systems face the identical seed-derived Poisson disk-failure
timeline at the same input replication, swept over failure rates.  The
table reports survival probability, mean makespan of surviving runs,
and the repair traffic Hadoop paid (bytes re-replicated / input bytes)
— the price of durability the paper's MPI-D does not pay and the
protection it therefore does not get.

Run: ``python -m repro.experiments.durability [--gb N] [--seeds a,b]
[--rates r1,r2,...] [--replications 1,2,3] [--trace-out FILE]``
"""

from __future__ import annotations

import argparse
import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.experiments.fault_tolerance import classify_failure
from repro.experiments.reporting import Table, banner
from repro.hadoop import (
    HadoopConfig,
    JobFailedError,
    JobSpec,
    WORDCOUNT_PROFILE,
    run_hadoop_job,
)
from repro.mrmpi import (
    MrMpiConfig,
    run_mpid_job,
    run_mpid_job_under_storage_faults,
)
from repro.simnet.cluster import ClusterSpec
from repro.simnet.faults import DiskFailure, FaultPlan
from repro.util.units import GiB, MiB

#: Disk failures per node-hour.  Real AFRs are ~ 0.01/year; these rates
#: are accelerated so a ~minutes job sees the regime transition, exactly
#: as the crash sweep accelerates node churn.  The interesting band sits
#: higher than the node-churn sweep's because a disk death only dooms a
#: run once *every* replica of some needed block is gone.
DEFAULT_RATES = (15.0, 30.0, 60.0, 120.0, 240.0)
DEFAULT_REPLICATIONS = (1, 2, 3)
DEFAULT_SEEDS = (2011, 2012, 2013)


@dataclass
class DurabilityCell:
    """One (replication, rate) sweep point, aggregated over seeds."""

    survived: int = 0
    total: int = 0
    #: Mean makespan over *surviving* runs (inf when none survived).
    elapsed: float = float("inf")
    #: Mean HDFS repair traffic per run, as a fraction of the input.
    repair_overhead: float = 0.0
    blocks_repaired: float = 0.0
    blocks_lost: float = 0.0
    read_failovers: float = 0.0
    #: Hadoop only: why the dead runs died (one record per DNF seed).
    failures: list[dict] = field(default_factory=list)
    # MPI-D only.
    restarts: float = 0.0
    data_lost: int = 0

    @property
    def survival(self) -> float:
        return self.survived / self.total if self.total else 0.0


@dataclass
class DurabilityResult:
    """Replication x disk-failure-rate sweep for both systems."""

    input_gb: float
    replications: tuple[int, ...]
    rates_per_hour: tuple[float, ...]
    seeds: tuple[int, ...]
    repair_bandwidth_cap: float
    hadoop_clean: dict[int, float] = field(default_factory=dict)
    mpid_clean: float = 0.0
    hadoop: dict[tuple[int, float], DurabilityCell] = field(default_factory=dict)
    mpid: dict[tuple[int, float], DurabilityCell] = field(default_factory=dict)

    def crossover_rate(self, replication: int) -> Optional[float]:
        """Lowest swept rate where Hadoop's survival probability exceeds
        MPI-D's at this replication; None when the sweep never separates
        them.  This is the durability analogue of the fault-tolerance
        crossover: past it, only the system that repairs its data keeps
        finishing jobs."""
        for rate in self.rates_per_hour:
            h = self.hadoop[(replication, rate)]
            m = self.mpid[(replication, rate)]
            if h.survival > m.survival:
                return rate
        return None


def _spec(gb: float) -> JobSpec:
    return JobSpec(
        name=f"wordcount-{gb:g}g",
        input_bytes=int(gb * GiB),
        profile=WORDCOUNT_PROFILE,
        num_reduce_tasks=1,
    )


def _plan(rate_per_hour: float, workers: tuple[int, ...], seed: int) -> FaultPlan:
    return FaultPlan(
        specs=(DiskFailure(rate=rate_per_hour / 3600.0, nodes=workers),),
        seed=seed,
    )


def run(
    input_gb: float = 4.0,
    seeds: tuple[int, ...] = DEFAULT_SEEDS,
    rates_per_hour: tuple[float, ...] = DEFAULT_RATES,
    replications: tuple[int, ...] = DEFAULT_REPLICATIONS,
    repair_bandwidth_cap: float = 10 * MiB,
) -> DurabilityResult:
    cluster_spec = ClusterSpec()
    workers = tuple(range(1, cluster_spec.num_nodes))
    spec = _spec(input_gb)
    result = DurabilityResult(
        input_gb=input_gb,
        replications=tuple(replications),
        rates_per_hour=tuple(rates_per_hour),
        seeds=tuple(seeds),
        repair_bandwidth_cap=repair_bandwidth_cap,
    )
    mpid_cfgs = {
        repl: MrMpiConfig(
            num_mappers=49, num_reducers=1, input_replication=repl
        )
        for repl in replications
    }
    hadoop_cfgs = {
        repl: HadoopConfig(
            map_slots=7,
            reduce_slots=7,
            replication=repl,
            repair_bandwidth_cap=repair_bandwidth_cap,
        )
        for repl in replications
    }
    # Clean baselines: Hadoop's makespan depends on replication (reduce
    # output is written repl times); MPI-D's does not (input layout only).
    for repl in replications:
        result.hadoop_clean[repl] = float(
            np.mean(
                [
                    run_hadoop_job(spec, config=hadoop_cfgs[repl], seed=s).elapsed
                    for s in seeds
                ]
            )
        )
    result.mpid_clean = run_mpid_job(
        spec, config=mpid_cfgs[replications[0]], cluster_spec=cluster_spec
    ).elapsed

    for repl in replications:
        for rate in rates_per_hour:
            h = DurabilityCell(total=len(seeds))
            m = DurabilityCell(total=len(seeds))
            h_times: list[float] = []
            m_times: list[float] = []
            for seed in seeds:
                plan = _plan(rate, workers, seed)
                try:
                    hm = run_hadoop_job(
                        spec, config=hadoop_cfgs[repl], seed=seed, fault_plan=plan
                    )
                    h.survived += 1
                    h_times.append(hm.elapsed)
                except JobFailedError as err:
                    hm = err.metrics
                    h.failures.append(
                        {
                            "seed": seed,
                            "reason": hm.failure_reason,
                            "kind": classify_failure(hm.failure_reason),
                            "node": hm.failure_node,
                            "task": hm.failure_task,
                            "time": hm.failure_time,
                        }
                    )
                h.repair_overhead += hm.repair_bytes / spec.input_bytes
                h.blocks_repaired += hm.blocks_repaired
                h.blocks_lost += hm.blocks_lost
                h.read_failovers += hm.read_failovers

                mm = run_mpid_job_under_storage_faults(
                    spec,
                    plan,
                    config=mpid_cfgs[repl],
                    cluster_spec=cluster_spec,
                )
                if mm.completed:
                    m.survived += 1
                    m_times.append(mm.elapsed)
                m.restarts += mm.restarts
                m.read_failovers += mm.read_failovers
                if mm.data_lost:
                    m.data_lost += 1
            n = len(seeds)
            h.repair_overhead /= n
            h.blocks_repaired /= n
            h.blocks_lost /= n
            h.read_failovers /= n
            m.restarts /= n
            m.read_failovers /= n
            if h_times:
                h.elapsed = float(np.mean(h_times))
            if m_times:
                m.elapsed = float(np.mean(m_times))
            result.hadoop[(repl, rate)] = h
            result.mpid[(repl, rate)] = m
    return result


def _fmt_cell(cell: DurabilityCell) -> str:
    if cell.survived == 0:
        return f"DNF (0/{cell.total})"
    t = f"{cell.elapsed:.1f}"
    if cell.survived < cell.total:
        t += f" ({cell.survived}/{cell.total})"
    return t


def format_report(result: DurabilityResult) -> str:
    n = len(result.seeds)
    sections = [banner("Durability: HDFS re-replication vs MPI-D's static input")]
    for repl in result.replications:
        table = Table(
            headers=(
                "disk fails/node-hr",
                "Hadoop (s)",
                "MPI-D (s)",
                "H survive",
                "M survive",
                "repair MB",
                "repair x input",
                "failovers",
                "M restarts",
            ),
            title=(
                f"WordCount {result.input_gb:g} GB, replication {repl} "
                f"(mean of {n} seeds)"
            ),
        )
        table.add_row(
            "0 (clean)",
            f"{result.hadoop_clean[repl]:.1f}",
            f"{result.mpid_clean:.1f}",
            f"{n}/{n}",
            f"{n}/{n}",
            0.0,
            0.0,
            0.0,
            0.0,
        )
        for rate in result.rates_per_hour:
            h = result.hadoop[(repl, rate)]
            m = result.mpid[(repl, rate)]
            table.add_row(
                f"{rate:g}",
                _fmt_cell(h),
                _fmt_cell(m),
                f"{h.survived}/{n}",
                f"{m.survived}/{n}",
                h.repair_overhead * result.input_gb * 1024.0,
                h.repair_overhead,
                h.read_failovers,
                m.restarts,
            )
        sections.append(table.render())
    notes = (
        f"identical per-seed disk-death timelines on both systems; HDFS "
        f"repair capped at {result.repair_bandwidth_cap / MiB:.0f} MiB/s per "
        f"stream; an MPI-D run whose last replica of any block dies is a "
        f"permanent DNF (damage survives resubmission)"
    )
    heads = []
    for repl in result.replications:
        cross = result.crossover_rate(repl)
        if cross is not None:
            heads.append(
                f"replication {repl}: from {cross:g} disk-failures/node-hour "
                f"on, Hadoop outlives MPI-D — the NameNode repairs what the "
                f"static layout cannot"
            )
    if not heads:
        heads.append(
            "no separation in the swept range: every rate either spared or "
            "killed both systems equally (sweep higher rates)"
        )
    sections.append(notes)
    sections.append("; ".join(heads))
    return "\n\n".join(sections)


def write_traced_run(
    trace_out,
    input_gb: float = 1.0,
    seed: int = 2011,
    rate_per_hour: float = 8.0,
    replication: int = 3,
    repair_bandwidth_cap: float = 10 * MiB,
):
    """One observed disk-churned Hadoop run; writes trace + manifest.

    The trace shows the ``hdfs.repair`` flows on their own track next to
    the map/shuffle work they contend with, the ``hdfs.read.failover``
    instants where readers skipped dead replicas, and (at harsher rates)
    ``hdfs.block.lost`` — the durability story of one run, in Perfetto.
    """
    import time as _time

    from pathlib import Path

    from repro.hadoop.simulation import HadoopSimulation
    from repro.obs import build_manifest, write_trace

    workers = tuple(range(1, ClusterSpec().num_nodes))
    sim = HadoopSimulation(
        spec=_spec(input_gb),
        config=HadoopConfig(
            map_slots=7,
            reduce_slots=7,
            replication=replication,
            repair_bandwidth_cap=repair_bandwidth_cap,
        ),
        seed=seed,
        fault_plan=_plan(rate_per_hour, workers, seed),
        observe=True,
    )
    t0 = _time.perf_counter()
    try:
        metrics = sim.run()
    except JobFailedError as err:
        metrics = err.metrics
    observers = [(f"hadoop-durability-{input_gb:g}g", sim.obs)]
    manifest = build_manifest(
        experiment="durability",
        config={
            "input_gb": input_gb,
            "rate_per_hour": rate_per_hour,
            "replication": replication,
            "repair_bandwidth_cap": repair_bandwidth_cap,
        },
        seed=seed,
        observers=observers,
        wall_seconds=_time.perf_counter() - t0,
        sim_elapsed={"hadoop": metrics.elapsed},
    )
    write_trace(observers, trace_out, manifest=manifest)
    manifest.write(Path(f"{trace_out}.manifest.json"))
    return metrics


def _parse_floats(text: str) -> tuple[float, ...]:
    return tuple(float(tok) for tok in text.split(",") if tok.strip())


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--gb", type=float, default=4.0, help="WordCount input size")
    parser.add_argument(
        "--seeds",
        type=str,
        default=None,
        help="comma-separated fault/placement seeds (default 2011,2012,2013)",
    )
    parser.add_argument(
        "--rates",
        type=str,
        default=None,
        help="comma-separated disk-failure rates per node-hour",
    )
    parser.add_argument(
        "--replications",
        type=str,
        default=None,
        help="comma-separated dfs.replication values to sweep (default 1,2,3)",
    )
    parser.add_argument(
        "--repair-cap-mib",
        type=float,
        default=10.0,
        help="HDFS repair bandwidth cap per stream, MiB/s",
    )
    parser.add_argument(
        "--trace-out",
        type=str,
        default=None,
        help="also run one traced disk-churned 1 GB job; write Perfetto JSON here",
    )
    args = parser.parse_args(argv)
    seeds = (
        tuple(int(t) for t in args.seeds.split(",") if t.strip())
        if args.seeds
        else DEFAULT_SEEDS
    )
    rates = _parse_floats(args.rates) if args.rates else DEFAULT_RATES
    replications = (
        tuple(int(t) for t in args.replications.split(",") if t.strip())
        if args.replications
        else DEFAULT_REPLICATIONS
    )
    print(
        format_report(
            run(
                input_gb=args.gb,
                seeds=seeds,
                rates_per_hour=rates,
                replications=replications,
                repair_bandwidth_cap=args.repair_cap_mib * MiB,
            )
        )
    )
    if args.trace_out is not None:
        write_traced_run(args.trace_out)
        print(f"\nwrote {args.trace_out} (+ {args.trace_out}.manifest.json)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
