"""The paper's published numbers, as data.

Every value here is quoted or derived from the paper text; experiment
reports print these next to the reproduced values so paper-vs-measured
is visible in one table (EXPERIMENTS.md records the comparison).
"""

from __future__ import annotations

from repro.util.units import GiB, KiB, MiB

# --- Figure 1 (JavaSort 150 GB, 7 workers, 8/8 slots) -------------------------
FIG1_INPUT_BYTES = 150 * GiB
FIG1_AVG_COPY_S = 128.5
FIG1_AVG_SORT_S = 0.0102
FIG1_AVG_REDUCE_S = 6.7995
FIG1_COPY_RANGE_S = (48.0, 178.0)
FIG1_REDUCE_RANGE_S = (2.0, 58.0)
FIG1_COPY_SHARE_OF_REDUCER_LIFECYCLE = 0.95
FIG1_NUM_REDUCERS_SHOWN = 2345

# --- Table I: copy-time percentage by input size x (map/reduce slots) ----------
#: rows: input size in GiB; columns: "4/2", "4/4", "8/8", "16/16".
TABLE1_SLOT_CONFIGS = ("4/2", "4/4", "8/8", "16/16")
TABLE1_SIZES_GB = (1, 3, 9, 27, 81, 150)
TABLE1_COPY_PCT: dict[int, dict[str, float]] = {
    1: {"4/2": 43.1, "4/4": 43.0, "8/8": 38.5, "16/16": 35.7},
    3: {"4/2": 35.0, "4/4": 33.9, "8/8": 35.9, "16/16": 46.3},
    9: {"4/2": 43.1, "4/4": 42.9, "8/8": 42.8, "16/16": 39.7},
    27: {"4/2": 44.3, "4/4": 47.9, "8/8": 43.18, "16/16": 36.4},
    81: {"4/2": 60.0, "4/4": 71.0, "8/8": 74.6, "16/16": 73.9},
    150: {"4/2": 69.6, "4/4": 82.0, "8/8": 82.7, "16/16": 80.6},
}
TABLE1_MIN_PCT = 33.9
TABLE1_MAX_PCT = 82.7

# --- Figure 2: ping-pong latency (half round-trip), seconds --------------------
FIG2_RPC_LATENCY: dict[int, float] = {
    1: 1.3e-3,
    16: 1.3e-3,
    1 * KiB: 8.9e-3,
    1 * MiB: 1.259,
    64 * MiB: 56.827,
}
FIG2_MPICH_LATENCY: dict[int, float] = {
    1 * KiB: 0.6e-3,
    1 * MiB: 10.3e-3,  # paper quotes 10.2-10.3 ms
    64 * MiB: 0.572,
}
FIG2_RATIO_1B = 2.49
FIG2_RATIO_1KB = 15.1
FIG2_RATIO_1MB = 123.0
FIG2_RATIO_OVER_256KB = 100.0

#: The three panels' size ranges (paper Figures 2a/2b/2c).
FIG2_PANELS = {
    "a": (1, 1 * KiB),
    "b": (1 * KiB, 1 * MiB),
    "c": (1 * MiB, 64 * MiB),
}

# --- Figure 3: bandwidth moving 128 MB, bytes/s ---------------------------------
FIG3_TOTAL_BYTES = 128 * MiB
FIG3_RPC_PEAK = 1.4e6
FIG3_JETTY_PEAK = 108e6
FIG3_MPICH_PEAK = 111e6
FIG3_JETTY_AT_256B = 80e6
FIG3_MPICH_AT_256B = 60e6
FIG3_EFFECTIVE_THRESHOLD_BYTES = 256

# --- Figure 6: WordCount, Hadoop vs the MPI-D simulation system ------------------
FIG6_SIZES_GB = (1, 10, 100)
FIG6_HADOOP_S = {1: 49.0, 100: 2001.0}  # 10 GB not quoted in the text
FIG6_MPID_S = {1: 3.9, 100: 1129.0}
FIG6_RATIO = {1: 0.08, 10: 0.48, 100: 0.56}
FIG6_HEADLINE_REDUCTION_AT_100GB = 0.44  # "reduce application execution time by 44%"
