"""Run every experiment back to back and print all reports.

The one-stop regeneration of the paper's evaluation (scaled inputs)::

    python -m repro.experiments.all          # minutes
    python -m repro.experiments.all --full   # paper-size inputs (longer)
"""

from __future__ import annotations

import argparse
import time

from repro.experiments import (
    ablation_combiner,
    ablation_compression,
    ablation_partition,
    ablation_scheduling,
    durability,
    fault_tolerance,
    fig1_shuffle,
    fig2_latency,
    fig3_bandwidth,
    fig6_wordcount,
    gridmix,
    interconnect_whatif,
    network_faults,
    scalability,
    stragglers,
    table1_copy_pct,
)
from repro.util.units import GiB


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="paper-size inputs")
    parser.add_argument(
        "--skip-extensions", action="store_true", help="paper figures/tables only"
    )
    args = parser.parse_args(argv)

    t0 = time.time()
    sections: list[str] = []

    sections.append(fig2_latency.format_report(fig2_latency.run()))
    sections.append(
        fig3_bandwidth.format_report(fig3_bandwidth.run(include_nio=True))
    )
    fig1_gb = 150 if args.full else 16
    sections.append(fig1_shuffle.format_report(fig1_shuffle.run(fig1_gb * GiB)))
    t1_sizes = (
        table1_copy_pct.FULL_SIZES_GB if args.full else table1_copy_pct.DEFAULT_SIZES_GB
    )
    sections.append(table1_copy_pct.format_report(table1_copy_pct.run(t1_sizes)))
    f6_sizes = (
        fig6_wordcount.FULL_SIZES_GB if args.full else fig6_wordcount.DEFAULT_SIZES_GB
    )
    sections.append(fig6_wordcount.format_report(fig6_wordcount.run(f6_sizes)))

    if not args.skip_extensions:
        sections.append(ablation_combiner.format_report(ablation_combiner.run()))
        sections.append(ablation_partition.format_report(ablation_partition.run()))
        sections.append(
            ablation_compression.format_report(ablation_compression.run())
        )
        sections.append(ablation_scheduling.format_report(ablation_scheduling.run()))
        sections.append(stragglers.format_report(stragglers.run()))
        ft_gb = 10 if args.full else 4
        sections.append(
            fault_tolerance.format_report(
                fault_tolerance.run(input_gb=ft_gb, seeds=(2011, 2012))
            )
        )
        nf_gb = 2.0 if args.full else 1.0
        sections.append(
            network_faults.format_report(network_faults.run(input_gb=nf_gb))
        )
        dur_gb = 4.0 if args.full else 1.0
        sections.append(
            durability.format_report(
                durability.run(input_gb=dur_gb, seeds=(2011, 2012))
            )
        )
        sections.append(scalability.format_report(scalability.run()))
        sections.append(gridmix.format_report(gridmix.run()))
        sections.append(
            interconnect_whatif.format_report(interconnect_whatif.run())
        )

    print(("\n\n" + "#" * 72 + "\n\n").join(sections))
    print(f"\n[all experiments completed in {time.time() - t0:.1f}s wall time]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
