"""Figure 1: per-reducer copy/sort/reduce times, JavaSort on Hadoop.

The paper runs GridMix JavaSort over 150 GB on 7 workers with 8/8
slots and plots every reducer's copy, sort and reduce stage time.  The
default here is a 16 GB scale model (same wave structure, ~2 s of wall
time); ``--full`` runs the paper's 150 GB (about half a minute of wall
time, ~2400 reducers).

Run: ``python -m repro.experiments.fig1_shuffle [--full]``
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.experiments import paper
from repro.experiments.reporting import Table, banner, compare_to_paper
from repro.hadoop import HadoopConfig, JAVASORT_PROFILE, JobMetrics, JobSpec, run_hadoop_job
from repro.util.units import GiB


def run(input_bytes: int = 16 * GiB, seed: int = 2011) -> JobMetrics:
    """JavaSort at the paper's 8/8 slot configuration."""
    spec = JobSpec(
        name=f"javasort-{input_bytes // GiB}g",
        input_bytes=input_bytes,
        profile=JAVASORT_PROFILE,
    )
    return run_hadoop_job(spec, config=HadoopConfig(map_slots=8, reduce_slots=8), seed=seed)


def write_traced_run(trace_out, input_bytes: int = 16 * GiB, seed: int = 2011) -> JobMetrics:
    """One observed JavaSort run; writes trace + manifest sidecar."""
    import time
    from pathlib import Path

    from repro.hadoop.simulation import HadoopSimulation
    from repro.obs import build_manifest, write_trace

    spec = JobSpec(
        name=f"javasort-{input_bytes // GiB}g",
        input_bytes=input_bytes,
        profile=JAVASORT_PROFILE,
    )
    sim = HadoopSimulation(
        spec=spec,
        config=HadoopConfig(map_slots=8, reduce_slots=8),
        seed=seed,
        observe=True,
    )
    t0 = time.perf_counter()
    metrics = sim.run()
    observers = [(spec.name, sim.obs)]
    manifest = build_manifest(
        experiment="fig1_shuffle",
        config={"input_bytes": input_bytes, "seed": seed},
        seed=seed,
        observers=observers,
        wall_seconds=time.perf_counter() - t0,
        sim_elapsed={"hadoop": metrics.elapsed},
    )
    write_trace(observers, trace_out, manifest=manifest)
    manifest.write(Path(f"{trace_out}.manifest.json"))
    return metrics


def format_report(metrics: JobMetrics, show_reducers: int = 12) -> str:
    copy = metrics.copy_times()
    sort = metrics.sort_times()
    red = metrics.reduce_times()

    per_reducer = Table(
        headers=("reducer", "copy (s)", "sort (s)", "reduce (s)"),
        title=f"First {show_reducers} of {len(copy)} reducers",
    )
    for i in range(min(show_reducers, len(copy))):
        per_reducer.add_row(i, copy[i], sort[i], red[i])

    lifecycle = copy.sum() / (copy.sum() + sort.sum() + red.sum())
    comparisons = [
        ("avg copy (s)", float(copy.mean()), paper.FIG1_AVG_COPY_S),
        ("avg sort (s)", float(sort.mean()), paper.FIG1_AVG_SORT_S),
        ("avg reduce (s)", float(red.mean()), paper.FIG1_AVG_REDUCE_S),
        (
            "copy share of reducer lifecycle",
            float(lifecycle),
            paper.FIG1_COPY_SHARE_OF_REDUCER_LIFECYCLE,
        ),
    ]
    note = (
        "Note: paper values are for 150 GB; scale the input with --full "
        "for the direct comparison."
        if len(copy) < 2000
        else ""
    )
    dist = Table(
        headers=("stat", "copy (s)", "sort (s)", "reduce (s)"),
        title="Distribution over reducers",
    )
    for stat, fn in (("min", np.min), ("median", np.median), ("max", np.max)):
        dist.add_row(stat, float(fn(copy)), float(fn(sort)), float(fn(red)))

    blocks = [
        banner("Figure 1: copy/sort/reduce per reducer (JavaSort)"),
        f"job elapsed: {metrics.elapsed:.1f}s  maps: {len(metrics.map_tasks)}  "
        f"reducers: {len(metrics.reduce_tasks)}  locality: "
        f"{metrics.data_locality() * 100:.0f}%",
        per_reducer.render(),
        dist.render(),
        compare_to_paper(comparisons),
    ]
    if note:
        blocks.append(note)
    return "\n\n".join(blocks)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full", action="store_true", help="run the paper's 150 GB input"
    )
    parser.add_argument("--gb", type=int, default=None, help="input size in GiB")
    parser.add_argument(
        "--trace-out",
        type=str,
        default=None,
        help="also run once observed; write Perfetto JSON here",
    )
    args = parser.parse_args(argv)
    gb = 150 if args.full else (args.gb or 16)
    print(format_report(run(input_bytes=gb * GiB)))
    if args.trace_out is not None:
        write_traced_run(args.trace_out, input_bytes=gb * GiB)
        print(f"\nwrote {args.trace_out} (+ {args.trace_out}.manifest.json)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
