"""Experiment drivers: one module per table/figure in the paper.

Each module exposes ``run(...)`` returning a plain result structure,
``format_report(result)`` rendering the same rows/series the paper
prints, and a ``main()`` so it can be invoked as a script::

    python -m repro.experiments.fig2_latency
    python -m repro.experiments.table1_copy_pct --full

``--full`` reproduces the paper's exact input sizes (minutes of wall
time); the default is a scaled-down sweep with the same shape.
:mod:`repro.experiments.paper` holds the published numbers each report
compares against.
"""

from repro.experiments import paper
from repro.experiments.reporting import (
    Table,
    format_series,
    compare_to_paper,
)

__all__ = ["paper", "Table", "format_series", "compare_to_paper"]
