"""Figure 2: ping-pong latency, Hadoop RPC vs MPICH2, three panels.

Reproduces the methodology of Section II-B: 100 ping-pong trials per
size, latency = round-trip / 2, first 5 JVM trials dropped.  Panel (a)
covers 1 B - 1 KB, (b) 1 KB - 1 MB, (c) 1 MB - 64 MB, as in the paper.

Run: ``python -m repro.experiments.fig2_latency``
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field

from repro.experiments import paper
from repro.experiments.reporting import Table, banner, compare_to_paper
from repro.transports import HadoopRpcTransport, LatencyBench, MpichTransport
from repro.util.units import KiB, MiB, fmt_bytes, fmt_time


@dataclass
class Fig2Result:
    """Latency sweep: size -> (rpc, mpich) average latency in seconds."""

    sizes: list[int]
    rpc: dict[int, float] = field(default_factory=dict)
    mpich: dict[int, float] = field(default_factory=dict)

    def ratio(self, size: int) -> float:
        return self.rpc[size] / self.mpich[size]


def panel_sizes(panel: str) -> list[int]:
    lo, hi = paper.FIG2_PANELS[panel]
    sizes = []
    n = lo
    while n <= hi:
        sizes.append(n)
        n *= 2
    return sizes


def run(trials: int = 100, seed: int = 20110913) -> Fig2Result:
    """Sweep all three panels' sizes through both transports."""
    sizes = sorted({s for p in paper.FIG2_PANELS for s in panel_sizes(p)})
    result = Fig2Result(sizes=sizes)
    rpc_bench = LatencyBench(HadoopRpcTransport(), trials=trials, seed=seed)
    mpi_bench = LatencyBench(MpichTransport(), trials=trials, seed=seed)
    for n in sizes:
        result.rpc[n] = rpc_bench.measure(n).latency
        result.mpich[n] = mpi_bench.measure(n).latency
    return result


def format_report(result: Fig2Result) -> str:
    blocks = [banner("Figure 2: message latency, Hadoop RPC vs MPICH2")]
    for panel in ("a", "b", "c"):
        sizes = [s for s in panel_sizes(panel) if s in result.rpc]
        table = Table(
            headers=("size", "Hadoop RPC", "MPICH2", "RPC/MPI"),
            title=f"-- Figure 2({panel}) --",
        )
        for n in sizes:
            table.add_row(
                fmt_bytes(n),
                fmt_time(result.rpc[n]),
                fmt_time(result.mpich[n]),
                f"{result.ratio(n):.1f}x",
            )
        blocks.append(table.render())
    comparisons = [
        ("RPC/MPI ratio @ 1 B", result.ratio(1), paper.FIG2_RATIO_1B),
        ("RPC/MPI ratio @ 1 KB", result.ratio(1 * KiB), paper.FIG2_RATIO_1KB),
        ("RPC/MPI ratio @ 1 MB", result.ratio(1 * MiB), paper.FIG2_RATIO_1MB),
        ("RPC latency @ 1 KB (s)", result.rpc[1 * KiB], paper.FIG2_RPC_LATENCY[1 * KiB]),
        ("RPC latency @ 64 MB (s)", result.rpc[64 * MiB], paper.FIG2_RPC_LATENCY[64 * MiB]),
        (
            "MPICH2 latency @ 64 MB (s)",
            result.mpich[64 * MiB],
            paper.FIG2_MPICH_LATENCY[64 * MiB],
        ),
    ]
    blocks.append(compare_to_paper(comparisons))
    return "\n\n".join(blocks)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trials", type=int, default=100)
    parser.add_argument("--seed", type=int, default=20110913)
    args = parser.parse_args(argv)
    print(format_report(run(trials=args.trials, seed=args.seed)))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
