"""Fixed-width report rendering for experiment drivers.

Nothing fancy: the experiments print the same rows/series the paper
reports, plus a paper-vs-measured comparison block, as plain text that
reads well in a terminal and pastes well into EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro.util.units import fmt_bytes, fmt_time


@dataclass
class Table:
    """A fixed-width text table."""

    headers: Sequence[str]
    rows: list[Sequence[Any]] = field(default_factory=list)
    title: str = ""

    def add_row(self, *cells: Any) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells for {len(self.headers)} headers"
            )
        self.rows.append(cells)

    def render(self) -> str:
        cells = [[str(h) for h in self.headers]] + [
            [_fmt_cell(c) for c in row] for row in self.rows
        ]
        widths = [max(len(r[i]) for r in cells) for i in range(len(self.headers))]
        lines = []
        if self.title:
            lines.append(self.title)
        sep = "-+-".join("-" * w for w in widths)
        lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
        lines.append(sep)
        for row in cells[1:]:
            lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)


def _fmt_cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_series(
    name: str,
    points: Sequence[tuple[float, float]],
    x_fmt: Callable[[float], str] = fmt_bytes,
    y_fmt: Callable[[float], str] = fmt_time,
) -> str:
    """One labelled (x, y) series as aligned text."""
    lines = [name]
    for x, y in points:
        lines.append(f"  {x_fmt(x):>12}  {y_fmt(y)}")
    return "\n".join(lines)


def compare_to_paper(
    rows: Sequence[tuple[str, float, Optional[float]]],
    measured_label: str = "measured",
) -> str:
    """Render (quantity, measured, paper) triples with the ratio.

    Paper values may be None (not quoted); the ratio column then shows
    a dash.
    """
    table = Table(headers=("quantity", measured_label, "paper", "measured/paper"))
    for name, measured, published in rows:
        if published is None:
            table.add_row(name, measured, "-", "-")
        elif published == 0:
            table.add_row(name, measured, published, "-")
        else:
            table.add_row(name, measured, published, f"{measured / published:.2f}x")
    return table.render()


def banner(title: str) -> str:
    bar = "=" * max(len(title), 8)
    return f"{bar}\n{title}\n{bar}"
