"""Ablation: compressing realigned partition arrays (§IV-A improvement).

Both planes again: the real engine zlib-compresses each fixed-size
array before ``MPI_Send`` (identical answers, fewer wire bytes), and
the performance twin prices the codec CPU against the bandwidth saved
on a shuffle-heavy sort — compression pays exactly when the network,
not the CPU, is the constraint.

Run: ``python -m repro.experiments.ablation_compression``
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

from repro.core import MapReduceJob, MpiDConfig, run_job
from repro.experiments.reporting import Table, banner
from repro.hadoop.job import JAVASORT_PROFILE, JobSpec
from repro.mrmpi import MrMpiConfig, run_mpid_job
from repro.util.units import GiB


@dataclass
class CompressionAblation:
    answers_equal: bool
    plain_wire_bytes: int
    compressed_wire_bytes: int
    sim_plain_s: float
    sim_compressed_s: float

    @property
    def wire_reduction(self) -> float:
        return 1.0 - self.compressed_wire_bytes / self.plain_wire_bytes


def _functional_job(compress: bool) -> MapReduceJob:
    return MapReduceJob(
        mapper=lambda k, v, emit: [emit(w, 1) for w in v.split()],
        reducer=lambda k, vs, emit: emit(k, sum(vs)),
        num_mappers=3,
        num_reducers=2,
        config=MpiDConfig(compress=compress),
        name="ablate-compress",
    )


def run(sim_gb: int = 8, seed: int = 13) -> CompressionAblation:
    # Repetitive text: the compressible case shuffle data actually is.
    corpus = ["lorem ipsum dolor sit amet " * 6] * 60

    plain = run_job(_functional_job(False), inputs=corpus)
    packed = run_job(_functional_job(True), inputs=corpus)

    spec = JobSpec(
        "sort-compress",
        input_bytes=sim_gb * GiB,
        profile=JAVASORT_PROFILE,
        num_reduce_tasks=14,
    )
    base = MrMpiConfig(num_mappers=35, num_reducers=14)
    packed_cfg = MrMpiConfig(num_mappers=35, num_reducers=14, compress=True)
    return CompressionAblation(
        answers_equal=plain.as_dict() == packed.as_dict(),
        plain_wire_bytes=sum(s["bytes_sent"] for s in plain.mapper_stats),
        compressed_wire_bytes=sum(s["bytes_sent"] for s in packed.mapper_stats),
        sim_plain_s=run_mpid_job(spec, config=base).elapsed,
        sim_compressed_s=run_mpid_job(spec, config=packed_cfg).elapsed,
    )


def format_report(result: CompressionAblation) -> str:
    table = Table(
        headers=("metric", "uncompressed", "compressed"),
        title=f"answers identical: {result.answers_equal}",
    )
    table.add_row(
        "wire bytes (functional WordCount)",
        result.plain_wire_bytes,
        result.compressed_wire_bytes,
    )
    table.add_row(
        "sim sort time (s, 35 mappers/14 reducers)",
        result.sim_plain_s,
        result.sim_compressed_s,
    )
    summary = (
        f"compression removed {result.wire_reduction * 100:.0f}% of wire "
        f"bytes; simulated sort time moved "
        f"{(result.sim_compressed_s / result.sim_plain_s - 1) * 100:+.1f}% "
        f"(codec CPU vs bandwidth saved)"
    )
    return "\n\n".join(
        [banner("Ablation: realignment compression"), table.render(), summary]
    )


def main(argv: list[str] | None = None) -> int:
    argparse.ArgumentParser(description=__doc__).parse_args(argv)
    print(format_report(run()))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
