"""Ablation: how much of small-job Hadoop time is heartbeat scheduling?

Figure 6's 1 GB point shows Hadoop at 49 s where MPI-D takes 3.9 s —
and most of that gap is not communication but *slot-fill latency*:
0.20.2 hands each TaskTracker at most one map per 3-second heartbeat.
This ablation sweeps ``maps_per_heartbeat`` and the heartbeat interval
on a small WordCount to expose that structural overhead (and shows it
washing out at larger inputs).

Run: ``python -m repro.experiments.ablation_scheduling``
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field

from repro.experiments.reporting import Table, banner
from repro.hadoop import HadoopConfig, JobSpec, WORDCOUNT_PROFILE, run_hadoop_job
from repro.util.units import GiB


@dataclass
class SchedulingAblation:
    small_gb: int
    large_gb: int
    #: (maps_per_heartbeat, heartbeat_interval) -> (small s, large s)
    cells: dict[tuple[int, float], tuple[float, float]] = field(default_factory=dict)


DEFAULT_GRID = ((1, 3.0), (4, 3.0), (8, 3.0), (1, 1.0), (8, 0.5))


def run(
    small_gb: int = 1,
    large_gb: int = 8,
    grid: tuple[tuple[int, float], ...] = DEFAULT_GRID,
    seed: int = 2011,
) -> SchedulingAblation:
    result = SchedulingAblation(small_gb=small_gb, large_gb=large_gb)
    for maps_per_hb, interval in grid:
        cfg = HadoopConfig(
            map_slots=7,
            reduce_slots=7,
            maps_per_heartbeat=maps_per_hb,
            heartbeat_interval=interval,
        )
        small = run_hadoop_job(
            JobSpec(
                "wc-small",
                input_bytes=small_gb * GiB,
                profile=WORDCOUNT_PROFILE,
                num_reduce_tasks=1,
            ),
            config=cfg,
            seed=seed,
        ).elapsed
        large = run_hadoop_job(
            JobSpec(
                "wc-large",
                input_bytes=large_gb * GiB,
                profile=WORDCOUNT_PROFILE,
                num_reduce_tasks=1,
            ),
            config=cfg,
            seed=seed,
        ).elapsed
        result.cells[(maps_per_hb, interval)] = (small, large)
    return result


def format_report(result: SchedulingAblation) -> str:
    table = Table(
        headers=(
            "maps/heartbeat",
            "interval (s)",
            f"{result.small_gb} GB job (s)",
            f"{result.large_gb} GB job (s)",
        ),
        title="Hadoop WordCount vs scheduler aggressiveness",
    )
    for (mph, interval), (small, large) in result.cells.items():
        table.add_row(mph, interval, small, large)
    base = result.cells.get((1, 3.0))
    best_small = min(s for s, _ in result.cells.values())
    note = ""
    if base:
        note = (
            f"scheduler tuning alone cuts the {result.small_gb} GB job from "
            f"{base[0]:.1f}s to {best_small:.1f}s — the overhead MPI-D's "
            f"static assignment never pays"
        )
    return "\n\n".join(
        [banner("Ablation: heartbeat-paced task assignment"), table.render(), note]
    )


def main(argv: list[str] | None = None) -> int:
    argparse.ArgumentParser(description=__doc__).parse_args(argv)
    print(format_report(run()))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
