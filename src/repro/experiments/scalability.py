"""Scalability: the paper's future-work item (3), measured.

"(3) to optimize the MPI-D library to exploit its potential, especially
improving scalability" — this experiment sweeps the cluster size at a
fixed 20 GB WordCount and reports both systems' job times and the
MPI-D/Hadoop ratio, showing where each stops scaling (Hadoop's
heartbeat-paced scheduling amortizes at scale; MPI-D's single reducer
becomes the ceiling).

Run: ``python -m repro.experiments.scalability``
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field

from repro.experiments.reporting import Table, banner
from repro.hadoop import HadoopConfig, JobSpec, WORDCOUNT_PROFILE, run_hadoop_job
from repro.mrmpi import MrMpiConfig, run_mpid_job
from repro.simnet.cluster import ClusterSpec
from repro.util.units import GiB

DEFAULT_NODES = (3, 5, 8, 12, 16)


@dataclass
class ScalabilityResult:
    """total nodes -> (hadoop s, mpid s)."""

    node_counts: tuple[int, ...]
    input_gb: int
    hadoop: dict[int, float] = field(default_factory=dict)
    mpid: dict[int, float] = field(default_factory=dict)

    def speedup(self, system: str) -> dict[int, float]:
        series = self.hadoop if system == "hadoop" else self.mpid
        base = series[self.node_counts[0]]
        return {n: base / series[n] for n in self.node_counts}


def run(
    node_counts: tuple[int, ...] = DEFAULT_NODES,
    input_gb: int = 20,
    seed: int = 2011,
) -> ScalabilityResult:
    result = ScalabilityResult(node_counts=tuple(node_counts), input_gb=input_gb)
    spec = JobSpec(
        name=f"wc-{input_gb}g",
        input_bytes=input_gb * GiB,
        profile=WORDCOUNT_PROFILE,
        num_reduce_tasks=1,
    )
    for nodes in node_counts:
        workers = nodes - 1
        cluster = ClusterSpec(num_nodes=nodes)
        result.hadoop[nodes] = run_hadoop_job(
            spec,
            config=HadoopConfig(map_slots=7, reduce_slots=7),
            cluster_spec=cluster,
            seed=seed,
        ).elapsed
        result.mpid[nodes] = run_mpid_job(
            spec,
            config=MrMpiConfig(num_mappers=7 * workers, num_reducers=1),
            cluster_spec=cluster,
        ).elapsed
    return result


def format_report(result: ScalabilityResult) -> str:
    table = Table(
        headers=("nodes", "Hadoop (s)", "MPI-D (s)", "ratio", "Hadoop speedup", "MPI-D speedup"),
        title=f"WordCount {result.input_gb} GB, workers = nodes - 1",
    )
    h_speed = result.speedup("hadoop")
    m_speed = result.speedup("mpid")
    for n in result.node_counts:
        table.add_row(
            n,
            result.hadoop[n],
            result.mpid[n],
            f"{result.mpid[n] / result.hadoop[n] * 100:.0f}%",
            f"{h_speed[n]:.2f}x",
            f"{m_speed[n]:.2f}x",
        )
    return "\n\n".join([banner("Scalability sweep (paper future work 3)"), table.render()])


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--gb", type=int, default=20)
    args = parser.parse_args(argv)
    print(format_report(run(input_gb=args.gb)))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
