"""The GridMix suite end to end: does MPI-D's win generalize past WordCount?

Figure 6 compares one application.  This experiment runs the whole
GridMix mix (the benchmark family the paper's Section II draws from) at
a fixed input size on both the simulated Hadoop and the MPI-D system,
reporting per-workload times and ratios — the generalization check a
reviewer would ask for.

Run: ``python -m repro.experiments.gridmix``
"""

from __future__ import annotations

import argparse
import math
from dataclasses import dataclass, field

from repro.experiments.reporting import Table, banner
from repro.hadoop import HadoopConfig, JobSpec, run_hadoop_job
from repro.mrmpi import MrMpiConfig, run_mpid_job
from repro.util.units import GiB
from repro.workloads.gridmix_suite import GRIDMIX_SUITE, GridmixEntry


@dataclass
class GridmixResult:
    input_gb: int
    #: workload -> (hadoop s, mpid s)
    times: dict[str, tuple[float, float]] = field(default_factory=dict)

    def ratio(self, name: str) -> float:
        h, m = self.times[name]
        return m / h


def _reduce_tasks(entry: GridmixEntry, num_maps: int) -> int:
    return max(1, math.ceil(entry.reducers_per_map * num_maps))


def run(
    input_gb: int = 4,
    suite: tuple[GridmixEntry, ...] = GRIDMIX_SUITE,
    seed: int = 2011,
) -> GridmixResult:
    result = GridmixResult(input_gb=input_gb)
    hadoop_cfg = HadoopConfig(map_slots=7, reduce_slots=7)
    for entry in suite:
        num_maps = JobSpec(
            "probe", input_bytes=input_gb * GiB, profile=entry.profile
        ).num_map_tasks(hadoop_cfg.block_size)
        reducers = _reduce_tasks(entry, num_maps)
        spec = JobSpec(
            name=f"gridmix-{entry.name}",
            input_bytes=input_gb * GiB,
            profile=entry.profile,
            num_reduce_tasks=reducers,
        )
        hadoop = run_hadoop_job(spec, config=hadoop_cfg, seed=seed).elapsed
        mpid_cfg = MrMpiConfig(
            num_mappers=49, num_reducers=min(reducers, 14)
        )
        mpid = run_mpid_job(spec, config=mpid_cfg).elapsed
        result.times[entry.name] = (hadoop, mpid)
    return result


def format_report(result: GridmixResult) -> str:
    table = Table(
        headers=("workload", "Hadoop (s)", "MPI-D (s)", "MPI-D/Hadoop"),
        title=f"GridMix suite, {result.input_gb} GB per workload",
    )
    for name, (h, m) in result.times.items():
        table.add_row(name, h, m, f"{m / h * 100:.0f}%")
    ratios = [result.ratio(name) for name in result.times]
    summary = (
        f"MPI-D wins on {sum(1 for r in ratios if r < 1.0)}/{len(ratios)} "
        f"workloads; ratio range {min(ratios) * 100:.0f}%-"
        f"{max(ratios) * 100:.0f}%"
    )
    return "\n\n".join(
        [banner("GridMix suite: Hadoop vs MPI-D"), table.render(), summary]
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--gb", type=int, default=4)
    args = parser.parse_args(argv)
    print(format_report(run(input_gb=args.gb)))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
