"""Robustness: are the headline results an artifact of one seed?

Randomness in the reproduction enters through HDFS replica placement
(which drives map locality and remote-read traffic).  This experiment
re-runs the Figure-6 comparison and a Table-I cell across several
placement seeds and reports mean ± spread — the check that the
reproduced shapes aren't a lucky layout.

Run: ``python -m repro.experiments.robustness``
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field

import numpy as np

from repro.experiments.reporting import Table, banner
from repro.hadoop import HadoopConfig, JAVASORT_PROFILE, JobSpec, WORDCOUNT_PROFILE, run_hadoop_job
from repro.mrmpi import MrMpiConfig, run_mpid_job
from repro.util.units import GiB


@dataclass
class RobustnessResult:
    seeds: tuple[int, ...]
    fig6_ratios: list[float] = field(default_factory=list)
    table1_fracs: list[float] = field(default_factory=list)
    localities: list[float] = field(default_factory=list)

    def stats(self, xs: list[float]) -> tuple[float, float]:
        arr = np.array(xs)
        return float(arr.mean()), float(arr.std())


def run(seeds: tuple[int, ...] = (1, 2, 3, 4, 5), input_gb: int = 2) -> RobustnessResult:
    result = RobustnessResult(seeds=tuple(seeds))
    hadoop_cfg = HadoopConfig(map_slots=7, reduce_slots=7)
    wc_spec = JobSpec(
        "wc", input_bytes=input_gb * GiB, profile=WORDCOUNT_PROFILE, num_reduce_tasks=1
    )
    sort_spec = JobSpec(
        "sort", input_bytes=input_gb * GiB, profile=JAVASORT_PROFILE
    )
    # The MPI-D system has no placement randomness: one run suffices.
    mpid = run_mpid_job(wc_spec, config=MrMpiConfig()).elapsed
    for seed in seeds:
        hadoop_metrics = run_hadoop_job(wc_spec, config=hadoop_cfg, seed=seed)
        result.fig6_ratios.append(mpid / hadoop_metrics.elapsed)
        sort_metrics = run_hadoop_job(sort_spec, seed=seed)
        result.table1_fracs.append(sort_metrics.copy_fraction)
        result.localities.append(sort_metrics.data_locality())
    return result


def format_report(result: RobustnessResult) -> str:
    table = Table(
        headers=("quantity", "mean", "std", "min", "max"),
        title=f"{len(result.seeds)} HDFS placement seeds",
    )
    for name, xs in (
        ("Fig6 MPI-D/Hadoop ratio", result.fig6_ratios),
        ("Table-I copy fraction", result.table1_fracs),
        ("map data locality", result.localities),
    ):
        mean, std = result.stats(xs)
        table.add_row(name, mean, std, min(xs), max(xs))
    mean, std = result.stats(result.fig6_ratios)
    verdict = (
        f"seed-to-seed spread of the headline ratio is "
        f"{std / mean * 100:.1f}% of its mean — the reproduced shapes are "
        f"placement-robust"
    )
    return "\n\n".join([banner("Robustness across seeds"), table.render(), verdict])


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--gb", type=int, default=2)
    parser.add_argument(
        "--seeds",
        type=str,
        default=None,
        help="comma-separated placement seeds (default 1,2,3,4,5)",
    )
    args = parser.parse_args(argv)
    if args.seeds:
        seeds = tuple(int(tok) for tok in args.seeds.split(",") if tok.strip())
        print(format_report(run(seeds=seeds, input_gb=args.gb)))
    else:
        print(format_report(run(input_gb=args.gb)))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
