"""Table I: copy-stage share of total task time across sizes x slots.

The paper sweeps input sizes 1-150 GB against per-node slot
configurations 4/2, 4/4, 8/8, 16/16 and reports, for each cell,
``sum(copy stage time) / sum(all mappers' and reducers' execution
time)``.  The default sweep uses sizes 1-12 GB (same shape, seconds of
wall time); ``--full`` reproduces the paper's exact grid.

Run: ``python -m repro.experiments.table1_copy_pct [--full]``
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field

from repro.experiments import paper
from repro.experiments.reporting import Table, banner
from repro.hadoop import HadoopConfig, JAVASORT_PROFILE, JobSpec, run_hadoop_job
from repro.util.units import GiB

SLOT_CONFIGS: dict[str, tuple[int, int]] = {
    "4/2": (4, 2),
    "4/4": (4, 4),
    "8/8": (8, 8),
    "16/16": (16, 16),
}

DEFAULT_SIZES_GB = (1, 2, 4, 8, 12)
FULL_SIZES_GB = paper.TABLE1_SIZES_GB


@dataclass
class Table1Result:
    """size (GiB) -> slot config -> copy fraction (0-1)."""

    sizes_gb: tuple[int, ...]
    cells: dict[int, dict[str, float]] = field(default_factory=dict)

    @property
    def min_pct(self) -> float:
        return min(v for row in self.cells.values() for v in row.values()) * 100

    @property
    def max_pct(self) -> float:
        return max(v for row in self.cells.values() for v in row.values()) * 100


def run(
    sizes_gb: tuple[int, ...] = DEFAULT_SIZES_GB,
    configs: dict[str, tuple[int, int]] | None = None,
    seed: int = 2011,
) -> Table1Result:
    configs = configs or SLOT_CONFIGS
    result = Table1Result(sizes_gb=tuple(sizes_gb))
    for gb in sizes_gb:
        row: dict[str, float] = {}
        for label, (map_slots, reduce_slots) in configs.items():
            metrics = run_hadoop_job(
                JobSpec(
                    name=f"sort-{gb}g-{label}",
                    input_bytes=gb * GiB,
                    profile=JAVASORT_PROFILE,
                ),
                config=HadoopConfig(map_slots=map_slots, reduce_slots=reduce_slots),
                seed=seed,
            )
            row[label] = metrics.copy_fraction
        result.cells[gb] = row
    return result


def format_report(result: Table1Result) -> str:
    configs = list(next(iter(result.cells.values())))
    table = Table(
        headers=("input", *configs),
        title="Copy-stage share of total mapper+reducer time (%)",
    )
    for gb in result.sizes_gb:
        table.add_row(
            f"{gb} GB", *[f"{result.cells[gb][c] * 100:.1f}%" for c in configs]
        )
    published = Table(
        headers=("input", *paper.TABLE1_SLOT_CONFIGS),
        title="Paper's Table I (for reference, sizes 1-150 GB)",
    )
    for gb in paper.TABLE1_SIZES_GB:
        published.add_row(
            f"{gb} GB",
            *[f"{paper.TABLE1_COPY_PCT[gb][c]}%" for c in paper.TABLE1_SLOT_CONFIGS],
        )
    summary = (
        f"measured range: {result.min_pct:.1f}% .. {result.max_pct:.1f}%   "
        f"(paper: {paper.TABLE1_MIN_PCT}% .. {paper.TABLE1_MAX_PCT}%)"
    )
    return "\n\n".join(
        [banner("Table I: copy-stage overhead"), table.render(), published.render(), summary]
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full", action="store_true", help="run the paper's 1-150 GB grid"
    )
    args = parser.parse_args(argv)
    sizes = FULL_SIZES_GB if args.full else DEFAULT_SIZES_GB
    print(format_report(run(sizes_gb=sizes)))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
