"""Export experiment results as CSV/JSON files for external plotting.

``python -m repro.experiments.export --out results/`` writes one CSV per
figure/table with exactly the series the plots need (a column per curve,
a row per x value), so any plotting stack — gnuplot, matplotlib,
spreadsheets — can regenerate the paper's graphics from this repo's
numbers without rerunning the simulations.

Two JSON exports ride along: ``fig6_wordcount.json`` and
``fault_tolerance.json`` carry the *full* per-task phase records
(``JobMetrics.to_dict()`` — the machine-readable job history), which the
CSVs' aggregate rows deliberately drop.
"""

from __future__ import annotations

import argparse
import csv
import io
import json
import math
from functools import lru_cache
from pathlib import Path
from typing import Optional, Sequence

from repro.experiments import critical_path as critical_path_exp
from repro.experiments import durability, fault_tolerance, fig1_shuffle
from repro.experiments import fig2_latency, fig3_bandwidth, fig6_wordcount
from repro.experiments import multi_tenant, network_faults, table1_copy_pct
from repro.obs.analysis import STAGES
from repro.util.units import GiB


def _write_csv(path: Path, header: Sequence[str], rows: Sequence[Sequence]) -> None:
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(header)
        writer.writerows(rows)


@lru_cache(maxsize=1)
def _default_fig6():
    """One shared default fig6 run (CSV and JSON exporters both use it)."""
    return fig6_wordcount.run()


@lru_cache(maxsize=1)
def _default_fault():
    """One shared default fault sweep, with per-task records retained."""
    return fault_tolerance.run(input_gb=4, seeds=(2011,), keep_task_records=True)


@lru_cache(maxsize=1)
def _default_netfault():
    """One shared default lossy-network sweep (small, so exports stay quick)."""
    return network_faults.run(
        input_gb=1.0,
        seeds=(2011, 2012),
        rates_per_link_hour=(120.0, 900.0, 1800.0),
        partition_durations=(5.0, 15.0),
    )


def fig1_csv(metrics=None, input_bytes: int = 16 * GiB) -> tuple[list[str], list[list]]:
    """Per-reducer copy/sort/reduce rows (Figure 1's scatter data)."""
    m = metrics or fig1_shuffle.run(input_bytes=input_bytes)
    header = ["reducer_id", "copy_s", "sort_s", "reduce_s"]
    rows = [
        [r.task_id, r.copy_time, r.sort_time, r.reduce_time]
        for r in sorted(m.reduce_tasks, key=lambda r: r.task_id)
    ]
    return header, rows


def fig2_csv(result=None) -> tuple[list[str], list[list]]:
    r = result or fig2_latency.run()
    header = ["size_bytes", "hadoop_rpc_s", "mpich2_s", "ratio"]
    rows = [[n, r.rpc[n], r.mpich[n], r.ratio(n)] for n in r.sizes]
    return header, rows


def fig3_csv(result=None) -> tuple[list[str], list[list]]:
    r = result or fig3_bandwidth.run(include_nio=True)
    names = list(r.series)
    header = ["packet_bytes"] + [n.replace("/", "_").replace(" ", "_") for n in names]
    rows = [[p] + [r.series[n][p] for n in names] for p in r.packets]
    return header, rows


def table1_csv(result=None) -> tuple[list[str], list[list]]:
    r = result or table1_copy_pct.run()
    configs = list(next(iter(r.cells.values())))
    header = ["input_gb"] + [c.replace("/", "_") for c in configs]
    rows = [[gb] + [r.cells[gb][c] for c in configs] for gb in r.sizes_gb]
    return header, rows


def fig6_csv(result=None) -> tuple[list[str], list[list]]:
    r = result or _default_fig6()
    header = ["input_gb", "hadoop_s", "mpid_s", "ratio"]
    rows = [[gb, r.hadoop[gb], r.mpid[gb], r.ratio(gb)] for gb in r.sizes_gb]
    return header, rows


def fig6_json(result=None) -> dict:
    """Full per-task phase records for every Figure-6 size."""
    r = result or _default_fig6()
    return {
        "experiment": "fig6_wordcount",
        "sizes_gb": list(r.sizes_gb),
        "hadoop": {str(gb): r.hadoop_metrics[gb] for gb in r.sizes_gb},
        "mpid": {str(gb): r.mpid_metrics[gb] for gb in r.sizes_gb},
    }


def fault_tolerance_csv(result=None) -> tuple[list[str], list[list]]:
    """Failure-rate sweep rows (the fault-tolerance crossover data).

    The default export uses a small sweep (one seed, 4 GB) so
    ``export_all`` stays quick; run the experiment module directly for
    the full-resolution table.  Runs that never finished export an empty
    elapsed cell rather than ``inf``.
    """
    r = result or _default_fault()

    def cell(x: float):
        return "" if math.isinf(x) else x

    def why(rate: float) -> str:
        """One compact cell per rate: which runs died, of what, where and
        when.  The kind tag distinguishes computation loss (attempts ran
        out, master died) from data loss (``block_lost:<file>:<block>``)."""
        return "; ".join(
            f"seed{f['seed']}:{f.get('kind', 'unknown')}:node{f['node']}"
            f"@t{f['time']:.1f}" + (f":task{f['task']}" if f["task"] is not None else "")
            for f in r.hadoop_failures.get(rate, [])
            if f["time"] is not None
        )

    header = [
        "crashes_per_node_hour",
        "hadoop_s",
        "mpid_s",
        "hadoop_dnf",
        "mpid_dnf",
        "lost_trackers",
        "maps_reexecuted",
        "wasted_task_s",
        "mpid_restarts",
        "mpid_wasted_task_s",
        "hadoop_failure_why",
    ]
    rows: list[list] = [
        [0.0, r.hadoop_clean, r.mpid_clean, 0, 0, 0.0, 0.0, 0.0, 0.0, 0.0, ""]
    ]
    for rate in r.rates_per_hour:
        f = r.hadoop_faults[rate]
        rows.append(
            [
                rate,
                cell(r.hadoop[rate]),
                cell(r.mpid[rate]),
                r.hadoop_dnf[rate],
                r.mpid_dnf[rate],
                f["lost_trackers"],
                f["maps_reexecuted"],
                f["wasted_task_seconds"],
                r.mpid_restarts[rate],
                r.mpid_wasted.get(rate, 0.0),
                why(rate),
            ]
        )
    return header, rows


def fault_tolerance_json(result=None) -> dict:
    """Per-seed job histories of the fault sweep (rate 0.0 = clean)."""
    r = result or _default_fault()
    return {
        "experiment": "fault_tolerance",
        "input_gb": r.input_gb,
        "seeds": list(r.seeds),
        "rates_per_hour": list(r.rates_per_hour),
        "hadoop_task_records": {
            str(rate): records for rate, records in r.hadoop_task_records.items()
        },
        "hadoop_failures": {
            str(rate): records for rate, records in r.hadoop_failures.items()
        },
        "mpid_faults": {str(rate): f for rate, f in r.mpid_faults.items()},
        "mpid_wasted_task_seconds": {
            str(rate): w for rate, w in r.mpid_wasted.items()
        },
    }


def network_faults_csv(result=None) -> tuple[list[str], list[list]]:
    """Loss-rate sweep rows (the lossy-network degradation curves).

    DNF runs export an empty elapsed cell rather than ``inf``; the
    partition sweep lives in the JSON export (different x-axis)."""
    r = result or _default_netfault()

    def cell(x: float):
        return "" if math.isinf(x) else x

    header = [
        "kills_per_link_hour",
        "hadoop_s",
        "mpid_s",
        "mpid_reliable_s",
        "hadoop_dnf",
        "mpid_dnf",
        "fetch_retries",
        "fetch_failures",
        "maps_reexecuted_for_fetch",
        "mpid_restarts",
        "mpid_retransmits",
    ]
    rows: list[list] = [
        [0.0, r.hadoop_clean, r.mpid_clean, r.mpid_clean, 0, 0, 0.0, 0.0, 0.0, 0.0, 0.0]
    ]
    for rate in r.rates_per_link_hour:
        s = r.hadoop_shuffle[rate]
        rows.append(
            [
                rate,
                cell(r.hadoop[rate]),
                cell(r.mpid[rate]),
                cell(r.mpid_reliable[rate]),
                r.hadoop_dnf[rate],
                r.mpid_dnf[rate],
                s["fetch_retries"],
                s["fetch_failures"],
                s["maps_reexecuted_for_fetch"],
                r.mpid_restarts[rate],
                r.mpid_retransmits[rate],
            ]
        )
    return header, rows


def network_faults_json(result=None) -> dict:
    """Both sweeps (loss rate + partition duration) with the crossover."""
    r = result or _default_netfault()

    def clean(x: float):
        return None if math.isinf(x) else x

    return {
        "experiment": "network_faults",
        "input_gb": r.input_gb,
        "seeds": list(r.seeds),
        "rates_per_link_hour": list(r.rates_per_link_hour),
        "partition_durations": list(r.partition_durations),
        "partition_at": r.partition_at,
        "hadoop_clean": r.hadoop_clean,
        "mpid_clean": r.mpid_clean,
        "crossover_rate_per_link_hour": r.crossover_rate(),
        "loss": {
            str(rate): {
                "hadoop_s": clean(r.hadoop[rate]),
                "mpid_s": clean(r.mpid[rate]),
                "mpid_reliable_s": clean(r.mpid_reliable[rate]),
                "hadoop_dnf": r.hadoop_dnf[rate],
                "mpid_dnf": r.mpid_dnf[rate],
                "hadoop_shuffle": r.hadoop_shuffle[rate],
                "mpid_restarts": r.mpid_restarts[rate],
                "mpid_retransmits": r.mpid_retransmits[rate],
            }
            for rate in r.rates_per_link_hour
        },
        "partition": {
            str(duration): {
                "hadoop_s": clean(r.hadoop_partition[duration]),
                "mpid_s": clean(r.mpid_partition[duration]),
                "hadoop_fetch_retries": r.hadoop_partition_retries[duration],
                "mpid_restarts": r.mpid_partition_restarts[duration],
            }
            for duration in r.partition_durations
        },
    }


@lru_cache(maxsize=1)
def _default_durability():
    """One shared small durability sweep (1 GB, one seed, two rates).

    Replication 2 is where this seed shows the crossover: Hadoop repairs
    through rates whose very first relevant disk death permanently DNFs
    MPI-D."""
    return durability.run(
        input_gb=1.0,
        seeds=(2011,),
        rates_per_hour=(30.0, 120.0),
        replications=(1, 2, 3),
    )


def durability_csv(result=None) -> tuple[list[str], list[list]]:
    """Replication x disk-failure-rate rows (the durability crossover).

    One row per (replication, rate) cell; runs where no seed finished
    export an empty elapsed cell rather than ``inf``."""
    r = result or _default_durability()

    def cell(x: float):
        return "" if math.isinf(x) else x

    def why(cell_failures: list[dict]) -> str:
        return "; ".join(
            f"seed{f['seed']}:{f.get('kind', 'unknown')}@t{f['time']:.1f}"
            for f in cell_failures
            if f["time"] is not None
        )

    header = [
        "replication",
        "disk_fails_per_node_hour",
        "hadoop_s",
        "mpid_s",
        "hadoop_survival",
        "mpid_survival",
        "repair_bytes_x_input",
        "blocks_repaired",
        "blocks_lost",
        "read_failovers",
        "mpid_restarts",
        "mpid_data_lost",
        "hadoop_failure_why",
    ]
    rows: list[list] = []
    for repl in r.replications:
        rows.append(
            [repl, 0.0, r.hadoop_clean[repl], r.mpid_clean, 1.0, 1.0,
             0.0, 0.0, 0.0, 0.0, 0.0, 0, ""]
        )
        for rate in r.rates_per_hour:
            h = r.hadoop[(repl, rate)]
            m = r.mpid[(repl, rate)]
            rows.append(
                [
                    repl,
                    rate,
                    cell(h.elapsed),
                    cell(m.elapsed),
                    h.survival,
                    m.survival,
                    h.repair_overhead,
                    h.blocks_repaired,
                    h.blocks_lost,
                    h.read_failovers,
                    m.restarts,
                    m.data_lost,
                    why(h.failures),
                ]
            )
    return header, rows


def durability_json(result=None) -> dict:
    """The full durability sweep with per-cell records and crossovers."""
    r = result or _default_durability()

    def clean(x: float):
        return None if math.isinf(x) else x

    return {
        "experiment": "durability",
        "input_gb": r.input_gb,
        "seeds": list(r.seeds),
        "replications": list(r.replications),
        "rates_per_hour": list(r.rates_per_hour),
        "repair_bandwidth_cap": r.repair_bandwidth_cap,
        "hadoop_clean": {str(k): v for k, v in r.hadoop_clean.items()},
        "mpid_clean": r.mpid_clean,
        "crossover_rate_per_node_hour": {
            str(repl): r.crossover_rate(repl) for repl in r.replications
        },
        "cells": {
            f"{repl}x{rate:g}": {
                "hadoop": {
                    "elapsed_s": clean(h.elapsed),
                    "survival": h.survival,
                    "repair_bytes_x_input": h.repair_overhead,
                    "blocks_repaired": h.blocks_repaired,
                    "blocks_lost": h.blocks_lost,
                    "read_failovers": h.read_failovers,
                    "failures": h.failures,
                },
                "mpid": {
                    "elapsed_s": clean(m.elapsed),
                    "survival": m.survival,
                    "restarts": m.restarts,
                    "read_failovers": m.read_failovers,
                    "data_lost": m.data_lost,
                },
            }
            for repl in r.replications
            for rate in r.rates_per_hour
            for h, m in [(r.hadoop[(repl, rate)], r.mpid[(repl, rate)])]
        },
    }


@lru_cache(maxsize=1)
def _default_tenants():
    """One shared small multi-tenant sweep (fair policy, 1x vs 2x load,
    clean vs chaos, short horizon) so exports stay quick."""
    return multi_tenant.run(
        loads=(1.0, 2.0),
        policies=("fair",),
        seeds=(2011,),
        horizon=600.0,
        chaos=(False, True),
    )


def multi_tenant_csv(result=None) -> tuple[list[str], list[list]]:
    """Per-(cell, seed, tenant) SLO rows of the multi-tenant sweep."""
    return multi_tenant.to_rows(result or _default_tenants())


def multi_tenant_json(result=None) -> dict:
    """The full per-cell engine reports of the multi-tenant sweep."""
    return multi_tenant.to_json(result or _default_tenants())


@lru_cache(maxsize=1)
def _default_critical_path():
    """One shared small blame sweep (kept small so exports stay quick)."""
    return critical_path_exp.run(sizes_gb=(1.0, 4.0))


def critical_path_csv(result=None) -> tuple[list[str], list[list]]:
    """Per-size ``hadoop.phase`` blame rows: causal critical-path share
    per stage plus the Table-I counter share (spans vs JobMetrics)."""
    r = result or _default_critical_path()
    header = (
        ["input_gb", "makespan_s"]
        + [f"{stage}_blame_pct" for stage in STAGES]
        + ["copy_pct_spans", "copy_pct_counters"]
    )
    rows = [
        [
            row.input_bytes / GiB,
            row.makespan,
            *[row.cp_blame_pct.get(stage, 0.0) for stage in STAGES],
            row.span_copy_pct,
            row.counter_copy_pct,
        ]
        for row in r.rows
    ]
    return header, rows


def critical_path_json(result=None) -> dict:
    """The same blame sweep with the cross-check deltas spelled out."""
    r = result or _default_critical_path()
    return {
        "experiment": "critical_path",
        "seed": r.seed,
        "stages": list(STAGES),
        "rows": [
            {
                "input_gb": row.input_bytes / GiB,
                "makespan_s": row.makespan,
                "blame_pct": row.cp_blame_pct,
                "copy_pct_spans": row.span_copy_pct,
                "copy_pct_counters": row.counter_copy_pct,
                "cross_check_delta_pts": row.cross_check_delta,
            }
            for row in r.rows
        ],
    }


def obs_metrics_csv(observer) -> tuple[list[str], list[list]]:
    """One row per metric of a live :class:`~repro.obs.Observer`."""
    header, rows = observer.metrics.rows()
    return list(header), [list(row) for row in rows]


def obs_metrics_json(observer) -> dict:
    """Full metric dump (counters, gauges, histogram aggregates)."""
    return observer.metrics.to_dict()


EXPORTS = {
    "fig1_shuffle.csv": fig1_csv,
    "fig2_latency.csv": fig2_csv,
    "fig3_bandwidth.csv": fig3_csv,
    "table1_copy_pct.csv": table1_csv,
    "fig6_wordcount.csv": fig6_csv,
    "fault_tolerance.csv": fault_tolerance_csv,
    "network_faults.csv": network_faults_csv,
    "durability.csv": durability_csv,
    "critical_path.csv": critical_path_csv,
    "multi_tenant.csv": multi_tenant_csv,
}

JSON_EXPORTS = {
    "fig6_wordcount.json": fig6_json,
    "fault_tolerance.json": fault_tolerance_json,
    "network_faults.json": network_faults_json,
    "durability.json": durability_json,
    "critical_path.json": critical_path_json,
    "multi_tenant.json": multi_tenant_json,
}


def export_all(out_dir: Path, only: Optional[set] = None) -> list[Path]:
    """Run every exporter (or just the ``only`` set); returns the paths."""
    known = set(EXPORTS) | set(JSON_EXPORTS)
    if only is not None and (unknown := only - known):
        raise ValueError(
            f"unknown exports {sorted(unknown)}; choose from {sorted(known)}"
        )
    out_dir.mkdir(parents=True, exist_ok=True)
    written = []
    for filename, maker in EXPORTS.items():
        if only is not None and filename not in only:
            continue
        header, rows = maker()
        path = out_dir / filename
        _write_csv(path, header, rows)
        written.append(path)
    for filename, maker in JSON_EXPORTS.items():
        if only is not None and filename not in only:
            continue
        path = out_dir / filename
        with path.open("w") as fh:
            json.dump(maker(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        written.append(path)
    return written


def render_csv(header: Sequence[str], rows: Sequence[Sequence]) -> str:
    """CSV text without touching the filesystem (for tests/embedding)."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(header)
    writer.writerows(rows)
    return buf.getvalue()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=Path, default=Path("results"))
    parser.add_argument(
        "--only", nargs="+", default=None, metavar="FILE",
        help="export just these files (e.g. fig6_wordcount.csv) "
        "instead of everything",
    )
    args = parser.parse_args(argv)
    for path in export_all(args.out, only=set(args.only) if args.only else None):
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
