"""Ablation: what does MPI-D's local combining actually buy?

Section III lists "local combination of key-value pairs with the same
key to reduce message size" as one of the optimizations the MPI-D
library can do transparently.  This ablation quantifies it on both
planes:

* **functional** — run the same WordCount on the real engine with the
  grouping (no-op) combiner vs the summing combiner and compare bytes
  and messages on the wire (answers must be identical);
* **performance** — price the 10 GB WordCount of Figure 6 with the
  combiner's selectivity reduction disabled vs enabled.

Run: ``python -m repro.experiments.ablation_combiner``
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, replace

from repro.core import MapReduceJob, SummingCombiner, run_job
from repro.experiments.reporting import Table, banner
from repro.hadoop.job import WORDCOUNT_PROFILE, JobSpec
from repro.mrmpi import run_mpid_job
from repro.util.units import GiB
from repro.workloads import generate_corpus


@dataclass
class CombinerAblation:
    plain_bytes: int
    combined_bytes: int
    plain_messages: int
    combined_messages: int
    answers_equal: bool
    sim_plain_s: float
    sim_combined_s: float

    @property
    def byte_reduction(self) -> float:
        return 1.0 - self.combined_bytes / self.plain_bytes


def _wordcount(combiner):
    return MapReduceJob(
        mapper=lambda k, v, emit: [emit(w, 1) for w in v.split()],
        reducer=lambda k, vs, emit: emit(k, sum(vs)),
        combiner=combiner,
        num_mappers=4,
        num_reducers=2,
        name="ablation-wc",
    )


def run(corpus_bytes: int = 60_000, sim_gb: int = 10, seed: int = 5) -> CombinerAblation:
    corpus = generate_corpus(corpus_bytes, vocab_size=400, seed=seed)
    plain = run_job(_wordcount(None), inputs=corpus)
    combined = run_job(_wordcount(SummingCombiner()), inputs=corpus)

    # Performance plane: same job priced with and without the combiner's
    # data reduction.
    spec = JobSpec(
        "wc-ablation",
        input_bytes=sim_gb * GiB,
        profile=WORDCOUNT_PROFILE,
        num_reduce_tasks=1,
    )
    no_combine_profile = replace(WORDCOUNT_PROFILE, combiner_reduction=1.0)
    spec_plain = JobSpec(
        "wc-ablation-nocombine",
        input_bytes=sim_gb * GiB,
        profile=no_combine_profile,
        num_reduce_tasks=1,
    )
    sim_combined = run_mpid_job(spec).elapsed
    sim_plain = run_mpid_job(spec_plain).elapsed

    return CombinerAblation(
        plain_bytes=sum(s["bytes_sent"] for s in plain.mapper_stats),
        combined_bytes=sum(s["bytes_sent"] for s in combined.mapper_stats),
        plain_messages=sum(s["messages_sent"] for s in plain.mapper_stats),
        combined_messages=sum(s["messages_sent"] for s in combined.mapper_stats),
        answers_equal=plain.as_dict()
        == {k: v for k, v in combined.as_dict().items()},
        sim_plain_s=sim_plain,
        sim_combined_s=sim_combined,
    )


def format_report(result: CombinerAblation) -> str:
    func = Table(
        headers=("metric", "no combiner", "summing combiner"),
        title="Functional plane (real WordCount, identical answers: "
        f"{result.answers_equal})",
    )
    func.add_row("bytes on wire", result.plain_bytes, result.combined_bytes)
    func.add_row("MPI messages", result.plain_messages, result.combined_messages)
    perf = Table(
        headers=("metric", "no combiner", "with combiner"),
        title="Performance plane (10 GB WordCount on the MPI-D system)",
    )
    perf.add_row("job time (s)", result.sim_plain_s, result.sim_combined_s)
    summary = (
        f"combining removed {result.byte_reduction * 100:.1f}% of wire bytes "
        f"and {(1 - result.sim_combined_s / result.sim_plain_s) * 100:.1f}% "
        f"of simulated job time"
    )
    return "\n\n".join(
        [banner("Ablation: MPI-D local combining"), func.render(), perf.render(), summary]
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--corpus-bytes", type=int, default=60_000)
    args = parser.parse_args(argv)
    print(format_report(run(corpus_bytes=args.corpus_bytes)))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
