"""Ablation: the fixed partition-array size of data realignment.

The paper fixes partitions as "a set of continuous arrays with fixed
size" but never says what size.  This ablation sweeps the array size on
both planes: tiny arrays mean many MPI messages (per-message overhead
dominates), huge arrays mean fewer, larger sends (rendezvous, less
overlap granularity).  The functional plane confirms correctness is
size-independent; the performance plane shows the throughput curve.

Run: ``python -m repro.experiments.ablation_partition``
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field, replace

from repro.core import MapReduceJob, MpiDConfig, run_job
from repro.experiments.reporting import Table, banner
from repro.hadoop.job import JAVASORT_PROFILE, JobSpec
from repro.mrmpi import MrMpiConfig, run_mpid_job
from repro.util.units import GiB, KiB, MiB, fmt_bytes
from repro.workloads import generate_corpus

DEFAULT_SIZES = (1 * KiB, 8 * KiB, 64 * KiB, 512 * KiB, 4 * MiB)


@dataclass
class PartitionAblation:
    sizes: tuple[int, ...]
    messages: dict[int, int] = field(default_factory=dict)
    sim_seconds: dict[int, float] = field(default_factory=dict)
    all_answers_equal: bool = True


def run(sizes: tuple[int, ...] = DEFAULT_SIZES, sim_gb: int = 4, seed: int = 9) -> PartitionAblation:
    corpus = generate_corpus(40_000, vocab_size=300, seed=seed)
    result = PartitionAblation(sizes=tuple(sizes))
    reference = None
    for size in sizes:
        job = MapReduceJob(
            mapper=lambda k, v, emit: [emit(w, 1) for w in v.split()],
            reducer=lambda k, vs, emit: emit(k, sum(vs)),
            num_mappers=3,
            num_reducers=2,
            config=MpiDConfig(partition_bytes=size, spill_threshold=64 * KiB),
            name=f"ablate-part-{size}",
        )
        out = run_job(job, inputs=corpus)
        result.messages[size] = sum(s["messages_sent"] for s in out.mapper_stats)
        answer = out.as_dict()
        if reference is None:
            reference = answer
        elif answer != reference:
            result.all_answers_equal = False

        spec = JobSpec(
            f"sort-part-{size}",
            input_bytes=sim_gb * GiB,
            profile=JAVASORT_PROFILE,
            num_reduce_tasks=7,
        )
        cfg = MrMpiConfig(num_mappers=14, num_reducers=7, partition_bytes=size)
        result.sim_seconds[size] = run_mpid_job(spec, config=cfg).elapsed
    return result


def format_report(result: PartitionAblation) -> str:
    table = Table(
        headers=("array size", "MPI messages (functional)", "sim job time (s)"),
        title=f"answers identical across sizes: {result.all_answers_equal}",
    )
    for size in result.sizes:
        table.add_row(fmt_bytes(size), result.messages[size], result.sim_seconds[size])
    return "\n\n".join(
        [banner("Ablation: realignment partition-array size"), table.render()]
    )


def main(argv: list[str] | None = None) -> int:
    argparse.ArgumentParser(description=__doc__).parse_args(argv)
    print(format_report(run()))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
