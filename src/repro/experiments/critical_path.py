"""Critical-path blame and causal what-if validation (Figure 1 / Table I).

Where Table I accounts *counter* time (how long each phase ran, summed
over tasks), this experiment walks the trace DAG and asks the causal
question: which stage actually gated the finish line?  For every input
size it runs one observed WordCount job, extracts the critical path,
and prints both accountings side by side — the counter copy share is
cross-checked against :class:`~repro.hadoop.metrics.JobMetrics` to
catch drift between the span instrumentation and the metrics code.

``--validate`` closes the causal loop: take the top what-if prediction
("speeding up stage S by p% saves T seconds"), actually turn the
matching simulator knob, re-run, and report predicted vs measured:

* ``map``    — scale ``profile.map_cpu_per_byte`` by (1-p);
* ``reduce`` — scale ``profile.reduce_cpu_per_byte`` by (1-p);
* ``copy``   — scale link bandwidth and the Jetty servlet's streaming
  peak by 1/(1-p) (the shuffle is capped by both).

The map/reduce knobs map one-to-one onto critical-path time, so the
first-order Coz-style prediction lands within a few percent; the copy
knob also shrinks per-fetch setup waits only partially, which the
report calls out.

Run: ``python -m repro.experiments.critical_path [--full] [--validate]``
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.experiments.reporting import Table, banner
from repro.hadoop import HadoopConfig, WORDCOUNT_PROFILE, JobSpec
from repro.hadoop.simulation import HadoopSimulation
from repro.obs.analysis import (
    STAGES,
    CriticalPath,
    TraceDAG,
    critical_path,
    phase_breakdown,
    what_if,
)
from repro.simnet.cluster import ClusterSpec
from repro.transports.jetty import JettyHttpTransport
from repro.util.units import GiB, fmt_bytes

#: Stages a simulator knob exists for ("sort" and "idle" have none).
ACTIONABLE = ("map", "copy", "reduce")


def _hadoop_sim(
    nbytes: int,
    seed: int,
    *,
    stage: Optional[str] = None,
    pct: float = 0.0,
    observe: bool = False,
) -> HadoopSimulation:
    """The Figure-6 WordCount job, optionally with one stage sped up."""
    profile = WORDCOUNT_PROFILE
    cluster = ClusterSpec()
    if stage == "map":
        profile = replace(
            profile, map_cpu_per_byte=profile.map_cpu_per_byte * (1.0 - pct)
        )
    elif stage == "reduce":
        profile = replace(
            profile, reduce_cpu_per_byte=profile.reduce_cpu_per_byte * (1.0 - pct)
        )
    elif stage == "copy":
        cluster = replace(
            cluster, link_bandwidth=cluster.link_bandwidth / (1.0 - pct)
        )
    elif stage is not None:
        raise ValueError(f"no simulator knob for stage {stage!r}")
    spec = JobSpec(
        name=f"wordcount-{fmt_bytes(nbytes)}",
        input_bytes=nbytes,
        profile=profile,
        num_reduce_tasks=1,
    )
    sim = HadoopSimulation(
        spec=spec,
        config=HadoopConfig(map_slots=7, reduce_slots=7),
        cluster_spec=cluster,
        seed=seed,
        observe=observe,
    )
    if stage == "copy":
        # The fetch stream is rate-capped by the servlet too, not just
        # the wire; a faster copy stage needs both raised.
        sim.jetty = JettyHttpTransport(
            stream_peak=sim.jetty.stream_peak / (1.0 - pct),
            wire_bandwidth=sim.jetty.wire_bandwidth / (1.0 - pct),
        )
    return sim


@dataclass
class BlameRow:
    """One input size: causal blame vs counter accounting."""

    input_bytes: int
    makespan: float
    #: stage -> % of makespan on the critical path.
    cp_blame_pct: dict[str, float]
    #: Table-I semantics, measured from spans.
    span_copy_pct: float
    #: Table-I semantics, from the JobMetrics counters (cross-check).
    counter_copy_pct: float

    @property
    def cross_check_delta(self) -> float:
        return abs(self.span_copy_pct - self.counter_copy_pct)


@dataclass
class ValidationResult:
    """One validated what-if prediction."""

    stage: str
    pct: float
    baseline: float
    predicted: float
    actual: float

    @property
    def error(self) -> float:
        """Relative prediction error vs the measured re-run."""
        return abs(self.predicted - self.actual) / self.actual


@dataclass
class CriticalPathResult:
    seed: int
    rows: list[BlameRow] = field(default_factory=list)
    validations: list[ValidationResult] = field(default_factory=list)


def analyze_size(nbytes: int, seed: int) -> tuple[BlameRow, CriticalPath]:
    """One observed run -> causal blame + counter cross-check."""
    sim = _hadoop_sim(nbytes, seed, observe=True)
    metrics = sim.run()
    dag = TraceDAG.from_observer(sim.obs, name="hadoop")
    cp = critical_path(dag)
    pb = phase_breakdown(dag)
    row = BlameRow(
        input_bytes=nbytes,
        makespan=cp.makespan,
        cp_blame_pct=cp.blame_pct(),
        span_copy_pct=pb["copy_pct"],
        counter_copy_pct=100.0 * metrics.copy_fraction,
    )
    return row, cp


def validate_top_what_if(
    cp: CriticalPath,
    nbytes: int,
    seed: int,
    pct: float = 0.25,
    stage: Optional[str] = None,
) -> ValidationResult:
    """Turn the top actionable what-if into a real re-run and compare.

    ``stage=None`` picks the actionable stage with the most
    critical-path time (what the profiler would tell you to optimise).
    """
    if stage is None:
        stage = max(ACTIONABLE, key=lambda s: cp.seconds_in(stage=s))
    wi = what_if(cp, stage, pct)
    actual = _hadoop_sim(nbytes, seed, stage=stage, pct=pct).run().elapsed
    return ValidationResult(
        stage=stage,
        pct=pct,
        baseline=wi.baseline_makespan,
        predicted=wi.predicted_makespan,
        actual=actual,
    )


def run(
    sizes_gb: tuple[float, ...] = (1.0, 10.0),
    seed: int = 2011,
    validate: bool = False,
    pct: float = 0.25,
) -> CriticalPathResult:
    result = CriticalPathResult(seed=seed)
    for gb in sizes_gb:
        nbytes = int(gb * GiB)
        row, cp = analyze_size(nbytes, seed)
        result.rows.append(row)
        if validate:
            result.validations.append(
                validate_top_what_if(cp, nbytes, seed, pct=pct)
            )
    return result


def format_report(result: CriticalPathResult) -> str:
    table = Table(
        headers=(
            "input",
            "makespan (s)",
            *[f"{s} %" for s in STAGES],
            "copy% (spans)",
            "copy% (counters)",
        ),
        title="critical-path blame (causal) vs Table-I counters (WordCount)",
    )
    for row in result.rows:
        table.add_row(
            fmt_bytes(row.input_bytes),
            row.makespan,
            *[row.cp_blame_pct.get(s, 0.0) for s in STAGES],
            row.span_copy_pct,
            row.counter_copy_pct,
        )
    parts = [banner("Critical path: who actually gated the finish line?"), table.render()]
    note = (
        "causal blame sums to 100% of the makespan; the counter columns "
        "use Table I's accounting (copy time includes waiting for maps) "
        "and must agree between spans and JobMetrics."
    )
    parts.append(note)
    if result.validations:
        vt = Table(
            headers=(
                "stage", "speedup", "baseline (s)", "predicted (s)",
                "actual (s)", "error",
            ),
            title="what-if validation: prediction vs re-run with the knob turned",
        )
        for v in result.validations:
            vt.add_row(
                v.stage, f"-{v.pct:.0%}", v.baseline, v.predicted,
                v.actual, f"{v.error:.1%}",
            )
        parts.append(vt.render())
    return "\n\n".join(parts)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full", action="store_true", help="sweep 1/10/50/100 GB (slow)"
    )
    parser.add_argument("--seed", type=int, default=2011)
    parser.add_argument(
        "--validate",
        action="store_true",
        help="re-run the simulator with the top what-if knob turned",
    )
    parser.add_argument(
        "--pct", type=float, default=0.25, help="virtual speedup to validate"
    )
    args = parser.parse_args(argv)
    sizes = (1.0, 10.0, 50.0, 100.0) if args.full else (1.0, 10.0)
    result = run(
        sizes_gb=sizes, seed=args.seed, validate=args.validate, pct=args.pct
    )
    print(format_report(result))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
