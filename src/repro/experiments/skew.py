"""Partition skew: the hot-reducer pathology on both systems.

Figure 1's per-reducer spread comes partly from *key skew* — hash
partitioning sends Zipf-heavy keys to one unlucky reducer.  This
experiment drives a JavaSort-shaped job with increasingly skewed
partition weights through both the simulated Hadoop and the MPI-D
system, and also measures, on the functional plane, the real byte
imbalance a Zipf corpus induces under hash partitioning.

Run: ``python -m repro.experiments.skew``
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field

import numpy as np

from repro.core import HashPartitioner
from repro.experiments.reporting import Table, banner
from repro.hadoop import HadoopConfig, JAVASORT_PROFILE, JobSpec, run_hadoop_job
from repro.mrmpi import MrMpiConfig, run_mpid_job
from repro.util.serde import serialized_size
from repro.util.units import GiB
from repro.workloads import ZipfTextGenerator


def skewed_weights(num_partitions: int, hot_share: float) -> tuple[float, ...]:
    """One hot partition holding ``hot_share`` of the data, rest uniform."""
    if not 0 < hot_share < 1:
        raise ValueError(f"hot share must be in (0,1): {hot_share}")
    cold = (1.0 - hot_share) / (num_partitions - 1)
    return (hot_share, *([cold] * (num_partitions - 1)))


@dataclass
class SkewResult:
    input_gb: int
    num_reduces: int
    #: hot-partition share -> (hadoop s, mpid s)
    times: dict[float, tuple[float, float]] = field(default_factory=dict)
    #: measured byte share of the hottest partition under real hashing
    zipf_hot_share: float = 0.0


def measure_zipf_imbalance(num_partitions: int = 8, lines: int = 3000) -> float:
    """Bytes per partition when Zipf words hash-partition (functional)."""
    gen = ZipfTextGenerator(vocab_size=5000, zipf_s=1.2, seed=31)
    part = HashPartitioner()
    bytes_per = np.zeros(num_partitions)
    for line in gen.lines(lines):
        for word in line.split():
            bytes_per[part.partition(word, num_partitions)] += serialized_size(
                word, 1
            )
    return float(bytes_per.max() / bytes_per.sum())


def run(
    input_gb: int = 4,
    num_reduces: int = 8,
    hot_shares: tuple[float, ...] = (0.125, 0.3, 0.5),
    seed: int = 2011,
) -> SkewResult:
    result = SkewResult(input_gb=input_gb, num_reduces=num_reduces)
    result.zipf_hot_share = measure_zipf_imbalance(num_reduces)
    for hot in hot_shares:
        weights = (
            None
            if abs(hot - 1.0 / num_reduces) < 1e-9
            else skewed_weights(num_reduces, hot)
        )
        spec = JobSpec(
            name=f"sort-skew-{hot}",
            input_bytes=input_gb * GiB,
            profile=JAVASORT_PROFILE,
            num_reduce_tasks=num_reduces,
            partition_weights=weights,
        )
        hadoop = run_hadoop_job(spec, config=HadoopConfig(), seed=seed).elapsed
        mpid = run_mpid_job(
            spec, config=MrMpiConfig(num_mappers=28, num_reducers=num_reduces)
        ).elapsed
        result.times[hot] = (hadoop, mpid)
    return result


def format_report(result: SkewResult) -> str:
    table = Table(
        headers=("hot partition share", "Hadoop (s)", "MPI-D (s)"),
        title=f"JavaSort {result.input_gb} GB, {result.num_reduces} reducers, "
        f"one hot partition",
    )
    for hot, (h, m) in sorted(result.times.items()):
        label = f"{hot * 100:.1f}%" + (
            " (uniform)" if abs(hot - 1.0 / result.num_reduces) < 1e-9 else ""
        )
        table.add_row(label, h, m)
    shares = sorted(result.times)
    h_cost = result.times[shares[-1]][0] / result.times[shares[0]][0]
    m_cost = result.times[shares[-1]][1] / result.times[shares[0]][1]
    summary = (
        f"going from {shares[0] * 100:.0f}% to {shares[-1] * 100:.0f}% hot "
        f"share costs Hadoop {h_cost:.2f}x and MPI-D {m_cost:.2f}x — skew "
        f"is a data problem no communication library fixes.\n"
        f"(measured: a Zipf(1.2) corpus hash-partitions its hottest of "
        f"{result.num_reduces} partitions to "
        f"{result.zipf_hot_share * 100:.0f}% of the bytes)"
    )
    return "\n\n".join([banner("Partition skew"), table.render(), summary])


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--gb", type=int, default=4)
    args = parser.parse_args(argv)
    print(format_report(run(input_gb=args.gb)))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
